#!/usr/bin/env python
"""Configure cooling for a custom chip: a GPU-like accelerator die.

Shows the full public API surface for a user-defined design:

* a custom floorplan (shader clusters, memory controllers, a hot
  tensor unit) on a 16x16 grid;
* a custom package stack (aluminum spreader, stronger fan);
* a custom TEC device variant;
* GreedyDeploy + the Theorem 4 convexity certificate for the result.

Run:  python examples/custom_chip.py
"""

from repro import (
    CoolingSystemProblem,
    Layer,
    PackageStack,
    TecDeviceParameters,
    TileGrid,
    certify_convexity,
    greedy_deploy,
)
from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.power.maps import render_ascii_heatmap
from repro.thermal.materials import ALUMINUM


def build_floorplan():
    """A 16x16-tile (8 mm x 8 mm) accelerator die."""
    grid = TileGrid(16, 16)
    units = [
        # four shader clusters across the top half
        FunctionalUnit.from_rect("SM0", grid, 0, 0, 4, 8, 4.2),
        FunctionalUnit.from_rect("SM1", grid, 0, 8, 4, 8, 4.2),
        FunctionalUnit.from_rect("SM2", grid, 4, 0, 4, 8, 4.4),
        FunctionalUnit.from_rect("SM3", grid, 4, 8, 4, 8, 4.4),
        # the hot tensor unit: 8 tiles, very high density
        FunctionalUnit.from_rect("Tensor", grid, 8, 4, 2, 4, 5.6),
        # L2 slices and memory controllers around it
        FunctionalUnit.from_rect("L2W", grid, 8, 0, 2, 4, 0.7),
        FunctionalUnit.from_rect("L2E", grid, 8, 8, 2, 8, 1.3),
        FunctionalUnit.from_rect("MC0", grid, 10, 0, 3, 16, 2.4),
        FunctionalUnit.from_rect("NoC", grid, 13, 0, 3, 16, 2.2),
    ]
    return Floorplan(grid, units)


def main():
    floorplan = build_floorplan()
    stack = PackageStack(
        spreader=Layer("spreader", ALUMINUM, thickness=1.2e-3, side=24e-3),
        convection_resistance=0.9,
    )
    device = TecDeviceParameters(electrical_resistance=2.0e-3)
    problem = CoolingSystemProblem.from_floorplan(
        floorplan,
        max_temperature_c=96.0,
        stack=stack,
        device=device,
        name="gpu-like",
    )

    bare = problem.model(()).solve(0.0)
    print("chip: {:.1f} W over {} tiles; bare peak {:.1f} C (limit {:.0f} C)".format(
        problem.power_map.sum(), problem.grid.num_tiles,
        bare.peak_silicon_c, problem.max_temperature_c,
    ))
    print(render_ascii_heatmap(bare.silicon_grid_c))

    result = greedy_deploy(problem)
    if not result.feasible:
        print("\ninfeasible at {:.0f} C — retrying at a relaxed limit".format(
            problem.max_temperature_c))
        result = greedy_deploy(problem.with_limit(bare.peak_silicon_c - 2.0))

    print("\ndeployment: {} TECs at {:.2f} A, P_TEC {:.2f} W".format(
        result.num_tecs, result.current, result.tec_power_w))
    print("peak {:.1f} -> {:.1f} C".format(result.no_tec_peak_c, result.peak_c))

    # Certify that the current optimization was convex, hence optimal
    # (Theorem 4; assumes Conjecture 1 as the paper does).
    lambda_m = result.model.runaway_current().value
    certificate = certify_convexity(
        result.model, min(2.0 * result.current, 0.5 * lambda_m), subdivisions=6
    )
    print("\nconvexity certificate over [0, {:.1f} A]: {} (margin {:.2e})".format(
        certificate.i_max,
        "CERTIFIED — gradient/golden optimum is global" if certificate.certified
        else "not certified",
        certificate.margin,
    ))
    print("runaway current lambda_m = {:.1f} A (operating at {:.2f} A)".format(
        lambda_m, result.current))


if __name__ == "__main__":
    main()
