#!/usr/bin/env python
"""Quickstart: configure the active cooling system of the Alpha chip.

Reproduces the first row of the paper's Table I end-to-end:

1. build the Alpha-21364-like benchmark chip (12x12 tiles, 20.6 W
   worst case);
2. run GreedyDeploy to choose which tiles get thin-film TEC devices;
3. the deployment's supply current is set by the convex
   peak-temperature minimization;
4. compare against the no-TEC chip and the Full-Cover baseline.

Run:  python examples/quickstart.py
"""

from repro import CoolingSystemProblem, full_cover, greedy_deploy
from repro.power.alpha import alpha_floorplan
from repro.power.maps import render_ascii_heatmap


def main():
    floorplan = alpha_floorplan()
    problem = CoolingSystemProblem.from_floorplan(
        floorplan, max_temperature_c=85.0, name="alpha"
    )
    print("chip: {:.1f} W worst case over {} tiles, limit {:.0f} C".format(
        problem.power_map.sum(), problem.grid.num_tiles, problem.max_temperature_c
    ))

    result = greedy_deploy(problem)
    print("\nGreedyDeploy:")
    print("  feasible:      {}".format(result.feasible))
    print("  no-TEC peak:   {:.1f} C".format(result.no_tec_peak_c))
    print("  devices:       {}".format(result.num_tecs))
    print("  I_opt:         {:.2f} A".format(result.current))
    print("  P_TEC:         {:.2f} W".format(result.tec_power_w))
    print("  cooled peak:   {:.1f} C  (swing {:.1f} C)".format(
        result.peak_c, result.cooling_swing_c
    ))
    print("  runtime:       {:.2f} s".format(result.runtime_s))

    baseline = full_cover(problem)
    print("\nFull-Cover baseline (all 144 tiles covered):")
    print("  best peak:     {:.1f} C at {:.2f} A".format(
        baseline.min_peak_c, baseline.current
    ))
    print("  SwingLoss:     {:.1f} C  (over-deployment penalty)".format(
        baseline.min_peak_c - result.peak_c
    ))

    # Before/after temperature maps and the deployment.
    bare = problem.model(()).solve(0.0)
    cooled = result.model.solve(result.current)
    lo = min(bare.silicon_c.min(), cooled.silicon_c.min())
    hi = bare.silicon_c.max()
    print("\nbare-chip temperatures ({:.1f}..{:.1f} C):".format(lo, hi))
    print(render_ascii_heatmap(bare.silicon_grid_c, vmin=lo, vmax=hi))
    print("\nwith the optimized cooling system:")
    print(render_ascii_heatmap(cooled.silicon_grid_c, vmin=lo, vmax=hi))
    covered = set(result.tec_tiles)
    print("\nTEC deployment (# = device):")
    for row in range(problem.grid.rows):
        print("".join(
            "#" if problem.grid.flat_index(row, col) in covered else "."
            for col in range(problem.grid.cols)
        ))


if __name__ == "__main__":
    main()
