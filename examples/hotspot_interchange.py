#!/usr/bin/env python
"""HotSpot interchange: drive the optimizer from .flp / .ptrace files.

Demonstrates the file-format bridge an existing HotSpot-based flow
would use:

1. export the Alpha floorplan as a standard ``.flp``;
2. generate a synthetic workload suite and export it as ``.ptrace``
   (the format M5 + Wattch emit);
3. reduce the traces to per-unit worst-case powers with the paper's
   20% margin;
4. rebuild the cooling problem *purely from the files* and run the
   full design flow;
5. archive the resulting design as JSON.

Run:  python examples/hotspot_interchange.py
"""

import json
import tempfile
from pathlib import Path

from repro import CoolingSystemProblem, greedy_deploy
from repro.io.flp import floorplan_from_flp, write_flp
from repro.io.ptrace import read_ptrace, trace_to_ptrace
from repro.io.results import deployment_to_dict
from repro.power.alpha import alpha_floorplan
from repro.power.workloads import spec2000_like_suite, worst_case_power


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-hotspot-"))
    print("working directory: {}\n".format(workdir))

    # 1. Export the floorplan.
    source_plan = alpha_floorplan()
    flp_path = workdir / "alpha.flp"
    rects = write_flp(source_plan, flp_path)
    print("wrote {} ({} rectangles)".format(flp_path.name, len(rects)))

    # 2. Export workload traces.
    unit_names = [unit.name for unit in source_plan.units]
    nominal = {unit.name: unit.power_w / 1.2 for unit in source_plan.units}
    traces = []
    for workload in spec2000_like_suite():
        trace = workload.trace(unit_names, 60, seed=2000)
        trace_path = workdir / "{}.ptrace".format(workload.name)
        trace_to_ptrace(trace_path, source_plan, trace, nominal)
        traces.append(trace)
        print("wrote {} ({} samples)".format(trace_path.name, trace.steps))

    # 3. Reduce to worst-case unit powers (reading one back first, to
    #    prove the files are self-contained).
    names, loaded = read_ptrace(workdir / "int-heavy.ptrace")
    print("\nread back {} columns x {} samples from int-heavy.ptrace".format(
        len(names), loaded.shape[0]))
    worst = worst_case_power(nominal, traces, margin=0.2)
    total = sum(worst.values())
    print("worst-case chip power from traces: {:.1f} W".format(total))

    # 4. Rebuild the problem from the .flp + worst-case powers.
    floorplan = floorplan_from_flp(flp_path, source_plan.grid, worst)
    problem = CoolingSystemProblem.from_floorplan(
        floorplan, max_temperature_c=85.0, name="alpha-from-files"
    )
    result = greedy_deploy(problem)
    print("\ndesign from files: feasible={}, {} TECs at {:.2f} A, "
          "peak {:.1f} -> {:.1f} C".format(
              result.feasible, result.num_tecs, result.current,
              result.no_tec_peak_c, result.peak_c))

    # 5. Archive.
    out = workdir / "design.json"
    out.write_text(json.dumps(deployment_to_dict(result), indent=2))
    print("archived design to {}".format(out))


if __name__ == "__main__":
    main()
