#!/usr/bin/env python
"""Thermal runaway: why the supply current must stay below lambda_m.

Sweeps the shared supply current of the Alpha deployment from zero
toward the runaway limit and prints the peak temperature curve — the
shape of the paper's Figure 6 discussion (Section V.C.1):

* a shallow dip down to the optimum (active cooling),
* a slow rise (Joule heating overtakes Peltier pumping),
* an explosion as i -> lambda_m (zero-COP condition, Theorem 2).

Also verifies Theorem 1's dichotomy numerically: G - iD is positive
definite below lambda_m and indefinite above it.

Run:  python examples/thermal_runaway_demo.py
"""

import numpy as np

from repro import greedy_deploy
from repro.experiments.benchmarks import load_benchmark
from repro.linalg.spd import cholesky_is_spd


def main():
    problem = load_benchmark("alpha")
    result = greedy_deploy(problem)
    model = result.model
    runaway = model.runaway_current()
    lambda_m = runaway.value
    print("deployment: {} TECs; I_opt = {:.2f} A".format(
        result.num_tecs, result.current))
    print("runaway current lambda_m = {:.2f} A (method: {})\n".format(
        lambda_m, runaway.method))

    print("{:>10} {:>12} {:>14}".format("i (A)", "i/lambda_m", "peak (C)"))
    fractions = [0.0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9,
                 0.99, 0.999, 0.9999]
    for fraction in fractions:
        current = fraction * lambda_m
        peak = model.solve(current).peak_silicon_c
        bar = "#" * min(60, max(1, int(np.log10(max(peak, 1.0)) * 12)))
        print("{:>10.2f} {:>12.4f} {:>14.1f}  {}".format(
            current, fraction, peak, bar))

    print("\nTheorem 1 dichotomy at lambda_m:")
    g, d_diag, _, _ = model.matrices()
    import scipy.sparse as sp

    for factor in (0.99, 1.01):
        matrix = (g - factor * lambda_m * sp.diags(d_diag)).tocsc()
        print("  G - {:.2f} lambda_m D positive definite: {}".format(
            factor, cholesky_is_spd(matrix)))

    # Cross-check the two lambda_m algorithms.
    search = model.runaway_current(method="binary-search")
    print("\nlambda_m eigen:         {:.6f} A".format(lambda_m))
    print("lambda_m binary search: {:.6f} A ({} Cholesky calls)".format(
        search.value, search.iterations))


if __name__ == "__main__":
    main()
