#!/usr/bin/env python
"""Closed-loop dynamic thermal management over the static design.

The paper's intro envisions the active cooling system, thermal
monitoring, and thermal management "operating synergistically".  This
example builds that loop on the Alpha chip:

* the **static** design comes from the paper's algorithms
  (GreedyDeploy picks the tiles, Problem 2 gives I_opt and lambda_m);
* **sensors** (noisy, quantized) watch the covered tiles;
* a **PI controller** modulates the shared supply current at runtime,
  spending TEC energy only when the workload actually runs hot.

A bursty workload alternates hot and idle phases; compare the
always-on static current against the closed loop: similar worst-case
temperature at a fraction of the TEC energy.

Run:  python examples/closed_loop_dtm.py
"""

import numpy as np

from repro import greedy_deploy
from repro.control import (
    ClosedLoopSimulator,
    ConstantCurrentController,
    PiController,
    SensorArray,
)
from repro.experiments.benchmarks import load_benchmark


def main():
    problem = load_benchmark("alpha")
    design = greedy_deploy(problem)
    model = design.model
    print("static design: {} TECs, I_opt {:.2f} A, lambda_m {:.0f} A".format(
        design.num_tecs, design.current, model.runaway_current().value))

    # Bursty workload: 3 hot bursts separated by idle phases.
    worst = model.power_map
    idle = 0.25 * worst
    dt = 0.5
    steps = 1200

    def schedule(step, _t):
        phase = (step // 200) % 2
        return None if phase == 0 else idle  # None -> worst-case burst

    sensors = SensorArray.for_deployment(
        design, noise_std_c=0.3, quantization_c=0.25, seed=7
    )
    setpoint = problem.max_temperature_c - 1.0
    runs = {}
    for label, controller in (
        ("TECs off", ConstantCurrentController(0.0)),
        ("always-on I_opt", ConstantCurrentController(design.current)),
        # Gains sized for discrete-loop stability: the TEC junction
        # responds within one control period (plant gain ~1.4 C/A), so
        # kp must keep the loop gain below 1 or the loop chatters at
        # the full actuator swing.
        ("closed-loop PI", PiController(setpoint, kp=0.2, ki=0.1,
                                        i_max=2.0 * design.current)),
    ):
        loop = ClosedLoopSimulator(
            model, controller, sensors, dt=dt, control_period=2.0 * dt
        )
        runs[label] = loop.run(steps, power_schedule=schedule)

    print("\nsetpoint {:.1f} C; {} steps of {:.1f} s (bursty workload)".format(
        setpoint, steps, dt))
    print("{:<18} {:>10} {:>12} {:>14} {:>8}".format(
        "policy", "max C", ">limit %", "TEC energy J", "LUs"))
    for label, result in runs.items():
        print("{:<18} {:>10.2f} {:>11.1f}% {:>14.1f} {:>8}".format(
            label,
            result.max_true_peak_c,
            100.0 * result.time_above(problem.max_temperature_c),
            result.tec_energy_j,
            result.factorizations,
        ))

    pi = runs["closed-loop PI"]
    on = runs["always-on I_opt"]
    if pi.tec_energy_j < on.tec_energy_j:
        saving = 100.0 * (1.0 - pi.tec_energy_j / max(on.tec_energy_j, 1e-9))
        print("\nclosed loop saves {:.0f}% TEC energy vs always-on at "
              "comparable worst-case temperature".format(saving))
    print("\ncurrent trace sample (closed loop, A):",
          np.round(pi.current_a[180:220:4], 2).tolist())


if __name__ == "__main__":
    main()
