#!/usr/bin/env python
"""Play a workload trace through the cooled chip (transient extension).

The paper's analysis is steady-state under the worst-case power
profile.  This example exercises the beyond-paper transient extension:
a synthetic SPEC2000-like integer-heavy phase runs on the Alpha chip,
and the hotspot temperature is integrated over time twice — once on
the bare chip, once with the greedy TEC deployment at its optimized
current — showing the active cooling system tracking the workload.

Run:  python examples/workload_transient.py
"""

import numpy as np

from repro import greedy_deploy
from repro.experiments.benchmarks import load_benchmark
from repro.power.alpha import alpha_floorplan
from repro.power.workloads import SyntheticWorkload
from repro.thermal.transient import TransientSimulator


def main():
    floorplan = alpha_floorplan()
    problem = load_benchmark("alpha")
    result = greedy_deploy(problem)
    print("deployment: {} TECs at {:.2f} A\n".format(
        result.num_tecs, result.current))

    # An integer-heavy phase followed by a cooldown phase.
    workload = SyntheticWorkload(
        "int-burst",
        baseline=0.25,
        biases={"IntReg": 0.95, "IntExec": 0.95, "IQ": 0.9, "LSQ": 0.8},
        burstiness=0.05,
    )
    unit_names = [unit.name for unit in floorplan.units]
    steps = 120
    trace = workload.trace(unit_names, steps, seed=42)
    nominal = {unit.name: unit.power_w / 1.2 for unit in floorplan.units}
    power_maps = [
        trace.power_map_at(floorplan, nominal, t) for t in range(steps)
    ]
    idle = 0.25 * power_maps[0]

    def schedule(step, _time):
        if step < steps:
            return power_maps[step]
        return idle  # cooldown phase

    dt = 0.02  # 20 ms steps
    total = steps + 60
    runs = {}
    for label, model, current in (
        ("bare chip", problem.model(()), 0.0),
        ("with TECs", result.model, result.current),
    ):
        sim = TransientSimulator(model, current=current, dt=dt)
        runs[label] = sim.run(total, power_schedule=schedule)

    print("{:>8} {:>12} {:>12}".format("t (s)", "bare (C)", "cooled (C)"))
    for step in range(0, total, 12):
        print("{:>8.2f} {:>12.2f} {:>12.2f}".format(
            (step + 1) * dt, runs["bare chip"][step], runs["with TECs"][step]))

    for label, series in runs.items():
        print("\n{}: max {:.2f} C, final {:.2f} C".format(
            label, float(np.max(series)), series[-1]))
    print("\npeak-of-trace reduction from active cooling: {:.2f} C".format(
        float(np.max(runs["bare chip"]) - np.max(runs["with TECs"]))))


if __name__ == "__main__":
    main()
