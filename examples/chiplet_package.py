#!/usr/bin/env python
"""Cool a 2.5D chiplet package: CPU + accelerator on one interposer.

Shows the chiplet generalization end to end:

* a two-chiplet layout — a hot accelerator next to a cooler CPU on a
  shared silicon interposer under one spreader/sink;
* the interposer's lateral coupling (the accelerator heats the CPU);
* the independent reference assembly agreeing to micro-Kelvins;
* GreedyDeploy placing TECs per chiplet, then per-chiplet supply
  currents beating the shared pin.

Run:  python examples/chiplet_package.py
"""

import numpy as np

from repro.core.multipin import chiplet_groups, optimize_pin_groups
from repro.core.problem import CoolingSystemProblem
from repro.power.maps import render_ascii_heatmap
from repro.thermal.chiplet import (
    ChipletLayout,
    ChipletSpec,
    InterposerSpec,
    grown_default_stack,
)
from repro.thermal.geometry import TileGrid
from repro.thermal.reference import ReferenceChipletModel


def _concentrated(grid, total_w, rows, cols, factor=3.0):
    """A uniform map with a hot rectangular region, renormalized."""
    power = np.full(grid.num_tiles, 1.0)
    board = power.reshape(grid.rows, grid.cols)
    board[rows, cols] *= factor
    return tuple(power * (total_w / power.sum()))


def build_layout():
    """A 4 mm CPU and a 4 mm accelerator, 1 mm apart, on an interposer."""
    # The CPU's heat piles up in its core cluster, the accelerator's
    # in its middle compute rows — each chiplet has its own hot spot.
    cpu = ChipletSpec(
        "cpu", TileGrid(8, 8),
        power_map=_concentrated(TileGrid(8, 8), 18.0,
                                slice(2, 5), slice(1, 4), factor=4.0),
    )
    accelerator = ChipletSpec(
        "accelerator", TileGrid(8, 8),
        power_map=_concentrated(TileGrid(8, 8), 22.0,
                                slice(3, 5), slice(0, 8)),
        col_offset=10,
    )
    width, height = 18 * 0.5e-3, 8 * 0.5e-3
    return ChipletLayout(
        chiplets=(cpu, accelerator),
        stack=grown_default_stack(width, height),
        interposer=InterposerSpec(board_resistance=4.0),
    )


def main():
    layout = build_layout()
    problem = CoolingSystemProblem.from_chiplet_layout(
        layout, max_temperature_c=85.0, name="cpu+accelerator"
    )

    bare = problem.model(()).solve(0.0)
    grid = layout.composite_grid()
    print("package: {} chiplets, {:.1f} W, {}x{} lattice".format(
        layout.num_chiplets, layout.total_power_w, grid.rows, grid.cols))
    for index, spec in enumerate(layout.chiplets):
        tiles = list(layout.chiplet_tiles(index))
        print("  {:<12} {:5.1f} W  bare peak {:.1f} C".format(
            spec.name, spec.total_power_w, bare.silicon_c[tiles].max()))
    print(render_ascii_heatmap(grid.to_grid(bare.silicon_c)))

    # The independent reference assembly shares no builder code.
    reference = ReferenceChipletModel(layout)
    delta = abs(bare.peak_silicon_c - reference.peak_tile_temperature_c())
    print("reference cross-check: |delta peak| = {:.2e} K".format(delta))

    result = problem.deploy()
    if not result.feasible:
        print("\ninfeasible at {:.0f} C — retrying at a relaxed limit".format(
            problem.max_temperature_c))
        result = problem.with_limit(bare.peak_silicon_c - 2.0).deploy()
    print("\ndeployment: {} TECs at {:.2f} A shared, peak {:.1f} -> {:.1f} C".format(
        result.num_tecs, result.current, result.no_tec_peak_c, result.peak_c))
    for name, tiles in result.tiles_by_chiplet().items():
        print("  {:<12} {} TECs".format(name, len(tiles)))

    # One supply pin per chiplet: the asymmetric package wants an
    # asymmetric drive.
    pins = optimize_pin_groups(
        result.model,
        groups=chiplet_groups(result.model),
        shared_start=result.current,
    )
    currents = ", ".join(
        "{:.2f} A".format(current) for current in pins.group_currents
    )
    print("\nper-chiplet currents [{}]: peak {:.2f} C ({:+.2f} C vs shared)".format(
        currents, pins.peak_c, pins.peak_c - pins.shared_peak_c))


if __name__ == "__main__":
    main()
