#!/usr/bin/env python
"""Explore the TEC device design space for the Alpha cooling system.

Related work ([12], [13] in the paper) optimizes the *physical*
parameters of a single TEC; this example shows how the system-level
framework evaluates device variants in their real context: for a grid
of (Seebeck, resistance) device variants, re-run the current
optimization on the Alpha deployment and report the achievable peak,
the optimal current, the TEC power and the runaway margin.

Run:  python examples/design_space_exploration.py
"""

from repro import greedy_deploy, minimize_peak_temperature
from repro.experiments.benchmarks import load_benchmark
from repro.utils.tables import Column, Table


def main():
    base_problem = load_benchmark("alpha")
    base_result = greedy_deploy(base_problem)
    tiles = base_result.tec_tiles
    base_device = base_problem.device
    print("fixed deployment: {} tiles (from the default device's greedy run)\n".format(
        len(tiles)))

    table = Table([
        Column("alpha (V/K)", ".1e"),
        Column("r (mohm)", ".2f"),
        Column("I_opt (A)", ".2f"),
        Column("peak (C)", ".2f"),
        Column("P_TEC (W)", ".2f"),
        Column("lambda_m (A)", ".0f"),
        Column("meets 85C", align="left"),
    ])
    best = None
    for seebeck_factor in (0.6, 0.8, 1.0, 1.25, 1.5):
        for resistance_factor in (0.6, 1.0, 1.6):
            device = base_device.scaled(
                seebeck=base_device.seebeck * seebeck_factor,
                electrical_resistance=(
                    base_device.electrical_resistance * resistance_factor
                ),
            )
            problem = load_benchmark("alpha", device=device)
            model = problem.model(tiles)
            optimum = minimize_peak_temperature(model)
            state = model.solve(optimum.current)
            p_tec = state.tec_input_power_w()
            row = (
                device.seebeck,
                device.electrical_resistance * 1e3,
                optimum.current,
                optimum.peak_c,
                p_tec,
                optimum.lambda_m,
                "yes" if optimum.peak_c <= 85.0 else "no",
            )
            table.add_row(row)
            if best is None or optimum.peak_c < best[1]:
                best = (device, optimum.peak_c, optimum.current)
    print(table.render())
    device, peak, current = best
    print("\nbest variant: alpha={:.1e} V/K, r={:.2f} mohm "
          "-> peak {:.2f} C at {:.2f} A".format(
              device.seebeck, device.electrical_resistance * 1e3, peak, current))
    print("\n(note the trend: stronger Seebeck pumps deeper; higher "
          "resistance raises P_TEC and erodes the gain — the same "
          "trade-off the paper's Iopt/P_TEC columns reflect)")


if __name__ == "__main__":
    main()
