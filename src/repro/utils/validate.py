"""Argument-checking helpers.

Every public entry point of the library validates its inputs eagerly
so that configuration mistakes (a negative conductance, a mis-shaped
power vector) surface at the call site rather than as a cryptic linear
algebra failure three layers down.
"""

from __future__ import annotations

import numpy as np


def check_positive(value, name):
    """Require ``value`` to be a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError("{} must be a positive finite number, got {!r}".format(name, value))
    return value


def check_nonnegative(value, name):
    """Require ``value`` to be a finite scalar >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(
            "{} must be a non-negative finite number, got {!r}".format(name, value)
        )
    return value


def check_in_range(value, name, low, high, *, inclusive=(True, True)):
    """Require ``low (<=|<) value (<=|<) high``; return the float value."""
    value = float(value)
    lo_ok = value >= low if inclusive[0] else value > low
    hi_ok = value <= high if inclusive[1] else value < high
    if not (np.isfinite(value) and lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValueError(
            "{} must lie in {}{}, {}{}, got {!r}".format(name, lo_b, low, high, hi_b, value)
        )
    return value


def check_finite(array, name):
    """Require every element of ``array`` to be finite; return an ndarray."""
    arr = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError("{} contains non-finite entries".format(name))
    return arr


def check_shape(array, shape, name):
    """Require ``array`` to have exactly ``shape``; return an ndarray.

    ``shape`` entries set to ``None`` match any size along that axis.
    """
    arr = np.asarray(array)
    if arr.ndim != len(shape):
        raise ValueError(
            "{} must have {} dimensions, got {}".format(name, len(shape), arr.ndim)
        )
    for axis, (actual, expected) in enumerate(zip(arr.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                "{} has shape {}, expected {} along axis {}".format(
                    name, arr.shape, expected, axis
                )
            )
    return arr


def check_index(value, name, size):
    """Require ``value`` to be an integer index valid for a size-``size`` axis."""
    index = int(value)
    if index != value:
        raise ValueError("{} must be an integer, got {!r}".format(name, value))
    if not 0 <= index < size:
        raise IndexError(
            "{} out of range: {} not in [0, {})".format(name, index, size)
        )
    return index
