"""Plain-text table rendering for experiment reports.

The experiment harness prints paper-style tables (Table I of the paper
in particular).  This module provides a small, dependency-free table
formatter: fixed columns, per-column alignment and formatting, an
optional trailing average row, and markdown output for EXPERIMENTS.md.
"""

from __future__ import annotations


class Column:
    """One column of a :class:`Table`.

    Parameters
    ----------
    title:
        Header text.
    fmt:
        ``format()`` spec applied to each cell value (e.g. ``".2f"``).
        Non-numeric cells are rendered with ``str()``.
    align:
        ``"left"`` or ``"right"``.
    """

    def __init__(self, title, fmt="", align="right"):
        if align not in ("left", "right"):
            raise ValueError("align must be 'left' or 'right', got {!r}".format(align))
        self.title = title
        self.fmt = fmt
        self.align = align

    def render(self, value):
        """Render one cell value to text."""
        if value is None:
            return "-"
        if self.fmt:
            try:
                return format(value, self.fmt)
            except (TypeError, ValueError):
                return str(value)
        return str(value)


class Table:
    """A fixed-schema text table.

    >>> table = Table([Column("name", align="left"), Column("x", ".1f")])
    >>> table.add_row(["a", 1.25])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    name |   x
    -----+----
    a    | 1.2
    """

    def __init__(self, columns):
        self.columns = [
            col if isinstance(col, Column) else Column(str(col)) for col in columns
        ]
        self.rows = []

    def add_row(self, values):
        """Append one row; must have exactly one value per column."""
        values = list(values)
        if len(values) != len(self.columns):
            raise ValueError(
                "row has {} cells, table has {} columns".format(
                    len(values), len(self.columns)
                )
            )
        self.rows.append(values)

    def _rendered(self):
        header = [col.title for col in self.columns]
        body = [
            [col.render(value) for col, value in zip(self.columns, row)]
            for row in self.rows
        ]
        widths = [
            max(len(header[j]), *(len(row[j]) for row in body)) if body else len(header[j])
            for j in range(len(self.columns))
        ]
        return header, body, widths

    def render(self):
        """Render the table as aligned plain text."""
        header, body, widths = self._rendered()
        lines = [self._render_line(header, widths)]
        lines.append("-+-".join("-" * width for width in widths))
        for row in body:
            lines.append(self._render_line(row, widths))
        return "\n".join(lines)

    def render_markdown(self):
        """Render the table as GitHub-flavoured markdown."""
        header, body, _ = self._rendered()
        lines = ["| " + " | ".join(header) + " |"]
        separators = [
            "---:" if col.align == "right" else ":---" for col in self.columns
        ]
        lines.append("| " + " | ".join(separators) + " |")
        for row in body:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def _render_line(self, cells, widths):
        rendered = []
        for cell, width, col in zip(cells, widths, self.columns):
            if col.align == "left":
                rendered.append(cell.ljust(width))
            else:
                rendered.append(cell.rjust(width))
        return " | ".join(rendered).rstrip()
