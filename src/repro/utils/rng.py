"""Deterministic random-number-generator plumbing.

All stochastic components of the library (hypothetical-chip generation,
random Stieltjes matrices for the Conjecture 1 campaign, synthetic
workload traces) accept a ``seed`` argument and normalize it through
:func:`ensure_rng`.  Passing the same seed always reproduces the same
benchmark instance, which is how the HC01..HC10 rows of Table I stay
stable across runs.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed_or_rng=None):
    """Return a ``numpy.random.Generator`` for ``seed_or_rng``.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh nondeterministic generator), an integer seed,
        a ``numpy.random.SeedSequence``, or an existing ``Generator``
        (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng, count):
    """Derive ``count`` independent child generators deterministically.

    Used when one seed must drive several independent random streams
    (e.g. one per hypothetical chip) without cross-contamination: adding
    a draw to one stream must not perturb the others.
    """
    if count < 0:
        raise ValueError("count must be >= 0, got {}".format(count))
    if isinstance(seed_or_rng, np.random.Generator):
        seeds = seed_or_rng.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed_or_rng)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
