"""General-purpose helpers shared by every subsystem.

The modules in this package deliberately contain no thermal or
electrical physics.  They provide:

``units``
    Temperature conversions and the unit conventions used throughout
    the library (Kelvin internally, Celsius at reporting boundaries).
``validate``
    Argument-checking helpers that raise uniform, informative errors.
``rng``
    Deterministic random-number-generator plumbing.  Every stochastic
    component in the library accepts either a seed or a
    ``numpy.random.Generator`` and routes it through :func:`ensure_rng`.
``tables``
    Plain-text table rendering used by the experiment harness to print
    paper-style tables.
"""

from repro.utils.rng import ensure_rng
from repro.utils.tables import Table
from repro.utils.units import (
    CELSIUS_OFFSET,
    celsius_to_kelvin,
    kelvin_to_celsius,
)
from repro.utils.validate import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_shape,
)

__all__ = [
    "CELSIUS_OFFSET",
    "Table",
    "celsius_to_kelvin",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_shape",
    "ensure_rng",
    "kelvin_to_celsius",
]
