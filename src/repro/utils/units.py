"""Unit conventions and temperature conversions.

The compact thermal model treats temperature as a nodal potential
measured against a hypothetical ground at absolute zero (Section IV.A
of the paper).  All internal computation therefore happens in Kelvin.
User-facing inputs and reports (ambient temperature, thermal limits,
peak temperatures) use Celsius, matching the paper's tables.

Other unit conventions used throughout the library:

===================  =========================
Quantity             Unit
===================  =========================
length               metre (m)
power                watt (W)
power density        W / m^2 (W / cm^2 only in reports)
thermal conductance  W / K
thermal conductivity W / (m K)
electrical current   ampere (A)
Seebeck coefficient  V / K
resistance           ohm
===================  =========================
"""

from __future__ import annotations

CELSIUS_OFFSET = 273.15
"""Offset between the Celsius and Kelvin scales."""

ABSOLUTE_ZERO_CELSIUS = -CELSIUS_OFFSET
"""Absolute zero expressed in Celsius."""

CM2_PER_M2 = 1.0e4
"""Square centimetres per square metre (for power-density reports)."""


def celsius_to_kelvin(temperature_c):
    """Convert a temperature (scalar or array) from Celsius to Kelvin.

    Raises
    ------
    ValueError
        If the temperature is below absolute zero.
    """
    kelvin = _as_kelvin(temperature_c)
    return kelvin


def kelvin_to_celsius(temperature_k):
    """Convert a temperature (scalar or array) from Kelvin to Celsius.

    Raises
    ------
    ValueError
        If the temperature is negative (below absolute zero).
    """
    import numpy as np

    arr = np.asarray(temperature_k, dtype=float)
    if np.any(arr < 0.0):
        raise ValueError(
            "temperature below absolute zero: {!r} K".format(temperature_k)
        )
    result = arr - CELSIUS_OFFSET
    if np.ndim(temperature_k) == 0:
        return float(result)
    return result


def watts_per_m2_to_w_per_cm2(density):
    """Convert a power density from W/m^2 to the W/cm^2 used in reports."""
    return density / CM2_PER_M2


def w_per_cm2_to_watts_per_m2(density):
    """Convert a power density from W/cm^2 to the internal W/m^2."""
    return density * CM2_PER_M2


def _as_kelvin(temperature_c):
    import numpy as np

    arr = np.asarray(temperature_c, dtype=float)
    if np.any(arr < ABSOLUTE_ZERO_CELSIUS):
        raise ValueError(
            "temperature below absolute zero: {!r} C".format(temperature_c)
        )
    result = arr + CELSIUS_OFFSET
    if np.ndim(temperature_c) == 0:
        return float(result)
    return result
