"""TEC device physics — Equations (1)-(3) of the paper.

All temperatures are absolute (Kelvin): the Peltier terms
``alpha i theta`` are proportional to absolute temperature, which is
why the compact model grounds the network at absolute zero.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_nonnegative, check_positive


def cold_side_flux(device, current, theta_c_k, theta_h_k):
    """Heat absorbed at the cold side, Equation (1).

    ``q_c = alpha i theta_c - r i^2 / 2 - kappa (theta_h - theta_c)``

    Positive means the device is pumping heat out of the cold side
    (cooling); negative means the cold side is being heated (excess
    Joule heat and back-conduction).
    """
    theta_c_k = check_nonnegative(theta_c_k, "theta_c_k")
    theta_h_k = check_nonnegative(theta_h_k, "theta_h_k")
    current = float(current)
    return (
        device.seebeck * current * theta_c_k
        - 0.5 * device.electrical_resistance * current**2
        - device.thermal_conductance * (theta_h_k - theta_c_k)
    )


def hot_side_flux(device, current, theta_c_k, theta_h_k):
    """Heat released at the hot side, Equation (2).

    ``q_h = alpha i theta_h + r i^2 / 2 - kappa (theta_h - theta_c)``
    """
    theta_c_k = check_nonnegative(theta_c_k, "theta_c_k")
    theta_h_k = check_nonnegative(theta_h_k, "theta_h_k")
    current = float(current)
    return (
        device.seebeck * current * theta_h_k
        + 0.5 * device.electrical_resistance * current**2
        - device.thermal_conductance * (theta_h_k - theta_c_k)
    )


def input_power(device, current, theta_c_k, theta_h_k):
    """Electrical input power, Equation (3).

    ``p_tec = q_h - q_c = r i^2 + alpha i (theta_h - theta_c)``

    In steady state all of it becomes heat inside the package before
    reaching the ambient — the root cause of the over-deployment
    penalty the greedy algorithm exploits.
    """
    current = float(current)
    theta_c_k = check_nonnegative(theta_c_k, "theta_c_k")
    theta_h_k = check_nonnegative(theta_h_k, "theta_h_k")
    return device.electrical_resistance * current**2 + device.seebeck * current * (
        theta_h_k - theta_c_k
    )


def coefficient_of_performance(device, current, theta_c_k, theta_h_k):
    """COP = q_c / p_tec.

    Undefined (returns ``numpy.nan``) at zero current; negative once
    the device heats its own cold side.  The runaway current is the
    system-level analogue of the zero-COP condition (Section V.C.1).
    """
    power = input_power(device, current, theta_c_k, theta_h_k)
    if power == 0.0:
        return float("nan")
    return cold_side_flux(device, current, theta_c_k, theta_h_k) / power


def optimal_cooling_current(device, theta_c_k):
    """Current maximizing ``q_c`` at fixed face temperatures.

    From ``d q_c / d i = alpha theta_c - r i = 0``:
    ``i* = alpha theta_c / r``.  The shared-current optimum of the full
    package lies well below this single-device value because the
    package also pays the global heating cost of ``p_tec``.
    """
    theta_c_k = check_positive(theta_c_k, "theta_c_k")
    return device.seebeck * theta_c_k / device.electrical_resistance


def max_temperature_differential(device, theta_h_k):
    """Classic ``Delta T_max`` at zero heat load.

    Setting ``q_c = 0`` at the optimal current gives
    ``Delta T_max = Z theta_c^2 / 2`` with ``Z = alpha^2 / (r kappa)``;
    expressed in terms of the hot-side temperature,
    ``theta_c = (sqrt(1 + 2 Z theta_h) - 1) / Z`` and
    ``Delta T_max = theta_h - theta_c`` (CRC Handbook of
    Thermoelectrics).
    """
    theta_h_k = check_positive(theta_h_k, "theta_h_k")
    z = device.figure_of_merit
    theta_c = (np.sqrt(1.0 + 2.0 * z * theta_h_k) - 1.0) / z
    return theta_h_k - theta_c


def zero_cop_current(device, theta_c_k, theta_h_k):
    """Smallest positive current at which ``q_c`` falls back to zero.

    For ``theta_h > theta_c`` the cold-side flux is positive only on an
    interval of currents; this returns the upper end — the
    *single-device* zero-COP condition that Section V.C.1 relates to
    the system-level runaway.  Returns ``numpy.nan`` when the device
    cannot pump at all between these temperatures (``q_c < 0``
    everywhere).
    """
    theta_c_k = check_positive(theta_c_k, "theta_c_k")
    theta_h_k = check_nonnegative(theta_h_k, "theta_h_k")
    # q_c(i) = -r/2 i^2 + alpha theta_c i - kappa (theta_h - theta_c) = 0
    a = -0.5 * device.electrical_resistance
    b = device.seebeck * theta_c_k
    c = -device.thermal_conductance * (theta_h_k - theta_c_k)
    discriminant = b * b - 4.0 * a * c
    if discriminant < 0.0:
        return float("nan")
    # Larger root of the downward parabola.
    return (-b - np.sqrt(discriminant)) / (2.0 * a)
