"""Compact-model stamp of a TEC device (Section IV.B, Figure 4).

Deploying a TEC under a tile substitutes the tile's TIM node with the
device's two-node thermal model:

* a **cold** node facing the silicon tile through ``g_c``;
* a **hot** node facing the spreader tile through ``g_h``;
* the film conduction ``kappa`` between them;
* Joule sources ``r i^2 / 2`` on both nodes (current-dependent — they
  live in the ``joule`` coefficient vector);
* the Peltier transport as the ``D``-diagonal entries ``-alpha`` (cold)
  and ``+alpha`` (hot), so that ``G - i D`` carries the ``+alpha i``
  conductance-to-ground at the cold node and the ``-alpha i`` negative
  conductance at the hot node, exactly as in Figure 4.

The stamp does **not** decide where TECs go — that is the deployment
problem (``repro.core.deploy``); it only writes one device into a
:class:`~repro.thermal.network.ThermalNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermal.network import NodeRole


@dataclass(frozen=True)
class TecStamp:
    """Bookkeeping for one stamped TEC device.

    Attributes
    ----------
    tile:
        Flat tile index the device covers.
    hot_node, cold_node:
        Network node indices of the device's two sides.
    device:
        The :class:`~repro.tec.materials.TecDeviceParameters` stamped.
    """

    tile: int
    hot_node: int
    cold_node: int
    device: object


def stamp_tec(
    network,
    device,
    *,
    silicon_node,
    spreader_node,
    tile,
    label=None,
    cold_series_resistance=0.0,
    hot_series_resistance=0.0,
    cold_series_base=None,
    lattice_tile=None,
):
    """Write one TEC device into ``network``.

    Parameters
    ----------
    network:
        The :class:`~repro.thermal.network.ThermalNetwork` under
        construction.
    device:
        :class:`~repro.tec.materials.TecDeviceParameters`.
    silicon_node:
        Index of the silicon tile node the cold face contacts.
    spreader_node:
        Index of the spreader node the hot face contacts.
    tile:
        Flat tile index (recorded in node metadata and the stamp).
    label:
        Optional name prefix; defaults to ``tec[<tile>]``.
    cold_series_resistance, hot_series_resistance:
        Extra series resistances (K/W) between the device contacts and
        the adjacent layer nodes — the die-exit and spreader-entry
        resistances the TIM path the device replaces would also have
        carried.  The package model supplies these so that covered and
        uncovered tiles see consistent layer lumping.
    cold_series_base:
        The *unscaled* cold series resistance (K/W) — the die-exit
        resistance before any per-tile die conductivity scale is
        applied.  When the network records die-scale tags (see
        :meth:`~repro.thermal.assembly.NetworkBlueprint.tag_die_scale`),
        this lets blueprint replay recompute ``g_c`` under a different
        scale field.
    lattice_tile:
        Tile index recorded in the node metadata for the multigrid
        lattice placement, when it differs from ``tile``.  Composite
        chiplet models deploy TECs by **global** flat index (that is
        ``tile``, and it stays the stamp's identity) but place nodes on
        the shared bounding lattice; single-die models leave this
        ``None`` (the two indices coincide).

    Returns
    -------
    TecStamp
    """
    prefix = label if label is not None else "tec[{}]".format(tile)
    meta_tile = int(tile) if lattice_tile is None else int(lattice_tile)
    cold = network.add_node(
        "{}.cold".format(prefix), NodeRole.TEC_COLD, tile=meta_tile
    )
    hot = network.add_node(
        "{}.hot".format(prefix), NodeRole.TEC_HOT, tile=meta_tile
    )
    if cold_series_resistance < 0.0 or hot_series_resistance < 0.0:
        raise ValueError("series resistances must be >= 0")
    g_cold = 1.0 / (
        1.0 / device.cold_contact_conductance + cold_series_resistance
    )
    g_hot = 1.0 / (
        1.0 / device.hot_contact_conductance + hot_series_resistance
    )
    network.add_conductance(silicon_node, cold, g_cold)
    tag = getattr(network, "tag_die_scale", None)
    if tag is not None and cold_series_base is not None:
        tag(
            "stamp_cold",
            (int(tile),),
            (device.cold_contact_conductance, cold_series_base),
        )
    network.add_conductance(hot, spreader_node, g_hot)
    network.add_conductance(cold, hot, device.thermal_conductance)
    half_r = 0.5 * device.electrical_resistance
    network.add_joule(cold, half_r)
    network.add_joule(hot, half_r)
    network.set_peltier(hot, +device.seebeck)
    network.set_peltier(cold, -device.seebeck)
    return TecStamp(tile=int(tile), hot_node=hot, cold_node=cold, device=device)
