"""Arrays of TEC devices (Figure 1(b, c)).

The paper's cooling system wires every deployed device **electrically
in series** (one shared supply current through one extra package pin,
Section III.B) and **thermally in parallel** (each device pumps its own
tile).  :class:`TecArray` aggregates device-level quantities over such
an ensemble; the compact model handles the thermal coupling, so this
class is mostly an accounting convenience for reports and the
``P_TEC`` column of Table I.
"""

from __future__ import annotations

import numpy as np

from repro.tec.device import cold_side_flux, hot_side_flux, input_power


class TecArray:
    """A set of identical TEC devices sharing one supply current.

    Parameters
    ----------
    device:
        :class:`~repro.tec.materials.TecDeviceParameters` common to all
        devices.
    count:
        Number of devices (>= 1).
    """

    def __init__(self, device, count):
        count = int(count)
        if count < 1:
            raise ValueError("count must be >= 1, got {}".format(count))
        self.device = device
        self.count = count

    @property
    def total_footprint(self):
        """Total silicon area covered, m^2."""
        return self.count * self.device.footprint

    @property
    def series_resistance(self):
        """Electrical resistance of the series string (ohm)."""
        return self.count * self.device.electrical_resistance

    def supply_voltage(self, current, delta_t_k=0.0):
        """Series string voltage ``count * (r i + alpha delta_t)``.

        ``delta_t_k`` may be a scalar (common differential) or a
        per-device array.
        """
        current = float(current)
        delta = np.asarray(delta_t_k, dtype=float)
        if delta.ndim == 0:
            delta = np.full(self.count, float(delta))
        if delta.shape != (self.count,):
            raise ValueError(
                "delta_t_k must be scalar or length {}, got shape {}".format(
                    self.count, delta.shape
                )
            )
        per_device = self.device.electrical_resistance * current + self.device.seebeck * delta
        return float(np.sum(per_device))

    def total_input_power(self, current, theta_c_k, theta_h_k):
        """Total electrical power of the array (the Table I ``P_TEC``).

        ``theta_c_k`` / ``theta_h_k`` are scalars or per-device arrays
        of face temperatures in Kelvin.
        """
        theta_c = self._per_device(theta_c_k, "theta_c_k")
        theta_h = self._per_device(theta_h_k, "theta_h_k")
        return float(
            sum(
                input_power(self.device, current, tc, th)
                for tc, th in zip(theta_c, theta_h)
            )
        )

    def total_cold_side_flux(self, current, theta_c_k, theta_h_k):
        """Total heat pumped out of the silicon side (W)."""
        theta_c = self._per_device(theta_c_k, "theta_c_k")
        theta_h = self._per_device(theta_h_k, "theta_h_k")
        return float(
            sum(
                cold_side_flux(self.device, current, tc, th)
                for tc, th in zip(theta_c, theta_h)
            )
        )

    def total_hot_side_flux(self, current, theta_c_k, theta_h_k):
        """Total heat released into the spreader side (W)."""
        theta_c = self._per_device(theta_c_k, "theta_c_k")
        theta_h = self._per_device(theta_h_k, "theta_h_k")
        return float(
            sum(
                hot_side_flux(self.device, current, tc, th)
                for tc, th in zip(theta_c, theta_h)
            )
        )

    def _per_device(self, values, name):
        arr = np.asarray(values, dtype=float)
        if arr.ndim == 0:
            return np.full(self.count, float(arr))
        if arr.shape != (self.count,):
            raise ValueError(
                "{} must be scalar or length {}, got shape {}".format(
                    name, self.count, arr.shape
                )
            )
        return arr
