"""Coefficient-of-performance analysis, device and system level.

Section V.C.1 interprets the runaway current physically: "lambda_m
represents the input current level which causes the active cooling
system to have zero heat pumping capability since Peltier cooling is
offset by ohmic heating and heat conduction.  In the thermoelectric
literature, this occurs when the coefficient of performance of the
thermoelectric cooler becomes zero."

This module quantifies both views:

* device level — COP(i) curves at fixed face temperatures
  (:func:`device_cop_curve`), peak-COP current, zero-COP current;
* system level — the *cooling efficiency* of a deployed package:
  degrees of hot-spot relief per watt of TEC input power as a function
  of the shared current (:func:`system_efficiency_curve`), and the
  pumping capability ``q_c^total(i)`` whose sign change mirrors the
  runaway analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tec.device import coefficient_of_performance, cold_side_flux


@dataclass(frozen=True)
class DeviceCopCurve:
    """COP(i) of one device at fixed face temperatures."""

    currents: np.ndarray
    cop: np.ndarray
    q_c: np.ndarray
    peak_cop_current: float
    zero_cop_current: float


def device_cop_curve(device, theta_c_k, theta_h_k, *, currents=None):
    """Sweep device COP and cold-side flux over current.

    ``currents`` defaults to a grid reaching past the zero-COP point.
    The returned ``zero_cop_current`` is the largest sampled current
    with ``q_c > 0`` (NaN if the device never pumps at these faces).
    """
    from repro.tec.device import optimal_cooling_current

    if currents is None:
        i_star = optimal_cooling_current(device, theta_c_k)
        currents = np.linspace(0.0, 2.5 * i_star, 126)
    currents = np.asarray(currents, dtype=float)
    q_c = np.array(
        [cold_side_flux(device, i, theta_c_k, theta_h_k) for i in currents]
    )
    cop = np.array(
        [
            coefficient_of_performance(device, i, theta_c_k, theta_h_k)
            for i in currents
        ]
    )
    pumping = np.nonzero(q_c > 0.0)[0]
    if pumping.size:
        zero_cop = float(currents[pumping[-1]])
        finite = np.where(np.isfinite(cop), cop, -np.inf)
        peak_cop = float(currents[int(np.argmax(finite))])
    else:
        zero_cop = float("nan")
        peak_cop = float("nan")
    return DeviceCopCurve(
        currents=currents,
        cop=cop,
        q_c=q_c,
        peak_cop_current=peak_cop,
        zero_cop_current=zero_cop,
    )


@dataclass(frozen=True)
class SystemEfficiencyCurve:
    """Cooling efficiency of a deployed package vs shared current.

    Attributes
    ----------
    currents:
        Sampled shared currents (A).
    peak_c:
        Peak silicon temperature at each current.
    relief_c:
        Hot-spot relief vs zero current (positive = cooler).
    p_tec_w:
        TEC input power at each current.
    efficiency_c_per_w:
        ``relief / p_tec`` — degrees of peak relief bought per watt
        (NaN where ``p_tec <= 0``).
    total_pumping_w:
        Sum of the devices' cold-side fluxes (Equation 1) — the
        system's heat-pumping capability, which shrinks toward zero as
        the current grows (the zero-COP reading of Section V.C.1).
    """

    currents: np.ndarray
    peak_c: np.ndarray
    relief_c: np.ndarray
    p_tec_w: np.ndarray
    efficiency_c_per_w: np.ndarray
    total_pumping_w: np.ndarray

    def best_efficiency_current(self):
        """Current maximizing degrees-per-watt (NaN-safe argmax)."""
        values = np.where(
            np.isfinite(self.efficiency_c_per_w), self.efficiency_c_per_w, -np.inf
        )
        return float(self.currents[int(np.argmax(values))])


def system_efficiency_curve(model, *, currents=None, max_fraction=0.6):
    """Sweep a deployed model's cooling efficiency over the current.

    ``currents`` defaults to a grid over ``[0, max_fraction *
    lambda_m]``.  At each point the steady state is solved and the
    per-device fluxes evaluated at the solved face temperatures.
    """
    if not model.stamps:
        raise ValueError("model has no TECs; efficiency is undefined")
    if currents is None:
        lambda_m = model.runaway_current().value
        currents = np.linspace(0.0, max_fraction * lambda_m, 41)
    currents = np.asarray(currents, dtype=float)

    base_peak = model.solve(0.0).peak_silicon_c
    device = model.device
    peaks = np.empty(currents.shape)
    powers = np.empty(currents.shape)
    pumping = np.empty(currents.shape)
    for index, current in enumerate(currents):
        state = model.solve(float(current))
        peaks[index] = state.peak_silicon_c
        powers[index] = state.tec_input_power_w()
        cold, hot = state.tec_face_temperatures_k()
        pumping[index] = float(
            sum(
                cold_side_flux(device, float(current), tc, th)
                for tc, th in zip(cold, hot)
            )
        )
    relief = base_peak - peaks
    with np.errstate(divide="ignore", invalid="ignore"):
        efficiency = np.where(powers > 1e-12, relief / powers, np.nan)
    return SystemEfficiencyCurve(
        currents=currents,
        peak_c=peaks,
        relief_c=relief,
        p_tec_w=powers,
        efficiency_c_per_w=efficiency,
        total_pumping_w=pumping,
    )
