"""Thin-film thermoelectric cooler (TEC) devices (Section III).

A TEC device is a pair of dissimilar semiconductor strips; driving a
current through them pumps heat from the cold face to the hot face
(Peltier effect) while dissipating Joule heat and conducting some heat
back.  The governing equations (paper Equations 1-3) are::

    q_c = alpha i theta_c - r i^2 / 2 - kappa (theta_h - theta_c)
    q_h = alpha i theta_h + r i^2 / 2 - kappa (theta_h - theta_c)
    p_tec = q_h - q_c = r i^2 + alpha i (theta_h - theta_c)

This package provides:

``materials`` / :class:`TecDeviceParameters`
    Parameter records for the super-lattice thin-film devices of
    Chowdhury et al. (reference [1] of the paper).
``device``
    The device physics — heat fluxes, input power, COP, classic
    figure-of-merit quantities.
``stamp``
    The compact-thermal-model stamp (Figure 4): how a device replaces a
    TIM node with a hot/cold node pair contributing to ``G``, ``D`` and
    the power vector.
``array``
    Devices connected electrically in series and thermally in parallel
    (Figure 1(b, c)).
"""

from repro.tec.array import TecArray
from repro.tec.cop import (
    device_cop_curve,
    system_efficiency_curve,
)
from repro.tec.device import (
    cold_side_flux,
    coefficient_of_performance,
    hot_side_flux,
    input_power,
    max_temperature_differential,
    zero_cop_current,
)
from repro.tec.materials import (
    TecDeviceParameters,
    chowdhury_thin_film_tec,
)
from repro.tec.stamp import TecStamp, stamp_tec

__all__ = [
    "TecArray",
    "TecDeviceParameters",
    "TecStamp",
    "chowdhury_thin_film_tec",
    "coefficient_of_performance",
    "cold_side_flux",
    "device_cop_curve",
    "hot_side_flux",
    "input_power",
    "max_temperature_differential",
    "stamp_tec",
    "system_efficiency_curve",
    "zero_cop_current",
]
