"""Thin-film TEC device parameters.

The paper takes "the physical parameters (Seebeck coefficient,
electrical resistivity and thermal conductivity) of the thin-film TEC
device provided by Chowdhury et al. [1]" — the Bi2Te3/Sb2Te3
super-lattice coolers demonstrated by Intel/Nextreme (Nature
Nanotechnology 2009).  The exact device-level values are not printed in
either paper, so this module records a parameter set that is (a)
physically consistent with an 8-um super-lattice film under a
0.5 mm x 0.5 mm footprint and (b) calibrated so that the system-level
optimization reproduces the paper's operating regime: optimal shared
currents of 5-10 A, total TEC power of order 1-3 W for ~16 devices, and
hot-spot cooling swings of several degrees (DESIGN.md, substitutions
table).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils import check_positive


@dataclass(frozen=True)
class TecDeviceParameters:
    """Lumped parameters of one thin-film TEC device.

    These are the quantities of the paper's Equations (1)-(3) and
    Figure 4:

    Attributes
    ----------
    seebeck:
        Device Seebeck coefficient ``alpha`` (V/K) — a material
        constant of the strip pair.
    electrical_resistance:
        Device electrical resistance ``r`` (ohm).
    thermal_conductance:
        Hot-to-cold conduction ``kappa`` (W/K) of the film.
    cold_contact_conductance:
        ``g_c`` (W/K): contact between the cold face and the silicon
        tile underneath.
    hot_contact_conductance:
        ``g_h`` (W/K): contact between the hot face and the spreader
        above; the paper notes this path "ends up playing an important
        role in the thermal runaway problem".
    width, height:
        Lateral footprint in metres (0.5 mm x 0.5 mm per the 7x7-array
        estimate in Section III.A).
    max_current:
        Manufacturer current rating (A), used only for reporting; the
        optimizer's hard bound is the runaway current ``lambda_m``.
    """

    seebeck: float = 2.0e-4
    electrical_resistance: float = 2.5e-3
    thermal_conductance: float = 2.0e-2
    cold_contact_conductance: float = 0.3
    hot_contact_conductance: float = 0.3
    width: float = 0.5e-3
    height: float = 0.5e-3
    max_current: float = 25.0

    def __post_init__(self):
        check_positive(self.seebeck, "seebeck")
        check_positive(self.electrical_resistance, "electrical_resistance")
        check_positive(self.thermal_conductance, "thermal_conductance")
        check_positive(self.cold_contact_conductance, "cold_contact_conductance")
        check_positive(self.hot_contact_conductance, "hot_contact_conductance")
        check_positive(self.width, "width")
        check_positive(self.height, "height")
        check_positive(self.max_current, "max_current")

    @property
    def footprint(self):
        """Device lateral area in m^2."""
        return self.width * self.height

    @property
    def figure_of_merit(self):
        """The lumped thermoelectric figure of merit ``Z = alpha^2 / (r kappa)`` (1/K)."""
        return self.seebeck**2 / (self.electrical_resistance * self.thermal_conductance)

    def zt(self, temperature_k):
        """Dimensionless ``Z T`` at the given absolute temperature."""
        temperature_k = check_positive(temperature_k, "temperature_k")
        return self.figure_of_merit * temperature_k

    def scaled(self, **overrides):
        """Copy with selected parameters replaced (for sweeps/ablations)."""
        return replace(self, **overrides)


def chowdhury_thin_film_tec():
    """The calibrated super-lattice thin-film device (reference [1]).

    Derivation of the defaults:

    * footprint 0.5 mm x 0.5 mm (Section III.A of the paper);
    * ``kappa``: Bi2Te3/Sb2Te3 super-lattice stack (film plus headers,
      ~15 um effective at ~1.2 W/mK cross-plane) under the full
      footprint: ``1.2 * 2.5e-7 / 1.5e-5 = 2.0e-2 W/K``;
    * ``alpha = 2.0e-4 V/K``: effective device-level Seebeck of a
      super-lattice couple after contact degradation (lumped
      ``Z T ~ 0.3`` at operating temperature, at the conservative end
      of module-level behaviour of the cited coolers);
    * ``r = 2.5 mohm``: thin-film legs plus metallization, chosen with
      ``alpha`` so the shared-current optimum of the package model
      falls in the paper's 5-10 A range with ~100 mW of input power per
      device (Table I: I_opt 6.1 A, P_TEC 1.31 W over 16 devices);
    * ``g_c = g_h = 0.3 W/K``: ~8e-7 m^2 K/W specific contact
      resistance across the device footprint.
    """
    return TecDeviceParameters()
