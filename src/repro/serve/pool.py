"""Warm session pool: blueprint-keyed LRU of live problems.

The expensive part of answering a thermal request is not the solve —
it is building the problem, assembling the nodal system and
factorizing it.  On the Table I benchmarks a cold build-plus-solve
costs tens of milliseconds while a warm repeat costs microseconds, so
the serving tier keeps an LRU of :class:`PoolEntry` objects keyed by
:func:`~repro.serve.schemas.blueprint_key`: each entry owns one live
:class:`~repro.core.problem.CoolingSystemProblem` whose models (and
:class:`~repro.thermal.session.SolveSession` factorization caches)
stay warm across requests.

Concurrency contract: the pool itself is mutated only from the event
loop (single-threaded), so its bookkeeping needs no locking; the
*solves* run on worker threads, and sessions are not thread-safe, so
every entry carries an :class:`asyncio.Lock` — concurrent requests
for the same chip queue on it and share one warm session instead of
racing on its caches.  Requests for different chips hold different
locks and solve in parallel.

Eviction closes stats cleanly: an evicted entry's solver counters are
merged into the pool's ``retired`` aggregate before the entry is
dropped, so ``/stats`` totals are monotone across evictions — work is
never silently forgotten with the session that did it.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict

from repro.thermal.session import SolverStats

#: Default LRU capacity (distinct chips kept warm).
DEFAULT_MAX_ENTRIES = 8


class PoolEntry:
    """One warm chip: a live problem plus its serialization lock."""

    def __init__(self, key, problem):
        self.key = key
        self.problem = problem
        self.lock = asyncio.Lock()
        self.hits = 0
        self.created_s = time.monotonic()
        self.last_used_s = self.created_s

    def touch(self):
        self.hits += 1
        self.last_used_s = time.monotonic()

    def cache_info(self):
        """Aggregated session cache occupancy across warm models."""
        total = {}
        for model in self.problem.cached_models():
            for field, value in model.session.cache_info().items():
                total[field] = total.get(field, 0) + value
        total["models"] = len(self.problem.cached_models())
        return total

    def snapshot(self):
        """Plain-data view of the entry for ``/stats``."""
        return {
            "key": self.key,
            "name": self.problem.name,
            "hits": self.hits,
            "age_s": time.monotonic() - self.created_s,
            "idle_s": time.monotonic() - self.last_used_s,
            "solver_stats": self.problem.solver_stats.as_dict(),
            "cache_info": self.cache_info(),
            "locked": self.lock.locked(),
        }


class SessionPool:
    """Blueprint-keyed LRU of warm :class:`PoolEntry` objects.

    ``max_entries=0`` disables caching entirely — every acquire builds
    a throwaway entry (the cold baseline the serve benchmark measures
    against).  Entries whose lock is held are skipped by eviction (a
    request is solving on them), so the pool may transiently exceed
    ``max_entries`` under pathological churn; the overflow drains as
    locks release.
    """

    def __init__(self, max_entries=DEFAULT_MAX_ENTRIES):
        max_entries = int(max_entries)
        if max_entries < 0:
            raise ValueError(
                "max_entries must be >= 0, got {}".format(max_entries)
            )
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._retired_stats = SolverStats()
        self._retired_entries = 0

    def __len__(self):
        return len(self._entries)

    def acquire(self, key, factory):
        """The warm entry for ``key``, building it via ``factory()`` on miss.

        Must be called from the event loop thread.  ``factory`` builds
        the problem synchronously — problem construction is cheap (the
        nodal assembly is deferred to the first model), so running it
        inline also guarantees two concurrent misses for one key cannot
        both build.  Returns ``(entry, hit)``.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            entry.touch()
            self.hits += 1
            return entry, True
        self.misses += 1
        entry = PoolEntry(key, factory())
        if self.max_entries == 0:
            return entry, False  # caching disabled: never stored
        self._entries[key] = entry
        self._evict_over_capacity(newest=key)
        return entry, False

    def _evict_over_capacity(self, newest):
        for key in list(self._entries):
            if len(self._entries) <= self.max_entries:
                break
            if key == newest:
                continue  # never retire the entry being handed out
            entry = self._entries[key]
            if entry.lock.locked():
                continue  # in use; retry on a later acquire
            self._retire(key)

    def _retire(self, key):
        entry = self._entries.pop(key)
        self._retired_stats.merge(entry.problem.solver_stats)
        self._retired_entries += 1
        self.evictions += 1

    def evict(self, key):
        """Drop one entry (tests, admin); returns True if it existed."""
        if key in self._entries:
            self._retire(key)
            return True
        return False

    def clear(self):
        """Retire every entry (shutdown); stats stay accounted."""
        for key in list(self._entries):
            self._retire(key)

    def stats(self):
        """Plain-data pool snapshot for ``/stats``.

        ``lifetime_solver_stats`` folds retired sessions into the live
        ones, so totals are monotone across evictions.
        """
        lifetime = self._retired_stats.copy()
        for entry in self._entries.values():
            lifetime.merge(entry.problem.solver_stats)
        return {
            "max_entries": self.max_entries,
            "entries": [entry.snapshot() for entry in self._entries.values()],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "retired_entries": self._retired_entries,
            "retired_solver_stats": self._retired_stats.as_dict(),
            "lifetime_solver_stats": lifetime.as_dict(),
        }
