"""Stdlib asyncio HTTP/1.1 host for the ASGI application.

The container ships no ASGI server (uvicorn/hypercorn), so this
module provides a minimal one on ``asyncio.start_server``: enough of
HTTP/1.1 for a JSON API — request line, headers, ``Content-Length``
bodies, keep-alive with an idle timeout — and the ASGI 3 connection
scope/``receive``/``send`` contract (including the lifespan
protocol).  Chunked request bodies are answered with 501; responses
are never chunked because the app always sets ``Content-Length``.

Three entry points:

* :class:`AsgiHttpServer` — the async server object (tests drive it
  directly inside an event loop);
* :func:`run` — blocking convenience for ``repro serve``;
* :class:`ServerThread` — a context manager running the server on a
  background thread with a real TCP port, for integration tests and
  the load benchmark.
"""

from __future__ import annotations

import asyncio
import threading

#: Hard limits keeping a misbehaving client from hogging the loop.
MAX_HEADER_LINE = 16 * 1024
MAX_HEADERS = 100
KEEPALIVE_TIMEOUT_S = 10.0


class _BadRequest(Exception):
    """Malformed HTTP — the connection is answered 400 and closed."""


class AsgiHttpServer:
    """Serve one ASGI 3 application over HTTP/1.1."""

    def __init__(self, app, host="127.0.0.1", port=0, *,
                 keepalive_timeout_s=KEEPALIVE_TIMEOUT_S):
        self.app = app
        self.host = host
        self.port = port          # 0 = ephemeral; real port set by start()
        self.keepalive_timeout_s = keepalive_timeout_s
        self._server = None
        self._lifespan_task = None
        self._lifespan_queue = None
        self._lifespan_done = None
        self._connections = set()

    async def start(self):
        """Run lifespan startup and bind the listening socket."""
        await self._lifespan_event("startup")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        """Close the socket, drain connections, run lifespan shutdown."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections),
                                 return_exceptions=True)
        if self._lifespan_task is not None:
            await self._lifespan_event("shutdown")
            await self._lifespan_task
            self._lifespan_task = None

    async def serve_forever(self):
        await self._server.serve_forever()

    async def _lifespan_event(self, event):
        """Feed one event to the (single, long-lived) lifespan task.

        The app call lives from startup to shutdown, per the ASGI
        lifespan protocol; events arrive through a queue and
        completions are awaited before the server proceeds.
        """
        if self._lifespan_task is None:
            self._lifespan_queue = asyncio.Queue()
            self._lifespan_done = asyncio.Event()

            async def send(message):
                if message["type"].endswith(".complete"):
                    self._lifespan_done.set()
                return None

            async def run_app():
                try:
                    await self.app(
                        {"type": "lifespan", "asgi": {"version": "3.0"}},
                        self._lifespan_queue.get, send,
                    )
                finally:
                    self._lifespan_done.set()

            self._lifespan_task = asyncio.ensure_future(run_app())
        self._lifespan_done.clear()
        await self._lifespan_queue.put({"type": "lifespan.{}".format(event)})
        await self._lifespan_done.wait()
        if self._lifespan_task.done():
            self._lifespan_task.result()  # surface a lifespan crash

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.keepalive_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection
                if request is None:
                    break  # clean EOF between requests
                keep_alive = await self._dispatch(request, writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (_BadRequest, asyncio.IncompleteReadError, ValueError):
            self._write_error(writer, 400, "bad request")
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # server shutting down; close the socket and exit cleanly
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        if len(line) > MAX_HEADER_LINE:
            raise _BadRequest("request line too long")
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise _BadRequest("unsupported HTTP version")
        headers = []
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(raw) > MAX_HEADER_LINE or len(headers) >= MAX_HEADERS:
                raise _BadRequest("headers too large")
            name, _, value = raw.decode("latin-1").partition(":")
            headers.append((name.strip().lower(), value.strip()))
        header_map = dict(headers)
        if header_map.get("transfer-encoding", "").lower() == "chunked":
            return {"method": method, "target": target, "headers": headers,
                    "body": b"", "version": version, "unsupported": 501}
        length = int(header_map.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return {"method": method, "target": target, "headers": headers,
                "body": body, "version": version, "unsupported": None}

    async def _dispatch(self, request, writer):
        if request["unsupported"]:
            self._write_error(writer, request["unsupported"],
                              "chunked bodies not supported")
            return False
        path, _, query = request["target"].partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": request["version"].split("/", 1)[1],
            "method": request["method"].upper(),
            "scheme": "http",
            "path": path,
            "raw_path": request["target"].encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "root_path": "",
            "headers": [
                (name.encode("latin-1"), value.encode("latin-1"))
                for name, value in request["headers"]
            ],
            "client": writer.get_extra_info("peername"),
            "server": (self.host, self.port),
        }
        header_map = dict(request["headers"])
        keep_alive = header_map.get("connection", "").lower() != "close"
        if request["version"] == "HTTP/1.0":
            keep_alive = header_map.get("connection", "").lower() == "keep-alive"

        body_messages = [
            {"type": "http.request", "body": request["body"], "more_body": False}
        ]

        async def receive():
            if body_messages:
                return body_messages.pop(0)
            return {"type": "http.disconnect"}

        state = {"started": False}

        async def send(message):
            if message["type"] == "http.response.start":
                status = message["status"]
                lines = ["HTTP/1.1 {} {}".format(status, _reason(status))]
                for name, value in message.get("headers", []):
                    lines.append("{}: {}".format(
                        name.decode("latin-1"), value.decode("latin-1")
                    ))
                lines.append("connection: {}".format(
                    "keep-alive" if keep_alive else "close"
                ))
                writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
                state["started"] = True
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))

        try:
            await self.app(scope, receive, send)
        except Exception:  # noqa: BLE001 — app crashed mid-connection
            if not state["started"]:
                self._write_error(writer, 500, "internal server error")
            return False
        if not state["started"]:
            self._write_error(writer, 500, "app sent no response")
            return False
        return keep_alive

    @staticmethod
    def _write_error(writer, status, message):
        if writer.is_closing():
            return
        body = ('{"error": "%s"}' % message).encode("ascii")
        head = (
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\n"
            "content-length: {}\r\nconnection: close\r\n\r\n"
        ).format(status, _reason(status), len(body))
        writer.write(head.encode("latin-1") + body)


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}


def _reason(status):
    return _REASONS.get(status, "Status")


def run(app, host="127.0.0.1", port=8080):
    """Blocking server loop for ``repro serve`` (returns on Ctrl-C)."""

    async def main():
        server = AsgiHttpServer(app, host, port)
        await server.start()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """Run an :class:`AsgiHttpServer` on a background thread.

    ``with ServerThread(app) as srv:`` binds an ephemeral port
    (``srv.port``) and tears the loop down on exit; integration tests
    and the serve benchmark talk to it over real TCP.
    """

    def __init__(self, app, host="127.0.0.1", port=0):
        self._server = AsgiHttpServer(app, host, port)
        self._loop = None
        self._thread = None
        self._ready = threading.Event()
        self._startup_error = None
        self._stop_event = None

    @property
    def host(self):
        return self._server.host

    @property
    def port(self):
        return self._server.port

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main():
            self._stop_event = asyncio.Event()
            try:
                await self._server.start()
            except Exception as error:  # noqa: BLE001 — surfaced to start()
                self._startup_error = error
                return
            finally:
                self._ready.set()
            try:
                await self._stop_event.wait()
            finally:
                await self._server.stop()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self):
        if self._loop is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30.0)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False
