"""Thermal-as-a-service: async HTTP serving of the paper's solvers.

The repo's engines — steady solves, transient envelopes, GreedyDeploy,
scenario sweeps — are exposed as a small JSON API so interactive DTM
experiments (and load tests) stop paying cold-start costs per query:

* :mod:`repro.serve.schemas` — requests parse into the sweep engine's
  plain-data :class:`~repro.sweep.spec.Scenario` vocabulary, and chips
  hash to blueprint keys;
* :mod:`repro.serve.pool` — a blueprint-keyed LRU of warm
  :class:`~repro.core.problem.CoolingSystemProblem` sessions with
  per-key locks and eviction-safe stats;
* :mod:`repro.serve.batcher` — same-chip request coalescing into
  batched multi-RHS solves;
* :mod:`repro.serve.app` — the dependency-free ASGI application
  (``POST /solve``, ``/sweep``, ``/deploy``, ``/transient``; ``GET
  /healthz``, ``/stats``);
* :mod:`repro.serve.server` — a stdlib asyncio HTTP/1.1 host plus a
  background-thread harness for tests;
* :mod:`repro.serve.loadgen` — a closed-loop latency/throughput load
  generator (``benchmarks/bench_serve.py``).

Served numbers are bit-identical to ``repro solve`` output: the
handlers run the exact worker task implementations the CLI and the
sweep backends run.
"""

from repro.serve.app import ReproServeApp, ServeConfig, create_app
from repro.serve.batcher import RequestBatcher
from repro.serve.loadgen import LoadReport, RequestPool
from repro.serve.pool import PoolEntry, SessionPool
from repro.serve.schemas import SchemaError, blueprint_key
from repro.serve.server import AsgiHttpServer, ServerThread, run

__all__ = [
    "AsgiHttpServer",
    "LoadReport",
    "PoolEntry",
    "ReproServeApp",
    "RequestBatcher",
    "RequestPool",
    "SchemaError",
    "ServeConfig",
    "ServerThread",
    "SessionPool",
    "blueprint_key",
    "create_app",
    "run",
]
