"""Closed-loop HTTP load generator for the serving tier.

A :class:`RequestPool` drives N client threads against a running
server, each holding one keep-alive ``http.client`` connection and
pulling requests from a shared queue — a closed-loop generator, so
offered load adapts to service rate instead of overrunning it.  Every
request records its wall-clock latency; the resulting
:class:`LoadReport` summarizes throughput and the p50/p95/p99 tail,
and keeps the parsed response bodies (indexed by request position) so
callers can assert correctness of what was measured — the serve
benchmark compares served temperatures against the CLI path from the
same report it takes its latency numbers from.

Stdlib only (threads + ``http.client``): the load generator must run
in the same dependency-free environment as the server it measures.
"""

from __future__ import annotations

import http.client
import json
import math
import queue
import threading
import time
from dataclasses import dataclass, field


@dataclass
class LoadReport:
    """Latency/throughput summary of one load run."""

    requests: int
    errors: int
    wall_s: float
    latencies_ms: list = field(repr=False)
    responses: list = field(repr=False)   # (status, parsed body) per request
    clients: int = 1

    @property
    def throughput_rps(self):
        if self.wall_s <= 0.0:
            return 0.0
        return self.requests / self.wall_s

    def percentile(self, q):
        """Latency percentile in ms (nearest-rank on the sorted sample)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def as_dict(self):
        """Plain-data summary for ``BENCH_serve.json`` entries."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "clients": self.clients,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "mean": (
                    sum(self.latencies_ms) / len(self.latencies_ms)
                    if self.latencies_ms else 0.0
                ),
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
                "max": max(self.latencies_ms) if self.latencies_ms else 0.0,
            },
        }


class RequestPool:
    """N keep-alive client threads replaying a request list.

    ``run(requests)`` takes ``(method, path, payload)`` tuples, fans
    them out over the clients and blocks until every request is
    answered.  Failures (connection errors, non-JSON bodies) count as
    errors with a ``(None, None)`` response slot; latency is recorded
    for successful requests only, so tail percentiles measure service
    time rather than error handling.
    """

    def __init__(self, host, port, *, clients=4, timeout_s=60.0):
        clients = int(clients)
        if clients < 1:
            raise ValueError("clients must be >= 1, got {}".format(clients))
        self.host = host
        self.port = int(port)
        self.clients = clients
        self.timeout_s = float(timeout_s)

    def run(self, requests):
        """Replay ``requests``; returns a :class:`LoadReport`."""
        jobs = queue.Queue()
        for position, request in enumerate(requests):
            jobs.put((position, request))
        total = jobs.qsize()
        responses = [None] * total
        latencies = []
        errors = [0]
        guard = threading.Lock()

        def client_loop():
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            try:
                while True:
                    try:
                        position, (method, path, payload) = jobs.get_nowait()
                    except queue.Empty:
                        return
                    try:
                        body = (
                            json.dumps(payload).encode("utf-8")
                            if payload is not None else None
                        )
                        headers = {"Content-Type": "application/json"} if body else {}
                        began = time.perf_counter()
                        connection.request(method, path, body=body,
                                           headers=headers)
                        response = connection.getresponse()
                        raw = response.read()
                        elapsed_ms = (time.perf_counter() - began) * 1000.0
                        parsed = json.loads(raw)
                        with guard:
                            responses[position] = (response.status, parsed)
                            latencies.append(elapsed_ms)
                    except Exception:  # noqa: BLE001 — counted, not raised
                        with guard:
                            errors[0] += 1
                            responses[position] = (None, None)
                        connection.close()
                        connection = http.client.HTTPConnection(
                            self.host, self.port, timeout=self.timeout_s
                        )
            finally:
                connection.close()

        threads = [
            threading.Thread(target=client_loop, daemon=True,
                             name="repro-loadgen-{}".format(i))
            for i in range(min(self.clients, max(total, 1)))
        ]
        began = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - began
        return LoadReport(
            requests=total,
            errors=errors[0],
            wall_s=wall,
            latencies_ms=latencies,
            responses=responses,
            clients=len(threads),
        )
