"""Wire schemas of the serve layer.

The service speaks the sweep engine's vocabulary: every request body
is parsed into :class:`~repro.sweep.spec.Scenario` objects (``/sweep``
bodies are literally a :class:`~repro.sweep.spec.SweepSpec` in JSON),
so the scenario validation rules, the task implementations and the
JSON results are shared between the HTTP API, the CLI and the sweep
engine — one schema, three transports.

Every request names a *chip* through the same geometry fields a
scenario uses: a registered ``benchmark``, an explicit ``rows`` x
``cols`` grid with a flat ``power_map``, or a 2.5D ``chiplets`` list
of ``[rows, cols, row_offset, col_offset, power_w]`` entries (see
:func:`~repro.thermal.chiplet.layout_from_plain`), optionally scaled
(``power_scale``) and with device-parameter factors
(``seebeck_factor`` / ``resistance_factor``).  :func:`blueprint_key`
hashes those fields (plus the solver ``backend`` and temperature
limit) into the warm-session pool key: two requests with equal keys
are guaranteed to rebuild byte-identical assembled systems, so they
can safely share one :class:`~repro.thermal.session.SolveSession`'s
factorization caches.

Malformed payloads raise :class:`SchemaError`; the app maps it to an
HTTP 400 with the message in the body.
"""

from __future__ import annotations

import hashlib
import json

from repro.sweep.spec import Scenario, SweepSpec

#: Geometry/device fields shared by every endpoint (the scenario's
#: chip identity).
GEOMETRY_FIELDS = (
    "benchmark",
    "rows",
    "cols",
    "power_map",
    "chiplets",
    "power_scale",
    "limit_c",
    "seebeck_factor",
    "resistance_factor",
    "backend",
)

#: Full scenario vocabulary accepted inside ``/sweep`` bodies —
#: exactly the :class:`~repro.sweep.spec.Scenario` fields.
SCENARIO_FIELDS = GEOMETRY_FIELDS + (
    "name",
    "task",
    "tec_tiles",
    "current_a",
    "budget_w",
    "dt",
    "steps",
    "num_groups",
    "current_method",
    "current_tolerance",
    "max_rounds",
    "engine",
    "rom",
    "rom_dim",
    "rom_tol",
)


class SchemaError(ValueError):
    """A request body that does not parse into a valid scenario."""


def _require_mapping(payload, where):
    if not isinstance(payload, dict):
        raise SchemaError("{} must be a JSON object, got {}".format(
            where, type(payload).__name__
        ))
    return payload


def _reject_unknown(payload, allowed, where):
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SchemaError("unknown field(s) in {}: {}".format(
            where, ", ".join(unknown)
        ))


def _build_scenario(fields, where):
    try:
        return Scenario(**fields)
    except (TypeError, ValueError) as error:
        raise SchemaError("invalid {}: {}".format(where, error))


def _geometry_fields(payload):
    fields = {
        key: payload[key]
        for key in GEOMETRY_FIELDS
        if payload.get(key) is not None
    }
    benchmark = fields.get("benchmark")
    if benchmark is not None:
        # Catch unknown names at parse time (HTTP 400); letting them
        # through would surface as a KeyError deep in the worker (500).
        from repro.experiments.benchmarks import BENCHMARKS

        if benchmark not in BENCHMARKS:
            raise SchemaError("unknown benchmark {!r} (choose from {})".format(
                benchmark, ", ".join(sorted(BENCHMARKS))
            ))
    return fields


def parse_solve(payload):
    """``POST /solve`` body -> a tuple of ``solve`` scenarios.

    Required: a geometry source, ``tec_tiles`` and a supply current —
    either a scalar ``current_a`` or a list ``currents_a`` (one solve
    scenario per current, answered in one batch).
    """
    payload = _require_mapping(payload, "/solve body")
    _reject_unknown(
        payload, GEOMETRY_FIELDS + ("tec_tiles", "current_a", "currents_a"),
        "/solve body",
    )
    if "tec_tiles" not in payload:
        raise SchemaError("/solve body needs tec_tiles")
    currents = payload.get("currents_a")
    if currents is None:
        if "current_a" not in payload:
            raise SchemaError("/solve body needs current_a or currents_a")
        currents = [payload["current_a"]]
    if not isinstance(currents, (list, tuple)) or not currents:
        raise SchemaError("currents_a must be a non-empty list")
    try:
        currents = [float(c) for c in currents]
    except (TypeError, ValueError):
        raise SchemaError("currents_a entries must be numbers")
    base = _geometry_fields(payload)
    base["tec_tiles"] = payload["tec_tiles"]
    scenarios = tuple(
        _build_scenario(
            dict(base, name="solve/{}".format(j), task="solve", current_a=c),
            "/solve request",
        )
        for j, c in enumerate(currents)
    )
    return scenarios


def parse_transient(payload):
    """``POST /transient`` body -> one ``transient`` scenario.

    ``rom`` / ``rom_dim`` / ``rom_tol`` select the certified
    reduced-order kernel exactly like the CLI's ``--rom*`` flags; they
    enter the scenario (and hence the session pool / batch keys), so
    requests with different ROM parameters never share a batch.
    """
    payload = _require_mapping(payload, "/transient body")
    _reject_unknown(
        payload,
        GEOMETRY_FIELDS
        + ("tec_tiles", "current_a", "dt", "steps", "rom", "rom_dim", "rom_tol"),
        "/transient body",
    )
    fields = _geometry_fields(payload)
    for key in ("tec_tiles", "current_a", "dt", "steps", "rom", "rom_dim", "rom_tol"):
        if payload.get(key) is not None:
            fields[key] = payload[key]
    fields.update(name="transient", task="transient")
    return _build_scenario(fields, "/transient request")


def parse_deploy(payload):
    """``POST /deploy`` body -> one ``greedy`` (or ``table1``) scenario.

    ``full_cover: true`` requests the Full-Cover baseline too (the
    ``table1`` task); ``engine`` / ``max_rounds`` forward to
    GreedyDeploy exactly like the CLI flags.
    """
    payload = _require_mapping(payload, "/deploy body")
    _reject_unknown(
        payload,
        GEOMETRY_FIELDS + ("engine", "max_rounds", "full_cover",
                           "current_method", "current_tolerance"),
        "/deploy body",
    )
    task = "table1" if payload.get("full_cover") else "greedy"
    fields = _geometry_fields(payload)
    for key in ("engine", "max_rounds", "current_method", "current_tolerance"):
        if payload.get(key) is not None:
            fields[key] = payload[key]
    fields.update(name="deploy", task=task)
    return _build_scenario(fields, "/deploy request")


def parse_sweep(payload):
    """``POST /sweep`` body -> a :class:`SweepSpec`.

    The body is the spec's own wire shape::

        {"name": "my-sweep", "scenarios": [{"name": ..., "task": ..., ...}]}

    Every scenario entry takes the full :data:`SCENARIO_FIELDS`
    vocabulary — the same plain data the sweep engine executes, so a
    spec serialized from Python runs unchanged over HTTP.
    """
    payload = _require_mapping(payload, "/sweep body")
    _reject_unknown(payload, ("name", "scenarios", "workers"), "/sweep body")
    entries = payload.get("scenarios")
    if not isinstance(entries, (list, tuple)) or not entries:
        raise SchemaError("/sweep body needs a non-empty scenarios list")
    scenarios = []
    for position, entry in enumerate(entries):
        entry = _require_mapping(entry, "scenario #{}".format(position))
        _reject_unknown(entry, SCENARIO_FIELDS, "scenario #{}".format(position))
        missing = [key for key in ("name", "task") if key not in entry]
        if missing:
            raise SchemaError("scenario #{} needs {}".format(
                position, ", ".join(missing)
            ))
        fields = {
            key: entry[key] for key in SCENARIO_FIELDS
            if entry.get(key) is not None
        }
        scenarios.append(
            _build_scenario(fields, "scenario #{}".format(position))
        )
    try:
        return SweepSpec(
            scenarios=tuple(scenarios),
            name=str(payload.get("name", "sweep")),
        )
    except (TypeError, ValueError) as error:
        raise SchemaError("invalid /sweep body: {}".format(error))


def blueprint_key(scenario):
    """The warm-session pool key of a scenario's chip.

    A SHA-256 over the canonical JSON of everything that enters the
    assembled system (geometry, power map and scale, device factors),
    the solver ``backend`` and the temperature limit — the same
    identity :func:`repro.sweep.worker.problem_for` keys its
    per-process problem cache on.  Equal keys therefore mean
    bit-identical matrices, so requests sharing a key share one warm
    :class:`~repro.core.problem.CoolingSystemProblem` (and its
    sessions) safely.
    """
    identity = {
        "geometry": list(scenario.geometry_key()),
        "backend": scenario.backend,
        "limit_c": scenario.limit_c,
        # Reduced-order knobs: traces with different ROM parameters
        # build different certified bases, so they must neither share
        # a batch nor a warm session entry.
        "rom": [scenario.rom, scenario.rom_dim, scenario.rom_tol],
    }
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
