"""Same-blueprint request coalescing.

``/solve`` traffic is bursty and repetitive: load steps hit one chip
with many currents at once, and monitoring loops re-ask the same
``(deployment, current)`` point.  The batcher exploits both shapes.
Submissions are grouped by blueprint key and held for a short window
(:data:`DEFAULT_WINDOW_S`); when the window closes the whole group is
handed to the executor as *one* batch against one warm session.  In
the default ``reuse`` backend every current in the batch is answered
from the session's single blocked two-column base solve
``G^{-1}[p_base, joule]`` — the batch literally becomes one multi-RHS
factorization pass plus a rank-k correction per current.  Identical
``(tiles, current)`` submissions are deduplicated by the executor so
k requests for one point cost one solve.

Determinism: the executor answers every scenario through the same
``model.solve(current)`` call the serial path uses, so batched
responses are bit-identical to per-request solves — coalescing is a
scheduling optimization, never a numerical one.

``window_s=0`` still coalesces whatever lands in the same event-loop
tick (flush via ``call_soon``), which is what the latency-sensitive
configuration wants.
"""

from __future__ import annotations

import asyncio

#: Default coalescing window (seconds).
DEFAULT_WINDOW_S = 0.005

#: Default cap on scenarios per batch.
DEFAULT_MAX_BATCH = 64


class _Batch:
    __slots__ = ("items", "handle")

    def __init__(self):
        self.items = []      # list of (scenario, future)
        self.handle = None   # timer handle while pending


class RequestBatcher:
    """Coalesce same-key submissions into windowed batch executions.

    ``executor`` is an async callable ``(key, scenarios) -> results``
    returning one result per scenario, in order.  It runs as a task per
    batch; a raise rejects every future in the batch with that error.
    All methods must be called from the event loop thread.
    """

    def __init__(self, executor, *, window_s=DEFAULT_WINDOW_S,
                 max_batch=DEFAULT_MAX_BATCH):
        window_s = float(window_s)
        max_batch = int(max_batch)
        if window_s < 0.0:
            raise ValueError("window_s must be >= 0, got {}".format(window_s))
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got {}".format(max_batch))
        self.executor = executor
        self.window_s = window_s
        self.max_batch = max_batch
        self._pending = {}   # key -> _Batch
        self._tasks = set()
        self.requests = 0
        self.batches = 0
        self.max_batch_seen = 0

    async def submit(self, key, scenario):
        """Queue one scenario; resolves to its executor result."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        batch = self._pending.get(key)
        if batch is None:
            batch = _Batch()
            self._pending[key] = batch
            if self.window_s > 0.0:
                batch.handle = loop.call_later(
                    self.window_s, self._flush, key, batch
                )
            else:
                loop.call_soon(self._flush, key, batch)
        batch.items.append((scenario, future))
        self.requests += 1
        if len(batch.items) >= self.max_batch:
            self._flush(key, batch)
        return await future

    def _flush(self, key, batch):
        if self._pending.get(key) is not batch:
            return  # already flushed (max_batch raced the timer)
        del self._pending[key]
        if batch.handle is not None:
            batch.handle.cancel()
        self.batches += 1
        self.max_batch_seen = max(self.max_batch_seen, len(batch.items))
        task = asyncio.get_running_loop().create_task(self._run(key, batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, key, batch):
        scenarios = [scenario for scenario, _ in batch.items]
        try:
            results = await self.executor(key, scenarios)
        except Exception as error:  # noqa: BLE001 — fanned out to waiters
            for _, future in batch.items:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(batch.items, results):
            if not future.done():
                future.set_result(result)

    async def drain(self):
        """Flush pending batches and wait for in-flight ones (shutdown)."""
        for key, batch in list(self._pending.items()):
            self._flush(key, batch)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def stats(self):
        """Plain-data batcher counters for ``/stats``."""
        coalesced = self.requests - self.batches
        return {
            "window_s": self.window_s,
            "max_batch": self.max_batch,
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": max(coalesced, 0),
            "max_batch_seen": self.max_batch_seen,
            "pending_keys": len(self._pending),
        }
