"""Thermal-as-a-service: the ASGI application.

A dependency-free ASGI 3 callable (the container ships no
FastAPI/starlette, so the app implements the interface directly — any
ASGI server can host it, and :mod:`repro.serve.server` provides a
stdlib one).  Endpoints:

``POST /solve``
    Steady-state solve(s) of one chip/deployment at one or more
    currents.  Answered through the warm session pool and the request
    batcher: concurrent same-blueprint requests coalesce into one
    batched multi-RHS solve, identical points are deduplicated, and
    every response carries the per-solve solver-stats delta so clients
    can see cache behaviour (``cache_hits``) and batching
    (``coalesced``).
``POST /transient``
    Backward-Euler transient envelope on a warm session.
``POST /deploy``
    GreedyDeploy (optionally plus the Full-Cover baseline) — CPU-bound
    minutes-long work, so it runs on the process-pool tier.
``POST /sweep``
    A full :class:`~repro.sweep.SweepSpec` in JSON, fanned out over
    the shared process pool; the response is the standard sweep
    report.
``GET /healthz`` / ``GET /stats``
    Liveness and counters (server, pool, batcher, process tier).

Determinism contract: ``/solve`` and ``/transient`` run the same
:func:`repro.sweep.worker.run_task` implementations the CLI and sweep
engine use, on problems built by the same worker builder — responses
are bit-identical to ``repro solve`` output for the same scenario.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass, fields

from repro.serve import schemas
from repro.serve.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW_S,
    RequestBatcher,
)
from repro.serve.pool import DEFAULT_MAX_ENTRIES, SessionPool
from repro.sweep.report import ScenarioError, SweepReport
from repro.sweep.runner import pool_fault
from repro.sweep.worker import execute, run_task, solve_batch_rows
from repro.thermal.session import SOLVER_MODES


def _ignore_sigint():
    """Process-pool worker initializer: a terminal Ctrl-C delivers
    SIGINT to the whole foreground process group, and workers dying
    mid-shutdown with KeyboardInterrupt tracebacks is pure noise —
    their lifetime is managed by the executor, not the keyboard."""
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the serving tier.

    ``pool_size=0`` disables the warm pool (every request builds cold —
    the benchmark baseline); ``batch_window_s=0`` coalesces only
    within one event-loop tick.  ``workers=None`` sizes the process
    pool to the machine.  ``default_backend`` is applied to every
    request scenario that leaves ``backend`` unset (one of
    :data:`~repro.thermal.session.SOLVER_MODES`; None keeps the
    problem default, ``"reuse"``) — it participates in the warm-pool
    blueprint key, so two backends never share a session.
    """

    pool_size: int = DEFAULT_MAX_ENTRIES
    batch_window_s: float = DEFAULT_WINDOW_S
    batch_max: int = DEFAULT_MAX_BATCH
    threads: int = 4
    workers: int = None
    request_max_bytes: int = 8 * 1024 * 1024
    default_backend: str = None

    def __post_init__(self):
        if (
            self.default_backend is not None
            and self.default_backend not in SOLVER_MODES
        ):
            raise ValueError(
                "default_backend must be one of {} (or None), got {!r}".format(
                    SOLVER_MODES, self.default_backend
                )
            )

    @classmethod
    def from_dict(cls, payload):
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError("unknown config field(s): {}".format(
                ", ".join(unknown)
            ))
        return cls(**payload)


class _HttpError(Exception):
    """Internal: carries a status + JSON body to the dispatcher."""

    def __init__(self, status, message, **extra):
        super().__init__(message)
        self.status = status
        self.body = dict(extra, error=message)


class ReproServeApp:
    """The ASGI 3 application object (``await app(scope, receive, send)``)."""

    def __init__(self, config=None):
        self.config = config if config is not None else ServeConfig()
        self.pool = SessionPool(self.config.pool_size)
        self.batcher = RequestBatcher(
            self._execute_solve_batch,
            window_s=self.config.batch_window_s,
            max_batch=self.config.batch_max,
        )
        self._threads = None
        self._processes = None
        self._started_s = None
        self.requests = {}     # "METHOD PATH" -> count
        self.errors = 0
        self.process_pool_restarts = 0
        self._routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/stats"): self._handle_stats,
            ("POST", "/solve"): self._handle_solve,
            ("POST", "/transient"): self._handle_transient,
            ("POST", "/deploy"): self._handle_deploy,
            ("POST", "/sweep"): self._handle_sweep,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def startup(self):
        """Create the executor tiers (idempotent)."""
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.config.threads,
                thread_name_prefix="repro-solve",
            )
        if self._started_s is None:
            self._started_s = time.monotonic()

    async def shutdown(self):
        """Drain the batcher and tear the executors down."""
        await self.batcher.drain()
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=True)
            self._processes = None
        self.pool.clear()

    def _process_pool(self):
        """The lazy process-pool tier (created on first /deploy or /sweep).

        Workers use the ``forkserver`` start method where available:
        by the time the first /deploy arrives the server is running an
        event loop plus executor threads, and ``fork``-ing a threaded
        process is unsound (CPython re-inits thread state in the child
        and spits ``Exception ignored in _after_fork`` noise).  The
        fork server forks from a clean, thread-free helper instead.
        """
        if self._processes is None:
            import multiprocessing

            try:
                context = multiprocessing.get_context("forkserver")
            except ValueError:  # platform without forkserver
                context = multiprocessing.get_context("spawn")
            self._processes = ProcessPoolExecutor(
                max_workers=self.config.workers, mp_context=context,
                initializer=_ignore_sigint,
            )
        return self._processes

    def _process_workers(self):
        """Worker count of the process tier (machine default when unset)."""
        if self.config.workers is not None:
            return self.config.workers
        import os

        return os.cpu_count() or 1

    def _reset_process_pool(self):
        """Replace a broken process pool so later requests recover."""
        broken, self._processes = self._processes, None
        self.process_pool_restarts += 1
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # ASGI plumbing
    # ------------------------------------------------------------------

    async def __call__(self, scope, receive, send):
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(
                "unsupported ASGI scope type {!r}".format(scope["type"])
            )
        self.startup()
        method = scope["method"].upper()
        path = scope["path"].rstrip("/") or "/"
        label = "{} {}".format(method, path)
        self.requests[label] = self.requests.get(label, 0) + 1
        try:
            handler = self._route(method, path)
            payload = await self._read_json(scope, receive, method)
            status, body = await handler(payload)
        except _HttpError as error:
            self.errors += 1
            status, body = error.status, error.body
        except Exception as error:  # noqa: BLE001 — 500 boundary
            self.errors += 1
            status = 500
            body = {"error": "{}: {}".format(type(error).__name__, error)}
        await self._send_json(send, status, body)

    async def _lifespan(self, receive, send):
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                self.startup()
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.shutdown()
                await send({"type": "lifespan.shutdown.complete"})
                return

    def _route(self, method, path):
        handler = self._routes.get((method, path))
        if handler is None:
            known = {route_path for _, route_path in self._routes}
            if path in known:
                raise _HttpError(
                    405, "method {} not allowed on {}".format(method, path)
                )
            raise _HttpError(404, "no such endpoint: {}".format(path))
        return handler

    async def _read_json(self, scope, receive, method):
        chunks = []
        size = 0
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HttpError(400, "client disconnected mid-request")
            chunks.append(message.get("body", b""))
            size += len(chunks[-1])
            if size > self.config.request_max_bytes:
                raise _HttpError(413, "request body too large")
            if not message.get("more_body", False):
                break
        if method != "POST":
            return None
        raw = b"".join(chunks)
        if not raw:
            raise _HttpError(400, "request body must be JSON")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise _HttpError(400, "invalid JSON body: {}".format(error))

    @staticmethod
    async def _send_json(send, status, payload):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(body)).encode("ascii")),
            ],
        })
        await send({"type": "http.response.body", "body": body})

    # ------------------------------------------------------------------
    # Warm-tier execution
    # ------------------------------------------------------------------

    def _apply_backend(self, scenario):
        """Fill an unset scenario backend from the server default.

        Runs *before* :func:`~repro.serve.schemas.blueprint_key` /
        :meth:`_acquire` in every handler, so warm-pool keys and
        process-tier payloads always carry the effective backend.
        """
        if self.config.default_backend is None or scenario.backend is not None:
            return scenario
        return dataclasses.replace(
            scenario, backend=self.config.default_backend
        )

    def _acquire(self, scenario):
        """Warm pool entry for a scenario's chip: ``(key, entry, hit)``.

        The problem is built by the sweep worker's builder, so pooled
        problems are constructed exactly like CLI/sweep ones — that,
        plus the shared task implementations, is the bit-identity
        guarantee.
        """
        from repro.sweep.worker import _build_problem, _limit_for

        key = schemas.blueprint_key(scenario)
        entry, hit = self.pool.acquire(
            key, lambda: _build_problem(scenario, _limit_for(scenario))
        )
        return key, entry, hit

    async def _execute_solve_batch(self, key, scenarios):
        """Batch executor behind the request batcher.

        Runs the whole batch on one warm session under the entry lock;
        identical ``(tiles, current)`` points are deduplicated.  Each
        result carries the solver-stats delta of the solve that
        answered it.
        """
        loop = asyncio.get_running_loop()
        _, entry, hit = self._acquire(scenarios[0])
        async with entry.lock:
            rows = await loop.run_in_executor(
                self._threads, _solve_batch_sync, entry.problem, scenarios
            )
        for row in rows:
            row["pool"] = {"key": key, "hit": hit}
        return rows

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    async def _handle_healthz(self, _payload):
        return 200, {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_s,
            "pool_entries": len(self.pool),
        }

    async def _handle_stats(self, _payload):
        return 200, {
            "server": {
                "uptime_s": time.monotonic() - self._started_s,
                "requests": dict(self.requests),
                "errors": self.errors,
                "process_pool_restarts": self.process_pool_restarts,
            },
            "config": asdict(self.config),
            "pool": self.pool.stats(),
            "batcher": self.batcher.stats(),
        }

    async def _handle_solve(self, payload):
        scenarios = [
            self._apply_backend(scenario)
            for scenario in self._parse(schemas.parse_solve, payload)
        ]
        key = schemas.blueprint_key(scenarios[0])
        rows = await asyncio.gather(
            *(self.batcher.submit(key, scenario) for scenario in scenarios)
        )
        results = []
        for scenario, row in zip(scenarios, rows):
            delta = row["solver_stats"]
            results.append({
                "name": scenario.name,
                "current_a": scenario.current_a,
                "values": row["values"],
                "solver_stats": delta,
                "cache_hits": delta["cache_hits"] + delta["solution_hits"],
                "coalesced": row["coalesced"],
                "pool": row["pool"],
            })
        return 200, {"results": results, "count": len(results),
                     "pool_key": key}

    async def _handle_transient(self, payload):
        scenario = self._apply_backend(
            self._parse(schemas.parse_transient, payload)
        )
        loop = asyncio.get_running_loop()
        key, entry, hit = self._acquire(scenario)
        async with entry.lock:
            values, delta = await loop.run_in_executor(
                self._threads, _run_task_with_stats, entry.problem, scenario
            )
        return 200, {
            "values": values,
            "solver_stats": delta,
            "pool": {"key": key, "hit": hit},
        }

    async def _handle_deploy(self, payload):
        scenario = self._apply_backend(
            self._parse(schemas.parse_deploy, payload)
        )
        outcome = await self._run_in_process(0, scenario)
        if isinstance(outcome, ScenarioError):
            status = 503 if outcome.kind == "pool" else 422
            return status, _error_body(outcome)
        return 200, {
            "task": outcome.task,
            "values": outcome.values,
            "elapsed_s": outcome.elapsed_s,
            "solver_stats": outcome.solver_stats,
        }

    async def _handle_sweep(self, payload):
        spec = self._parse(schemas.parse_sweep, payload)
        start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(self._run_in_process(index, self._apply_backend(scenario))
              for index, scenario in enumerate(spec))
        )
        report = SweepReport.from_outcomes(
            spec_name=spec.name,
            backend="process",
            workers=self._process_workers(),
            outcomes=list(outcomes),
            wall_time_s=time.perf_counter() - start,
        )
        body = dataclasses.asdict(report)
        body["summary"] = report.summary()
        return 200, body

    # ------------------------------------------------------------------
    # Process tier
    # ------------------------------------------------------------------

    async def _run_in_process(self, index, scenario):
        """One scenario on the process pool; faults become records.

        Mirrors the sweep runner's crash semantics: an in-scenario
        exception arrives as a normal :class:`ScenarioError` (the
        worker never raises), while a pool crash becomes a
        ``kind="pool"`` fault and the pool is replaced so the *next*
        request gets a fresh tier.
        """
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._process_pool(), execute, index, scenario
            )
        except Exception as error:  # noqa: BLE001 — pool crash path
            if isinstance(error, BrokenExecutor) and self._processes is not None:
                self._reset_process_pool()
            return pool_fault(index, scenario, error)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _parse(parser, payload):
        try:
            return parser(payload)
        except schemas.SchemaError as error:
            raise _HttpError(400, str(error))


def _run_task_with_stats(problem, scenario):
    """Thread-tier execution: task values plus the solver-stats delta."""
    before = problem.solver_stats.copy()
    values = run_task(scenario, problem)
    delta = problem.solver_stats.diff(before).as_dict()
    return values, delta


def _solve_batch_sync(problem, scenarios):
    """Run one coalesced batch on a warm problem (worker thread).

    Delegates to the sweep worker's batched kernel
    (:func:`repro.sweep.worker.solve_batch_rows`): distinct operating
    points are stacked into one
    :meth:`~repro.thermal.session.SessionView.solve_batch` call per
    deployment, identical ``(tiles, current)`` points solve once and
    fan out to every duplicate, and each row records the stats delta
    of the column that produced its values.  Row values are
    bit-identical to the serial/CLI solves, so batching cannot change
    any numbers.
    """
    return solve_batch_rows(problem, scenarios)


def _error_body(fault):
    return {
        "error": fault.message,
        "error_type": fault.error_type,
        "kind": fault.kind,
        "name": fault.name,
        "task": fault.task,
        "traceback": fault.traceback,
    }


def create_app(config=None):
    """Build the ASGI application (``repro serve`` and tests)."""
    return ReproServeApp(config)
