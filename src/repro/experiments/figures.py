"""Figure reproductions (Figures 6 and 7, plus runaway curves).

``figure6_data``
    The influence coefficients ``h_kl(i)`` of Figure 6: non-negative,
    convex in the supply current, diverging at ``lambda_m``.  Sampled
    for the hottest tile's self-influence and a cross-influence pair on
    the Alpha deployment.
``figure7_data``
    Figure 7: the Alpha floorplan (a) and the 12x12 tile map with the
    greedy TEC deployment shaded (b).  Rendered as ASCII so the
    benchmark harness can print the same picture the paper draws.
``runaway_figure``
    The peak-temperature blow-up curve behind the Section V.C.1
    discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.deploy import greedy_deploy
from repro.core.runaway import influence_sweep, runaway_curve
from repro.experiments.benchmarks import load_benchmark


@dataclass
class Figure6Data:
    """Sampled ``h_kl(i)`` curves and their qualitative properties."""

    currents: np.ndarray
    lambda_m: float
    curves: dict  # label -> np.ndarray of h values (K/W)
    nonnegative: bool
    convex: bool
    diverging: bool


def figure6_data(benchmark="alpha", *, samples=25, max_fraction=0.9995):
    """Reproduce Figure 6 on a deployed benchmark.

    Returns sampled ``h_kl(i)`` for (peak, peak), (peak, hot-node) and
    (far tile, peak) pairs, with flags verifying the three properties
    the figure illustrates: non-negativity (Lemma 3), convexity
    (Theorem 3) and divergence at ``lambda_m`` (Theorem 2).
    """
    problem = load_benchmark(benchmark)
    greedy = greedy_deploy(problem)
    model = greedy.model
    lambda_m = model.runaway_current().value

    peak_tile = model.solve(0.0).peak_tile
    peak_node = model.silicon_nodes[peak_tile]
    hot_node = model.hot_nodes[0]
    far_tile = int(np.argmin(model.solve(0.0).silicon_c))
    far_node = model.silicon_nodes[far_tile]

    currents = np.linspace(0.0, max_fraction * lambda_m, samples)
    pairs = [
        ("h(peak,peak)", (peak_node, peak_node)),
        ("h(peak,hot)", (peak_node, hot_node)),
        ("h(far,peak)", (far_node, peak_node)),
    ]
    values = influence_sweep(model, [pair for _, pair in pairs], currents)
    curves = {label: values[idx] for idx, (label, _) in enumerate(pairs)}

    all_values = np.concatenate(list(curves.values()))
    nonnegative = bool(np.all(all_values >= -1.0e-12))
    convex = True
    for series in curves.values():
        second = series[:-2] - 2.0 * series[1:-1] + series[2:]
        scale = max(1.0, float(np.max(np.abs(series))))
        if np.min(second) < -1.0e-9 * scale:
            convex = False
    diverging = bool(
        all(
            series[-1] > 5.0 * max(series[samples // 2], 1e-12)
            for series in curves.values()
        )
    )
    return Figure6Data(
        currents=currents,
        lambda_m=lambda_m,
        curves=curves,
        nonnegative=nonnegative,
        convex=convex,
        diverging=diverging,
    )


@dataclass
class Figure7Data:
    """The Alpha floorplan and deployment map."""

    unit_grid: list  # rows of unit-name initials
    deployment_grid: list  # rows of '.'/'#' with '#' = TEC-covered
    tec_tiles: tuple
    num_tecs: int
    covered_units: dict  # unit name -> covered tile count

    def render(self):
        """ASCII rendering: floorplan beside the shaded deployment."""
        lines = ["floorplan (unit initials)    deployment (# = TEC)"]
        for unit_row, dep_row in zip(self.unit_grid, self.deployment_grid):
            lines.append("{}    {}".format(unit_row, dep_row))
        return "\n".join(lines)


def figure7_data(benchmark="alpha"):
    """Reproduce Figure 7: floorplan + greedy deployment shading."""
    from repro.experiments.benchmarks import BENCHMARKS

    spec = BENCHMARKS[benchmark]
    floorplan = spec.floorplan()
    problem = spec.problem()
    greedy = greedy_deploy(problem)
    grid = floorplan.grid
    owner = floorplan.unit_map()
    covered = set(greedy.tec_tiles)

    unit_rows = []
    dep_rows = []
    for row in range(grid.rows):
        unit_chars = []
        dep_chars = []
        for col in range(grid.cols):
            flat = grid.flat_index(row, col)
            unit_chars.append(floorplan.units[owner[flat]].name[0])
            dep_chars.append("#" if flat in covered else ".")
        unit_rows.append("".join(unit_chars))
        dep_rows.append("".join(dep_chars))

    covered_units = {}
    for flat in covered:
        name = floorplan.units[owner[flat]].name
        covered_units[name] = covered_units.get(name, 0) + 1
    return Figure7Data(
        unit_grid=unit_rows,
        deployment_grid=dep_rows,
        tec_tiles=greedy.tec_tiles,
        num_tecs=greedy.num_tecs,
        covered_units=covered_units,
    )


def runaway_figure(benchmark="alpha", *, max_fraction=0.999):
    """Peak-temperature blow-up curve for a deployed benchmark."""
    problem = load_benchmark(benchmark)
    greedy = greedy_deploy(problem)
    return runaway_curve(greedy.model, max_fraction=max_fraction)
