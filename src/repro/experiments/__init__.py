"""Experiment harness: every table and figure of Section VI.

The modules here wrap the core library into the exact experiments the
paper reports; the ``benchmarks/`` directory's pytest-benchmark targets
are thin shells over these functions (one per table/figure), and the
EXPERIMENTS.md paper-vs-measured records are generated from them.

``benchmarks``
    The benchmark registry — Alpha plus HC01..HC10 with pinned seeds,
    total powers and temperature limits.
``table1``
    Reproduces Table I (GreedyDeploy vs Full-Cover on every benchmark).
``figures``
    Figure 6 (influence coefficients vs current), Figure 7 (floorplan
    and deployment map) and the runaway curves.
``validation``
    The compact-model-vs-reference validation experiment.
``conjecture``
    The randomized Conjecture 1 campaign.
``ablations``
    Beyond-paper studies of the design choices: certificate
    subdivision count, TEC parameter sensitivity, per-device currents
    (multi-pin extension), grid resolution.
"""

from repro.experiments.benchmarks import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    load_benchmark,
)
from repro.experiments.table1 import run_benchmark_row, run_table1

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_names",
    "load_benchmark",
    "run_benchmark_row",
    "run_table1",
]
