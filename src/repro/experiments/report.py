"""Markdown experiment report generation.

Regenerates the measured side of EXPERIMENTS.md from live runs: the
Table I reproduction with per-row paper deltas, the validation
experiment, the Figure 6 property checks and the Conjecture 1
campaign.  Used by ``python -m repro.cli report`` to produce an
auditable artifact of the current code/calibration state.
"""

from __future__ import annotations

import io

from repro.experiments.benchmarks import (
    PAPER_AVG_P_TEC_W,
    PAPER_AVG_SWING_LOSS_C,
)
from repro.experiments.figures import figure6_data
from repro.experiments.table1 import run_table1
from repro.experiments.validation import run_validation
from repro.linalg.conjecture import run_conjecture_campaign


def generate_report(
    *,
    benchmarks=None,
    validation_refine=1,
    conjecture_matrices=100,
    seed=1364,
):
    """Run the experiment suite and render a markdown report.

    Parameters
    ----------
    benchmarks:
        Table I rows to run (default: all).
    validation_refine:
        Lateral refinement of the validation reference.
    conjecture_matrices:
        Size of the Conjecture 1 campaign.
    seed:
        Campaign seed.

    Returns
    -------
    str
        The markdown document.
    """
    out = io.StringIO()
    out.write("# Experiment report (generated)\n\n")

    # ---- Table I -----------------------------------------------------
    comparison = run_table1(benchmarks)
    out.write("## Table I\n\n")
    out.write(comparison.render(markdown=True))
    out.write("\n\n")
    out.write(
        "Measured averages: P_TEC {:.2f} W (paper {:.2f}), SwingLoss {:.1f} C "
        "(paper {:.1f}).\n\n".format(
            comparison.avg_p_tec_w,
            PAPER_AVG_P_TEC_W,
            comparison.avg_swing_loss_c,
            PAPER_AVG_SWING_LOSS_C,
        )
    )
    out.write("Per-row deltas (measured minus paper):\n\n")
    out.write("| bench | d theta_peak | d #TECs | d I_opt | d SwingLoss |\n")
    out.write("| :--- | ---: | ---: | ---: | ---: |\n")
    for name, delta in comparison.deltas().items():
        out.write(
            "| {} | {:+.2f} | {:+d} | {:+.2f} | {:+.2f} |\n".format(
                name,
                delta["theta_peak"],
                int(delta["num_tecs"]),
                delta["i_opt"],
                delta["swing_loss"],
            )
        )
    out.write("\n")

    # ---- Validation --------------------------------------------------
    outcome = run_validation(refine=validation_refine, trace_steps=16, snapshots=(15,))
    out.write("## Validation (compact vs fine-grid reference)\n\n")
    for label, value in sorted(outcome.per_case.items()):
        out.write("* `{}`: worst |diff| = {:.3f} C\n".format(label, value))
    out.write(
        "\nOverall worst {:.3f} C against the paper's < {:.1f} C claim: "
        "**{}**.\n\n".format(
            outcome.worst_abs_diff_c,
            outcome.tolerance_c,
            "PASS" if outcome.passed else "FAIL",
        )
    )

    # ---- Figure 6 ----------------------------------------------------
    fig6 = figure6_data(samples=15)
    out.write("## Figure 6 properties\n\n")
    out.write("* lambda_m = {:.2f} A\n".format(fig6.lambda_m))
    out.write("* non-negative (Lemma 3): **{}**\n".format(fig6.nonnegative))
    out.write("* convex (Theorem 3): **{}**\n".format(fig6.convex))
    out.write("* diverging at lambda_m (Theorem 2): **{}**\n\n".format(fig6.diverging))

    # ---- Conjecture 1 ------------------------------------------------
    campaign = run_conjecture_campaign(conjecture_matrices, seed=seed)
    out.write("## Conjecture 1 campaign\n\n")
    out.write(
        "* {} random PD Stieltjes matrices, {} (k,l) pairs\n".format(
            campaign.matrices_tested, campaign.pairs_tested
        )
    )
    out.write("* violations: {}\n".format(len(campaign.violations)))
    out.write("* worst margin: {:.3e}\n".format(campaign.worst_margin))
    out.write(
        "* conjecture **{}** on this campaign\n".format(
            "holds" if campaign.holds else "FAILS"
        )
    )
    return out.getvalue()
