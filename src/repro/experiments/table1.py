"""Reproduction of Table I (Section VI).

For every benchmark: solve the bare chip (``theta_peak``), run
GreedyDeploy (``#TECs``, ``I_opt``, ``P_TEC``) and the Full-Cover
baseline (``min theta_peak``, ``SwingLoss``).  ``run_table1`` returns
the rows plus paper-vs-measured deltas; invoking the module
(``python -m repro.experiments.table1``) prints the table.

Rows are evaluated through the scenario-sweep engine
(:mod:`repro.sweep`): every benchmark is one independent ``table1``
scenario, so ``run_table1(workers=4)`` fans the table out over a
process pool with bit-identical results to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import full_cover
from repro.core.deploy import greedy_deploy
from repro.core.report import BenchmarkRow, format_table1
from repro.experiments.benchmarks import BENCHMARKS, benchmark_names


@dataclass
class Table1Comparison:
    """Measured rows plus paper-vs-measured summary."""

    rows: list
    paper_rows: dict
    avg_p_tec_w: float
    avg_swing_loss_c: float
    sweep_report: object = None

    def render(self, markdown=False):
        """The measured table in the paper's layout."""
        return format_table1(self.rows, markdown=markdown)

    def deltas(self):
        """Per-row dict of measured-minus-paper deltas for key columns."""
        out = {}
        for row in self.rows:
            spec = self.paper_rows[row.name]
            out[row.name] = {
                "theta_peak": row.theta_peak_c - spec.paper_theta_peak_c,
                "num_tecs": row.num_tecs - spec.paper_num_tecs,
                "i_opt": row.i_opt_a - spec.paper_i_opt_a,
                "p_tec": row.p_tec_w - spec.paper_p_tec_w,
                "min_peak": row.fullcover_min_peak_c - spec.paper_min_peak_c,
                "swing_loss": row.swing_loss_c - spec.paper_swing_loss_c,
            }
        return out


def run_benchmark_row(name, *, stack=None, device=None, current_method="golden",
                      max_rounds=None, engine="cold"):
    """Run one Table I row; returns ``(BenchmarkRow, greedy, fullcover)``."""
    spec = BENCHMARKS[name]
    problem = spec.problem(stack=stack, device=device)
    greedy = greedy_deploy(problem, current_method=current_method,
                           max_rounds=max_rounds, engine=engine)
    baseline = full_cover(problem, current_method=current_method)
    row = BenchmarkRow.from_results(spec.name, spec.limit_c, greedy, baseline)
    return row, greedy, baseline


def row_from_scenario_result(result):
    """Rebuild a :class:`BenchmarkRow` from a ``table1`` sweep result."""
    if result.task != "table1":
        raise ValueError(
            "scenario {!r} has task {!r}, expected 'table1'".format(
                result.name, result.task
            )
        )
    values = result.values
    return BenchmarkRow(
        name=result.name,
        theta_peak_c=values["no_tec_peak_c"],
        theta_limit_c=values["limit_c"],
        num_tecs=values["num_tecs"],
        i_opt_a=values["current_a"],
        p_tec_w=values["tec_power_w"],
        fullcover_min_peak_c=values["fullcover_min_peak_c"],
        swing_loss_c=values["swing_loss_c"],
        feasible=values["feasible"],
        greedy_peak_c=values["peak_c"],
        runtime_s=result.elapsed_s,
    )


def run_table1(names=None, *, stack=None, device=None, current_method="golden",
               workers=None, max_rounds=None, engine=None):
    """Run all (or selected) Table I rows.

    Parameters
    ----------
    names:
        Benchmark keys to run (default: every Table I row).
    stack / device:
        Package/device overrides.  When given, rows run serially in
        this process (overriding objects are not part of the
        plain-data scenario vocabulary); otherwise every row is a
        sweep scenario.
    workers:
        Fan the rows out over a process pool of this size (requires
        default stack/device).  ``None`` runs the serial sweep backend.
    max_rounds:
        Greedy-round budget per row; None runs every row to natural
        termination.  Rows that exhaust the budget report
        ``feasible=False`` with the rounds taken so far.
    engine:
        GreedyDeploy engine (``"cold"`` / ``"incremental"``); None
        uses the default (``"cold"``).

    Returns a :class:`Table1Comparison`; with the sweep path the
    underlying :class:`~repro.sweep.report.SweepReport` is attached as
    ``comparison.sweep_report``.
    """
    names = list(names) if names is not None else benchmark_names()
    report = None
    if stack is None and device is None:
        from repro.sweep import SweepRunner, SweepSpec

        spec = SweepSpec.table1(names, current_method=current_method,
                                max_rounds=max_rounds, engine=engine)
        report = SweepRunner(workers).run(spec)
        if report.errors:
            first = report.errors[0]
            raise RuntimeError(
                "Table I row {!r} failed: {}: {}\n{}".format(
                    first.name, first.error_type, first.message, first.traceback
                )
            )
        by_name = {result.name: result for result in report.results}
        rows = [row_from_scenario_result(by_name[name]) for name in names]
    else:
        if workers is not None and workers != 1:
            raise ValueError(
                "workers requires the default stack/device (scenarios are "
                "plain data); run serially or drop the overrides"
            )
        rows = []
        for name in names:
            row, _, _ = run_benchmark_row(
                name, stack=stack, device=device, current_method=current_method,
                max_rounds=max_rounds, engine=engine or "cold",
            )
            rows.append(row)
    return Table1Comparison(
        rows=rows,
        paper_rows={name: BENCHMARKS[name] for name in names},
        avg_p_tec_w=float(np.mean([row.p_tec_w for row in rows])),
        avg_swing_loss_c=float(np.mean([row.swing_loss_c for row in rows])),
        sweep_report=report,
    )


def main():
    """Print the reproduced Table I with paper deltas."""
    comparison = run_table1()
    print(comparison.render())
    print()
    print(
        "averages: P_TEC {:.2f} W (paper 1.70), SwingLoss {:.1f} C (paper 4.2)".format(
            comparison.avg_p_tec_w, comparison.avg_swing_loss_c
        )
    )


if __name__ == "__main__":
    main()
