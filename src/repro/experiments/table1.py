"""Reproduction of Table I (Section VI).

For every benchmark: solve the bare chip (``theta_peak``), run
GreedyDeploy (``#TECs``, ``I_opt``, ``P_TEC``) and the Full-Cover
baseline (``min theta_peak``, ``SwingLoss``).  ``run_table1`` returns
the rows plus paper-vs-measured deltas; invoking the module
(``python -m repro.experiments.table1``) prints the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import full_cover
from repro.core.deploy import greedy_deploy
from repro.core.report import BenchmarkRow, format_table1
from repro.experiments.benchmarks import BENCHMARKS, benchmark_names


@dataclass
class Table1Comparison:
    """Measured rows plus paper-vs-measured summary."""

    rows: list
    paper_rows: dict
    avg_p_tec_w: float
    avg_swing_loss_c: float

    def render(self, markdown=False):
        """The measured table in the paper's layout."""
        return format_table1(self.rows, markdown=markdown)

    def deltas(self):
        """Per-row dict of measured-minus-paper deltas for key columns."""
        out = {}
        for row in self.rows:
            spec = self.paper_rows[row.name]
            out[row.name] = {
                "theta_peak": row.theta_peak_c - spec.paper_theta_peak_c,
                "num_tecs": row.num_tecs - spec.paper_num_tecs,
                "i_opt": row.i_opt_a - spec.paper_i_opt_a,
                "p_tec": row.p_tec_w - spec.paper_p_tec_w,
                "min_peak": row.fullcover_min_peak_c - spec.paper_min_peak_c,
                "swing_loss": row.swing_loss_c - spec.paper_swing_loss_c,
            }
        return out


def run_benchmark_row(name, *, stack=None, device=None, current_method="golden"):
    """Run one Table I row; returns ``(BenchmarkRow, greedy, fullcover)``."""
    spec = BENCHMARKS[name]
    problem = spec.problem(stack=stack, device=device)
    greedy = greedy_deploy(problem, current_method=current_method)
    baseline = full_cover(problem, current_method=current_method)
    row = BenchmarkRow.from_results(spec.name, spec.limit_c, greedy, baseline)
    return row, greedy, baseline


def run_table1(names=None, *, stack=None, device=None, current_method="golden"):
    """Run all (or selected) Table I rows.

    Returns a :class:`Table1Comparison`.
    """
    names = list(names) if names is not None else benchmark_names()
    rows = []
    for name in names:
        row, _, _ = run_benchmark_row(
            name, stack=stack, device=device, current_method=current_method
        )
        rows.append(row)
    return Table1Comparison(
        rows=rows,
        paper_rows={name: BENCHMARKS[name] for name in names},
        avg_p_tec_w=float(np.mean([row.p_tec_w for row in rows])),
        avg_swing_loss_c=float(np.mean([row.swing_loss_c for row in rows])),
    )


def main():
    """Print the reproduced Table I with paper deltas."""
    comparison = run_table1()
    print(comparison.render())
    print()
    print(
        "averages: P_TEC {:.2f} W (paper 1.70), SwingLoss {:.1f} C (paper 4.2)".format(
            comparison.avg_p_tec_w, comparison.avg_swing_loss_c
        )
    )


if __name__ == "__main__":
    main()
