"""Beyond-paper ablation studies.

Quantifies the design choices DESIGN.md calls out:

``certificate_subdivision_ablation``
    Theorem 4 lets the subdivision ``{i_t}`` be arbitrary; the paper
    notes that more subranges tighten the ``eta'`` lower bound at the
    expense of runtime.  This study measures certificate margin and
    solve count versus subdivision count.
``tec_parameter_sweep``
    Sensitivity of the Table I quantities (I_opt, P_TEC, peak, runaway
    current) to the device's Seebeck coefficient and electrical
    resistance.
``per_device_current_study``
    The paper restricts the package to one extra pin (one shared
    current).  This study relaxes that: each device gets its own
    current, optimized coordinate-wise — an idealized multi-pin
    cooling system quantifying what the single-pin constraint costs.
``grid_resolution_study``
    Accuracy/runtime of the compact model versus tile resolution
    (holding the physical die fixed), against the fine-grid reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convexity import certify_convexity
from repro.core.deploy import greedy_deploy
from repro.experiments.benchmarks import load_benchmark


@dataclass
class CertificateAblationPoint:
    subdivisions: int
    certified: bool
    margin: float
    solves: int


def certificate_subdivision_ablation(
    benchmark="alpha", *, subdivision_counts=(1, 2, 4, 8, 16), i_max=None
):
    """Certificate tightness vs subdivision count (Theorem 4 trade-off)."""
    problem = load_benchmark(benchmark)
    greedy = greedy_deploy(problem)
    model = greedy.model
    if i_max is None:
        # Certify up to twice the optimum (the range the search sweeps),
        # capped inside the runaway limit.
        lambda_m = model.runaway_current().value
        i_max = min(2.0 * greedy.current, 0.5 * lambda_m)
    points = []
    for count in subdivision_counts:
        certificate = certify_convexity(model, i_max, subdivisions=count)
        points.append(
            CertificateAblationPoint(
                subdivisions=count,
                certified=certificate.certified,
                margin=certificate.margin,
                solves=certificate.solves,
            )
        )
    return points


@dataclass
class ParameterSweepPoint:
    seebeck: float
    resistance: float
    i_opt_a: float
    peak_c: float
    p_tec_w: float
    lambda_m_a: float


def tec_parameter_sweep(
    benchmark="alpha",
    *,
    seebeck_factors=(0.5, 1.0, 1.5),
    resistance_factors=(0.5, 1.0, 2.0),
    workers=None,
):
    """Sweep device Seebeck/resistance; re-optimize the current each time.

    The deployment is held at the default device's greedy solution so
    the sweep isolates the current-setting response.  Each grid point
    is one ``optimize`` scenario of the sweep engine; ``workers`` fans
    them out over a process pool.
    """
    from repro.sweep import SweepRunner, SweepSpec

    problem = load_benchmark(benchmark)
    greedy = greedy_deploy(problem)
    spec = SweepSpec.device_grid(
        benchmark,
        greedy.tec_tiles,
        seebeck_factors=seebeck_factors,
        resistance_factors=resistance_factors,
    )
    report = SweepRunner(workers).run(spec)
    if report.errors:
        first = report.errors[0]
        raise RuntimeError(
            "device grid point {!r} failed: {}: {}".format(
                first.name, first.error_type, first.message
            )
        )
    return [
        ParameterSweepPoint(
            seebeck=result.values["seebeck"],
            resistance=result.values["resistance"],
            i_opt_a=result.values["i_opt_a"],
            peak_c=result.values["peak_c"],
            p_tec_w=result.values["p_tec_w"],
            lambda_m_a=result.values["lambda_m_a"],
        )
        for result in report.results
    ]


@dataclass
class PerDeviceCurrentResult:
    """Outcome of the idealized multi-pin study."""

    shared_peak_c: float
    shared_current: float
    per_device_peak_c: float
    per_device_currents: np.ndarray = field(default=None)
    improvement_c: float = 0.0
    sweeps: int = 0


def per_device_current_study(
    benchmark="alpha", *, max_sweeps=6, tolerance=1.0e-3
):
    """Relax the single-pin constraint: per-device currents.

    Thin wrapper over :func:`repro.core.multipin.optimize_pin_groups`
    with one group per device; see that module for the mechanics.  The
    (small) improvement over the shared current is the price of the
    paper's one-extra-pin restriction.
    """
    from repro.core.multipin import optimize_pin_groups

    problem = load_benchmark(benchmark)
    greedy = greedy_deploy(problem)
    result = optimize_pin_groups(
        greedy.model,
        shared_start=greedy.current,
        max_sweeps=max_sweeps,
        tolerance_c=tolerance,
    )
    return PerDeviceCurrentResult(
        shared_peak_c=result.shared_peak_c,
        shared_current=greedy.current,
        per_device_peak_c=result.peak_c,
        per_device_currents=result.device_currents,
        improvement_c=result.improvement_c,
        sweeps=result.sweeps,
    )


@dataclass
class ScalingPoint:
    """One point of the cooling-capability envelope."""

    total_power_w: float
    no_tec_peak_c: float
    feasible: bool
    num_tecs: int
    i_opt_a: float
    greedy_peak_c: float


def technology_scaling_study(
    benchmark="alpha", *, power_factors=(0.9, 1.0, 1.1, 1.2, 1.3), limit_c=85.0,
    workers=None,
):
    """How far can TEC cooling carry a scaling power budget?

    The paper's intro motivates active cooling with rising power
    densities; this study scales the benchmark's worst-case power map
    and re-runs GreedyDeploy at each point, exposing the *capability
    envelope*: the chip power beyond which no deployment meets the
    limit (HC06/HC09 in Table I are two individual points past their
    envelopes; this sweeps the whole curve).

    Every scaling factor is one ``greedy`` scenario of the sweep
    engine; ``workers`` fans the envelope out over a process pool.
    """
    from repro.sweep import SweepRunner, SweepSpec

    spec = SweepSpec.power_scaling(
        benchmark, factors=power_factors, limit_c=limit_c
    )
    report = SweepRunner(workers).run(spec)
    if report.errors:
        first = report.errors[0]
        raise RuntimeError(
            "scaling point {!r} failed: {}: {}".format(
                first.name, first.error_type, first.message
            )
        )
    return [
        ScalingPoint(
            total_power_w=result.values["total_power_w"],
            no_tec_peak_c=result.values["no_tec_peak_c"],
            feasible=result.values["feasible"],
            num_tecs=result.values["num_tecs"],
            i_opt_a=result.values["current_a"],
            greedy_peak_c=result.values["peak_c"],
        )
        for result in report.results
    ]


@dataclass
class GridResolutionPoint:
    rows: int
    cols: int
    peak_c: float
    nodes: int
    solve_time_s: float


def grid_resolution_study(*, resolutions=(6, 12, 24), total_power_w=20.6):
    """Compact-model peak temperature vs tile resolution.

    A fixed physical power pattern (the Alpha floorplan scaled to each
    resolution) solved at several tile granularities.  Coarser tiles
    smear the hotspot and under-predict the peak; finer tiles converge.
    """
    import time

    from repro.power.alpha import alpha_floorplan
    from repro.thermal.geometry import TileGrid
    from repro.thermal.model import PackageThermalModel

    base = alpha_floorplan()
    points = []
    for res in resolutions:
        scale = res / 12.0
        grid = TileGrid(
            res, res,
            tile_width=base.grid.tile_width / scale,
            tile_height=base.grid.tile_height / scale,
        )
        power = np.zeros(grid.num_tiles)
        for unit in base.units:
            for tile in unit.tiles:
                row, col = base.grid.row_col(tile)
                share = unit.power_per_tile_w()
                # Distribute the source tile's power over the covering
                # cells at the target resolution.
                if res >= 12:
                    factor = res // 12
                    for dr in range(factor):
                        for dc in range(factor):
                            power[grid.flat_index(row * factor + dr,
                                                  col * factor + dc)] += share / factor**2
                else:
                    factor = 12 // res
                    power[grid.flat_index(row // factor, col // factor)] += share
        start = time.perf_counter()
        model = PackageThermalModel(grid, power)
        peak = model.solve(0.0).peak_silicon_c
        elapsed = time.perf_counter() - start
        points.append(
            GridResolutionPoint(
                rows=res, cols=res, peak_c=peak,
                nodes=model.num_nodes, solve_time_s=elapsed,
            )
        )
    return points
