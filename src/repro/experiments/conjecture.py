"""The Conjecture 1 experiment (Section V.C.2).

The paper: "we have randomly generated millions of positive definite
Stieltjes matrices and verified this property in all cases."  This
module wraps the randomized campaign of
:mod:`repro.linalg.conjecture` with the experiment's reporting — and
additionally verifies the conjecture on the *actual* system matrices
``G - i D`` produced by the benchmark deployments, which is the case
Theorem 3 really consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.deploy import greedy_deploy
from repro.experiments.benchmarks import load_benchmark
from repro.linalg.conjecture import conjecture1_witness, run_conjecture_campaign
from repro.utils import ensure_rng


@dataclass
class ConjectureExperiment:
    """Outcome of the Conjecture 1 experiment."""

    random_result: object
    system_margin: float
    system_pairs: int

    @property
    def holds(self):
        return self.random_result.holds and self.system_margin > 0.0


def run_conjecture_experiment(
    *,
    num_matrices=200,
    size_range=(3, 14),
    pairs_per_matrix=None,
    benchmark="alpha",
    system_currents=(0.0, 0.5),
    system_pairs=40,
    seed=1364,
):
    """Run the randomized campaign plus the system-matrix check.

    Parameters
    ----------
    num_matrices, size_range, pairs_per_matrix:
        Passed to the randomized campaign (scale ``num_matrices`` up to
        approach the paper's "millions"; the default keeps the pytest
        benchmark quick while the campaign remains extensible).
    benchmark / system_currents / system_pairs:
        The deployed benchmark whose ``G - i D`` matrices (at the given
        fractions of the optimal current) are tested on
        ``system_pairs`` random index pairs.
    seed:
        Experiment seed.
    """
    rng = ensure_rng(seed)
    random_result = run_conjecture_campaign(
        num_matrices,
        size_range=size_range,
        pairs_per_matrix=pairs_per_matrix,
        seed=rng,
    )

    problem = load_benchmark(benchmark)
    greedy = greedy_deploy(problem)
    model = greedy.model
    g_matrix, d_diag, _, _ = model.matrices()
    dense_g = g_matrix.toarray()
    n = dense_g.shape[0]
    worst = np.inf
    tested = 0
    for fraction in system_currents:
        current = fraction * greedy.current
        system = dense_g - current * np.diag(d_diag)
        pairs = [
            (int(rng.integers(0, n)), int(rng.integers(0, n)))
            for _ in range(system_pairs)
        ]
        margin, _ = conjecture1_witness(system, pairs=pairs, check=False)
        worst = min(worst, margin)
        tested += len(pairs)
    return ConjectureExperiment(
        random_result=random_result,
        system_margin=float(worst),
        system_pairs=tested,
    )
