"""Zero-copy problem broadcast for process-pool sweep workers.

The process backend used to let every worker rebuild each package
geometry from its scenario payload — the first scenario of a geometry
paid the full layer-physics assembly *per worker*.  This module
broadcasts the parent's assembled :class:`~repro.core.problem.
CoolingSystemProblem` (carrying its recorded
:class:`~repro.thermal.assembly.NetworkBlueprint`) through one
``multiprocessing.shared_memory`` segment per geometry instead:

* the runner :func:`publish`\\ es one segment per multi-scenario
  geometry before submitting tasks, and passes only tiny
  :class:`SharedProblemHandle` records (name + size) with each task —
  task payloads never carry blueprints;
* workers :func:`load` the segment on their first scenario of the
  geometry (attach, copy out, detach immediately — a crashed worker
  can never pin a segment) and seed their per-process problem cache
  with the result, so every worker-side model build replays the
  broadcast blueprint incrementally;
* the parent's refcounted registry unlinks each segment when its last
  :func:`release` lands, and an ``atexit`` sweep unlinks anything
  still registered, so no ``/dev/shm`` entry outlives the process
  even when a sweep dies mid-flight.

Because blueprint replay is bit-identical to a fresh build, a worker
seeded over shared memory returns byte-for-byte the values it would
have produced rebuilding from scratch — pinned by
``tests/sweep/test_shm.py``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

#: Parent-side registry: segment name -> [SharedMemory, refcount].
_PUBLISHED = {}

#: Worker-side cache: segment name -> unpickled problem (one attach +
#: copy per worker process, however many scenarios ride the segment).
_LOADED = {}

_ATEXIT_REGISTERED = False


@dataclass(frozen=True)
class SharedProblemHandle:
    """A picklable pointer to a published problem segment.

    Only the segment ``name`` and payload ``size`` cross the process
    boundary — the assembled problem itself stays in shared memory.
    """

    name: str
    size: int


def _register_atexit():
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_unlink_all)
        _ATEXIT_REGISTERED = True


def publish(problem):
    """Publish a problem into a fresh shared-memory segment.

    Pickles the problem (live factorization handles are dropped by the
    session layer's ``__getstate__`` — the blueprint and plain state
    survive) and copies it into a new segment owned by this process.
    Returns a :class:`SharedProblemHandle` with refcount 1; every
    handle must eventually be :func:`release`\\ d.
    """
    payload = pickle.dumps(problem, protocol=pickle.HIGHEST_PROTOCOL)
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    _PUBLISHED[segment.name] = [segment, 1]
    _register_atexit()
    return SharedProblemHandle(name=segment.name, size=len(payload))


def retain(handle):
    """Take an extra reference on a published segment."""
    entry = _PUBLISHED.get(handle.name)
    if entry is None:
        raise KeyError(
            "segment {!r} is not published by this process".format(handle.name)
        )
    entry[1] += 1
    return handle


def release(handle):
    """Drop one reference; unlink the segment when none remain.

    Releasing a segment this process never published (or one already
    fully released) is a no-op, so cleanup paths can release
    unconditionally.
    """
    entry = _PUBLISHED.get(handle.name)
    if entry is None:
        return
    entry[1] -= 1
    if entry[1] <= 0:
        del _PUBLISHED[handle.name]
        _destroy(entry[0])


def _destroy(segment):
    try:
        segment.close()
    finally:
        try:
            segment.unlink()
        except FileNotFoundError:  # already gone (e.g. external cleanup)
            pass


def published_segments():
    """Names of the segments this process currently has published."""
    return sorted(_PUBLISHED)


def _unlink_all():
    """Unlink every still-published segment (atexit safety net)."""
    while _PUBLISHED:
        _name, entry = _PUBLISHED.popitem()
        _destroy(entry[0])


def load(handle):
    """Worker-side: the problem behind a handle (cached per process).

    Attaches to the segment, copies the payload out, and detaches
    *immediately* — no file descriptor or mapping stays open in the
    worker, so a crashed worker cannot leak or pin the segment.  The
    unpickled problem is cached per segment name and marked with
    ``_from_shared_memory = True`` (test/diagnostic breadcrumb).

    Raises ``FileNotFoundError`` if the segment is gone (e.g. the
    parent already released it); callers treat that as a cache miss
    and rebuild from the scenario payload.
    """
    problem = _LOADED.get(handle.name)
    if problem is not None:
        return problem
    segment = shared_memory.SharedMemory(name=handle.name)
    try:
        payload = bytes(segment.buf[: handle.size])
    finally:
        segment.close()
        # Python < 3.13 registers *attaches* with the resource tracker
        # too.  Under the default fork start method the worker shares
        # the publisher's tracker, whose registration set already holds
        # the name (set semantics — the extra register was a no-op), so
        # unregistering here would strip the publisher's entry and make
        # its unlink-time unregister fail.  Only under spawn/forkserver
        # does this process own a *private* tracker that would try to
        # unlink the publisher's segment at exit — unregister there.
        if (
            handle.name not in _PUBLISHED
            and multiprocessing.get_start_method(allow_none=True) != "fork"
        ):
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker already gone
                pass
    problem = pickle.loads(payload)
    problem._from_shared_memory = True
    _LOADED[handle.name] = problem
    return problem


def clear_worker_cache():
    """Drop the worker-side loaded-problem cache (tests, cache resets)."""
    _LOADED.clear()
