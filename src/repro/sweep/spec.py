"""Scenario enumeration for the sweep engine.

A :class:`Scenario` is a *plain-data* description of one independent
``(package geometry, power map, deployment, current/budget)`` problem
instance — everything a worker process needs to rebuild the problem
from scratch, and nothing that cannot cross a process boundary (no
models, no factorizations, no open handles).  A :class:`SweepSpec` is
an ordered collection of scenarios plus builder classmethods for the
sweeps the experiments actually run: Table I rows, power-scaling
envelopes, device-parameter grids, Pareto budget sweeps and generic
deployment x current grids.

Scenario tasks
--------------
``greedy``
    Run GreedyDeploy on the instance (Table-I-style single row without
    the Full-Cover baseline).
``table1``
    GreedyDeploy *plus* the Full-Cover baseline — one full Table I row.
``optimize``
    Fix the deployment (``tec_tiles``) and solve Problem 2 (optimal
    shared current) on it.
``solve``
    Fix deployment *and* current; report the steady state.
``pareto``
    Fix the deployment; find the best current under one TEC power
    budget (``budget_w``) — one point of the Pareto front.
``transient``
    Fix deployment and current; integrate the RC network for
    ``steps`` backward-Euler steps of ``dt`` seconds from ambient and
    report the trajectory's peak against the steady state (warm-up
    envelopes, settling checks).  Runs through the same
    :class:`~repro.thermal.session.SolveSession` as the steady solves,
    so its shifted factorizations land in the scenario's solver stats.
``multipin``
    Fix the deployment; optimize ``num_groups`` independent pin
    currents by coordinate descent and report the improvement over the
    paper's single shared pin.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.thermal.solve import SOLVER_MODES

#: Task identifiers accepted by :class:`Scenario`.
TASKS = ("greedy", "table1", "optimize", "solve", "pareto", "transient",
         "multipin")

#: Tasks that require a fixed deployment (``tec_tiles``).
_DEPLOYED_TASKS = ("optimize", "solve", "pareto", "transient", "multipin")


@dataclass(frozen=True)
class Scenario:
    """One independent problem instance of a sweep.

    Exactly one geometry source must be given: ``benchmark`` (a
    registered Table I name), an explicit ``rows x cols`` grid with a
    ``power_map`` (flat row-major W per tile, TEC-sized tiles), or a
    2.5D ``chiplets`` layout.

    Attributes
    ----------
    name:
        Unique label inside the sweep (used in reports and errors).
    task:
        One of :data:`TASKS`.
    benchmark:
        Registered benchmark key (``alpha``, ``hc01`` ...).
    rows / cols / power_map:
        Explicit geometry (mutually exclusive with ``benchmark``).
    chiplets:
        2.5D geometry: tuple of ``(rows, cols, row_offset, col_offset,
        power_w)`` 5-tuples, one per chiplet — the plain wire format of
        :func:`~repro.thermal.chiplet.layout_from_plain`.  The worker
        builds the layout on the default interposer and the problem via
        :meth:`~repro.core.problem.CoolingSystemProblem.from_chiplet_layout`;
        tile indices (``tec_tiles``, reported deployments) use the
        composite global flat order.
    power_scale:
        Multiplier applied to the instance's power map (capability
        envelopes, Section VI.B-style scaling).
    limit_c:
        Temperature-limit override; None keeps the benchmark's own
        limit (or 85 C for explicit geometries).
    seebeck_factor / resistance_factor:
        Device-parameter scaling relative to the calibrated thin-film
        TEC (ablation sweeps).
    tec_tiles:
        Fixed deployment for ``optimize`` / ``solve`` / ``pareto``
        tasks (flat indices).
    current_a:
        Supply current for ``solve`` tasks.
    budget_w:
        TEC power budget for ``pareto`` tasks (>= 0).
    dt / steps:
        Backward-Euler step (s) and step count for ``transient`` tasks;
        None takes the worker defaults (1 ms, 200 steps).
    rom / rom_dim / rom_tol:
        Reduced-order knobs for ``transient`` tasks — mode (one of
        :data:`~repro.linalg.mor.ROM_MODES`, None for ``"auto"``),
        target basis dimension and certified Kelvin tolerance (None
        for the :mod:`repro.linalg.mor` defaults).
    num_groups:
        Pin-group count for ``multipin`` tasks; None gives every
        deployed device its own pin.
    current_method / current_tolerance:
        Problem 2 solver knobs forwarded to
        :func:`~repro.core.current.minimize_peak_temperature`.
    max_rounds:
        Greedy-round budget for ``greedy`` / ``table1`` tasks; None
        runs to the natural termination (the
        :func:`~repro.core.deploy.greedy_deploy` default).
    engine:
        GreedyDeploy engine for ``greedy`` / ``table1`` tasks — one of
        :data:`~repro.core.deploy.DEPLOY_ENGINES` (``"cold"``,
        ``"incremental"``) or None for the default (``"cold"``).
    backend:
        Solver backend for the instance — one of
        :data:`~repro.thermal.solve.SOLVER_MODES` (``"direct"``,
        ``"reuse"``, ``"krylov"``, ``"cholesky"``, ``"auto"``), or
        None for the problem default (``"reuse"``).  Lets one sweep
        compare backends per scenario.
    """

    name: str
    task: str
    benchmark: str = None
    rows: int = None
    cols: int = None
    power_map: tuple = None
    chiplets: tuple = None
    power_scale: float = 1.0
    limit_c: float = None
    seebeck_factor: float = 1.0
    resistance_factor: float = 1.0
    tec_tiles: tuple = None
    current_a: float = None
    budget_w: float = None
    dt: float = None
    steps: int = None
    rom: str = None
    rom_dim: int = None
    rom_tol: float = None
    num_groups: int = None
    current_method: str = "golden"
    current_tolerance: float = 1.0e-4
    max_rounds: int = None
    engine: str = None
    backend: str = None

    def __post_init__(self):
        if self.max_rounds is not None:
            object.__setattr__(self, "max_rounds", int(self.max_rounds))
            if self.max_rounds < 0:
                raise ValueError(
                    "max_rounds must be None or >= 0, got {}".format(
                        self.max_rounds
                    )
                )
        if self.engine is not None:
            from repro.core.deploy import DEPLOY_ENGINES

            if self.engine not in DEPLOY_ENGINES:
                raise ValueError(
                    "engine must be one of {} (or None), got {!r}".format(
                        DEPLOY_ENGINES, self.engine
                    )
                )
        if self.backend is not None and self.backend not in SOLVER_MODES:
            raise ValueError(
                "backend must be one of {} (or None), got {!r}".format(
                    SOLVER_MODES, self.backend
                )
            )
        if self.task not in TASKS:
            raise ValueError(
                "task must be one of {}, got {!r}".format(TASKS, self.task)
            )
        has_benchmark = self.benchmark is not None
        has_explicit = self.power_map is not None
        has_chiplets = self.chiplets is not None
        if int(has_benchmark) + int(has_explicit) + int(has_chiplets) != 1:
            raise ValueError(
                "scenario {!r} needs exactly one geometry source: "
                "benchmark, rows/cols/power_map, or chiplets".format(self.name)
            )
        if has_chiplets:
            chiplets = []
            for entry in self.chiplets:
                entry = tuple(entry)
                if len(entry) != 5:
                    raise ValueError(
                        "chiplets entries of {!r} must be (rows, cols, "
                        "row_offset, col_offset, power_w) 5-tuples, got "
                        "{!r}".format(self.name, entry)
                    )
                rows, cols, row0, col0, power = entry
                chiplets.append(
                    (int(rows), int(cols), int(row0), int(col0), float(power))
                )
            if not chiplets:
                raise ValueError(
                    "chiplets of {!r} must name at least one chiplet".format(
                        self.name
                    )
                )
            object.__setattr__(self, "chiplets", tuple(chiplets))
        if has_explicit:
            if not self.rows or not self.cols:
                raise ValueError(
                    "explicit scenario {!r} needs rows and cols".format(self.name)
                )
            object.__setattr__(
                self, "power_map", tuple(float(p) for p in self.power_map)
            )
            if len(self.power_map) != self.rows * self.cols:
                raise ValueError(
                    "power_map of {!r} has {} entries for a {}x{} grid".format(
                        self.name, len(self.power_map), self.rows, self.cols
                    )
                )
        if self.power_scale <= 0.0:
            raise ValueError("power_scale must be positive")
        if self.task in _DEPLOYED_TASKS:
            if self.tec_tiles is None:
                raise ValueError(
                    "{} scenario {!r} needs tec_tiles".format(self.task, self.name)
                )
            object.__setattr__(
                self, "tec_tiles", tuple(sorted({int(t) for t in self.tec_tiles}))
            )
        if self.task in ("solve", "transient") and self.current_a is None:
            raise ValueError(
                "{} scenario {!r} needs current_a".format(self.task, self.name)
            )
        if self.task == "pareto":
            if self.budget_w is None or self.budget_w < 0.0:
                raise ValueError(
                    "pareto scenario {!r} needs budget_w >= 0".format(self.name)
                )
        if self.dt is not None:
            object.__setattr__(self, "dt", float(self.dt))
            if self.dt <= 0.0:
                raise ValueError(
                    "dt must be None or > 0, got {}".format(self.dt)
                )
        if self.steps is not None:
            object.__setattr__(self, "steps", int(self.steps))
            if self.steps < 1:
                raise ValueError(
                    "steps must be None or >= 1, got {}".format(self.steps)
                )
        if self.rom is not None:
            from repro.linalg.mor import ROM_MODES

            if self.rom not in ROM_MODES:
                raise ValueError(
                    "rom must be one of {} (or None), got {!r}".format(
                        ROM_MODES, self.rom
                    )
                )
        if self.rom_dim is not None:
            object.__setattr__(self, "rom_dim", int(self.rom_dim))
            if self.rom_dim < 1:
                raise ValueError(
                    "rom_dim must be None or >= 1, got {}".format(self.rom_dim)
                )
        if self.rom_tol is not None:
            object.__setattr__(self, "rom_tol", float(self.rom_tol))
            if self.rom_tol <= 0.0:
                raise ValueError(
                    "rom_tol must be None or > 0, got {}".format(self.rom_tol)
                )
        if self.num_groups is not None:
            object.__setattr__(self, "num_groups", int(self.num_groups))
            if not 1 <= self.num_groups <= len(self.tec_tiles or ()):
                raise ValueError(
                    "num_groups of {!r} must be in [1, num tec_tiles], "
                    "got {}".format(self.name, self.num_groups)
                )

    def geometry_key(self):
        """Hashable key identifying the *package* this scenario builds.

        Scenarios sharing a key share one
        :class:`~repro.core.problem.CoolingSystemProblem` (and through
        it one recorded
        :class:`~repro.thermal.assembly.NetworkBlueprint`) inside a
        worker process — the temperature limit is excluded because
        limit siblings share blueprints too.
        """
        return (
            self.benchmark,
            self.rows,
            self.cols,
            self.power_map,
            self.chiplets,
            self.power_scale,
            self.seebeck_factor,
            self.resistance_factor,
        )


@dataclass(frozen=True)
class SweepSpec:
    """An ordered enumeration of scenarios.

    Iterable and sized; scenario names must be unique so reports can be
    addressed by name.
    """

    scenarios: tuple
    name: str = "sweep"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        for scenario in self.scenarios:
            if not isinstance(scenario, Scenario):
                raise TypeError(
                    "SweepSpec takes Scenario objects, got {!r}".format(
                        type(scenario)
                    )
                )
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError("duplicate scenario names: {}".format(dupes))

    def __len__(self):
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    def geometry_keys(self):
        """Distinct package geometries of the sweep (build/cache units)."""
        return list(dict.fromkeys(s.geometry_key() for s in self.scenarios))

    # ------------------------------------------------------------------
    # Builders for the standard sweeps
    # ------------------------------------------------------------------

    @classmethod
    def table1(cls, names=None, *, current_method="golden", max_rounds=None,
               engine=None):
        """One ``table1`` scenario per Table I benchmark row."""
        from repro.experiments.benchmarks import benchmark_names

        names = list(names) if names is not None else benchmark_names()
        return cls(
            scenarios=[
                Scenario(name=name, task="table1", benchmark=name,
                         current_method=current_method,
                         max_rounds=max_rounds, engine=engine)
                for name in names
            ],
            name="table1",
        )

    @classmethod
    def power_scaling(cls, benchmark="alpha", *,
                      factors=(0.9, 1.0, 1.1, 1.2, 1.3), limit_c=85.0):
        """GreedyDeploy across a scaled-power capability envelope."""
        return cls(
            scenarios=[
                Scenario(
                    name="{}x{:.2f}".format(benchmark, factor),
                    task="greedy",
                    benchmark=benchmark,
                    power_scale=float(factor),
                    limit_c=limit_c,
                )
                for factor in factors
            ],
            name="power-scaling[{}]".format(benchmark),
        )

    @classmethod
    def device_grid(cls, benchmark, tec_tiles, *,
                    seebeck_factors=(0.5, 1.0, 1.5),
                    resistance_factors=(0.5, 1.0, 2.0),
                    current_method="golden"):
        """Problem 2 re-optimization across a device-parameter grid.

        The deployment is held fixed (normally the base device's greedy
        solution) so the grid isolates the current-setting response —
        the ``tec_parameter_sweep`` ablation.
        """
        scenarios = [
            Scenario(
                name="{}[a*{:g},r*{:g}]".format(benchmark, sf, rf),
                task="optimize",
                benchmark=benchmark,
                seebeck_factor=float(sf),
                resistance_factor=float(rf),
                tec_tiles=tuple(tec_tiles),
                current_method=current_method,
            )
            for sf, rf in itertools.product(seebeck_factors, resistance_factors)
        ]
        return cls(scenarios=scenarios, name="device-grid[{}]".format(benchmark))

    @classmethod
    def budget_sweep(cls, benchmark, tec_tiles, budgets_w, *,
                     limit_c=None, current_tolerance=1.0e-4):
        """One ``pareto`` scenario per TEC power budget (ascending)."""
        budgets = sorted(float(b) for b in budgets_w)
        if not budgets:
            raise ValueError("need at least one budget")
        scenarios = [
            Scenario(
                name="{}@{:.6g}W".format(benchmark, budget),
                task="pareto",
                benchmark=benchmark,
                limit_c=limit_c,
                tec_tiles=tuple(tec_tiles),
                budget_w=budget,
                current_tolerance=current_tolerance,
            )
            for budget in budgets
        ]
        return cls(scenarios=scenarios, name="budget-sweep[{}]".format(benchmark))

    @classmethod
    def solve_grid(cls, benchmarks, deployments, currents_a, *,
                   power_scales=(1.0,), backends=(None,)):
        """Cross product: benchmarks x scales x deployments x currents x backends.

        The general many-scenario workload of the ROADMAP: every
        combination becomes one ``solve`` scenario.  ``backends``
        defaults to the single problem-default backend; pass e.g.
        ``("reuse", "krylov")`` to compare solver backends scenario by
        scenario in one sweep.
        """
        backends = tuple(backends)
        scenarios = []
        for bench, scale, (dep_label, tiles), current, backend in itertools.product(
            benchmarks, power_scales, list(deployments), currents_a, backends
        ):
            name = "{}x{:.2f}/{}/i={:.4g}".format(bench, scale, dep_label, current)
            if len(backends) > 1 or backend is not None:
                name += "/{}".format(backend if backend is not None else "default")
            scenarios.append(
                Scenario(
                    name=name,
                    task="solve",
                    benchmark=bench,
                    power_scale=float(scale),
                    tec_tiles=tuple(tiles),
                    current_a=float(current),
                    backend=backend,
                )
            )
        return cls(scenarios=scenarios, name="solve-grid")

    def with_name(self, name):
        """Copy of the spec under a different name."""
        return replace(self, name=str(name))

    def with_backend(self, backend):
        """Copy of the spec with every scenario pinned to ``backend``.

        ``backend`` must be one of
        :data:`~repro.thermal.solve.SOLVER_MODES` or None (problem
        default); validation happens in the scenario constructor.
        """
        return replace(
            self,
            scenarios=tuple(replace(s, backend=backend) for s in self.scenarios),
        )
