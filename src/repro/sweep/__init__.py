"""Parallel scenario-sweep engine.

The paper's workflow is inherently many-scenario: Table I rows,
GreedyDeploy candidates, Pareto budget sweeps and ablations all
evaluate independent ``(power map, deployment, current)`` instances.
This package fans them out:

* :class:`~repro.sweep.spec.Scenario` / :class:`~repro.sweep.spec.SweepSpec`
  enumerate instances as plain data;
* :class:`~repro.sweep.runner.SweepRunner` executes them over a serial
  or process-pool backend, capturing per-scenario failures as
  :class:`~repro.sweep.report.ScenarioError` records;
* :class:`~repro.sweep.report.SweepReport` aggregates results, solver
  statistics and throughput metrics (JSON via
  :func:`repro.io.results.sweep_report_to_json`).

Serial and process backends are bit-identical by construction; see
:mod:`repro.sweep.worker`.
"""

from repro.sweep.report import ScenarioError, ScenarioResult, SweepReport
from repro.sweep.runner import BACKENDS, SweepRunner, run_sweep, validate_workers
from repro.sweep.spec import TASKS, Scenario, SweepSpec

__all__ = [
    "BACKENDS",
    "TASKS",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "run_sweep",
    "validate_workers",
]
