"""Worker-side scenario execution.

Every function here runs inside a sweep worker — either the parent
process (serial backend) or a ``ProcessPoolExecutor`` child (process
backend).  The contract with the runner is narrow: :func:`execute`
takes ``(index, scenario)`` plain data and returns a
:class:`~repro.sweep.report.ScenarioResult` *or* a
:class:`~repro.sweep.report.ScenarioError` — it never raises, so one
bad scenario cannot abort a sweep or poison the pool.

Package geometries are cached per process: scenarios sharing a
:meth:`~repro.sweep.spec.Scenario.geometry_key` share one
:class:`~repro.core.problem.CoolingSystemProblem`, and through it one
recorded :class:`~repro.thermal.assembly.NetworkBlueprint`, so a
sweep over N deployments of one package pays the layer physics once
per worker instead of N times.  Because blueprint replay is
bit-identical to a fresh build (see ``thermal/assembly.py``) and every
solve is deterministic, per-scenario results do not depend on which
scenarios a worker happened to run before — serial and process
backends produce bit-identical reports.
"""

from __future__ import annotations

import pickle
import time
import traceback
from collections import OrderedDict

import numpy as np

from repro.sweep import shm
from repro.sweep.report import ScenarioError, ScenarioResult

#: Per-process caches (worker lifetime).  Keyed so that results are
#: independent of cache warmth — see the module docstring.  The solver
#: backend is part of every problem/optimum key: two scenarios that
#: differ only in ``backend`` must never share a problem, or a warm
#: worker would answer one backend's scenario with the other's solver.
_GEOMETRY = {}   # geometry_key -> first CoolingSystemProblem built for it
_PROBLEMS = {}   # (geometry_key, limit_c, backend) -> CoolingSystemProblem
_OPTIMA = {}     # (geometry_key, limit_c, backend, tiles, method, tol)
                 #   -> (optimum, p_at_opt)

#: Shared-memory problem broadcast (zero-copy dispatch): geometry_key
#: -> :class:`~repro.sweep.shm.SharedProblemHandle` published by the
#: runner.  Consulted on a ``_GEOMETRY`` miss before building from the
#: scenario payload; results are bit-identical either way (blueprint
#: replay), the broadcast only removes the per-worker full build.
_SHARED_HANDLES = {}


def clear_caches():
    """Drop the per-process caches (tests and memory-sensitive callers)."""
    _GEOMETRY.clear()
    _PROBLEMS.clear()
    _OPTIMA.clear()
    _SHARED_HANDLES.clear()
    shm.clear_worker_cache()


def install_shared_handles(handles):
    """Adopt the runner's published segment handles (worker side).

    ``handles`` maps geometry keys to
    :class:`~repro.sweep.shm.SharedProblemHandle` records; later
    installs overwrite earlier ones key-by-key.
    """
    if handles:
        _SHARED_HANDLES.update(handles)


def _limit_for(scenario):
    if scenario.limit_c is not None:
        return float(scenario.limit_c)
    if scenario.benchmark is not None:
        from repro.experiments.benchmarks import BENCHMARKS

        return float(BENCHMARKS[scenario.benchmark].limit_c)
    return 85.0


def _backend_for(scenario):
    """The solver backend a scenario runs under (problem default when
    the scenario leaves ``backend`` unset)."""
    return scenario.backend if scenario.backend is not None else "reuse"


def _build_problem(scenario, limit_c):
    from repro.core.problem import CoolingSystemProblem
    from repro.tec.materials import chowdhury_thin_film_tec

    device = chowdhury_thin_film_tec()
    if scenario.seebeck_factor != 1.0 or scenario.resistance_factor != 1.0:
        device = device.scaled(
            seebeck=device.seebeck * scenario.seebeck_factor,
            electrical_resistance=(
                device.electrical_resistance * scenario.resistance_factor
            ),
        )
    if scenario.chiplets is not None:
        from repro.thermal.chiplet import layout_from_plain

        layout = layout_from_plain(
            tuple(
                (rows, cols, row0, col0, power * scenario.power_scale)
                for rows, cols, row0, col0, power in scenario.chiplets
            )
        )
        return CoolingSystemProblem.from_chiplet_layout(
            layout,
            max_temperature_c=limit_c,
            device=device,
            name=scenario.name,
            solver_mode=_backend_for(scenario),
        )
    if scenario.benchmark is not None:
        from repro.experiments.benchmarks import BENCHMARKS

        floorplan = BENCHMARKS[scenario.benchmark].floorplan()
        grid = floorplan.grid
        power = floorplan.power_map() * scenario.power_scale
        name = scenario.benchmark
    else:
        from repro.thermal.geometry import TileGrid

        grid = TileGrid(scenario.rows, scenario.cols)
        power = np.array(scenario.power_map, dtype=float) * scenario.power_scale
        name = scenario.name
    return CoolingSystemProblem(
        grid,
        power,
        max_temperature_c=limit_c,
        device=device,
        name=name,
        solver_mode=_backend_for(scenario),
    )


def problem_for(scenario):
    """The (cached) problem instance of a scenario.

    Limit and backend siblings of one geometry share the recorded
    network blueprint via ``CoolingSystemProblem.with_limit`` /
    ``with_solver_mode``.
    """
    key = scenario.geometry_key()
    limit = _limit_for(scenario)
    backend = _backend_for(scenario)
    problem = _PROBLEMS.get((key, limit, backend))
    if problem is None:
        base = _GEOMETRY.get(key)
        if base is None:
            base = _shared_problem(key)
            if base is not None:
                _GEOMETRY[key] = base
        if base is None:
            problem = _build_problem(scenario, limit)
            _GEOMETRY[key] = problem
        else:
            problem = base.with_limit(limit)
            if problem.solver_mode != backend:
                problem = problem.with_solver_mode(backend)
        _PROBLEMS[(key, limit, backend)] = problem
    return problem


def _shared_problem(key):
    """The broadcast problem for a geometry key, or None.

    A missing/vanished segment (the runner released it, or publishing
    failed) is treated as a plain cache miss: the worker rebuilds from
    the scenario payload, so sharing is strictly an optimization.
    """
    handle = _SHARED_HANDLES.get(key)
    if handle is None:
        return None
    try:
        return shm.load(handle)
    except (FileNotFoundError, pickle.UnpicklingError, OSError):
        return None


def _optimum_for(scenario, model):
    """Cached Problem 2 optimum of a fixed deployment.

    Budget sweeps share one deployment across many ``pareto``
    scenarios; the optimum anchors every point and is deterministic,
    so recomputing it per scenario would only burn solves.
    """
    from repro.core.current import minimize_peak_temperature

    key = (
        scenario.geometry_key(),
        _limit_for(scenario),
        _backend_for(scenario),
        scenario.tec_tiles,
        scenario.current_method,
        scenario.current_tolerance,
    )
    cached = _OPTIMA.get(key)
    if cached is None:
        optimum = minimize_peak_temperature(
            model,
            method=scenario.current_method,
            tolerance=scenario.current_tolerance,
        )
        p_at_opt = model.solve(optimum.current).tec_input_power_w()
        cached = (optimum, p_at_opt)
        _OPTIMA[key] = cached
    return cached


# ----------------------------------------------------------------------
# Task implementations — every return value is plain data.
# ----------------------------------------------------------------------

def _greedy_values(scenario, problem):
    from repro.core.deploy import greedy_deploy

    result = greedy_deploy(
        problem,
        current_method=scenario.current_method,
        current_tolerance=scenario.current_tolerance,
        max_rounds=scenario.max_rounds,
        engine=scenario.engine if scenario.engine is not None else "cold",
    )
    values = {
        "feasible": bool(result.feasible),
        "tec_tiles": [int(t) for t in result.tec_tiles],
        "num_tecs": int(result.num_tecs),
        "current_a": float(result.current),
        "peak_c": float(result.peak_c),
        "no_tec_peak_c": float(result.no_tec_peak_c),
        "tec_power_w": float(result.tec_power_w),
        "cooling_swing_c": float(result.cooling_swing_c),
        "rounds": len(result.iterations),
        "limit_c": float(problem.max_temperature_c),
        "total_power_w": float(np.sum(problem.power_map)),
    }
    if result.deploy_stats is not None:
        values["deploy_engine"] = result.deploy_stats.engine
        # ``values`` must be bit-reproducible across backends and cache
        # warmth (see the module docstring); per-round wall-clock splits
        # are execution metadata, so they stay out of the payload.
        values["round_stats"] = [
            {k: v for k, v in r.as_dict().items() if not k.endswith("_s")}
            for r in result.deploy_stats.rounds
        ]
    return result, values


def _task_greedy(scenario, problem):
    _, values = _greedy_values(scenario, problem)
    return values


def _task_table1(scenario, problem):
    from repro.core.baselines import full_cover

    greedy, values = _greedy_values(scenario, problem)
    baseline = full_cover(
        problem,
        current_method=scenario.current_method,
        current_tolerance=scenario.current_tolerance,
    )
    values.update(
        {
            "fullcover_min_peak_c": float(baseline.min_peak_c),
            "fullcover_current_a": float(baseline.current),
            "fullcover_p_tec_w": float(baseline.tec_power_w),
            "fullcover_meets_limit": bool(baseline.meets_limit),
            "swing_loss_c": float(baseline.min_peak_c - greedy.peak_c),
        }
    )
    return values


def _task_optimize(scenario, problem):
    model = problem.model(scenario.tec_tiles)
    optimum, p_at_opt = _optimum_for(scenario, model)
    state = model.solve(optimum.current)
    return {
        "i_opt_a": float(optimum.current),
        "peak_c": float(state.peak_silicon_c),
        "p_tec_w": float(state.tec_input_power_w()),
        "lambda_m_a": float(optimum.lambda_m),
        "evaluations": int(optimum.evaluations),
        "num_tecs": len(scenario.tec_tiles),
        "seebeck": float(problem.device.seebeck),
        "resistance": float(problem.device.electrical_resistance),
        "p_tec_at_opt_w": float(p_at_opt),
    }


def _solve_values(state):
    """The ``solve`` task's wire payload for one operating point."""
    return {
        "current_a": float(state.current),
        "peak_c": float(state.peak_silicon_c),
        "peak_tile": int(state.peak_tile),
        "p_tec_w": float(state.tec_input_power_w()),
    }


def _task_solve(scenario, problem):
    model = problem.model(scenario.tec_tiles)
    # The single-point task is the one-column case of the batched
    # kernel, so serial solves and batched rows share one code path.
    state = model.solve_batch([scenario.current_a])[0]
    return _solve_values(state)


def solve_batch_rows(problem, scenarios):
    """Batched ``solve``-task rows over one warm problem.

    The kernel behind the serve tier's :class:`RequestBatcher`:
    scenarios are grouped by deployment, each group's distinct
    currents are stacked into one
    :meth:`~repro.thermal.model.PackageThermalModel.solve_batch` call
    (BLAS-3 multi-RHS instead of per-request solves), and duplicate
    ``(tec_tiles, current_a)`` points fan out to every requester with
    ``coalesced: true``.  Row values are bit-identical to the serial
    :func:`execute` path; each row's ``solver_stats`` is the delta of
    the column that produced its values.  Non-``solve`` tasks fall
    back to :func:`run_task` per scenario, so mixed batches stay
    correct.
    """
    rows = [None] * len(scenarios)
    answered = {}
    groups = OrderedDict()
    for position, scenario in enumerate(scenarios):
        if scenario.task != "solve":
            before = problem.solver_stats.copy()
            values = run_task(scenario, problem)
            rows[position] = {
                "values": values,
                "solver_stats": problem.solver_stats.diff(before).as_dict(),
                "coalesced": False,
            }
            continue
        point = (scenario.tec_tiles, scenario.current_a)
        if point in answered:
            rows[position] = {"point": point, "coalesced": True}
            continue
        answered[point] = None
        groups.setdefault(scenario.tec_tiles, []).append((position, scenario))
    for tiles, members in groups.items():
        build_before = problem.solver_stats.copy()
        model = problem.model(tiles)
        build_delta = problem.solver_stats.diff(build_before)
        currents = [float(scenario.current_a) for _, scenario in members]
        for current in currents:
            if current < 0.0:
                raise ValueError("current must be >= 0, got {}".format(current))
        batch = model.solver.solve_batch(currents)
        for j, (position, scenario) in enumerate(members):
            column = batch.columns[j]
            state = _batch_state(model, column.current, batch, j)
            delta = dict(column.stats)
            if j == 0:
                # Attribute the (shared) model build to the group's
                # first column, mirroring the serial path where the
                # first solve of a deployment pays the build.
                for field, extra in build_delta.as_dict().items():
                    delta[field] += extra
            row = {
                "values": _solve_values(state),
                "solver_stats": delta,
                "coalesced": False,
            }
            rows[position] = row
            answered[(scenario.tec_tiles, scenario.current_a)] = row
    for position, row in enumerate(rows):
        if row is not None and row.get("point") is not None:
            primary = answered[row["point"]]
            rows[position] = {
                "values": primary["values"],
                "solver_stats": primary["solver_stats"],
                "coalesced": True,
            }
    return rows


def _batch_state(model, current, batch, column):
    from repro.thermal.model import ThermalState

    return ThermalState(
        model, current, batch.temperatures[:, column].copy()
    )


def _task_pareto(scenario, problem):
    from repro.core.pareto import evaluate_budget

    model = problem.model(scenario.tec_tiles)
    optimum, p_at_opt = _optimum_for(scenario, model)
    point = evaluate_budget(
        model,
        scenario.budget_w,
        optimum,
        p_at_opt,
        tolerance=scenario.current_tolerance,
    )
    return {
        "budget_w": float(point.budget_w),
        "current_a": float(point.current_a),
        "peak_c": float(point.peak_c),
        "p_tec_w": float(point.p_tec_w),
        "budget_binding": bool(point.budget_binding),
        "i_opt_a": float(optimum.current),
        "min_peak_c": float(optimum.peak_c),
        "p_tec_at_opt_w": float(p_at_opt),
    }


#: Transient-task defaults when the scenario leaves them unset.
_TRANSIENT_DT_S = 1.0e-3
_TRANSIENT_STEPS = 200


def _task_transient(scenario, problem):
    from repro.thermal.transient import TransientSimulator

    model = problem.model(scenario.tec_tiles)
    dt = scenario.dt if scenario.dt is not None else _TRANSIENT_DT_S
    steps = scenario.steps if scenario.steps is not None else _TRANSIENT_STEPS
    simulator = TransientSimulator(
        model, current=scenario.current_a, dt=dt, initial_state="ambient",
        rom=scenario.rom if scenario.rom is not None else "auto",
        rom_dim=scenario.rom_dim, rom_tol=scenario.rom_tol,
    )
    trace = simulator.run(steps)
    steady_peak = float(model.solve(scenario.current_a).peak_silicon_c)
    values = {
        "current_a": float(scenario.current_a),
        "dt_s": float(dt),
        "steps": int(steps),
        "final_peak_c": float(trace[-1]),
        "max_peak_c": float(np.max(trace)),
        "steady_peak_c": steady_peak,
        "steady_gap_c": float(steady_peak - trace[-1]),
        "rom_active": bool(simulator.rom_active),
    }
    if simulator.rom_active:
        stats = simulator.rom_stats()
        values["rom_dim"] = int(stats["dim"])
        values["rom_certified_error_k"] = float(simulator.certified_error_k)
        values["rom_full_solve_columns"] = int(stats["full_solve_columns"])
    return values


def _task_multipin(scenario, problem):
    from repro.core.multipin import optimize_pin_groups

    model = problem.model(scenario.tec_tiles)
    result = optimize_pin_groups(model, num_groups=scenario.num_groups)
    return {
        "num_groups": len(result.groups),
        "group_currents_a": [float(c) for c in result.group_currents],
        "peak_c": float(result.peak_c),
        "shared_peak_c": float(result.shared_peak_c),
        "improvement_c": float(result.improvement_c),
        "sweeps": int(result.sweeps),
        "evaluations": int(result.evaluations),
    }


_TASK_IMPLS = {
    "greedy": _task_greedy,
    "table1": _task_table1,
    "optimize": _task_optimize,
    "solve": _task_solve,
    "pareto": _task_pareto,
    "transient": _task_transient,
    "multipin": _task_multipin,
}


def run_task(scenario, problem):
    """Run a scenario's task against an explicit problem instance.

    The serve layer's thread tier uses this to execute scenarios
    against *pooled* problems (warm sessions shared across requests)
    instead of the per-process caches above; the task implementations
    — and therefore the result payloads — are exactly the ones the
    sweep backends run, which is what makes served responses
    bit-identical to CLI/sweep results.  Raises on failure; callers
    that need the fault-tolerant contract wrap it like
    :func:`execute` does.
    """
    return _TASK_IMPLS[scenario.task](scenario, problem)


def run_scenario(index, scenario):
    """Execute one scenario; raises on failure (see :func:`execute`)."""
    impl = _TASK_IMPLS[scenario.task]
    start = time.perf_counter()
    problem = problem_for(scenario)
    stats_before = problem.solver_stats.copy()
    values = impl(scenario, problem)
    return ScenarioResult(
        index=int(index),
        name=scenario.name,
        task=scenario.task,
        values=values,
        elapsed_s=time.perf_counter() - start,
        solver_stats=problem.solver_stats.diff(stats_before).as_dict(),
    )


def execute(index, scenario, shared=None):
    """Fault-tolerant entry point used by the runner backends.

    Returns a :class:`ScenarioResult` on success or a
    :class:`ScenarioError` capturing the exception — never raises.
    ``shared`` optionally carries the runner's published
    shared-memory handles (geometry key ->
    :class:`~repro.sweep.shm.SharedProblemHandle`); they are installed
    into the per-process registry before the scenario runs.
    """
    try:
        install_shared_handles(shared)
        return run_scenario(index, scenario)
    except Exception as error:  # noqa: BLE001 — captured by design
        return ScenarioError(
            index=int(index),
            name=scenario.name,
            task=scenario.task,
            error_type=type(error).__name__,
            message=str(error),
            traceback=traceback.format_exc(),
        )
