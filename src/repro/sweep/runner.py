"""Fault-tolerant parallel execution of a :class:`~repro.sweep.spec.SweepSpec`.

Two backends:

``serial``
    Run every scenario in the calling process, in spec order.  This is
    the deterministic reference backend: tests assert that the process
    backend reproduces its results bit-for-bit.
``process``
    Fan scenarios out over a ``concurrent.futures.ProcessPoolExecutor``.
    Scenarios are pure functions of their plain-data description, so
    the only coordination is the result hand-back; workers rebuild
    problems from the scenario payload and amortize package
    construction through the per-process blueprint cache in
    :mod:`repro.sweep.worker`.

When the caller let the runner *infer* the process backend from a
worker count (rather than forcing ``backend="process"``), the choice
is re-examined per sweep at :meth:`SweepRunner.run` time: on a
single-CPU host, or when the estimated per-scenario cost is too small
to amortize the fork/IPC overhead, the sweep degrades to the serial
backend (results are bit-identical by construction — serial is the
reference).  Scenarios are also dispatched to the pool in contiguous
chunks instead of one task each, so cheap scenarios share one IPC
round trip.  The decision and shape land in the report metadata under
``"runner"`` so benchmark JSON shows what actually ran.

Failures never abort the sweep, and the two failure classes stay
distinguishable in the report:

* an exception *inside* a scenario is captured worker-side as a
  :class:`~repro.sweep.report.ScenarioError` with
  ``kind="scenario"`` (formatted traceback included) — every other
  scenario still completes;
* a worker-process crash (``BrokenProcessPool``) or any other
  transport failure is captured runner-side as a ``kind="pool"``
  fault on exactly the scenarios that did not finish.  Results that
  already completed before the crash are preserved in the returned
  :class:`~repro.sweep.report.SweepReport`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from repro.sweep.report import ScenarioError, SweepReport
from repro.sweep.spec import SweepSpec
from repro.sweep.worker import execute

#: Backends accepted by :class:`SweepRunner`.
BACKENDS = ("serial", "process")

#: Relative cost weights per scenario task, in "solve equivalents" per
#: tile (a greedy deployment run factors/solves hundreds of times per
#: round; a plain solve once).  Only the *ratios* matter — the
#: estimate gates pool amortization, it is not a wall-clock model.
_TASK_WEIGHTS = {
    "greedy": 100,
    "table1": 100,
    "multipin": 40,
    "pareto": 20,
    "optimize": 20,
    "transient": 10,
    "solve": 2,
}

#: Tile count assumed for benchmark-named scenarios (the registered
#: Table I benchmarks are 16x16 grids).
_DEFAULT_TILES = 256

#: Mean per-scenario cost (tiles x task weight) below which an
#: *inferred* process pool degrades to serial: forking an interpreter,
#: re-importing the scientific stack and pickling results costs more
#: than the solve itself — the 0.94x "speedup" previously recorded in
#: ``BENCH_sweep.json`` was exactly this regime.
_POOL_COST_THRESHOLD = 10_000


def _estimate_cost(scenario):
    """Tiles x task weight — the IPC-amortization cost proxy."""
    if scenario.rows and scenario.cols:
        tiles = int(scenario.rows) * int(scenario.cols)
    else:
        tiles = _DEFAULT_TILES
    return tiles * _TASK_WEIGHTS.get(scenario.task, 10)


def _execute_chunk(items, shared=None):
    """Run a contiguous chunk of scenarios inside one worker task.

    ``items`` is a list of ``(index, scenario)`` pairs; the worker
    loops the ordinary scenario entry point over them, so per-scenario
    fault capture is untouched — one chunk result simply carries
    several scenario outcomes across the process boundary in a single
    IPC round trip.

    ``execute`` is looked up in the module globals *at call time* (not
    closed over at submit time) so test instrumentation that patches
    ``repro.sweep.runner.execute`` still intercepts chunked dispatch
    under a fork start method.
    """
    return [execute(index, scenario, shared) for index, scenario in items]


def validate_workers(workers):
    """Normalize and validate a worker count; shared with the CLI.

    ``None`` means "serial" and passes through; any other value must
    be an integer >= 1.  Non-positive counts raise ``ValueError`` —
    the library and the CLI ``--workers`` flag enforce the identical
    contract, so ``SweepRunner(0)`` can no longer silently run serial
    while ``repro sweep --workers 0`` errors out.
    """
    if workers is None:
        return None
    try:
        value = int(workers)
    except (TypeError, ValueError):
        raise ValueError(
            "workers must be None or an integer >= 1, got {!r}".format(workers)
        )
    if value < 1:
        raise ValueError(
            "workers must be a positive integer, got {}".format(value)
        )
    return value


def pool_fault(index, scenario, error):
    """A runner-side fault record for a scenario the pool lost.

    Worker-side exceptions never surface as raises (``execute``
    captures them and *returns* the error record), so anything raised
    while collecting a future is a pool-level failure: a crashed
    worker (``BrokenProcessPool``), a poisoned pipe, or a result that
    could not cross the process boundary.  Shared with the serve
    layer's process tier, which mirrors the same crash semantics.
    """
    return ScenarioError(
        index=int(index),
        name=scenario.name,
        task=scenario.task,
        error_type=type(error).__name__,
        message=str(error) or type(error).__name__,
        kind="pool",
    )


class SweepRunner:
    """Execute sweeps over a chosen backend.

    Parameters
    ----------
    workers:
        Worker-process count, ``None`` or an integer >= 1
        (:func:`validate_workers`).  ``None`` and 1 select the serial
        backend; larger values the process backend (unless ``backend``
        overrides the choice).
    backend:
        Force ``"serial"`` or ``"process"`` regardless of ``workers``.
        A *forced* process backend is never degraded at run time; an
        inferred one (``workers > 1`` with ``backend=None``) may
        degrade to serial per sweep — see :meth:`run`.
    share_blueprints:
        Process backend only: broadcast each multi-scenario geometry's
        assembled problem to the workers through one
        ``multiprocessing.shared_memory`` segment
        (:mod:`repro.sweep.shm`) instead of letting every worker pay
        the full first build.  Results are bit-identical either way;
        set False to force per-worker builds.
    """

    def __init__(self, workers=None, *, backend=None, share_blueprints=True):
        workers = validate_workers(workers)
        self._forced_backend = backend is not None
        if backend is None:
            backend = "process" if workers is not None and workers > 1 else "serial"
        if backend not in BACKENDS:
            raise ValueError(
                "backend must be one of {}, got {!r}".format(BACKENDS, backend)
            )
        if backend == "process" and workers is None:
            workers = os.cpu_count() or 1
        self.backend = backend
        self.workers = workers if backend == "process" else 1
        self.share_blueprints = bool(share_blueprints)

    def _resolve_backend(self, spec):
        """The backend this sweep will actually run, with the reason.

        A forced backend (explicit ``backend=`` at construction) and
        the serial backend pass through untouched.  An *inferred*
        process backend degrades to serial when the host has a single
        CPU (workers would serialize anyway, after paying fork and
        IPC) or when the sweep's mean estimated scenario cost sits
        below :data:`_POOL_COST_THRESHOLD` — both are the regimes
        where the pool measured *slower* than serial.
        """
        if self.backend != "process" or self._forced_backend:
            return self.backend, "forced" if self._forced_backend else "inferred"
        if (os.cpu_count() or 1) <= 1:
            return "serial", "degraded: single-CPU host"
        scenarios = list(spec)
        if scenarios:
            mean_cost = sum(
                _estimate_cost(scenario) for scenario in scenarios
            ) / len(scenarios)
            if mean_cost < _POOL_COST_THRESHOLD:
                return "serial", (
                    "degraded: mean scenario cost {:.0f} below the "
                    "IPC-amortization threshold {}".format(
                        mean_cost, _POOL_COST_THRESHOLD
                    )
                )
        return "process", "inferred"

    def _chunk_size(self, num_scenarios):
        """Chunks per worker: ~4, so stragglers still rebalance."""
        return max(1, -(-num_scenarios // (self.workers * 4)))

    def run(self, spec):
        """Run every scenario of ``spec``; returns a :class:`SweepReport`.

        Results and errors keep spec order regardless of completion
        order, so reports are reproducible across backends — including
        when an inferred process pool degrades to serial (serial *is*
        the reference ordering).  The resolved configuration is
        recorded in the report metadata under ``"runner"``.
        """
        if not isinstance(spec, SweepSpec):
            spec = SweepSpec(scenarios=tuple(spec))
        backend, reason = self._resolve_backend(spec)
        workers = self.workers if backend == "process" else 1
        runner_meta = {
            "requested_backend": self.backend,
            "requested_workers": self.workers,
            "backend": backend,
            "workers": workers,
            "reason": reason,
            "degraded": backend != self.backend,
        }
        start = time.perf_counter()
        if backend == "serial":
            outcomes = [
                execute(index, scenario)
                for index, scenario in enumerate(spec)
            ]
        else:
            runner_meta["chunk_size"] = self._chunk_size(len(list(spec)))
            outcomes = self._run_process_pool(spec, runner_meta["chunk_size"])
        metadata = dict(spec.metadata or {})
        metadata["runner"] = runner_meta
        return SweepReport.from_outcomes(
            spec_name=spec.name,
            backend=backend,
            workers=workers,
            outcomes=outcomes,
            wall_time_s=time.perf_counter() - start,
            metadata=metadata,
        )

    def _publish_blueprints(self, scenarios):
        """Broadcast multi-scenario geometries over shared memory.

        Builds (or reuses) the parent-side problem of every geometry
        that at least two scenarios share, forces its blueprint
        recording, and publishes it into one segment.  Publishing is
        strictly an optimization: any failure simply leaves the
        geometry out of the handle map and the workers rebuild from
        the scenario payload as before.
        """
        from repro.sweep import shm, worker

        counts = {}
        first = {}
        for _, scenario in scenarios:
            key = scenario.geometry_key()
            counts[key] = counts.get(key, 0) + 1
            first.setdefault(key, scenario)
        handles = {}
        for key, count in counts.items():
            if count < 2:
                continue
            try:
                problem = worker.problem_for(first[key])
                problem.model(())  # records the blueprint if not yet done
                handles[key] = shm.publish(problem)
            except Exception:  # noqa: BLE001 — sharing must never fail a sweep
                continue
        return handles

    def _run_process_pool(self, spec, chunk_size=1):
        from repro.sweep import shm

        scenarios = list(enumerate(spec))
        chunks = [
            scenarios[start:start + chunk_size]
            for start in range(0, len(scenarios), chunk_size)
        ]
        outcomes = {}
        submit_error = None
        handles = (
            self._publish_blueprints(scenarios) if self.share_blueprints else {}
        )
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {}
                for position, chunk in enumerate(chunks):
                    try:
                        futures[position] = pool.submit(
                            _execute_chunk, chunk, handles or None
                        )
                    except BrokenExecutor as error:
                        # The pool broke mid-submission; stop submitting but
                        # keep draining what is already in flight below.
                        submit_error = error
                        break
                for position, future in futures.items():
                    chunk = chunks[position]
                    try:
                        for (index, _), outcome in zip(chunk, future.result()):
                            outcomes[index] = outcome
                    except Exception as error:  # pool crash / transport failure
                        # The whole chunk travelled (and died) together:
                        # every scenario of it gets the pool fault.
                        for index, scenario in chunk:
                            if index not in outcomes:
                                outcomes[index] = pool_fault(
                                    index, scenario, error
                                )
                        if isinstance(error, BrokenExecutor):
                            submit_error = error
        finally:
            # Covers every exit — clean completion, BrokenExecutor,
            # KeyboardInterrupt — so no /dev/shm segment outlives the
            # sweep even when workers crashed mid-flight.
            for handle in handles.values():
                shm.release(handle)
        if len(outcomes) < len(scenarios):
            # Scenarios that were never submitted because the pool broke:
            # fault them explicitly so the report stays complete.
            reason = submit_error or RuntimeError("process pool shut down early")
            for index, scenario in scenarios:
                if index not in outcomes:
                    outcomes[index] = pool_fault(index, scenario, reason)
        return [outcomes[index] for index in sorted(outcomes)]


def run_sweep(spec, *, workers=None, backend=None):
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(workers, backend=backend).run(spec)
