"""Fault-tolerant parallel execution of a :class:`~repro.sweep.spec.SweepSpec`.

Two backends:

``serial``
    Run every scenario in the calling process, in spec order.  This is
    the deterministic reference backend: tests assert that the process
    backend reproduces its results bit-for-bit.
``process``
    Fan scenarios out over a ``concurrent.futures.ProcessPoolExecutor``.
    Scenarios are pure functions of their plain-data description, so
    the only coordination is the result hand-back; workers rebuild
    problems from the scenario payload and amortize package
    construction through the per-process blueprint cache in
    :mod:`repro.sweep.worker`.

Failures never abort the sweep, and the two failure classes stay
distinguishable in the report:

* an exception *inside* a scenario is captured worker-side as a
  :class:`~repro.sweep.report.ScenarioError` with
  ``kind="scenario"`` (formatted traceback included) — every other
  scenario still completes;
* a worker-process crash (``BrokenProcessPool``) or any other
  transport failure is captured runner-side as a ``kind="pool"``
  fault on exactly the scenarios that did not finish.  Results that
  already completed before the crash are preserved in the returned
  :class:`~repro.sweep.report.SweepReport`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from repro.sweep.report import ScenarioError, SweepReport
from repro.sweep.spec import SweepSpec
from repro.sweep.worker import execute

#: Backends accepted by :class:`SweepRunner`.
BACKENDS = ("serial", "process")


def validate_workers(workers):
    """Normalize and validate a worker count; shared with the CLI.

    ``None`` means "serial" and passes through; any other value must
    be an integer >= 1.  Non-positive counts raise ``ValueError`` —
    the library and the CLI ``--workers`` flag enforce the identical
    contract, so ``SweepRunner(0)`` can no longer silently run serial
    while ``repro sweep --workers 0`` errors out.
    """
    if workers is None:
        return None
    try:
        value = int(workers)
    except (TypeError, ValueError):
        raise ValueError(
            "workers must be None or an integer >= 1, got {!r}".format(workers)
        )
    if value < 1:
        raise ValueError(
            "workers must be a positive integer, got {}".format(value)
        )
    return value


def pool_fault(index, scenario, error):
    """A runner-side fault record for a scenario the pool lost.

    Worker-side exceptions never surface as raises (``execute``
    captures them and *returns* the error record), so anything raised
    while collecting a future is a pool-level failure: a crashed
    worker (``BrokenProcessPool``), a poisoned pipe, or a result that
    could not cross the process boundary.  Shared with the serve
    layer's process tier, which mirrors the same crash semantics.
    """
    return ScenarioError(
        index=int(index),
        name=scenario.name,
        task=scenario.task,
        error_type=type(error).__name__,
        message=str(error) or type(error).__name__,
        kind="pool",
    )


class SweepRunner:
    """Execute sweeps over a chosen backend.

    Parameters
    ----------
    workers:
        Worker-process count, ``None`` or an integer >= 1
        (:func:`validate_workers`).  ``None`` and 1 select the serial
        backend; larger values the process backend (unless ``backend``
        overrides the choice).
    backend:
        Force ``"serial"`` or ``"process"`` regardless of ``workers``.
    share_blueprints:
        Process backend only: broadcast each multi-scenario geometry's
        assembled problem to the workers through one
        ``multiprocessing.shared_memory`` segment
        (:mod:`repro.sweep.shm`) instead of letting every worker pay
        the full first build.  Results are bit-identical either way;
        set False to force per-worker builds.
    """

    def __init__(self, workers=None, *, backend=None, share_blueprints=True):
        workers = validate_workers(workers)
        if backend is None:
            backend = "process" if workers is not None and workers > 1 else "serial"
        if backend not in BACKENDS:
            raise ValueError(
                "backend must be one of {}, got {!r}".format(BACKENDS, backend)
            )
        if backend == "process" and workers is None:
            workers = os.cpu_count() or 1
        self.backend = backend
        self.workers = workers if backend == "process" else 1
        self.share_blueprints = bool(share_blueprints)

    def run(self, spec):
        """Run every scenario of ``spec``; returns a :class:`SweepReport`.

        Results and errors keep spec order regardless of completion
        order, so reports are reproducible across backends.
        """
        if not isinstance(spec, SweepSpec):
            spec = SweepSpec(scenarios=tuple(spec))
        start = time.perf_counter()
        if self.backend == "serial":
            outcomes = [
                execute(index, scenario)
                for index, scenario in enumerate(spec)
            ]
        else:
            outcomes = self._run_process_pool(spec)
        return SweepReport.from_outcomes(
            spec_name=spec.name,
            backend=self.backend,
            workers=self.workers,
            outcomes=outcomes,
            wall_time_s=time.perf_counter() - start,
            metadata=spec.metadata,
        )

    def _publish_blueprints(self, scenarios):
        """Broadcast multi-scenario geometries over shared memory.

        Builds (or reuses) the parent-side problem of every geometry
        that at least two scenarios share, forces its blueprint
        recording, and publishes it into one segment.  Publishing is
        strictly an optimization: any failure simply leaves the
        geometry out of the handle map and the workers rebuild from
        the scenario payload as before.
        """
        from repro.sweep import shm, worker

        counts = {}
        first = {}
        for _, scenario in scenarios:
            key = scenario.geometry_key()
            counts[key] = counts.get(key, 0) + 1
            first.setdefault(key, scenario)
        handles = {}
        for key, count in counts.items():
            if count < 2:
                continue
            try:
                problem = worker.problem_for(first[key])
                problem.model(())  # records the blueprint if not yet done
                handles[key] = shm.publish(problem)
            except Exception:  # noqa: BLE001 — sharing must never fail a sweep
                continue
        return handles

    def _run_process_pool(self, spec):
        from repro.sweep import shm

        scenarios = list(enumerate(spec))
        outcomes = {}
        submit_error = None
        handles = (
            self._publish_blueprints(scenarios) if self.share_blueprints else {}
        )
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {}
                for index, scenario in scenarios:
                    try:
                        futures[index] = pool.submit(
                            execute, index, scenario, handles or None
                        )
                    except BrokenExecutor as error:
                        # The pool broke mid-submission; stop submitting but
                        # keep draining what is already in flight below.
                        submit_error = error
                        break
                for index, future in futures.items():
                    scenario = scenarios[index][1]
                    try:
                        outcomes[index] = future.result()
                    except Exception as error:  # pool crash / transport failure
                        outcomes[index] = pool_fault(index, scenario, error)
                        if isinstance(error, BrokenExecutor):
                            submit_error = error
        finally:
            # Covers every exit — clean completion, BrokenExecutor,
            # KeyboardInterrupt — so no /dev/shm segment outlives the
            # sweep even when workers crashed mid-flight.
            for handle in handles.values():
                shm.release(handle)
        if len(outcomes) < len(scenarios):
            # Scenarios that were never submitted because the pool broke:
            # fault them explicitly so the report stays complete.
            reason = submit_error or RuntimeError("process pool shut down early")
            for index, scenario in scenarios:
                if index not in outcomes:
                    outcomes[index] = pool_fault(index, scenario, reason)
        return [outcomes[index] for index in sorted(outcomes)]


def run_sweep(spec, *, workers=None, backend=None):
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(workers, backend=backend).run(spec)
