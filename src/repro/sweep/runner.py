"""Fault-tolerant parallel execution of a :class:`~repro.sweep.spec.SweepSpec`.

Two backends:

``serial``
    Run every scenario in the calling process, in spec order.  This is
    the deterministic reference backend: tests assert that the process
    backend reproduces its results bit-for-bit.
``process``
    Fan scenarios out over a ``concurrent.futures.ProcessPoolExecutor``.
    Scenarios are pure functions of their plain-data description, so
    the only coordination is the result hand-back; workers rebuild
    problems from the scenario payload and amortize package
    construction through the per-process blueprint cache in
    :mod:`repro.sweep.worker`.

Failures never abort the sweep: a scenario that raises is captured as
a :class:`~repro.sweep.report.ScenarioError` (with the formatted
traceback) and every other scenario still completes.  A broken worker
process (hard crash) is also contained — the affected scenarios are
reported as errors.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.sweep.report import ScenarioError, SweepReport
from repro.sweep.spec import SweepSpec
from repro.sweep.worker import execute

#: Backends accepted by :class:`SweepRunner`.
BACKENDS = ("serial", "process")


class SweepRunner:
    """Execute sweeps over a chosen backend.

    Parameters
    ----------
    workers:
        Worker-process count.  ``None``, 0 or 1 select the serial
        backend; larger values the process backend (unless ``backend``
        overrides the choice).  Negative values mean "all cores".
    backend:
        Force ``"serial"`` or ``"process"`` regardless of ``workers``.
    """

    def __init__(self, workers=None, *, backend=None):
        if workers is not None:
            workers = int(workers)
            if workers < 0:
                workers = os.cpu_count() or 1
        if backend is None:
            backend = "process" if workers is not None and workers > 1 else "serial"
        if backend not in BACKENDS:
            raise ValueError(
                "backend must be one of {}, got {!r}".format(BACKENDS, backend)
            )
        if backend == "process" and (workers is None or workers < 1):
            workers = os.cpu_count() or 1
        self.backend = backend
        self.workers = workers if backend == "process" else 1

    def run(self, spec):
        """Run every scenario of ``spec``; returns a :class:`SweepReport`.

        Results and errors keep spec order regardless of completion
        order, so reports are reproducible across backends.
        """
        if not isinstance(spec, SweepSpec):
            spec = SweepSpec(scenarios=tuple(spec))
        start = time.perf_counter()
        if self.backend == "serial":
            outcomes = [
                execute(index, scenario)
                for index, scenario in enumerate(spec)
            ]
        else:
            outcomes = self._run_process_pool(spec)
        wall = time.perf_counter() - start

        results = []
        errors = []
        for outcome in outcomes:
            (errors if isinstance(outcome, ScenarioError) else results).append(
                outcome
            )
        return SweepReport(
            spec_name=spec.name,
            backend=self.backend,
            workers=self.workers,
            results=tuple(sorted(results, key=lambda r: r.index)),
            errors=tuple(sorted(errors, key=lambda e: e.index)),
            wall_time_s=wall,
            scenario_time_s=sum(r.elapsed_s for r in results),
            metadata=dict(spec.metadata),
        )

    def _run_process_pool(self, spec):
        outcomes = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(execute, index, scenario): (index, scenario)
                for index, scenario in enumerate(spec)
            }
            for future, (index, scenario) in futures.items():
                try:
                    outcomes.append(future.result())
                except Exception as error:  # pool/pickling/crash failures
                    outcomes.append(
                        ScenarioError(
                            index=index,
                            name=scenario.name,
                            task=scenario.task,
                            error_type=type(error).__name__,
                            message=str(error),
                        )
                    )
        return outcomes


def run_sweep(spec, *, workers=None, backend=None):
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(workers, backend=backend).run(spec)
