"""Result records of the scenario-sweep engine.

A sweep produces one :class:`ScenarioResult` per successfully executed
scenario and one :class:`ScenarioError` per scenario that raised —
failures are *captured*, never propagated, so a thousand-scenario
sweep survives one bad instance.  Both records are plain data
(picklable, JSON-representable) because they cross process boundaries
on the way back from :class:`~repro.sweep.runner.SweepRunner` workers.

The :class:`SweepReport` aggregates the per-scenario records with
wall-time/throughput metrics and the merged
:class:`~repro.thermal.solve.SolverStats` of every scenario's solve
engine.  JSON serialization lives in :mod:`repro.io.results`
(``sweep_report_to_json`` / ``sweep_report_from_json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.thermal.solve import SolverStats


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one successfully executed scenario.

    Attributes
    ----------
    index:
        Position of the scenario in its :class:`~repro.sweep.spec.SweepSpec`
        (results keep spec order regardless of execution order).
    name / task:
        Copied from the scenario for self-contained reports.
    values:
        Task-specific plain-data payload (e.g. ``peak_c``, ``i_opt_a``,
        ``tec_tiles`` for a ``greedy`` scenario).  Every value is a
        builtin scalar, string, list or dict, so the record serializes
        losslessly.
    elapsed_s:
        Wall time of this scenario alone (inside its worker).
    solver_stats:
        Per-scenario :class:`~repro.thermal.solve.SolverStats` delta as
        a plain dict (None when the scenario ran no solver).
    """

    index: int
    name: str
    task: str
    values: dict
    elapsed_s: float
    solver_stats: dict = None


@dataclass(frozen=True)
class ScenarioError:
    """A captured per-scenario failure.

    The original exception never crosses the process boundary (it may
    not be picklable); its type name, message and formatted traceback
    do.

    ``kind`` distinguishes the two failure classes:

    ``"scenario"``
        The scenario's own code raised — captured worker-side by
        :func:`~repro.sweep.worker.execute`, traceback included.
    ``"pool"``
        The scenario never returned because the execution machinery
        failed (a crashed worker process / ``BrokenProcessPool``, a
        poisoned pipe, an unpicklable result) — captured runner-side,
        so there is no worker traceback.  Scenarios that completed
        before the crash keep their results.
    """

    index: int
    name: str
    task: str
    error_type: str
    message: str
    traceback: str = ""
    kind: str = "scenario"


@dataclass(frozen=True)
class SweepReport:
    """Aggregate outcome of one sweep run.

    Attributes
    ----------
    spec_name:
        Name of the :class:`~repro.sweep.spec.SweepSpec` that was run.
    backend / workers:
        Execution backend (``"serial"`` or ``"process"``) and worker
        count actually used.
    results:
        Successful :class:`ScenarioResult` records, ordered by scenario
        index.
    errors:
        Captured :class:`ScenarioError` records, ordered by scenario
        index.
    wall_time_s:
        End-to-end wall time of the sweep (submission to last result).
    scenario_time_s:
        Sum of the per-scenario ``elapsed_s`` — on the process backend
        this exceeds ``wall_time_s`` when parallelism is effective.
    """

    spec_name: str
    backend: str
    workers: int
    results: tuple = ()
    errors: tuple = ()
    wall_time_s: float = 0.0
    scenario_time_s: float = 0.0
    metadata: dict = field(default_factory=dict)

    @classmethod
    def from_outcomes(cls, *, spec_name, backend, workers, outcomes,
                      wall_time_s, metadata=None):
        """Assemble a report from a mixed outcome list.

        ``outcomes`` holds :class:`ScenarioResult` and
        :class:`ScenarioError` records in any order; they are
        partitioned and re-sorted by scenario index so reports are
        reproducible regardless of completion order.  Shared by the
        sweep runner backends and the serve layer's ``/sweep``
        endpoint.
        """
        results = []
        errors = []
        for outcome in outcomes:
            (errors if isinstance(outcome, ScenarioError) else results).append(
                outcome
            )
        return cls(
            spec_name=spec_name,
            backend=backend,
            workers=workers,
            results=tuple(sorted(results, key=lambda r: r.index)),
            errors=tuple(sorted(errors, key=lambda e: e.index)),
            wall_time_s=wall_time_s,
            scenario_time_s=sum(r.elapsed_s for r in results),
            metadata=dict(metadata) if metadata else {},
        )

    @property
    def num_scenarios(self):
        """Total scenarios attempted (successes plus failures)."""
        return len(self.results) + len(self.errors)

    @property
    def ok(self):
        """True when every scenario succeeded."""
        return not self.errors

    @property
    def throughput(self):
        """Scenarios per wall-clock second (0 for an empty sweep)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.num_scenarios / self.wall_time_s

    @property
    def speedup(self):
        """Aggregate-scenario-time over wall-time ratio.

        ~1.0 on the serial backend; approaches the worker count when
        the process backend parallelizes perfectly.
        """
        if self.wall_time_s <= 0.0:
            return 1.0
        return self.scenario_time_s / self.wall_time_s

    @property
    def pool_faults(self):
        """Errors caused by the execution machinery (``kind="pool"``),
        not by scenario code — e.g. a mid-sweep ``BrokenProcessPool``."""
        return tuple(e for e in self.errors if e.kind == "pool")

    @property
    def scenario_faults(self):
        """Errors raised by scenario code itself (``kind="scenario"``)."""
        return tuple(e for e in self.errors if e.kind != "pool")

    def result_for(self, name):
        """The :class:`ScenarioResult` of the named scenario.

        Raises ``KeyError`` when the scenario failed or does not exist.
        """
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError("no successful scenario named {!r}".format(name))

    def aggregate_solver_stats(self):
        """Merged :class:`~repro.thermal.solve.SolverStats` over all results."""
        total = SolverStats()
        for result in self.results:
            if result.solver_stats:
                total.merge(SolverStats(**result.solver_stats))
        return total

    def summary(self):
        """Compact human-readable report for CLIs and benchmarks."""
        lines = [
            "sweep {!r}: {} scenarios ({} ok, {} failed) on {} backend "
            "x{} workers".format(
                self.spec_name,
                self.num_scenarios,
                len(self.results),
                len(self.errors),
                self.backend,
                self.workers,
            ),
            "wall {:.3f} s, aggregate {:.3f} s, {:.1f} scen/s, "
            "speedup {:.2f}x".format(
                self.wall_time_s,
                self.scenario_time_s,
                self.throughput,
                self.speedup,
            ),
        ]
        if self.results:
            lines.append("solver: " + self.aggregate_solver_stats().summary())
        for error in self.errors:
            lines.append(
                "FAILED [{}] {}: {}: {}{}".format(
                    error.index,
                    error.name,
                    error.error_type,
                    error.message,
                    " (pool fault)" if error.kind == "pool" else "",
                )
            )
        return "\n".join(lines)
