"""The closed-loop DTM simulator.

Integrates the package's RC network (backward Euler, as in
:mod:`repro.thermal.transient`) while a controller updates the shared
TEC supply current once per control period from the sensor readings.

Because each distinct current changes the system matrix ``G - iD``
(and hence the factorization), commanded currents are quantized to a
grid and the factorizations are cached per level — a bang-bang
controller costs two factorizations total, a PI controller a few tens.
The quantization step (default 0.05 A) is far below any thermal effect
of interest.

The per-level factorizations live in the model's
:class:`~repro.thermal.session.SolveSession`: the loop solves through
the session's ``C / dt`` view, whose per-current cache is a **bounded
true LRU** (``lu_cache_size`` levels, least-recently-commanded level
evicted first, evictions counted in ``SolverStats``) — a long trace
with many distinct quantized levels no longer grows an unbounded
private dict.  A :class:`~repro.thermal.transient.TransientSimulator`
over the same model at the same ``dt`` shares the same view, and hence
the very same factorizations.

The commanded current is always clamped to ``safety_fraction`` of the
deployment's runaway current ``lambda_m``, so no controller (or sensor
fault) can push the loop into thermal runaway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.thermal.transient import node_capacitances
from repro.utils import celsius_to_kelvin, check_positive, kelvin_to_celsius
from repro.utils.validate import check_in_range


@dataclass
class ClosedLoopResult:
    """Trace of one closed-loop run.

    Attributes
    ----------
    times_s:
        End time of each step.
    true_peak_c:
        True (noise-free) hottest silicon tile per step.
    sensed_peak_c:
        What the sensor array reported at each *control* update,
        aligned to steps (holds the last reading between updates).
    current_a:
        Commanded current active during each step.
    tec_energy_j:
        Cumulative electrical energy spent by the TECs.
    factorizations:
        Distinct current levels solved at over the simulator's
        lifetime (cache-bound independent — an evicted and
        re-factorized level still counts once).
    evictions:
        Factorizations dropped from the bounded LRU during the run.
    solver_stats:
        Plain-data :class:`~repro.thermal.session.SolverStats` delta
        of the run (session-wide, so shared-session work shows here).
    """

    times_s: np.ndarray
    true_peak_c: np.ndarray
    sensed_peak_c: np.ndarray
    current_a: np.ndarray
    tec_energy_j: float
    factorizations: int
    evictions: int = 0
    solver_stats: dict = None

    @property
    def max_true_peak_c(self):
        """Worst true peak over the run."""
        return float(np.max(self.true_peak_c))

    def time_above(self, limit_c):
        """Fraction of the run spent (truly) above ``limit_c``."""
        return float(np.mean(self.true_peak_c > limit_c))


class ClosedLoopSimulator:
    """Backward-Euler closed loop over a deployed package model.

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    controller:
        Object with ``reset()`` and ``update(sensed_peak_c, dt_s)``.
    sensors:
        A :class:`~repro.control.sensors.SensorArray`.
    dt:
        Integration step (s).
    control_period:
        Seconds between controller updates (>= ``dt``; rounded to a
        multiple of it).
    current_quantum:
        Commanded currents are rounded to this grid for factorization
        caching (A).
    safety_fraction:
        Hard ceiling on the commanded current as a fraction of the
        runaway current ``lambda_m``.
    lu_cache_size:
        LRU bound on cached per-level factorizations (see the module
        docstring).  Quantization keeps the distinct-level count small,
        so the default comfortably covers PI traces; pathological
        controllers now recompute instead of accumulating.
    session:
        Optional :class:`~repro.thermal.session.SolveSession`;
        defaults to the model's own session.
    """

    def __init__(
        self,
        model,
        controller,
        sensors,
        *,
        dt=0.01,
        control_period=0.05,
        current_quantum=0.05,
        safety_fraction=0.5,
        lu_cache_size=16,
        session=None,
    ):
        if not model.stamps:
            raise ValueError("closed-loop control needs a deployed model")
        self.model = model
        self.controller = controller
        self.sensors = sensors
        self.dt = check_positive(dt, "dt")
        control_period = check_positive(control_period, "control_period")
        self.steps_per_control = max(1, int(round(control_period / dt)))
        self.current_quantum = check_positive(current_quantum, "current_quantum")
        check_in_range(
            safety_fraction, "safety_fraction", 0.0, 1.0, inclusive=(False, False)
        )
        self.i_ceiling = safety_fraction * model.runaway_current().value

        self._capacitance = node_capacitances(model)
        self.session = session if session is not None else model.session
        self._view = self.session.view(
            self._capacitance / self.dt, cache_size=int(lu_cache_size)
        )
        self._levels = set()
        self._silicon = np.asarray(model.silicon_nodes)
        self._device = model.device
        self._n_dev = len(model.stamps)

    def _quantize(self, current):
        clamped = min(max(float(current), 0.0), self.i_ceiling)
        quantized = round(clamped / self.current_quantum) * self.current_quantum
        if quantized > self.i_ceiling:
            quantized -= self.current_quantum
        return max(quantized, 0.0)

    def run(
        self,
        steps,
        *,
        power_schedule=None,
        initial_state="ambient",
    ):
        """Run ``steps`` integration steps of the closed loop.

        Parameters
        ----------
        steps:
            Number of backward-Euler steps.
        power_schedule:
            Optional ``(step_index, time_s) -> flat tile power map``;
            ``None`` holds the model's worst-case map.
        initial_state:
            ``"ambient"``, ``"steady"`` (zero-current steady state) or
            an explicit Kelvin vector.

        Returns
        -------
        ClosedLoopResult
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        model = self.model
        if isinstance(initial_state, str):
            if initial_state == "ambient":
                theta = np.full(
                    model.num_nodes, celsius_to_kelvin(model.stack.ambient_c)
                )
            elif initial_state == "steady":
                theta = model.solve(0.0).theta_k.copy()
            else:
                raise ValueError("initial_state must be 'ambient'/'steady'/vector")
        else:
            theta = np.asarray(initial_state, dtype=float).copy()
            if theta.shape != (model.num_nodes,):
                raise ValueError("initial_state has the wrong length")

        self.controller.reset()
        stats_before = self._view.stats.copy()
        current = self._quantize(0.0)
        sensed = self.sensors.read_max(
            kelvin_to_celsius(theta[self._silicon])
        )

        times = np.empty(steps)
        true_peak = np.empty(steps)
        sensed_trace = np.empty(steps)
        current_trace = np.empty(steps)
        energy = 0.0
        time_s = 0.0
        reference_power = model.power_map

        for step in range(steps):
            if step % self.steps_per_control == 0:
                silicon_c = kelvin_to_celsius(theta[self._silicon])
                sensed = self.sensors.read_max(silicon_c)
                command = self.controller.update(
                    sensed, self.steps_per_control * self.dt
                )
                current = self._quantize(command)

            self._levels.add(current)
            rhs = (self._capacitance / self.dt) * theta + (
                self.model.system.power_vector(current)
            )
            if power_schedule is not None:
                override = power_schedule(step, time_s)
                if override is not None:
                    override = np.asarray(override, dtype=float)
                    rhs[self._silicon] += override - reference_power
            theta = self._view.solve_rhs(current, rhs)
            time_s += self.dt

            silicon_k = theta[self._silicon]
            times[step] = time_s
            true_peak[step] = kelvin_to_celsius(float(np.max(silicon_k)))
            sensed_trace[step] = sensed
            current_trace[step] = current
            if current > 0.0:
                cold = theta[model.cold_nodes]
                hot = theta[model.hot_nodes]
                power = (
                    self._device.electrical_resistance * current**2 * self._n_dev
                    + self._device.seebeck * current * float(np.sum(hot - cold))
                )
                energy += power * self.dt

        delta = self._view.stats.diff(stats_before)
        return ClosedLoopResult(
            times_s=times,
            true_peak_c=true_peak,
            sensed_peak_c=sensed_trace,
            current_a=current_trace,
            tec_energy_j=energy,
            factorizations=len(self._levels),
            evictions=delta.evictions,
            solver_stats=delta.as_dict(),
        )
