"""The closed-loop DTM simulator.

Integrates the package's RC network (backward Euler, as in
:mod:`repro.thermal.transient`) while a controller updates the shared
TEC supply current once per control period from the sensor readings.

Because each distinct current changes the system matrix ``G - iD``
(and hence the factorization), commanded currents are quantized to a
grid and the factorizations are cached per level — a bang-bang
controller costs two factorizations total, a PI controller a few tens.
The quantization step (default 0.05 A) is far below any thermal effect
of interest.

The per-level factorizations live in the model's
:class:`~repro.thermal.session.SolveSession`: the loop solves through
the session's ``C / dt`` view, whose per-current cache is a **bounded
true LRU** (``lu_cache_size`` levels, least-recently-commanded level
evicted first, evictions counted in ``SolverStats``) — a long trace
with many distinct quantized levels no longer grows an unbounded
private dict.  A :class:`~repro.thermal.transient.TransientSimulator`
over the same model at the same ``dt`` shares the same view, and hence
the very same factorizations.

The commanded current is always clamped to ``safety_fraction`` of the
deployment's runaway current ``lambda_m``, so no controller (or sensor
fault) can push the loop into thermal runaway.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.linalg.mor import ReducedTransient, resolve_rom_mode
from repro.thermal.transient import node_capacitances
from repro.utils import celsius_to_kelvin, check_positive, kelvin_to_celsius
from repro.utils.validate import check_in_range


@dataclass
class ClosedLoopResult:
    """Trace of one closed-loop run.

    Attributes
    ----------
    times_s:
        End time of each step.
    true_peak_c:
        True (noise-free) hottest silicon tile per step.
    sensed_peak_c:
        What the sensor array reported at each *control* update,
        aligned to steps (holds the last reading between updates).
    current_a:
        Commanded current active during each step.
    tec_energy_j:
        Cumulative electrical energy spent by the TECs.
    factorizations:
        Distinct current levels solved at over the simulator's
        lifetime (cache-bound independent — an evicted and
        re-factorized level still counts once).
    evictions:
        Factorizations dropped from the bounded LRU during the run.
    solver_stats:
        Plain-data :class:`~repro.thermal.session.SolverStats` delta
        of the run (session-wide, so shared-session work shows here).
    steps:
        Backward-Euler steps integrated by this run.
    wall_s:
        Wall-clock time of the integration loop (seconds), so
        ROM-vs-full comparisons read straight off the result.
    rom:
        Reduced-order accounting when the trace went through the
        certified ROM (certified error, basis size, per-run deltas of
        the full-order work counters), else ``None``.
    """

    times_s: np.ndarray
    true_peak_c: np.ndarray
    sensed_peak_c: np.ndarray
    current_a: np.ndarray
    tec_energy_j: float
    factorizations: int
    evictions: int = 0
    solver_stats: dict = None
    steps: int = 0
    wall_s: float = 0.0
    rom: dict = None

    @property
    def max_true_peak_c(self):
        """Worst true peak over the run."""
        return float(np.max(self.true_peak_c))

    def time_above(self, limit_c):
        """Fraction of the run spent (truly) above ``limit_c``."""
        return float(np.mean(self.true_peak_c > limit_c))


class ClosedLoopSimulator:
    """Backward-Euler closed loop over a deployed package model.

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    controller:
        Object with ``reset()`` and ``update(sensed_peak_c, dt_s)``.
    sensors:
        A :class:`~repro.control.sensors.SensorArray`.
    dt:
        Integration step (s).
    control_period:
        Seconds between controller updates (>= ``dt``; rounded to a
        multiple of it).
    current_quantum:
        Commanded currents are rounded to this grid for factorization
        caching (A).
    safety_fraction:
        Hard ceiling on the commanded current as a fraction of the
        runaway current ``lambda_m``.
    lu_cache_size:
        LRU bound on cached per-level factorizations (see the module
        docstring).  Quantization keeps the distinct-level count small,
        so the default comfortably covers PI traces; pathological
        controllers now recompute instead of accumulating.
    session:
        Optional :class:`~repro.thermal.session.SolveSession`;
        defaults to the model's own session.
    rom:
        Reduced-order mode (``"auto"`` / ``"always"`` / ``"off"``), as
        in :class:`~repro.thermal.transient.TransientSimulator`.  When
        engaged the loop integrates in the view's certified Krylov
        subspace and lifts only the sensor-relevant rows (silicon plus
        TEC hot/cold nodes) each step — ``O(rows * r)`` instead of a
        full sparse solve — while the certified bound guarantees the
        fed-back peak readings are within ``rom_tol`` Kelvin of the
        full-order loop's.
    rom_dim / rom_tol:
        Basis size and certified error budget (K); ``None`` takes the
        :mod:`repro.linalg.mor` defaults.
    """

    def __init__(
        self,
        model,
        controller,
        sensors,
        *,
        dt=0.01,
        control_period=0.05,
        current_quantum=0.05,
        safety_fraction=0.5,
        lu_cache_size=16,
        session=None,
        rom="auto",
        rom_dim=None,
        rom_tol=None,
    ):
        if not model.stamps:
            raise ValueError("closed-loop control needs a deployed model")
        self.model = model
        self.controller = controller
        self.sensors = sensors
        self.dt = check_positive(dt, "dt")
        control_period = check_positive(control_period, "control_period")
        self.steps_per_control = max(1, int(round(control_period / dt)))
        self.current_quantum = check_positive(current_quantum, "current_quantum")
        check_in_range(
            safety_fraction, "safety_fraction", 0.0, 1.0, inclusive=(False, False)
        )
        self.i_ceiling = safety_fraction * model.runaway_current().value

        self._capacitance = node_capacitances(model)
        self.session = session if session is not None else model.session
        self._view = self.session.view(
            self._capacitance / self.dt, cache_size=int(lu_cache_size)
        )
        self._levels = set()
        self._silicon = np.asarray(model.silicon_nodes)
        self._device = model.device
        self._n_dev = len(model.stamps)
        self.rom_mode = rom
        self._rom = None
        if resolve_rom_mode(rom, model.num_nodes):
            self._rom = self._view.reduced(dim=rom_dim, tol_kelvin=rom_tol)
        # Certified lift rows: the silicon tiles only — everything the
        # loop *reports* per step (sensor readings and the true-peak
        # trace) lives there, so the Kelvin conversion of the
        # certified envelope uses max(w[silicon]), far below the TEC
        # hot-junction peak of the weight vector.  The TEC junction
        # temperatures only enter the (diagnostic) energy integral,
        # computed from the same reduced states via an O(r) row-sum
        # dot rather than a certified per-step lift.
        self._lift_rows = self._silicon

    def _quantize(self, current):
        clamped = min(max(float(current), 0.0), self.i_ceiling)
        quantized = round(clamped / self.current_quantum) * self.current_quantum
        if quantized > self.i_ceiling:
            quantized -= self.current_quantum
        return max(quantized, 0.0)

    def run(
        self,
        steps,
        *,
        power_schedule=None,
        initial_state="ambient",
    ):
        """Run ``steps`` integration steps of the closed loop.

        Parameters
        ----------
        steps:
            Number of backward-Euler steps.
        power_schedule:
            Optional ``(step_index, time_s) -> flat tile power map``;
            ``None`` holds the model's worst-case map.
        initial_state:
            ``"ambient"``, ``"steady"`` (zero-current steady state) or
            an explicit Kelvin vector.

        Returns
        -------
        ClosedLoopResult
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        model = self.model
        if isinstance(initial_state, str):
            if initial_state == "ambient":
                theta = np.full(
                    model.num_nodes, celsius_to_kelvin(model.stack.ambient_c)
                )
            elif initial_state == "steady":
                theta = model.solve(0.0).theta_k.copy()
            else:
                raise ValueError("initial_state must be 'ambient'/'steady'/vector")
        else:
            theta = np.asarray(initial_state, dtype=float).copy()
            if theta.shape != (model.num_nodes,):
                raise ValueError("initial_state has the wrong length")

        self.controller.reset()
        stats_before = self._view.stats.copy()
        current = self._quantize(0.0)
        silicon_k = theta[self._silicon]
        sensed = self.sensors.read_max(kelvin_to_celsius(silicon_k))

        times = np.empty(steps)
        true_peak = np.empty(steps)
        sensed_trace = np.empty(steps)
        current_trace = np.empty(steps)
        energy = 0.0
        time_s = 0.0
        reference_power = model.power_map

        reduced = None
        rom_before = None
        # ROM fast path: the loop only *consumes* two scalars per step
        # (the silicon peak for the trace and sum(hot - cold) for the
        # energy integral) plus the sensor rows once per control
        # period, so full-row lifts per step would dominate the
        # reduced kernel.  Instead the reduced states are recorded,
        # the energy term is an O(r) dot with a per-generation row-sum
        # vector, sensors lift at control boundaries only, and the
        # true-peak trace is reconstructed after the loop with batched
        # BLAS-3 lifts (identical values: basis columns only ever get
        # appended, so early low-dimensional states pad with zeros).
        rom_states = None
        rom_energy_vec = None
        rom_energy_gen = None
        if self._rom is not None:
            rom_before = self._rom.stats()
            reduced = ReducedTransient(
                self._rom, theta, lift_rows=self._lift_rows
            )
            rom_states = []
        wall_start = time.perf_counter()

        for step in range(steps):
            if step % self.steps_per_control == 0:
                if reduced is not None and step > 0:
                    silicon_k = reduced.theta_rows()
                silicon_c = kelvin_to_celsius(silicon_k)
                sensed = self.sensors.read_max(silicon_c)
                command = self.controller.update(
                    sensed, self.steps_per_control * self.dt
                )
                current = self._quantize(command)

            self._levels.add(current)
            extra = None
            if power_schedule is not None:
                override = power_schedule(step, time_s)
                if override is not None:
                    extra = np.asarray(override, dtype=float) - reference_power

            if reduced is not None:
                reduced.step(
                    current,
                    extra=extra,
                    extra_rows=self._silicon if extra is not None else None,
                )
                rom_states.append(reduced.x.copy())
                if rom_energy_gen != self._rom.generation:
                    basis = self._rom.v
                    rom_energy_vec = (
                        basis[model.hot_nodes].sum(axis=0)
                        - basis[model.cold_nodes].sum(axis=0)
                    )
                    rom_energy_gen = self._rom.generation
            else:
                rhs = (self._capacitance / self.dt) * theta + (
                    self.model.system.power_vector(current)
                )
                if extra is not None:
                    rhs[self._silicon] += extra
                theta = self._view.solve_rhs(current, rhs)
                silicon_k = theta[self._silicon]
                cold = theta[model.cold_nodes]
                hot = theta[model.hot_nodes]
            time_s += self.dt

            times[step] = time_s
            if reduced is None:
                true_peak[step] = kelvin_to_celsius(float(np.max(silicon_k)))
            sensed_trace[step] = sensed
            current_trace[step] = current
            if current > 0.0:
                if reduced is not None:
                    junction_drop = float(rom_energy_vec @ reduced.x)
                else:
                    junction_drop = float(np.sum(hot - cold))
                power = (
                    self._device.electrical_resistance * current**2 * self._n_dev
                    + self._device.seebeck * current * junction_drop
                )
                energy += power * self.dt

        if reduced is not None:
            # Deferred true-peak reconstruction: pad every recorded
            # state to the final basis dimension and lift the silicon
            # rows in chunked BLAS-3 mat-mats (counted in wall_s — it
            # is part of producing the trace).
            dim = self._rom.dim
            states = np.zeros((dim, steps))
            for index, state in enumerate(rom_states):
                states[: state.shape[0], index] = state
            silicon_basis = self._rom.v[self._silicon]
            chunk = 128
            for start in range(0, steps, chunk):
                block = silicon_basis @ states[:, start : start + chunk]
                true_peak[start : start + chunk] = kelvin_to_celsius(
                    np.max(block, axis=0)
                )

        wall_s = time.perf_counter() - wall_start
        rom_info = None
        if reduced is not None:
            rom_after = self._rom.stats()
            rom_info = {
                "dim": rom_after["dim"],
                "tol_kelvin": rom_after["tol_kelvin"],
                "certified_error_k": reduced.certified_error_k,
            }
            for key in (
                "rom_steps",
                "full_solves",
                "full_solve_columns",
                "enrichments",
                "restarts",
                "refinements",
            ):
                rom_info[key] = rom_after[key] - rom_before[key]

        delta = self._view.stats.diff(stats_before)
        return ClosedLoopResult(
            times_s=times,
            true_peak_c=true_peak,
            sensed_peak_c=sensed_trace,
            current_a=current_trace,
            tec_energy_j=energy,
            factorizations=len(self._levels),
            evictions=delta.evictions,
            solver_stats=delta.as_dict(),
            steps=int(steps),
            wall_s=wall_s,
            rom=rom_info,
        )
