"""TEC supply-current controllers.

A controller maps the sensed peak temperature to a supply-current
command once per control period.  All controllers clamp their output
to ``[0, i_max]``; the loop supplies an ``i_max`` safely below the
deployment's runaway current ``lambda_m``, so no controller can drive
the package into thermal runaway even under sensor faults.
"""

from __future__ import annotations

from repro.utils import check_nonnegative, check_positive


class ConstantCurrentController:
    """Open-loop reference: always command the same current.

    With the static optimum ``I_opt`` this reproduces the paper's
    worst-case design point; with 0 it is the TECs-off baseline.
    """

    def __init__(self, current):
        self.current = check_nonnegative(current, "current")

    def reset(self):
        """No state to reset."""

    def update(self, sensed_peak_c, dt_s):
        """Return the constant command (arguments ignored)."""
        return self.current


class BangBangController:
    """On/off control with hysteresis.

    The current switches to ``i_on`` when the sensed peak exceeds
    ``threshold_c`` and back to ``i_off`` when it falls below
    ``threshold_c - hysteresis_c``.  The simplest DTM policy — and with
    TECs a far gentler one than clock gating, because "off" still
    conducts passively.
    """

    def __init__(self, threshold_c, *, hysteresis_c=1.0, i_on=5.0, i_off=0.0):
        self.threshold_c = float(threshold_c)
        self.hysteresis_c = check_nonnegative(hysteresis_c, "hysteresis_c")
        self.i_on = check_nonnegative(i_on, "i_on")
        self.i_off = check_nonnegative(i_off, "i_off")
        if self.i_off > self.i_on:
            raise ValueError("i_off must not exceed i_on")
        self._engaged = False

    def reset(self):
        """Return to the disengaged state."""
        self._engaged = False

    @property
    def engaged(self):
        """True while the controller is commanding ``i_on``."""
        return self._engaged

    def update(self, sensed_peak_c, dt_s):
        """One control decision; returns the commanded current."""
        if self._engaged:
            if sensed_peak_c < self.threshold_c - self.hysteresis_c:
                self._engaged = False
        else:
            if sensed_peak_c > self.threshold_c:
                self._engaged = True
        return self.i_on if self._engaged else self.i_off


class PiController:
    """Proportional-integral tracking of a temperature setpoint.

    Commands ``i = kp * e + ki * integral(e)`` with
    ``e = sensed_peak - setpoint`` (positive error = too hot = more
    current), clamped to ``[0, i_max]`` with integrator anti-windup
    (the integral freezes while the output is saturated in the same
    direction as the error).
    """

    def __init__(self, setpoint_c, *, kp=1.0, ki=0.2, i_max=10.0):
        self.setpoint_c = float(setpoint_c)
        self.kp = check_nonnegative(kp, "kp")
        self.ki = check_nonnegative(ki, "ki")
        self.i_max = check_positive(i_max, "i_max")
        self._integral = 0.0

    def reset(self):
        """Clear the integrator."""
        self._integral = 0.0

    def update(self, sensed_peak_c, dt_s):
        """One control step of length ``dt_s`` seconds."""
        dt_s = check_positive(dt_s, "dt_s")
        error = sensed_peak_c - self.setpoint_c
        raw = self.kp * error + self.ki * (self._integral + error * dt_s)
        command = min(max(raw, 0.0), self.i_max)
        # Anti-windup: freeze the integrator while the output is
        # saturated and the error pushes further into saturation.
        saturated_high = raw >= self.i_max and error > 0.0
        saturated_low = raw <= 0.0 and error < 0.0
        if not (saturated_high or saturated_low):
            self._integral += error * dt_s
        return command
