"""Closed-loop dynamic thermal management (beyond the paper).

The paper's introduction motivates active cooling with a vision:
"the active cooling system, the thermal monitoring system, and the
architecture-level thermal management mechanisms can operate
synergistically to achieve enhanced performance under a safe operating
temperature."  The paper itself then solves the *static* worst-case
configuration problem; this package builds the dynamic half of the
vision on top of it:

``sensors``
    On-chip thermal sensors: noisy, quantized reads of tile
    temperatures (realistic sensors are both), plus a sensor array
    placed on the TEC-covered tiles.
``controllers``
    Supply-current controllers: bang-bang with hysteresis and a PI
    tracker, both clamped to a safe ceiling below the runaway current.
``loop``
    The closed-loop simulator: a backward-Euler transient of the
    package whose TEC current is updated every control period from the
    sensor readings, with LU factorizations cached per quantized
    current level.

The static optimum from :mod:`repro.core` remains the design anchor:
the deployment comes from GreedyDeploy, and the controllers treat its
``I_opt`` (and ``lambda_m``) as the calibration for their output range.
"""

from repro.control.controllers import (
    BangBangController,
    ConstantCurrentController,
    PiController,
)
from repro.control.loop import ClosedLoopResult, ClosedLoopSimulator
from repro.control.sensors import SensorArray, ThermalSensor

__all__ = [
    "BangBangController",
    "ClosedLoopResult",
    "ClosedLoopSimulator",
    "ConstantCurrentController",
    "PiController",
    "SensorArray",
    "ThermalSensor",
]
