"""On-chip thermal sensor models.

Real thermal sensors (diode-based or ring-oscillator) read with noise
and quantization; a DTM loop sees those readings, not the true field.
:class:`ThermalSensor` models one sensor on one silicon tile;
:class:`SensorArray` groups several and reports the sensed maximum —
the quantity a peak-temperature controller acts on.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_nonnegative, ensure_rng
from repro.utils.validate import check_index


class ThermalSensor:
    """A noisy, quantized temperature sensor on one tile.

    Parameters
    ----------
    tile:
        Flat silicon tile index the sensor sits on.
    noise_std_c:
        Gaussian read-noise standard deviation (Celsius); 0 disables.
    quantization_c:
        Reading granularity (Celsius); readings are rounded to this
        step.  0 disables quantization.
    seed:
        Seed or generator for the noise stream.
    """

    def __init__(self, tile, *, noise_std_c=0.5, quantization_c=0.25, seed=None):
        self.tile = int(tile)
        self.noise_std_c = check_nonnegative(noise_std_c, "noise_std_c")
        self.quantization_c = check_nonnegative(quantization_c, "quantization_c")
        self._rng = ensure_rng(seed)

    def read(self, silicon_c):
        """One sensor reading from a flat Celsius tile vector."""
        silicon_c = np.asarray(silicon_c, dtype=float)
        tile = check_index(self.tile, "tile", silicon_c.shape[0])
        value = float(silicon_c[tile])
        if self.noise_std_c:
            value += float(self._rng.normal(0.0, self.noise_std_c))
        if self.quantization_c:
            value = round(value / self.quantization_c) * self.quantization_c
        return value


class SensorArray:
    """Sensors on a set of tiles, reporting the sensed maximum.

    Parameters
    ----------
    tiles:
        Flat tile indices to instrument (typically the TEC-covered
        tiles plus the bare-chip peak tile).
    noise_std_c / quantization_c:
        Shared sensor characteristics.
    seed:
        One seed; per-sensor streams are derived deterministically.
    """

    def __init__(self, tiles, *, noise_std_c=0.5, quantization_c=0.25, seed=None):
        tiles = sorted({int(t) for t in tiles})
        if not tiles:
            raise ValueError("sensor array needs at least one tile")
        rng = ensure_rng(seed)
        self.sensors = [
            ThermalSensor(
                tile,
                noise_std_c=noise_std_c,
                quantization_c=quantization_c,
                seed=rng,
            )
            for tile in tiles
        ]

    @property
    def tiles(self):
        """Instrumented tiles, ascending."""
        return [sensor.tile for sensor in self.sensors]

    def read_all(self, silicon_c):
        """Per-sensor readings (Celsius), in tile order."""
        return np.array([sensor.read(silicon_c) for sensor in self.sensors])

    def read_max(self, silicon_c):
        """The sensed peak temperature — the DTM loop's input."""
        return float(np.max(self.read_all(silicon_c)))

    @classmethod
    def for_deployment(cls, deployment_result, **kwargs):
        """Instrument a greedy deployment: covered tiles + bare peak."""
        model = deployment_result.model
        tiles = set(deployment_result.tec_tiles)
        tiles.add(model.solve(0.0).peak_tile)
        return cls(tiles, **kwargs)
