"""repro — on-chip active cooling with thin-film thermoelectric coolers.

A production-quality reproduction of

    Jieyi Long, Seda Ogrenci Memik, Matthew Grayson,
    "Optimization of an On-Chip Active Cooling System Based on
    Thin-Film Thermoelectric Coolers", DATE 2010.

Quickstart::

    from repro import CoolingSystemProblem, greedy_deploy
    from repro.power.alpha import alpha_floorplan

    problem = CoolingSystemProblem.from_floorplan(
        alpha_floorplan(), max_temperature_c=85.0, name="alpha")
    result = greedy_deploy(problem)
    print(result.feasible, result.num_tecs, result.current, result.peak_c)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's optimization framework
  (GreedyDeploy, convex current setting, convexity certificates,
  baselines, runaway analysis);
* :mod:`repro.thermal` — the compact package thermal model and the
  fine-grid validation reference;
* :mod:`repro.tec` — thin-film TEC device physics and compact-model
  stamps;
* :mod:`repro.power` — floorplans, the Alpha-21364-like benchmark,
  synthetic workloads, hypothetical chip generation;
* :mod:`repro.linalg` — Stieltjes/M-matrix theory, runaway currents,
  the Conjecture 1 campaign;
* :mod:`repro.experiments` — the Section VI experiment harness
  (Table I, Figures 6/7, validation, ablations).
"""

from repro.core.baselines import full_cover, no_tec_peak_c, swing_loss_c
from repro.core.convexity import certify_convexity
from repro.core.current import minimize_peak_temperature
from repro.core.deploy import greedy_deploy
from repro.core.problem import CoolingSystemProblem
from repro.core.report import BenchmarkRow, format_table1
from repro.core.runaway import runaway_curve
from repro.tec.materials import TecDeviceParameters, chowdhury_thin_film_tec
from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel
from repro.thermal.stack import Layer, PackageStack

__version__ = "1.0.0"

__all__ = [
    "BenchmarkRow",
    "CoolingSystemProblem",
    "Layer",
    "PackageStack",
    "PackageThermalModel",
    "TecDeviceParameters",
    "TileGrid",
    "__version__",
    "certify_convexity",
    "chowdhury_thin_film_tec",
    "format_table1",
    "full_cover",
    "greedy_deploy",
    "minimize_peak_temperature",
    "no_tec_peak_c",
    "runaway_curve",
    "swing_loss_c",
]
