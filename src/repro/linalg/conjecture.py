"""Randomized verification of Conjecture 1 (Section V.C.2).

Conjecture 1 of the paper: for an ``n x n`` positive definite
Stieltjes matrix ``S`` with inverse ``H`` (rows ``h_k``), the matrix
``DIAG(h_k) . H . DIAG(h_l)`` is positive definite for every pair
``1 <= k, l <= n``.

The paper could not prove the conjecture but reports verifying it on
millions of randomly generated positive definite Stieltjes matrices.
This module reproduces that campaign: it generates random instances
(:func:`repro.linalg.stieltjes.random_stieltjes`), tests the quadratic
form (Definition 2 — positive definiteness of the symmetric part), and
records the worst margin observed.

Theorem 3 consumes the conjecture: it implies
``h_kl''(i) = 2 d' (DIAG(h_k) H DIAG(h_l)) d > 0``, i.e. every entry of
``(G - i D)^{-1}`` is convex in the supply current on
``[0, lambda_m)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.linalg.inverse_positive import inverse_nonnegative_matrix
from repro.linalg.spd import smallest_eigenvalue_symmetric_part
from repro.linalg.stieltjes import random_stieltjes
from repro.utils import ensure_rng


def conjecture1_witness(stieltjes_matrix, pairs=None, *, check=True):
    """Worst pair ``(k, l)`` for Conjecture 1 on one matrix.

    Parameters
    ----------
    stieltjes_matrix:
        A positive definite Stieltjes matrix ``S``.
    pairs:
        Iterable of ``(k, l)`` index pairs to test; ``None`` tests all
        ``n^2`` pairs.
    check:
        Validate the Stieltjes/PD hypotheses before testing.

    Returns
    -------
    (min_eigenvalue, (k, l)):
        The smallest eigenvalue of the symmetric part of
        ``DIAG(h_k) H DIAG(h_l)`` over the tested pairs, and the pair
        attaining it.  Conjecture 1 holds on the tested pairs iff the
        returned eigenvalue is positive.
    """
    h_matrix = inverse_nonnegative_matrix(stieltjes_matrix, check=check)
    n = h_matrix.shape[0]
    if pairs is None:
        pairs = [(k, l) for k in range(n) for l in range(n)]
    worst_value = np.inf
    worst_pair = None
    for k, l in pairs:
        candidate = (h_matrix[k][:, np.newaxis] * h_matrix) * h_matrix[l][np.newaxis, :]
        eigenvalue = smallest_eigenvalue_symmetric_part(candidate)
        if eigenvalue < worst_value:
            worst_value = eigenvalue
            worst_pair = (int(k), int(l))
    if worst_pair is None:
        raise ValueError("no pairs supplied")
    return float(worst_value), worst_pair


def conjecture1_holds(stieltjes_matrix, pairs=None, *, tol=0.0, check=True):
    """True if Conjecture 1 holds for the tested pairs of one matrix."""
    value, _ = conjecture1_witness(stieltjes_matrix, pairs=pairs, check=check)
    return value > tol


@dataclass
class ConjectureCampaignResult:
    """Aggregate outcome of a randomized Conjecture 1 campaign.

    Attributes
    ----------
    matrices_tested:
        Number of random Stieltjes matrices generated.
    pairs_tested:
        Total ``(k, l)`` pairs whose quadratic form was checked.
    violations:
        List of ``(matrix_index, (k, l), eigenvalue)`` for every pair
        whose symmetric part failed to be positive definite.  The paper
        (and this reproduction) observes this list empty.
    worst_margin:
        Smallest eigenvalue of any tested symmetric part — the margin
        by which the conjecture held.
    sizes:
        The matrix sizes used.
    """

    matrices_tested: int = 0
    pairs_tested: int = 0
    violations: list = field(default_factory=list)
    worst_margin: float = np.inf
    sizes: list = field(default_factory=list)

    @property
    def holds(self):
        """True when no violation was observed."""
        return not self.violations


def run_conjecture_campaign(
    num_matrices,
    *,
    size_range=(3, 12),
    pairs_per_matrix=None,
    density=0.5,
    seed=None,
):
    """Reproduce the paper's randomized Conjecture 1 verification.

    Parameters
    ----------
    num_matrices:
        How many random positive definite Stieltjes matrices to draw.
    size_range:
        Inclusive ``(min, max)`` range of matrix dimensions.
    pairs_per_matrix:
        ``None`` tests every ``(k, l)`` pair (as the conjecture
        quantifies); an integer samples that many pairs uniformly,
        which lets large campaigns finish quickly.
    density:
        Off-diagonal density of the random instances.
    seed:
        Campaign seed (fully reproducible).

    Returns
    -------
    ConjectureCampaignResult
    """
    if num_matrices < 0:
        raise ValueError("num_matrices must be >= 0")
    low, high = size_range
    if not (1 <= low <= high):
        raise ValueError("invalid size_range {!r}".format(size_range))
    rng = ensure_rng(seed)
    result = ConjectureCampaignResult()
    for index in range(num_matrices):
        n = int(rng.integers(low, high + 1))
        matrix = random_stieltjes(n, density=density, seed=rng)
        if pairs_per_matrix is None:
            pairs = None
            tested = n * n
        else:
            pairs = [
                (int(rng.integers(0, n)), int(rng.integers(0, n)))
                for _ in range(pairs_per_matrix)
            ]
            tested = len(pairs)
        margin, pair = conjecture1_witness(matrix, pairs=pairs, check=False)
        result.matrices_tested += 1
        result.pairs_tested += tested
        result.sizes.append(n)
        if margin <= 0.0:
            result.violations.append((index, pair, margin))
        if margin < result.worst_margin:
            result.worst_margin = margin
    return result
