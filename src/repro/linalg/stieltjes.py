"""Stieltjes matrices: predicates, construction and random generation.

Definition 3 of the paper (after Varga, *Matrix Iterative Analysis*):
a **Stieltjes matrix** is a real symmetric matrix with non-positive
off-diagonal entries.  A *positive definite* Stieltjes matrix is a
symmetric M-matrix; its inverse is entrywise non-negative (Lemma 3).

The thermal conductance matrix ``G`` of the compact package model is an
irreducible positive definite Stieltjes matrix (Lemma 1): off-diagonals
are ``-g_kl`` for adjacent tiles and the diagonal carries the row sums
plus the conductance to ambient.

This module also provides the random positive definite Stieltjes
generator used by the Conjecture 1 campaign (the paper reports testing
"millions" of random instances).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils import ensure_rng

_DEFAULT_TOL = 1.0e-12


def _as_dense(matrix):
    if sp.issparse(matrix):
        return matrix.toarray()
    return np.asarray(matrix, dtype=float)


def is_symmetric(matrix, tol=_DEFAULT_TOL):
    """Return True if ``matrix`` is square and symmetric within ``tol``."""
    dense = _as_dense(matrix)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        return False
    scale = max(1.0, float(np.max(np.abs(dense))) if dense.size else 1.0)
    return bool(np.all(np.abs(dense - dense.T) <= tol * scale))


def is_stieltjes(matrix, tol=_DEFAULT_TOL):
    """Return True if ``matrix`` is a Stieltjes matrix (Definition 3).

    The check is purely structural (symmetry and sign pattern); it does
    not require positive definiteness.
    """
    dense = _as_dense(matrix)
    if not is_symmetric(dense, tol=tol):
        return False
    off_diagonal = dense - np.diag(np.diag(dense))
    scale = max(1.0, float(np.max(np.abs(dense))) if dense.size else 1.0)
    return bool(np.all(off_diagonal <= tol * scale))


def direct_sum(a, b):
    """Direct sum of two square matrices (Definition 1).

    Returns the block-diagonal matrix ``[[a, 0], [0, b]]``.
    """
    a = _as_dense(a)
    b = _as_dense(b)
    for name, m in (("a", a), ("b", b)):
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError("{} must be a square matrix, got shape {}".format(name, m.shape))
    p, q = a.shape[0], b.shape[0]
    out = np.zeros((p + q, p + q), dtype=float)
    out[:p, :p] = a
    out[p:, p:] = b
    return out


def random_stieltjes(
    n,
    *,
    density=0.5,
    diagonal_boost=0.1,
    magnitude=1.0,
    connected=True,
    seed=None,
):
    """Generate a random irreducible positive definite Stieltjes matrix.

    Construction: draw a random symmetric non-negative off-diagonal
    weight pattern ``W`` with the requested ``density``, then form the
    weighted graph Laplacian and add a strictly positive diagonal
    perturbation.  The result is strictly diagonally dominant with
    positive diagonal, hence symmetric positive definite, and its
    off-diagonal entries are ``-W_ij <= 0`` — a positive definite
    Stieltjes matrix, exactly the class Conjecture 1 quantifies over.

    Parameters
    ----------
    n:
        Matrix dimension (>= 1).
    density:
        Probability that a given off-diagonal pair carries a non-zero
        conductance (before the connectivity fix-up).
    diagonal_boost:
        Scale of the positive diagonal perturbation; each diagonal
        entry receives an extra ``uniform(0, diagonal_boost] *
        magnitude`` term, which plays the role of a grounding
        conductance and makes the Laplacian strictly definite.
    magnitude:
        Scale of the off-diagonal conductances.
    connected:
        If True (default), a random spanning tree is added so the
        matrix is irreducible, matching Lemma 1's hypotheses.
    seed:
        Seed or ``numpy.random.Generator``.
    """
    if n < 1:
        raise ValueError("n must be >= 1, got {}".format(n))
    rng = ensure_rng(seed)
    weights = rng.uniform(0.0, magnitude, size=(n, n))
    mask = rng.uniform(size=(n, n)) < density
    weights = np.triu(weights * mask, k=1)
    weights = weights + weights.T
    if connected and n > 1:
        # Random spanning tree: attach node k to a uniformly random
        # earlier node through a strictly positive conductance.
        order = rng.permutation(n)
        for idx in range(1, n):
            k = order[idx]
            parent = order[rng.integers(0, idx)]
            if weights[k, parent] == 0.0:
                w = rng.uniform(0.1 * magnitude, magnitude)
                weights[k, parent] = w
                weights[parent, k] = w
    laplacian = np.diag(weights.sum(axis=1)) - weights
    boost = rng.uniform(
        low=np.nextafter(0.0, 1.0), high=diagonal_boost * magnitude, size=n
    )
    return laplacian + np.diag(boost)


def stieltjes_violation(matrix):
    """Quantify how far ``matrix`` is from the Stieltjes class.

    Returns the pair ``(asymmetry, positive_offdiagonal)`` where
    ``asymmetry`` is ``max |M - M'|`` and ``positive_offdiagonal`` is
    the largest (most positive) off-diagonal entry clipped at zero.
    Both are zero exactly when the matrix is Stieltjes.  Useful in
    tests and in assembly sanity checks.
    """
    dense = _as_dense(matrix)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError("matrix must be square, got shape {}".format(dense.shape))
    asymmetry = float(np.max(np.abs(dense - dense.T))) if dense.size else 0.0
    off = dense - np.diag(np.diag(dense))
    positive_off = float(max(0.0, np.max(off))) if dense.size else 0.0
    return asymmetry, positive_off
