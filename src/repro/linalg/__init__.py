"""Matrix-theory substrate for the active-cooling optimization.

The paper's optimization framework rests on the structure of the
thermal conductance matrix ``G`` and of the Peltier coupling matrix
``D`` (Section IV.C and Section V.C):

* ``G`` is an irreducible positive definite **Stieltjes matrix**
  (Lemma 1); its inverse is entrywise non-negative (Lemma 3,
  inverse-positivity).
* There is a runaway current
  ``lambda_m = min { x' G x : x' D x = 1 }`` below which ``G - i D``
  stays positive definite and above which it is not (Theorem 1).
* Every entry of ``(G - i D)^{-1}`` diverges to ``+inf`` as
  ``i -> lambda_m`` (Theorem 2 — thermal runaway).
* Under Conjecture 1, each entry of ``(G - i D)^{-1}`` is convex in
  ``i`` on ``[0, lambda_m)`` (Theorem 3).

This package implements those predicates, the runaway-current
computation (the paper's Cholesky binary search plus a
generalized-eigenvalue cross-check), and the randomized Conjecture 1
verification campaign.  It is written for *generic* matrices — the
thermal substrate produces (sparse) ``G``/``D`` pairs and hands them to
these routines.
"""

from repro.linalg.cholesky import (
    HAVE_CHOLMOD,
    CholeskyFactor,
    NotPositiveDefiniteError,
    spd_factorize,
)
from repro.linalg.conjecture import (
    ConjectureCampaignResult,
    conjecture1_holds,
    conjecture1_witness,
    run_conjecture_campaign,
)
from repro.linalg.inverse_positive import (
    inverse_is_nonnegative,
    inverse_nonnegative_matrix,
)
from repro.linalg.irreducible import adjacency_graph, is_irreducible
from repro.linalg.krylov import (
    DEFAULT_RTOL,
    KRYLOV_METHODS,
    KrylovReport,
    krylov_solve,
)
from repro.linalg.mor import (
    DEFAULT_ROM_DIM,
    DEFAULT_ROM_TOL_K,
    ROM_AUTO_MIN_NODES,
    ROM_MODES,
    CertificationError,
    ReducedModel,
    ReducedTransient,
    block_arnoldi,
    moments,
    reduce_pair,
    resolve_rom_mode,
)
from repro.linalg.runaway import (
    RunawayCurrent,
    runaway_current,
    runaway_current_binary_search,
    runaway_current_eigen,
)
from repro.linalg.spd import cholesky_is_spd, is_positive_definite
from repro.linalg.stieltjes import (
    direct_sum,
    is_stieltjes,
    is_symmetric,
    random_stieltjes,
)

__all__ = [
    "CertificationError",
    "CholeskyFactor",
    "ConjectureCampaignResult",
    "DEFAULT_ROM_DIM",
    "DEFAULT_ROM_TOL_K",
    "DEFAULT_RTOL",
    "HAVE_CHOLMOD",
    "KRYLOV_METHODS",
    "KrylovReport",
    "NotPositiveDefiniteError",
    "ROM_AUTO_MIN_NODES",
    "ROM_MODES",
    "ReducedModel",
    "ReducedTransient",
    "RunawayCurrent",
    "adjacency_graph",
    "block_arnoldi",
    "cholesky_is_spd",
    "conjecture1_holds",
    "conjecture1_witness",
    "direct_sum",
    "inverse_is_nonnegative",
    "inverse_nonnegative_matrix",
    "is_irreducible",
    "is_positive_definite",
    "is_stieltjes",
    "is_symmetric",
    "krylov_solve",
    "moments",
    "random_stieltjes",
    "reduce_pair",
    "resolve_rom_mode",
    "run_conjecture_campaign",
    "runaway_current",
    "runaway_current_binary_search",
    "runaway_current_eigen",
    "spd_factorize",
]
