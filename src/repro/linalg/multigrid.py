"""Geometric multigrid for the layered tile-lattice systems.

The paper's steady state is ``(G - i D) theta = p`` on a HotSpot-style
layered tile lattice: a handful of conduction layers (die, TIM/TEC,
spreader, sink), each dissected into the same ``rows x cols`` tile
grid, coupled laterally inside a layer and vertically between facing
tiles, plus a few lumped periphery nodes.  Every assembled-matrix
backend (direct/reuse/krylov/cholesky) pays sparse-factorization fill
that grows superlinearly in the node count; on this structured problem
class a geometric multigrid preconditioner gives O(n) work *and* O(n)
memory, which is what makes 256x256-and-beyond chiplet-scale grids
tractable.

Three pieces, all generic linear algebra (the thermal layer only
supplies the :class:`LatticeGeometry` description):

``LatticeStencil``
    Matrix-free application of a lattice operator: the assembled
    matrix is decomposed once into per-layer dense conductance grids
    (horizontal/vertical neighbour weights), a diagonal, and a small
    sparse residual for the irregular part (periphery couplings).
    :meth:`LatticeStencil.apply_G` then evaluates ``A @ x`` with pure
    vectorized numpy grid arithmetic — no assembled-matrix indexing on
    the hot path, and the TEC ``-iD`` term stays a rank-structured
    diagonal correction applied on top (see the session layer).

``MultigridHierarchy``
    Aggregation-based geometric coarsening.  On a lattice the
    aggregates are per-layer 2x2 tile agglomerations (semicoarsening:
    layers are never merged, periphery nodes ride along as
    singletons); off-lattice systems fall back to greedy pairwise
    strength matching.  Coarse operators are Galerkin products
    ``P^T A P`` with a smoothed-aggregation prolongator, smoothing is
    damped Jacobi or (default) Chebyshev, V- and F-cycles are
    supported, and the coarsest level is solved directly.  The
    integer aggregation plan is exposed for reuse, so shifted views of
    the same system re-Galerkin without re-aggregating.

``mg_solve``
    Standalone stationary multigrid iteration with a true-residual
    report, mirroring :func:`repro.linalg.krylov.krylov_solve`.  The
    hierarchy also plugs directly into ``krylov_solve`` as a
    preconditioner callable (:meth:`MultigridHierarchy.precondition`)
    — the session layer runs CG with one V-cycle per application.

Fork safety: a hierarchy pickles cleanly — the coarsest-level
factorization (a live ``splu`` handle) is dropped on ``__getstate__``
and rebuilt lazily, like every factorization in the session core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

#: Smoothers accepted by :class:`MultigridHierarchy`.
SMOOTHERS = ("chebyshev", "jacobi")

#: Cycle kinds accepted by the hierarchy and :func:`mg_solve`.
CYCLE_KINDS = ("V", "F")

#: Stop coarsening once a level has at most this many unknowns; the
#: remaining system is factored directly (its fill is negligible).
DEFAULT_COARSE_SIZE = 400

#: Hard cap on the level count (a 2x2 lattice agglomeration divides
#: the unknowns by ~4 per level, so this is never the binding limit on
#: real grids).
DEFAULT_MAX_LEVELS = 16

#: Default smoothing polynomial degree (Chebyshev) / sweep count
#: (Jacobi) applied before and after each coarse-grid correction.
DEFAULT_SWEEPS = 2

#: Default relative-residual target of :func:`mg_solve`.
DEFAULT_RTOL = 1.0e-10

#: Default number of finest levels whose prolongator is smoothed (see
#: ``smooth_prolongator`` on :class:`MultigridHierarchy`).
DEFAULT_SMOOTH_LEVELS = 1


@dataclass(frozen=True, eq=False)
class LatticeGeometry:
    """Layered-lattice description of an assembled system.

    Attributes
    ----------
    rows / cols:
        Tile-grid shape shared by every gridded layer.
    layer:
        Per-node integer layer id (length ``n``); ``-1`` for nodes
        outside the lattice (periphery rings, lumped extras).
    tile:
        Per-node flat row-major tile index; ``-1`` off-lattice.
    """

    rows: int
    cols: int
    layer: np.ndarray
    tile: np.ndarray

    @property
    def num_nodes(self):
        return self.layer.shape[0]

    def on_lattice(self):
        """Boolean mask of the nodes that sit on the tile grid."""
        return self.tile >= 0


def validate_lattice_geometry(matrix_size, geometry):
    """Whether ``geometry`` consistently describes a ``matrix_size`` system.

    The geometry usually arrives from the assembly layer and matches by
    construction; but hierarchies are also built over externally
    supplied matrices (tests, shifted copies, experiments), where a
    stale or hand-rolled geometry can disagree with the operator.
    Feeding such a geometry to :func:`lattice_coarsen` or
    :class:`LatticeStencil` would mis-aggregate silently (or raise deep
    inside the stencil), so :class:`MultigridHierarchy` checks here and
    degrades to :func:`pairwise_aggregates` instead.  Checked:

    * node count matches the matrix dimension;
    * positive lattice shape, every on-lattice tile index in range;
    * on-lattice layer ids non-negative;
    * no two nodes claim the same ``(layer, tile)`` slot;
    * at least one node on the lattice at all.
    """
    if geometry is None:
        return False
    layer = np.asarray(geometry.layer)
    tile = np.asarray(geometry.tile)
    if layer.ndim != 1 or tile.ndim != 1:
        return False
    if layer.shape[0] != matrix_size or tile.shape[0] != matrix_size:
        return False
    rows, cols = int(geometry.rows), int(geometry.cols)
    if rows <= 0 or cols <= 0:
        return False
    on = tile >= 0
    if not np.any(on):
        return False
    num_tiles = rows * cols
    if np.any(tile[on] >= num_tiles) or np.any(layer[on] < 0):
        return False
    key = layer[on].astype(np.int64) * num_tiles + tile[on]
    return int(np.unique(key).size) == int(key.size)


def lattice_coarsen(geometry):
    """One per-layer 2x2 tile-agglomeration step.

    Tiles ``(r, c)`` of every layer collapse into coarse tile
    ``(r // 2, c // 2)`` of the same layer — layers are never merged
    (semicoarsening), and off-lattice nodes become singleton
    aggregates appended after the lattice aggregates.  Returns
    ``(aggregates, coarse_geometry)`` where ``aggregates[i]`` is the
    coarse index of fine node ``i``.
    """
    layer = np.asarray(geometry.layer)
    tile = np.asarray(geometry.tile)
    n = layer.shape[0]
    crows = (geometry.rows + 1) // 2
    ccols = (geometry.cols + 1) // 2
    on = tile >= 0
    agg = np.full(n, -1, dtype=np.int64)
    r = tile[on] // geometry.cols
    c = tile[on] % geometry.cols
    ctile = (r // 2) * ccols + (c // 2)
    key = layer[on].astype(np.int64) * (crows * ccols) + ctile
    unique, inverse = np.unique(key, return_inverse=True)
    agg[on] = inverse
    off = np.flatnonzero(~on)
    agg[off] = unique.size + np.arange(off.size)
    nc = unique.size + off.size
    coarse_layer = np.full(nc, -1, dtype=np.int64)
    coarse_tile = np.full(nc, -1, dtype=np.int64)
    coarse_layer[agg[on]] = layer[on]
    coarse_tile[agg[on]] = ctile
    coarse = LatticeGeometry(
        rows=crows, cols=ccols, layer=coarse_layer, tile=coarse_tile
    )
    return agg, coarse


def pairwise_aggregates(matrix):
    """Greedy pairwise strength matching (off-lattice fallback).

    Walks the nodes in order and pairs each unaggregated node with its
    strongest unaggregated neighbour (strength
    ``|a_ij| / sqrt(a_ii a_jj)``), leaving singletons where no free
    neighbour exists — the classic pairwise-aggregation pass, halving
    the unknowns per level.  Deterministic for a fixed matrix.
    """
    csr = sp.csr_matrix(matrix)
    n = csr.shape[0]
    scale = np.sqrt(np.maximum(csr.diagonal(), np.finfo(float).tiny))
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    agg = np.full(n, -1, dtype=np.int64)
    count = 0
    for i in range(n):
        if agg[i] >= 0:
            continue
        best = -1
        best_strength = 0.0
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if j == i or agg[j] >= 0:
                continue
            strength = abs(data[pos]) / (scale[i] * scale[j])
            if strength > best_strength:
                best_strength = strength
                best = j
        agg[i] = count
        if best >= 0:
            agg[best] = count
        count += 1
    return agg


def tentative_prolongator(aggregates, num_coarse=None):
    """The piecewise-constant prolongator of an aggregation."""
    aggregates = np.asarray(aggregates, dtype=np.int64)
    n = aggregates.shape[0]
    nc = int(num_coarse) if num_coarse is not None else int(aggregates.max()) + 1
    return sp.csr_matrix(
        (np.ones(n), (np.arange(n), aggregates)), shape=(n, nc)
    )


def _spectral_radius(matrix, inv_diagonal, iterations=12, seed=0):
    """Power-iteration estimate of ``rho(D^{-1} A)`` (deterministic)."""
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(matrix.shape[0])
    norm = np.linalg.norm(v)
    if norm == 0.0:
        return 1.0
    v /= norm
    rho = 1.0
    for _ in range(iterations):
        w = inv_diagonal * (matrix @ v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0 or not np.isfinite(norm):
            break
        rho = norm
        v = w / norm
    return max(rho, np.finfo(float).tiny)


class LatticeStencil:
    """Matrix-free application of a lattice operator.

    Decomposes an assembled matrix over a :class:`LatticeGeometry`
    into per-layer dense weight grids — horizontal/vertical lateral
    neighbours inside each layer, same-tile couplings between layer
    pairs — plus the diagonal and a small sparse residual carrying
    everything the grids cannot express (periphery couplings).
    :meth:`apply_G` then evaluates ``A @ x`` with shifted-slice numpy
    arithmetic; holes in a layer (TIM tiles displaced by a TEC, sparse
    TEC deployments) simply carry zero weights.
    """

    def __init__(self, matrix, geometry):
        csr = sp.csr_matrix(matrix)
        csr.sort_indices()
        n = csr.shape[0]
        if geometry.num_nodes != n:
            raise ValueError(
                "geometry describes {} nodes, matrix has {}".format(
                    geometry.num_nodes, n
                )
            )
        self.shape = (n, n)
        rows, cols = geometry.rows, geometry.cols
        self._grid_shape = (rows, cols)
        self._diagonal = csr.diagonal()

        on = geometry.on_lattice()
        layer_ids = np.unique(geometry.layer[on]) if np.any(on) else []
        self._node_grids = []
        self._masks = []
        for layer_id in layer_ids:
            nodes = np.flatnonzero(on & (geometry.layer == layer_id))
            grid = np.full((rows, cols), -1, dtype=np.int64)
            tiles = geometry.tile[nodes]
            grid[tiles // cols, tiles % cols] = nodes
            self._node_grids.append(grid)
            self._masks.append(grid >= 0)

        stencil_rows = [np.arange(n)]
        stencil_cols = [np.arange(n)]
        stencil_data = [self._diagonal]

        def _pair_weights(left, right):
            """Gathered ``A[left, right]`` where both nodes exist."""
            weights = np.zeros(left.shape)
            mask = (left >= 0) & (right >= 0)
            if np.any(mask):
                li, ri = left[mask], right[mask]
                values = np.asarray(csr[li, ri]).ravel()
                weights[mask] = values
                keep = values != 0.0
                stencil_rows.extend((li[keep], ri[keep]))
                stencil_cols.extend((ri[keep], li[keep]))
                stencil_data.extend((values[keep], values[keep]))
            return weights

        # Lateral couplings inside each layer.
        self._lateral = []
        for grid in self._node_grids:
            w_right = _pair_weights(grid[:, :-1], grid[:, 1:])
            w_down = _pair_weights(grid[:-1, :], grid[1:, :])
            self._lateral.append((w_right, w_down))

        # Same-tile couplings between layer pairs (die-TIM, TEC
        # cold-hot, TIM/TEC-spreader, spreader-sink, ...): probed
        # generically so the stencil needs no knowledge of the stack.
        self._vertical = []
        for a in range(len(self._node_grids)):
            for b in range(a + 1, len(self._node_grids)):
                weights = _pair_weights(
                    self._node_grids[a], self._node_grids[b]
                )
                if np.any(weights):
                    self._vertical.append((a, b, weights))

        stencil = sp.coo_matrix(
            (
                np.concatenate(stencil_data),
                (np.concatenate(stencil_rows), np.concatenate(stencil_cols)),
            ),
            shape=(n, n),
        ).tocsr()
        residual = (csr - stencil).tocsr()
        residual.eliminate_zeros()
        self._residual = residual

    @property
    def residual_nnz(self):
        """Entries the grid decomposition could not express."""
        return int(self._residual.nnz)

    def nbytes(self):
        """Bytes held by the stencil arrays (grids + sparse residual)."""
        total = self._diagonal.nbytes
        for grid, mask in zip(self._node_grids, self._masks):
            total += grid.nbytes + mask.nbytes
        for w_right, w_down in self._lateral:
            total += w_right.nbytes + w_down.nbytes
        for _, _, weights in self._vertical:
            total += weights.nbytes
        total += (
            self._residual.data.nbytes
            + self._residual.indices.nbytes
            + self._residual.indptr.nbytes
        )
        return total

    def apply_G(self, x):
        """``A @ x`` for a vector or ``(n, k)`` column block."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        columns = x.reshape(x.shape[0], -1)
        k = columns.shape[1]
        rows, cols = self._grid_shape
        out = self._diagonal[:, None] * columns
        if self._residual.nnz:
            out += self._residual @ columns

        grids = []
        for node_grid, mask in zip(self._node_grids, self._masks):
            grid = np.zeros((rows, cols, k))
            grid[mask] = columns[node_grid[mask]]
            grids.append(grid)
        accum = [np.zeros((rows, cols, k)) for _ in grids]
        for grid, acc, (w_right, w_down) in zip(grids, accum, self._lateral):
            if cols > 1:
                acc[:, :-1] += w_right[..., None] * grid[:, 1:]
                acc[:, 1:] += w_right[..., None] * grid[:, :-1]
            if rows > 1:
                acc[:-1, :] += w_down[..., None] * grid[1:, :]
                acc[1:, :] += w_down[..., None] * grid[:-1, :]
        for a, b, weights in self._vertical:
            accum[a] += weights[..., None] * grids[b]
            accum[b] += weights[..., None] * grids[a]
        for node_grid, mask, acc in zip(self._node_grids, self._masks, accum):
            np.add.at(out, node_grid[mask], acc[mask])
        return out[:, 0] if single else out


class _Level:
    """One pre-coarsest level: operator, smoother data and transfers."""

    def __init__(self, matrix, prolong, rho, stencil=None):
        self.matrix = matrix
        self.prolong = prolong
        self.restrict = prolong.T.tocsr()
        self.stencil = stencil
        inv_diagonal = 1.0 / matrix.diagonal()
        self.inv_diagonal = inv_diagonal
        self.rho = rho

    def apply(self, x):
        if self.stencil is not None:
            return self.stencil.apply_G(x)
        return self.matrix @ x


@dataclass(frozen=True)
class MgReport:
    """Outcome of one (possibly multi-RHS) :func:`mg_solve` run.

    ``cycles`` counts multigrid cycles over all right-hand sides;
    ``residual`` is the worst true relative residual.
    """

    converged: bool
    cycles: int
    residual: float
    levels: int
    cycle_kind: str = "V"
    #: Coarsening provenance of the hierarchy that ran the solve:
    #: ``"lattice"`` (per-layer 2x2 agglomeration) or ``"pairwise"``
    #: (the graph fallback — no geometry, or one that failed
    #: :func:`validate_lattice_geometry`).
    coarsening: str = "lattice"


class MultigridHierarchy:
    """Aggregation-based geometric multigrid over one matrix.

    Parameters
    ----------
    matrix:
        The (sparse, symmetric) fine-level operator — for the thermal
        engine the current-independent base ``S + G``; the ``-iD``
        Peltier diagonal stays outside as a fine-level correction so
        one hierarchy serves every current.
    geometry:
        Optional :class:`LatticeGeometry`; enables per-layer 2x2 tile
        agglomeration and the matrix-free fine-level stencil.  Without
        it the coarsening falls back to :func:`pairwise_aggregates`.
    plan:
        Optional aggregation plan (tuple of per-level aggregate
        arrays) from a sibling hierarchy of the same system — shifted
        views re-Galerkin through the shared plan instead of
        re-aggregating.  The built plan is exposed as :attr:`plan`.
    coarse_size / max_levels:
        Coarsening stop criteria (see module constants).
    smoother / sweeps:
        ``"chebyshev"`` (polynomial degree ``sweeps``) or ``"jacobi"``
        (``sweeps`` damped point sweeps), applied symmetrically before
        and after each coarse-grid correction — the V-cycle is then a
        symmetric positive operator, valid as a CG preconditioner.
    smooth_prolongator:
        Apply one damped-Jacobi smoothing pass to the tentative
        piecewise-constant prolongator (smoothed aggregation); costs
        coarse-operator fill, buys a much better convergence factor.
        ``True`` smooths every level; an integer smooths only the
        finest that many levels — the default (:data:`DEFAULT_SMOOTH_LEVELS`)
        keeps the fine-level accuracy that dominates the convergence
        factor while the coarser Galerkin products stay
        piecewise-constant cheap (smoothing every level densifies the
        coarse operators quadratically, and the sparse triple products
        come to dominate the whole hierarchy build on >= 256x256
        grids).
    cycle_kind:
        Default cycle of :meth:`cycle` / :meth:`precondition`
        (``"V"`` or ``"F"``).
    use_stencil:
        Build the matrix-free :class:`LatticeStencil` for the fine
        level when a geometry is available.
    """

    def __init__(
        self,
        matrix,
        *,
        geometry=None,
        plan=None,
        coarse_size=DEFAULT_COARSE_SIZE,
        max_levels=DEFAULT_MAX_LEVELS,
        smoother="chebyshev",
        sweeps=DEFAULT_SWEEPS,
        smooth_prolongator=DEFAULT_SMOOTH_LEVELS,
        cycle_kind="V",
        use_stencil=True,
    ):
        if smoother not in SMOOTHERS:
            raise ValueError(
                "smoother must be one of {}, got {!r}".format(SMOOTHERS, smoother)
            )
        if cycle_kind not in CYCLE_KINDS:
            raise ValueError(
                "cycle_kind must be one of {}, got {!r}".format(
                    CYCLE_KINDS, cycle_kind
                )
            )
        self.smoother = smoother
        self.sweeps = max(1, int(sweeps))
        self.cycle_kind = cycle_kind
        self.coarse_size = int(coarse_size)
        #: Multigrid cycles applied so far (preconditioner calls
        #: included) — the session layer diffs this into SolverStats.
        self.cycles = 0

        current = sp.csr_matrix(matrix)
        current.sort_indices()
        # A geometry that disagrees with the matrix (stale node count,
        # out-of-range tiles, duplicate (layer, tile) slots) would
        # mis-aggregate silently — validate once and degrade to the
        # pairwise graph coarsening instead, recording the provenance.
        if geometry is not None and not validate_lattice_geometry(
            current.shape[0], geometry
        ):
            geometry = None
        #: Coarsening provenance: ``"lattice"`` when the finest level
        #: aggregates by per-layer 2x2 agglomeration, ``"pairwise"``
        #: for the graph fallback.  Surfaced through
        #: :attr:`MgReport.coarsening`.
        self.coarsening = "lattice" if geometry is not None else "pairwise"
        geom = geometry
        built_plan = []
        self.levels = []
        while (
            current.shape[0] > self.coarse_size
            and len(self.levels) < int(max_levels) - 1
        ):
            if plan is not None and len(built_plan) < len(plan):
                aggregates = plan[len(built_plan)]
                if geom is not None:
                    geom = lattice_coarsen(geom)[1]
            elif geom is not None and bool(np.any(geom.on_lattice())):
                aggregates, geom = lattice_coarsen(geom)
            else:
                aggregates = pairwise_aggregates(current)
                geom = None
            num_coarse = int(aggregates.max()) + 1
            if num_coarse >= current.shape[0]:
                break
            prolong = tentative_prolongator(aggregates, num_coarse)
            inv_diagonal = 1.0 / current.diagonal()
            rho = _spectral_radius(current, inv_diagonal)
            smooth_this = (
                smooth_prolongator is True
                or len(self.levels) < int(smooth_prolongator)
            )
            if smooth_this:
                omega = 4.0 / (3.0 * rho)
                prolong = (
                    prolong
                    - sp.diags(omega * inv_diagonal) @ (current @ prolong)
                ).tocsr()
            stencil = None
            if (
                use_stencil
                and not self.levels
                and geometry is not None
                and bool(np.any(geometry.on_lattice()))
            ):
                stencil = LatticeStencil(current, geometry)
            level = _Level(current, prolong, rho, stencil=stencil)
            self.levels.append(level)
            built_plan.append(np.asarray(aggregates, dtype=np.int64))
            current = (level.restrict @ (current @ prolong)).tocsr()
            current.sort_indices()
        self.plan = tuple(built_plan)
        self._coarse_matrix = current.tocsc()
        self._coarse_lu = None

    def __getstate__(self):
        """Fork safety: drop the live coarsest-level ``splu`` handle.

        Everything else — Galerkin operators, transfers, smoother
        diagonals, the stencil's weight grids, the aggregation plan —
        is plain array data and survives the round trip; the coarse
        factorization is rebuilt lazily on first cycle in the new
        process.  Pinned by ``tests/linalg/test_multigrid.py`` and the
        session-level ``TestForkSafety``.
        """
        state = self.__dict__.copy()
        state["_coarse_lu"] = None
        return state

    # ------------------------------------------------------------------
    # Level operations
    # ------------------------------------------------------------------

    @property
    def num_levels(self):
        """Level count including the direct-solved coarsest level."""
        return len(self.levels) + 1

    @property
    def fine_size(self):
        return self.levels[0].matrix.shape[0] if self.levels else (
            self._coarse_matrix.shape[0]
        )

    def apply_fine(self, x):
        """The fine-level operator ``A @ x`` (stencil when available)."""
        if self.levels:
            return self.levels[0].apply(x)
        return self._coarse_matrix @ x

    def _coarse_solve(self, b):
        if self._coarse_lu is None:
            self._coarse_lu = splu(self._coarse_matrix)
        return self._coarse_lu.solve(b)

    def _smooth(self, level, b, x):
        if self.smoother == "jacobi":
            omega = 4.0 / (3.0 * level.rho)
            for _ in range(self.sweeps):
                x = x + omega * (
                    level.inv_diagonal * (b - level.apply(x)).T
                ).T
            return x
        # Chebyshev polynomial smoothing of the upper spectrum of
        # ``D^{-1} A`` on ``[rho / 4, 1.1 rho]`` (three-term
        # recurrence); each degree costs one operator application.
        lower = level.rho / 4.0
        upper = 1.1 * level.rho
        theta = 0.5 * (upper + lower)
        delta = 0.5 * (upper - lower)
        sigma = theta / delta
        rho_old = 1.0 / sigma
        residual = b - level.apply(x)
        d = (1.0 / theta) * (level.inv_diagonal * residual.T).T
        for degree in range(self.sweeps):
            x = x + d
            if degree == self.sweeps - 1:
                break
            residual = b - level.apply(x)
            rho_new = 1.0 / (2.0 * sigma - rho_old)
            d = (rho_new * rho_old) * d + (2.0 * rho_new / delta) * (
                level.inv_diagonal * residual.T
            ).T
            rho_old = rho_new
        return x

    def _run_cycle(self, index, b, x, kind):
        if index == len(self.levels):
            return self._coarse_solve(b)
        level = self.levels[index]
        x = self._smooth(level, b, x)
        residual = level.restrict @ (b - level.apply(x))
        coarse = np.zeros_like(residual)
        if kind == "F":
            coarse = self._run_cycle(index + 1, residual, coarse, "F")
            coarse = self._run_cycle(index + 1, residual, coarse, "V")
        else:
            coarse = self._run_cycle(index + 1, residual, coarse, "V")
        x = x + level.prolong @ coarse
        return self._smooth(level, b, x)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def cycle(self, b, x0=None, kind=None):
        """One multigrid cycle on ``A x = b`` from ``x0`` (default 0).

        ``b`` may be a vector or an ``(n, k)`` block — every level
        operation is column-vectorized, so multi-RHS cycles cost one
        pass.  Returns the improved iterate.
        """
        kind = self.cycle_kind if kind is None else kind
        if kind not in CYCLE_KINDS:
            raise ValueError(
                "kind must be one of {}, got {!r}".format(CYCLE_KINDS, kind)
            )
        b = np.asarray(b, dtype=float)
        x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float)
        self.cycles += 1
        return self._run_cycle(0, b, x, kind)

    def precondition(self, v):
        """One cycle from zero — the Krylov preconditioner callable."""
        return self.cycle(v)

    def operator_bytes(self):
        """Bytes of solver state the hierarchy adds beyond the system.

        Counts the Galerkin coarse operators, the transfer operators,
        the smoother diagonals, the fine-level stencil arrays and the
        coarsest factorization — everything the ``mg`` backend holds
        that the assembled fine matrix (shared by all backends) does
        not.  The assembled-factorization backends' counterpart is
        their LU/Cholesky fill; see
        ``SessionView.solver_state_bytes``.
        """
        total = 0
        for index, level in enumerate(self.levels):
            if index > 0:
                total += _sparse_bytes(level.matrix)
            total += _sparse_bytes(level.prolong) + _sparse_bytes(level.restrict)
            total += level.inv_diagonal.nbytes
            if level.stencil is not None:
                total += level.stencil.nbytes()
        total += _sparse_bytes(self._coarse_matrix)
        if self._coarse_lu is not None:
            total += int(self._coarse_lu.nnz) * 12
        return total


def _sparse_bytes(matrix):
    return int(
        matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    )


def mg_solve(
    matrix,
    rhs,
    *,
    geometry=None,
    hierarchy=None,
    rtol=DEFAULT_RTOL,
    maxiter=60,
    cycle_kind=None,
    **build_options,
):
    """Solve ``matrix @ x = rhs`` by stationary multigrid iteration.

    Builds a :class:`MultigridHierarchy` (unless one is passed in) and
    applies cycles until the true relative residual of every column is
    at or below ``rtol``.  Mirrors
    :func:`repro.linalg.krylov.krylov_solve`: convergence failure is
    *reported*, not raised.

    Returns ``(x, MgReport)`` with ``x`` shaped like ``rhs``.
    """
    if hierarchy is None:
        hierarchy = MultigridHierarchy(
            matrix, geometry=geometry, **build_options
        )
    kind = hierarchy.cycle_kind if cycle_kind is None else cycle_kind
    rhs = np.asarray(rhs, dtype=float)
    single = rhs.ndim == 1
    columns = rhs.reshape(rhs.shape[0], -1)
    norms = np.linalg.norm(columns, axis=0)
    norms[norms == 0.0] = 1.0
    x = np.zeros_like(columns)
    cycles_before = hierarchy.cycles
    worst = np.inf
    converged = False
    for _ in range(int(maxiter)):
        x = hierarchy.cycle(columns, x0=x, kind=kind)
        residual = columns - hierarchy.apply_fine(x)
        worst = float(np.max(np.linalg.norm(residual, axis=0) / norms))
        if not np.isfinite(worst):
            break
        if worst <= rtol:
            converged = True
            break
    report = MgReport(
        converged=converged,
        cycles=hierarchy.cycles - cycles_before,
        residual=worst,
        levels=hierarchy.num_levels,
        cycle_kind=kind,
        coarsening=getattr(hierarchy, "coarsening", "lattice"),
    )
    return (x[:, 0] if single else x), report
