"""Inverse-positivity of Stieltjes matrices (Lemma 3).

Lemma 3 of the paper (after Varga): a positive definite Stieltjes
matrix is invertible and its inverse is a symmetric matrix with
non-negative entries.  Physically, ``H = (G - i D)^{-1}`` maps input
power to temperature, and ``h_kl >= 0`` says that injecting heat
anywhere can never *cool* any node — the property that makes the
entrywise convexity argument of Theorem 3 meaningful.

For an *irreducible* positive definite Stieltjes matrix the inverse is
in fact entrywise strictly positive (heat injected anywhere warms every
node at least a little), which the thermal substrate relies on.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.linalg.spd import cholesky_is_spd
from repro.linalg.stieltjes import is_stieltjes


def inverse_nonnegative_matrix(matrix, *, check=True):
    """Invert a positive definite Stieltjes matrix.

    Parameters
    ----------
    matrix:
        The matrix to invert (dense or sparse).
    check:
        When True (default), verify the Stieltjes sign pattern and
        positive definiteness before inverting, raising ``ValueError``
        on violation.  Disable only for hot inner loops that have
        already validated their operands.

    Returns
    -------
    numpy.ndarray
        The dense inverse ``H`` (symmetric, entrywise >= 0 up to
        round-off).
    """
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    if check:
        if not is_stieltjes(dense):
            raise ValueError("matrix is not a Stieltjes matrix")
        if not cholesky_is_spd(dense):
            raise ValueError("matrix is not positive definite")
    cho = scipy.linalg.cho_factor(dense, lower=True)
    inverse = scipy.linalg.cho_solve(cho, np.eye(dense.shape[0]))
    # Symmetrize to remove factorization round-off.
    return 0.5 * (inverse + inverse.T)


def inverse_is_nonnegative(matrix, tol=1.0e-10):
    """Check the Lemma 3 conclusion directly on ``matrix``.

    Returns True when the inverse exists and every entry is
    ``>= -tol * scale``.  For a non-positive-definite input this
    returns False rather than raising, so the function can be used as a
    cheap predicate in randomized testing.
    """
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    if not cholesky_is_spd(dense):
        return False
    inverse = inverse_nonnegative_matrix(dense, check=False)
    scale = max(1.0, float(np.max(np.abs(inverse))))
    return bool(np.all(inverse >= -tol * scale))


def inverse_positivity_margin(matrix):
    """Smallest entry of the inverse, normalized by the largest.

    Strictly positive for irreducible positive definite Stieltjes
    matrices; near zero when the matrix is (almost) reducible.  Used by
    tests to quantify the strict-positivity claim.
    """
    inverse = inverse_nonnegative_matrix(matrix, check=True)
    largest = float(np.max(np.abs(inverse)))
    if largest == 0.0:
        raise ValueError("matrix inverse is identically zero")
    return float(np.min(inverse)) / largest
