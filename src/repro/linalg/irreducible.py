"""Irreducibility of square matrices via graph connectivity.

Definition 1 of the paper: a square matrix is *irreducible* if it
cannot be written (after a symmetric permutation) as the direct sum of
two square matrices.  For a symmetric matrix this is equivalent to the
connectivity of its adjacency graph — the graph with an edge ``(k, l)``
whenever ``M[k, l] != 0``.

For the thermal conductance matrix ``G`` irreducibility encodes a
physical fact: heat can flow (possibly through intermediate tiles)
between any two nodes of the package, so no part of the chip is
thermally isolated from the ambient.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp


def adjacency_graph(matrix, tol=0.0):
    """Build the undirected adjacency graph of a symmetric matrix.

    Nodes are ``0..n-1``; an edge joins ``k`` and ``l`` (``k != l``)
    whenever ``|M[k, l]| > tol``.  Diagonal entries are ignored.
    """
    if sp.issparse(matrix):
        coo = matrix.tocoo()
        n = coo.shape[0]
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for k, l, value in zip(coo.row, coo.col, coo.data):
            if k != l and abs(value) > tol:
                graph.add_edge(int(k), int(l))
        return graph
    dense = np.asarray(matrix, dtype=float)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError("matrix must be square, got shape {}".format(dense.shape))
    n = dense.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(np.abs(dense) > tol)
    for k, l in zip(rows, cols):
        if k != l:
            graph.add_edge(int(k), int(l))
    return graph


def is_irreducible(matrix, tol=0.0):
    """Return True if the (symmetric) matrix is irreducible.

    Implemented as connectivity of :func:`adjacency_graph`.  A 1x1
    matrix is irreducible by convention (it is not a direct sum of two
    non-empty square matrices).
    """
    graph = adjacency_graph(matrix, tol=tol)
    if graph.number_of_nodes() <= 1:
        return True
    return nx.is_connected(graph)


def irreducible_components(matrix, tol=0.0):
    """Return the node sets of the direct-sum blocks of ``matrix``.

    A reducible symmetric matrix is (up to permutation) the direct sum
    of the sub-matrices indexed by these components; an irreducible
    matrix yields a single component covering every index.
    """
    graph = adjacency_graph(matrix, tol=tol)
    return [sorted(component) for component in nx.connected_components(graph)]
