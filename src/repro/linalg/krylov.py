"""Preconditioned Krylov solves for the steady-state operator ``G - i D``.

Lemma 1 makes ``G`` an irreducible positive definite Stieltjes matrix,
and ``D`` is diagonal with support only on the TEC hot/cold nodes, so

    M^{-1} (G - i D) = I - i G^{-1} D

is the identity plus a rank-``|S|`` perturbation whose spectrum shrinks
linearly with ``i / lambda_m`` (the runaway margin, Theorem 1).  With
the cached sparse LU of ``G`` as the preconditioner ``M``, GMRES and
BiCGSTAB therefore converge in a handful of iterations for any current
comfortably below runaway — each iteration costs one triangular solve
plus one sparse matrix-vector product, independent of the deployment
density.  This is what lets the ``krylov`` solver backend scale to
fine tile grids with dense TEC deployments, where the dense Woodbury
capacitance of the ``reuse`` backend (``|S| x |S|``) becomes the
bottleneck.

The module is generic linear algebra: it takes any sparse/dense square
matrix, any right-hand side (single vector or a column block), and any
preconditioner exposing ``solve`` (e.g. a ``scipy.sparse.linalg.splu``
object) or a plain callable.  The thermal layer
(:mod:`repro.thermal.solve`) wires it into the solver-backend registry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator, bicgstab, cg, gmres

#: Iterative methods accepted by :func:`krylov_solve`.  ``cg`` demands
#: a symmetric positive definite matrix *and* preconditioner — the
#: steady-state operator is SPD below the runaway current, and the
#: multigrid V-cycle preconditioner is symmetric by construction, which
#: is the pairing the ``mg`` backend uses.
KRYLOV_METHODS = ("gmres", "bicgstab", "cg")

#: Default relative residual target.  Temperatures are O(3e2) K and the
#: package systems have cond(G) ~ 1e4, so 1e-10 relative leaves the
#: absolute error far below the 1e-6 K agreement the differential tests
#: demand.
DEFAULT_RTOL = 1.0e-10


@dataclass(frozen=True)
class KrylovReport:
    """Outcome of one (possibly multi-RHS) Krylov solve.

    Attributes
    ----------
    converged:
        True when *every* right-hand side reached the residual target
        (verified against the true residual ``||b - A x|| / ||b||``,
        not the solver's internal estimate).
    iterations:
        Total matrix applications summed over all right-hand sides.
    residual:
        Worst relative residual over the right-hand sides (0.0 for an
        all-zero ``rhs``).
    method:
        The method that ran (one of :data:`KRYLOV_METHODS`).
    """

    converged: bool
    iterations: int
    residual: float
    method: str


def _as_preconditioner(preconditioner, n, dtype):
    """Wrap a factorization / callable as a :class:`LinearOperator`."""
    if preconditioner is None:
        return None
    if isinstance(preconditioner, LinearOperator):
        return preconditioner
    solve = getattr(preconditioner, "solve", None)
    if solve is None and callable(preconditioner):
        solve = preconditioner
    if solve is None:
        raise TypeError(
            "preconditioner must expose .solve or be callable, got {!r}".format(
                type(preconditioner)
            )
        )
    return LinearOperator((n, n), matvec=solve, dtype=dtype)


def _run_method(method, matrix, column, m_op, rtol, maxiter, restart, counter):
    """One single-RHS solve; returns the iterate (info is re-derived)."""

    def count(_):
        counter[0] += 1

    if method == "gmres":
        kwargs = dict(
            M=m_op, maxiter=maxiter, restart=restart,
            callback=count, callback_type="pr_norm",
        )
        try:
            x, _ = gmres(matrix, column, rtol=rtol, atol=0.0, **kwargs)
        except TypeError:  # scipy < 1.12 spells rtol as tol
            x, _ = gmres(matrix, column, tol=rtol, atol=0.0, **kwargs)
        return x
    solver = cg if method == "cg" else bicgstab
    kwargs = dict(M=m_op, maxiter=maxiter, callback=count)
    try:
        x, _ = solver(matrix, column, rtol=rtol, atol=0.0, **kwargs)
    except TypeError:  # scipy < 1.12 spells rtol as tol
        x, _ = solver(matrix, column, tol=rtol, atol=0.0, **kwargs)
    return x


def krylov_solve(
    matrix,
    rhs,
    *,
    preconditioner=None,
    method="gmres",
    rtol=DEFAULT_RTOL,
    maxiter=200,
    restart=40,
):
    """Solve ``matrix @ x = rhs`` iteratively with a preconditioner.

    Parameters
    ----------
    matrix:
        Square sparse (or dense) system matrix — for the thermal
        backend, ``G - i D``.
    rhs:
        Length-``n`` vector or ``(n, k)`` block of ``k`` independent
        right-hand sides (each solved by its own Krylov run; the
        preconditioner is shared).
    preconditioner:
        ``None``, a :class:`LinearOperator`, an object exposing
        ``solve`` (``splu`` result), or a callable ``v -> M^{-1} v``.
    method:
        One of :data:`KRYLOV_METHODS`.
    rtol:
        Relative residual target, verified against the *true* residual.
    maxiter:
        Outer-iteration budget per right-hand side.
    restart:
        GMRES restart length (ignored by BiCGSTAB).

    Returns
    -------
    (x, report):
        The solution (same shape as ``rhs``) and a
        :class:`KrylovReport`.  Convergence failure is *reported*, not
        raised — callers decide whether to fall back to a direct solve.
    """
    if method not in KRYLOV_METHODS:
        raise ValueError(
            "method must be one of {}, got {!r}".format(KRYLOV_METHODS, method)
        )
    rhs = np.asarray(rhs, dtype=float)
    single = rhs.ndim == 1
    columns = rhs.reshape(rhs.shape[0], -1)
    n = columns.shape[0]
    if sp.issparse(matrix):
        matrix = matrix.tocsr()
    m_op = _as_preconditioner(preconditioner, n, columns.dtype)

    x = np.empty_like(columns)
    iterations = 0
    worst_residual = 0.0
    converged = True
    for j in range(columns.shape[1]):
        b = columns[:, j]
        b_norm = float(np.linalg.norm(b))
        if b_norm == 0.0:
            x[:, j] = 0.0
            continue
        counter = [0]
        xj = _run_method(
            method, matrix, b, m_op, rtol, maxiter, restart, counter
        )
        iterations += counter[0]
        residual = float(np.linalg.norm(b - matrix @ xj)) / b_norm
        worst_residual = max(worst_residual, residual)
        if not np.isfinite(residual) or residual > rtol:
            converged = False
        x[:, j] = xj
    report = KrylovReport(
        converged=converged,
        iterations=iterations,
        residual=worst_residual,
        method=method,
    )
    return (x[:, 0] if single else x), report
