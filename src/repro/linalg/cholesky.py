"""Sparse Cholesky factorization backend for SPD systems.

The session core factors ``G - iD`` (and the shifted/capacitance
variants) thousands of times per sweep; for the SPD matrices the paper
guarantees below the runaway current, a sparse Cholesky factorization
is the natural kernel — roughly half the flops and memory of an LU,
and the standard backend of large-grid thermal simulators such as
3D-ICE.

:func:`spd_factorize` is the single seam.  When scikit-sparse is
importable it wraps CHOLMOD (supernodal Cholesky, the fast path on
big grids).  Otherwise it falls back to SciPy's SuperLU restricted to
symmetric mode with diagonal pivoting suppressed: with no off-diagonal
pivoting the factorization of an SPD matrix is exactly the ``LDL'``
Cholesky up to scaling, every pivot is positive, and a non-positive
pivot certifies the matrix was not positive definite — the same oracle
:mod:`repro.linalg.spd` uses.  Both paths expose one ``solve`` method
accepting a vector or an ``(n, k)`` right-hand-side block, so the
factor object is a drop-in for a ``splu`` handle in the session layer.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

try:  # pragma: no cover - exercised only where CHOLMOD is installed
    from sksparse.cholmod import CholmodNotPositiveDefiniteError
    from sksparse.cholmod import cholesky as _cholmod_cholesky

    HAVE_CHOLMOD = True
except ImportError:  # pragma: no cover - the container has no sksparse
    _cholmod_cholesky = None
    CholmodNotPositiveDefiniteError = None
    HAVE_CHOLMOD = False


class NotPositiveDefiniteError(ValueError):
    """The matrix handed to :func:`spd_factorize` is not SPD.

    For ``G - iD`` this means the current is at or beyond the runaway
    current ``lambda_m`` (Theorem 1), exactly the condition the other
    backends report as a singular system.
    """


class CholeskyFactor:
    """A factored SPD matrix with a ``splu``-compatible ``solve``.

    ``nnz`` is the factor fill (nonzeros of ``L + U`` for the SuperLU
    path, of ``L`` for CHOLMOD) — the memory-accounting hook the
    backend benchmarks use to compare solver-state footprints.
    """

    __slots__ = ("_solve", "shape", "nnz")

    def __init__(self, solve, shape, nnz=0):
        self._solve = solve
        self.shape = shape
        self.nnz = int(nnz)

    def solve(self, rhs):
        rhs = np.asarray(rhs, dtype=float)
        return self._solve(rhs)


def _factorize_cholmod(matrix):  # pragma: no cover - needs sksparse
    try:
        factor = _cholmod_cholesky(matrix)
    except CholmodNotPositiveDefiniteError as error:
        raise NotPositiveDefiniteError(
            "matrix is not positive definite (CHOLMOD)"
        ) from error
    return CholeskyFactor(factor, matrix.shape, nnz=factor.L().nnz)


def _factorize_splu(matrix):
    try:
        # MMD on A + A' is the ordering SuperLU documents for symmetric
        # mode — on the layered package meshes it roughly halves the
        # fill (and factor time) versus the default COLAMD.
        lu = splu(
            matrix,
            diag_pivot_thresh=0.0,
            permc_spec="MMD_AT_PLUS_A",
            options={"SymmetricMode": True},
        )
    except RuntimeError as error:
        # SuperLU only raises when a pivot is exactly zero; treat it as
        # the boundary case of a non-positive pivot.
        raise NotPositiveDefiniteError(
            "matrix is singular (zero pivot in symmetric factorization)"
        ) from error
    if not np.all(lu.U.diagonal() > 0.0):
        raise NotPositiveDefiniteError(
            "matrix is not positive definite (non-positive pivot)"
        )
    return CholeskyFactor(lu.solve, matrix.shape, nnz=lu.nnz)


def spd_factorize(matrix):
    """Factor a sparse SPD matrix, returning an object with ``solve``.

    Parameters
    ----------
    matrix:
        Sparse symmetric positive definite matrix (any SciPy sparse
        format; converted to CSC).

    Returns
    -------
    CholeskyFactor
        ``factor.solve(rhs)`` accepts a vector or an ``(n, k)`` block.

    Raises
    ------
    NotPositiveDefiniteError
        If the matrix is singular or indefinite.  Callers solving
        ``G - iD`` translate this into their at-runaway error.
    """
    if not sp.issparse(matrix):
        raise TypeError(
            "spd_factorize needs a sparse matrix, got {}".format(
                type(matrix).__name__
            )
        )
    csc = matrix.tocsc()
    if csc.shape[0] != csc.shape[1]:
        raise ValueError("matrix must be square, got {}".format(csc.shape))
    if HAVE_CHOLMOD:  # pragma: no cover - needs sksparse
        return _factorize_cholmod(csc)
    return _factorize_splu(csc)
