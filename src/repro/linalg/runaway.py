"""The runaway current ``lambda_m`` (Theorem 1 and Theorem 2).

Theorem 1 of the paper: for a positive definite irreducible Stieltjes
matrix ``G`` and a real diagonal ``D`` with at least one positive
entry,

    lambda_m = min { x' G x  :  x' D x = 1 }

splits the current axis in two — ``G - i D`` is positive definite for
``0 <= i < lambda_m`` and is not positive definite for
``i > lambda_m``.  Theorem 2 adds the physics: every entry of
``(G - i D)^{-1}`` blows up to ``+inf`` as ``i -> lambda_m`` from the
left, i.e. the package undergoes **thermal runaway** at
``i = lambda_m`` because Peltier pumping is exactly cancelled by Joule
heating and back-conduction (zero-COP condition).

Two computations are provided:

``runaway_current_binary_search``
    The paper's algorithm — binary search on ``i`` with a Cholesky
    positive-definiteness oracle (Section V.C.1).  Accepts an
    ``upper_hint`` (e.g. the previous greedy round's ``lambda_m``) to
    seed the doubling phase: adding TECs can only extend the Peltier
    support, so consecutive rounds' runaway currents are close and the
    hinted bracket collapses in a handful of oracle calls.
``runaway_current_eigen``
    An exact cross-check.  Factor ``G = L L'``; then ``G - i D`` is
    singular iff ``1/i`` is an eigenvalue of the symmetric matrix
    ``M = L^{-1} D L^{-T}``, so ``lambda_m = 1 / mu_max`` with
    ``mu_max`` the largest (necessarily positive) eigenvalue of ``M``.
    When ``D`` has few non-zero entries (one hot and one cold node per
    deployed TEC) the eigenproblem is reduced to that support, which
    keeps the computation cheap for package-scale networks.
``runaway_current_shift_invert``
    Warm-started inverse iteration on the pencil ``(G, D)`` for the
    incremental deployment engine: given the previous round's runaway
    eigenvector, a few shift-inverted solves ``(G - s D)^{-1} D v``
    through the solve engine's cached factorizations converge to the
    new ``lambda_m`` — no dense eigensolve, no extra sparse LU.  The
    returned value is a Rayleigh quotient ``x' G x / x' D x`` with
    ``x' D x > 0`` and therefore a certified *upper* bound on the true
    ``lambda_m`` (Theorem 1's variational characterization), which is
    exactly the safe side for the Problem 2 search cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.linalg.spd import cholesky_is_spd


@dataclass(frozen=True)
class RunawayCurrent:
    """Result of a runaway-current computation.

    Attributes
    ----------
    value:
        ``lambda_m`` in amperes (``math.inf`` when ``D`` has no
        positive diagonal entry, i.e. no runaway exists).
    method:
        ``"eigen"`` or ``"binary-search"``.
    iterations:
        Oracle invocations (binary search) or 0 (eigen).
    bracket:
        Final ``(low, high)`` bracket for the binary search; for the
        eigen method both ends equal ``value``.
    """

    value: float
    method: str
    iterations: int
    bracket: tuple

    def __float__(self):
        return self.value


def _diagonal_of(d_matrix):
    """Extract the diagonal of ``D`` as a 1-D array.

    Accepts a 1-D array (already a diagonal), a dense matrix, or a
    sparse matrix.  Off-diagonal entries, if any, must be zero.
    """
    if sp.issparse(d_matrix):
        dense_diag = d_matrix.diagonal()
        off = d_matrix - sp.diags(dense_diag)
        if off.nnz and np.max(np.abs(off.data)) > 0.0:
            raise ValueError("D must be diagonal")
        return np.asarray(dense_diag, dtype=float)
    arr = np.asarray(d_matrix, dtype=float)
    if arr.ndim == 1:
        return arr
    if arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
        if np.any(arr - np.diag(np.diag(arr)) != 0.0):
            raise ValueError("D must be diagonal")
        return np.diag(arr).astype(float)
    raise ValueError("D must be a diagonal matrix or a 1-D array of diagonal entries")


def _combine(g_matrix, diag, current):
    """Form ``G - current * D`` preserving sparsity."""
    if sp.issparse(g_matrix):
        return (g_matrix - current * sp.diags(diag)).tocsc()
    return np.asarray(g_matrix, dtype=float) - current * np.diag(diag)


def reduced_eigen_value(small, basis=None, diag_support=None, *,
                        return_vector=False):
    """``lambda_m`` from the reduced support matrix ``K = Z diag(d_S)``.

    ``small`` is the support-restricted matrix whose nonzero
    eigenvalues equal those of ``G^{-1} D``.  With ``return_vector``,
    the dominant eigenvector is lifted back to full node space through
    ``basis`` (the influence columns ``G^{-1} I_S``) and
    ``diag_support`` — the lift ``v = basis (d_S * u)`` satisfies
    ``G v = lambda_m D v``.  Lets the solve engine's cached influence
    block answer the eigenproblem without any extra factorization.
    """
    if return_vector:
        eigenvalues, eigenvectors = np.linalg.eig(small)
    else:
        eigenvalues = np.linalg.eigvals(small)
        eigenvectors = None
    # The pencil (G, D) with G SPD has real spectrum; discard the
    # imaginary round-off introduced by the unsymmetric reduction.
    real_parts = np.real(eigenvalues)
    positive_mask = real_parts > 0.0
    if not np.any(positive_mask):
        result = RunawayCurrent(math.inf, "eigen", 0, (math.inf, math.inf))
        return (result, None) if return_vector else result
    masked = np.where(positive_mask, real_parts, -math.inf)
    index = int(np.argmax(masked))
    mu_max = float(real_parts[index])
    value = 1.0 / mu_max
    result = RunawayCurrent(value, "eigen", 0, (value, value))
    if not return_vector:
        return result
    vector = None
    if basis is not None and diag_support is not None:
        u = np.real(eigenvectors[:, index])
        lifted = basis @ (np.asarray(diag_support, dtype=float) * u)
        norm = float(np.linalg.norm(lifted))
        if norm > 0.0 and np.all(np.isfinite(lifted)):
            vector = lifted / norm
    return result, vector


def runaway_current_eigen(g_matrix, d_matrix, *, return_vector=False):
    """Exact ``lambda_m`` via the reduced symmetric eigenproblem.

    See the module docstring for the derivation.  Returns a
    :class:`RunawayCurrent` with ``method="eigen"``; with
    ``return_vector`` a ``(result, vector)`` pair where ``vector`` is
    the runaway eigenvector in full node space (unit 2-norm, None when
    no runaway exists) — the warm-start seed for
    :func:`runaway_current_shift_invert` on the next deployment.
    """
    diag = _diagonal_of(d_matrix)
    n = diag.shape[0]
    support = np.nonzero(diag)[0]
    if support.size == 0 or not np.any(diag > 0.0):
        result = RunawayCurrent(math.inf, "eigen", 0, (math.inf, math.inf))
        return (result, None) if return_vector else result
    if sp.issparse(g_matrix):
        lu = splu(g_matrix.tocsc())
        # Columns of G^{-1} restricted to the support of D, solved as
        # one batched multi-RHS pass through the factorization.
        rhs = np.zeros((n, support.size))
        rhs[support, np.arange(support.size)] = 1.0
        basis = lu.solve(rhs)
    else:
        dense_g = np.asarray(g_matrix, dtype=float)
        cho = scipy.linalg.cho_factor(dense_g, lower=True)
        basis = scipy.linalg.cho_solve(cho, np.eye(n)[:, support])
    # Nonzero eigenvalues of G^{-1} D equal those of the small matrix
    # K = (G^{-1})[support][:, support] @ diag(d_sub).
    small = basis[support, :] * diag[support][np.newaxis, :]
    return reduced_eigen_value(
        small, basis, diag[support], return_vector=return_vector
    )


def runaway_current_shift_invert(
    solve,
    g_matrix,
    d_matrix,
    *,
    guess,
    shift=None,
    shift_fraction=0.9,
    tolerance=1.0e-9,
    max_iterations=60,
    max_shift_retries=6,
    reshift_every=8,
):
    """Warm-started ``lambda_m`` via shift-inverted inverse iteration.

    Parameters
    ----------
    solve:
        Callable ``solve(current, rhs) -> (G - current D)^{-1} rhs`` —
        typically ``SteadyStateSolver.solve_rhs``, so the iteration
        rides the engine's cached base factorization and per-current
        Woodbury/Krylov machinery instead of building its own.
    g_matrix / d_matrix:
        The pencil, used only for Rayleigh quotients (mat-vecs).
    guess:
        Seed vector — the previous deployment's runaway eigenvector
        mapped onto the current node ordering.  Must have
        ``x' D x > 0``.
    shift:
        Explicit initial shift (A).  Callers with a prior ``lambda_m``
        estimate (the previous greedy round's value) should pass a
        fraction of it: the seed's own Rayleigh quotient can
        overestimate ``lambda_m`` by orders of magnitude when the
        seed carries components outside the Peltier support, whose
        ``G``-energy inflates the numerator.
    shift_fraction:
        Without an explicit ``shift``, the shift starts at this
        fraction of the seed's Rayleigh quotient; it is also the
        fraction of the running Rayleigh estimate targeted by the
        periodic re-shifts.
    tolerance:
        Relative Rayleigh-quotient change required on two consecutive
        iterations to declare convergence.
    max_iterations:
        Total solve budget across shift retries.
    max_shift_retries:
        A singular shifted system (the shift overshot ``lambda_m``)
        shrinks the shift by 0.6 and retries, at most this many times
        over the whole call.
    reshift_every:
        After this many iterations at one shift without convergence,
        the shift moves to ``shift_fraction`` times the current
        Rayleigh estimate — much closer to ``lambda_m`` than the
        starting point, so the linear convergence rate improves
        sharply.  Each move costs the solve engine one fresh
        factorization at the new shift; an overshooting move is
        caught by the singularity handler like any other.

    Returns
    -------
    (RunawayCurrent, vector) or (None, None)
        ``(None, None)`` signals no convergence within the budget —
        callers fall back to the exact eigen path.  On success the
        value is a Rayleigh quotient with ``x' D x > 0``, hence a
        certified upper bound on the true ``lambda_m``.
    """
    diag = _diagonal_of(d_matrix)
    if not np.any(diag > 0.0):
        return (
            RunawayCurrent(math.inf, "shift-invert", 0, (math.inf, math.inf)),
            None,
        )

    def _rayleigh(x):
        denom = float(np.dot(x * diag, x))
        if denom <= 0.0 or not math.isfinite(denom):
            return None
        numer = float(x @ (g_matrix @ x))
        return numer / denom

    vector = np.asarray(guess, dtype=float).copy()
    norm = float(np.linalg.norm(vector))
    if norm <= 0.0 or not np.all(np.isfinite(vector)):
        return None, None
    vector /= norm
    rho = _rayleigh(vector)
    if rho is None or rho <= 0.0 or not math.isfinite(rho):
        return None, None

    shift = float(shift) if shift is not None else shift_fraction * rho
    if shift <= 0.0 or not math.isfinite(shift):
        return None, None
    iterations = 0
    stable = 0
    shift_failures = 0
    at_this_shift = 0
    while iterations < max_iterations:
        iterations += 1
        at_this_shift += 1
        try:
            advanced = solve(shift, diag * vector)
            norm = float(np.linalg.norm(advanced))
            if norm <= 0.0 or not np.all(np.isfinite(advanced)):
                raise RuntimeError("shifted solve produced a degenerate vector")
        except (RuntimeError, np.linalg.LinAlgError):
            # G - shift D singular/indefinite: the shift overshot
            # lambda_m — back it off geometrically.
            shift_failures += 1
            if shift_failures > max_shift_retries:
                return None, None
            shift *= 0.6
            stable = 0
            at_this_shift = 0
            continue
        vector = advanced / norm
        rho_next = _rayleigh(vector)
        if rho_next is None or rho_next <= 0.0:
            return None, None
        if abs(rho_next - rho) <= tolerance * abs(rho_next):
            stable += 1
        else:
            stable = 0
        rho = rho_next
        if stable >= 2:
            return (
                RunawayCurrent(rho, "shift-invert", iterations, (shift, rho)),
                vector,
            )
        if at_this_shift >= reshift_every and shift_fraction * rho > shift:
            # Converging slowly: the Rayleigh estimate is now a far
            # tighter upper bound than the starting shift, so chase it.
            shift = shift_fraction * rho
            at_this_shift = 0
    return None, None


def runaway_current_binary_search(
    g_matrix,
    d_matrix,
    *,
    tolerance=1.0e-9,
    initial_bracket=1.0,
    max_doublings=200,
    max_iterations=200,
    upper_hint=None,
):
    """The paper's ``lambda_m`` algorithm: Cholesky-oracle binary search.

    Parameters
    ----------
    g_matrix, d_matrix:
        The conductance matrix and the Peltier coupling diagonal.
    tolerance:
        Relative width of the final bracket.
    initial_bracket:
        First trial upper bound for the doubling phase.
    max_doublings:
        Safety cap on the doubling phase; if ``G - i D`` is still
        positive definite after this many doublings the runaway
        current is reported as ``math.inf`` (this happens exactly when
        ``D`` has no positive entry, up to floating-point range).
    max_iterations:
        Safety cap on bisection steps.
    upper_hint:
        Prior estimate of ``lambda_m`` (e.g. the previous greedy
        round's value).  One oracle call classifies it: indefinite
        means ``[0, hint]`` already brackets and the doubling phase is
        skipped entirely; positive definite means doubling starts from
        the hint instead of ``initial_bracket``.  A wrong hint only
        costs that one call — the result is hint-independent.

    Returns
    -------
    RunawayCurrent
        With ``method="binary-search"``; ``value`` is the bracket
        midpoint.
    """
    diag = _diagonal_of(d_matrix)
    if not cholesky_is_spd(g_matrix):
        raise ValueError("G must be positive definite (Lemma 1 hypothesis)")
    if not np.any(diag > 0.0):
        return RunawayCurrent(math.inf, "binary-search", 0, (math.inf, math.inf))

    oracle_calls = 0
    low = 0.0
    high = float(initial_bracket)
    bracketed = False
    if upper_hint is not None and math.isfinite(upper_hint) and upper_hint > 0.0:
        oracle_calls += 1
        if cholesky_is_spd(_combine(g_matrix, diag, float(upper_hint))):
            low = float(upper_hint)
            high = 2.0 * low
        else:
            high = float(upper_hint)
            bracketed = True
    if not bracketed:
        for _ in range(max_doublings):
            oracle_calls += 1
            if not cholesky_is_spd(_combine(g_matrix, diag, high)):
                bracketed = True
                break
            low = high
            high *= 2.0
        if not bracketed:
            return RunawayCurrent(
                math.inf, "binary-search", oracle_calls, (low, math.inf)
            )

    for _ in range(max_iterations):
        if high - low <= tolerance * max(1.0, high):
            break
        mid = 0.5 * (low + high)
        oracle_calls += 1
        if cholesky_is_spd(_combine(g_matrix, diag, mid)):
            low = mid
        else:
            high = mid
    value = 0.5 * (low + high)
    return RunawayCurrent(value, "binary-search", oracle_calls, (low, high))


def runaway_current(g_matrix, d_matrix, *, method="eigen", **kwargs):
    """Compute ``lambda_m`` by the requested method.

    ``method="eigen"`` (default) is exact and fast for the sparse
    package networks; ``method="binary-search"`` reproduces the
    paper's algorithm.  Both agree to the binary search's tolerance —
    the test suite and ``benchmarks/bench_runaway.py`` verify this.
    """
    if method == "eigen":
        return runaway_current_eigen(g_matrix, d_matrix)
    if method == "binary-search":
        return runaway_current_binary_search(g_matrix, d_matrix, **kwargs)
    raise ValueError("unknown method {!r}; use 'eigen' or 'binary-search'".format(method))


def rayleigh_quotient_bound(g_matrix, d_matrix, vector):
    """Evaluate ``x' G x / x' D x`` for a trial vector with ``x' D x > 0``.

    Any such quotient upper-bounds ``lambda_m`` (Theorem 1's
    variational characterization); useful for tests and for quick
    sanity bounds without a factorization.
    """
    diag = _diagonal_of(d_matrix)
    x = np.asarray(vector, dtype=float)
    denom = float(np.dot(x * diag, x))
    if denom <= 0.0:
        raise ValueError("trial vector must satisfy x' D x > 0")
    if sp.issparse(g_matrix):
        numer = float(x @ (g_matrix @ x))
    else:
        numer = float(x @ (np.asarray(g_matrix, dtype=float) @ x))
    return numer / denom
