"""The runaway current ``lambda_m`` (Theorem 1 and Theorem 2).

Theorem 1 of the paper: for a positive definite irreducible Stieltjes
matrix ``G`` and a real diagonal ``D`` with at least one positive
entry,

    lambda_m = min { x' G x  :  x' D x = 1 }

splits the current axis in two — ``G - i D`` is positive definite for
``0 <= i < lambda_m`` and is not positive definite for
``i > lambda_m``.  Theorem 2 adds the physics: every entry of
``(G - i D)^{-1}`` blows up to ``+inf`` as ``i -> lambda_m`` from the
left, i.e. the package undergoes **thermal runaway** at
``i = lambda_m`` because Peltier pumping is exactly cancelled by Joule
heating and back-conduction (zero-COP condition).

Two computations are provided:

``runaway_current_binary_search``
    The paper's algorithm — binary search on ``i`` with a Cholesky
    positive-definiteness oracle (Section V.C.1).
``runaway_current_eigen``
    An exact cross-check.  Factor ``G = L L'``; then ``G - i D`` is
    singular iff ``1/i`` is an eigenvalue of the symmetric matrix
    ``M = L^{-1} D L^{-T}``, so ``lambda_m = 1 / mu_max`` with
    ``mu_max`` the largest (necessarily positive) eigenvalue of ``M``.
    When ``D`` has few non-zero entries (one hot and one cold node per
    deployed TEC) the eigenproblem is reduced to that support, which
    keeps the computation cheap for package-scale networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.linalg.spd import cholesky_is_spd


@dataclass(frozen=True)
class RunawayCurrent:
    """Result of a runaway-current computation.

    Attributes
    ----------
    value:
        ``lambda_m`` in amperes (``math.inf`` when ``D`` has no
        positive diagonal entry, i.e. no runaway exists).
    method:
        ``"eigen"`` or ``"binary-search"``.
    iterations:
        Oracle invocations (binary search) or 0 (eigen).
    bracket:
        Final ``(low, high)`` bracket for the binary search; for the
        eigen method both ends equal ``value``.
    """

    value: float
    method: str
    iterations: int
    bracket: tuple

    def __float__(self):
        return self.value


def _diagonal_of(d_matrix):
    """Extract the diagonal of ``D`` as a 1-D array.

    Accepts a 1-D array (already a diagonal), a dense matrix, or a
    sparse matrix.  Off-diagonal entries, if any, must be zero.
    """
    if sp.issparse(d_matrix):
        dense_diag = d_matrix.diagonal()
        off = d_matrix - sp.diags(dense_diag)
        if off.nnz and np.max(np.abs(off.data)) > 0.0:
            raise ValueError("D must be diagonal")
        return np.asarray(dense_diag, dtype=float)
    arr = np.asarray(d_matrix, dtype=float)
    if arr.ndim == 1:
        return arr
    if arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
        if np.any(arr - np.diag(np.diag(arr)) != 0.0):
            raise ValueError("D must be diagonal")
        return np.diag(arr).astype(float)
    raise ValueError("D must be a diagonal matrix or a 1-D array of diagonal entries")


def _combine(g_matrix, diag, current):
    """Form ``G - current * D`` preserving sparsity."""
    if sp.issparse(g_matrix):
        return (g_matrix - current * sp.diags(diag)).tocsc()
    return np.asarray(g_matrix, dtype=float) - current * np.diag(diag)


def runaway_current_eigen(g_matrix, d_matrix):
    """Exact ``lambda_m`` via the reduced symmetric eigenproblem.

    See the module docstring for the derivation.  Returns a
    :class:`RunawayCurrent` with ``method="eigen"``.
    """
    diag = _diagonal_of(d_matrix)
    n = diag.shape[0]
    support = np.nonzero(diag)[0]
    if support.size == 0 or not np.any(diag > 0.0):
        return RunawayCurrent(math.inf, "eigen", 0, (math.inf, math.inf))
    if sp.issparse(g_matrix):
        lu = splu(g_matrix.tocsc())
        # Columns of G^{-1} restricted to the support of D.
        basis = np.zeros((n, support.size))
        for j, k in enumerate(support):
            unit = np.zeros(n)
            unit[k] = 1.0
            basis[:, j] = lu.solve(unit)
        # Nonzero eigenvalues of G^{-1} D equal those of
        # D_sub^{} (G^{-1})_[support, support] restricted appropriately:
        # mu solves det(I - mu^{-1} ... ) — work with the small matrix
        # K = (G^{-1})[support][:, support] @ diag(d_sub); its
        # eigenvalues are the nonzero eigenvalues of G^{-1} D.
        small = basis[support, :] * diag[support][np.newaxis, :]
        eigenvalues = np.linalg.eigvals(small)
    else:
        dense_g = np.asarray(g_matrix, dtype=float)
        cho = scipy.linalg.cho_factor(dense_g, lower=True)
        inv_cols = scipy.linalg.cho_solve(cho, np.eye(n)[:, support])
        small = inv_cols[support, :] * diag[support][np.newaxis, :]
        eigenvalues = np.linalg.eigvals(small)
    # The pencil (G, D) with G SPD has real spectrum; discard the
    # imaginary round-off introduced by the unsymmetric reduction.
    real_parts = np.real(eigenvalues)
    positive = real_parts[real_parts > 0.0]
    if positive.size == 0:
        return RunawayCurrent(math.inf, "eigen", 0, (math.inf, math.inf))
    mu_max = float(np.max(positive))
    value = 1.0 / mu_max
    return RunawayCurrent(value, "eigen", 0, (value, value))


def runaway_current_binary_search(
    g_matrix,
    d_matrix,
    *,
    tolerance=1.0e-9,
    initial_bracket=1.0,
    max_doublings=200,
    max_iterations=200,
):
    """The paper's ``lambda_m`` algorithm: Cholesky-oracle binary search.

    Parameters
    ----------
    g_matrix, d_matrix:
        The conductance matrix and the Peltier coupling diagonal.
    tolerance:
        Relative width of the final bracket.
    initial_bracket:
        First trial upper bound for the doubling phase.
    max_doublings:
        Safety cap on the doubling phase; if ``G - i D`` is still
        positive definite after this many doublings the runaway
        current is reported as ``math.inf`` (this happens exactly when
        ``D`` has no positive entry, up to floating-point range).
    max_iterations:
        Safety cap on bisection steps.

    Returns
    -------
    RunawayCurrent
        With ``method="binary-search"``; ``value`` is the bracket
        midpoint.
    """
    diag = _diagonal_of(d_matrix)
    if not cholesky_is_spd(g_matrix):
        raise ValueError("G must be positive definite (Lemma 1 hypothesis)")
    if not np.any(diag > 0.0):
        return RunawayCurrent(math.inf, "binary-search", 0, (math.inf, math.inf))

    oracle_calls = 0
    low = 0.0
    high = float(initial_bracket)
    for _ in range(max_doublings):
        oracle_calls += 1
        if not cholesky_is_spd(_combine(g_matrix, diag, high)):
            break
        low = high
        high *= 2.0
    else:
        return RunawayCurrent(math.inf, "binary-search", oracle_calls, (low, math.inf))

    for _ in range(max_iterations):
        if high - low <= tolerance * max(1.0, high):
            break
        mid = 0.5 * (low + high)
        oracle_calls += 1
        if cholesky_is_spd(_combine(g_matrix, diag, mid)):
            low = mid
        else:
            high = mid
    value = 0.5 * (low + high)
    return RunawayCurrent(value, "binary-search", oracle_calls, (low, high))


def runaway_current(g_matrix, d_matrix, *, method="eigen", **kwargs):
    """Compute ``lambda_m`` by the requested method.

    ``method="eigen"`` (default) is exact and fast for the sparse
    package networks; ``method="binary-search"`` reproduces the
    paper's algorithm.  Both agree to the binary search's tolerance —
    the test suite and ``benchmarks/bench_runaway.py`` verify this.
    """
    if method == "eigen":
        return runaway_current_eigen(g_matrix, d_matrix)
    if method == "binary-search":
        return runaway_current_binary_search(g_matrix, d_matrix, **kwargs)
    raise ValueError("unknown method {!r}; use 'eigen' or 'binary-search'".format(method))


def rayleigh_quotient_bound(g_matrix, d_matrix, vector):
    """Evaluate ``x' G x / x' D x`` for a trial vector with ``x' D x > 0``.

    Any such quotient upper-bounds ``lambda_m`` (Theorem 1's
    variational characterization); useful for tests and for quick
    sanity bounds without a factorization.
    """
    diag = _diagonal_of(d_matrix)
    x = np.asarray(vector, dtype=float)
    denom = float(np.dot(x * diag, x))
    if denom <= 0.0:
        raise ValueError("trial vector must satisfy x' D x > 0")
    if sp.issparse(g_matrix):
        numer = float(x @ (g_matrix @ x))
    else:
        numer = float(x @ (np.asarray(g_matrix, dtype=float) @ x))
    return numer / denom
