"""Moment-matched model-order reduction for the transient kernel.

The backward-Euler transient systems the simulators integrate,

    (S + G - i D) theta_{n+1} = S theta_n + p(i) + u_n,      S = C / dt,

cost one full-order sparse solve per step per trace.  This module
replaces them with dense solves in a small Krylov subspace: a
**block-Arnoldi** basis ``V`` moment-matches the transfer function of
the ``(G, C)`` pair at the backward-Euler shift, the projected system

    (S_r + G_r - i D_r) x_{n+1} = S_r x_n + p_r(i) + V' u_n

is integrated with per-current-level dense factorizations of dimension
``r`` (tens, not tens of thousands), and every step carries an
**a-posteriori certified error bound** against the full-order
backward-Euler trajectory.

Certification
-------------
Write ``M(i) = S + G - i D`` for the full step matrix, ``A(i) = G - iD``
for the steady matrix and ``theta_hat_n = V x_n`` for the lifted
reduced state.  The lifted trajectory satisfies the full recursion up
to the residual

    r_n = S theta_hat_{n-1} + p(i) + u_n - M(i) theta_hat_n,

so the error ``e_n = theta_n - theta_hat_n`` against the *exact*
full-order trajectory obeys ``M(i) e_n = S e_{n-1} + r_n``.  Below the
runaway current ``M(i)`` and ``A(i)`` are nonsingular M-matrices
(Lemma 3's inverse-positivity plus the added positive diagonal ``S``),
so ``M^{-1} >= 0`` entrywise and the **weight vector**

    w_i = A(i)^{-1} 1  >  0        (one steady solve per level)

satisfies ``A(i) w_i = 1 > 0``.  The plain infinity norm is *not*
contracted by the step map (hot-junction rows of ``A`` have negative
row sums, so ``||M^{-1} S||_inf`` can exceed 1), but the ``w_i``-
weighted norm is: with ``y_i = M(i)^{-1} 1 > 0`` (one transient solve
per level), ``M w_i = S w_i + 1`` gives ``M^{-1} S w_i = w_i - y_i``
entrywise, hence

    gamma_i = max_j (w_i - y_i)_j / (w_i)_j = 1 - min_j (y_i/w_i)_j < 1.

The stepper maintains a scalar ``beta_n`` certifying the entrywise
envelope ``|e_n| <= beta_n * w_i``; the reported Kelvin bound is
``beta_n * max(w_i)`` — the max taken over *all* nodes, or over the
trace's ``lift_rows`` only when it reports nothing else (the envelope
is per-node, and the rows a control loop reads sit far below the
hot-junction peak of ``w``).  One step propagates (``M^{-1} >= 0``)

    |e_n| <= beta_{n-1} (w_i - y_i) + |M^{-1} r_n|
          <= (gamma_i beta_{n-1} + mu_i ||r_n||_inf) w_i,

with ``mu_i = max_j (y_i/w_i)_j``, and the residual norm is computed
**exactly** every step — the one place a generic operator bound would
be hopelessly loose (Galerkin forces ``V' r_n = 0``, so the residual
lives entirely in the cancellation a row-wise Cauchy-Schwarz bound
discards).  Exact is cheap in *reduced coordinates*: around the
per-level reduced steady state ``x*_i`` (``s_i = p(i) - A(i) V x*_i``
its exact full-order residual),

    r_n = S V (x_{n-1} - x_n) + s_i - A(i) V (x_n - x*_i) + u_n,

so ``r_n = W c_n`` for the fixed per-level generator
``W = [SV | -AV | s_i]`` and O(r) coefficients
``c_n = [x_{n-1}-x_n; x_n-x*_i; 1]``.  With ``R`` the triangular
factor of a one-off (cached per level) QR of ``W``,
``||r_n||_2 = ||R c_n||_2`` — an O(r^2) triangular product per step
with *linear* rounding error, ``eps * scale(W)``.  That linearity is
load-bearing: a Gram quadratic form ``c'(W'W)c`` reaches the same
flop count but squares the conditioning, flooring every sound
evaluation at ``sqrt(eps) * scale`` — orders of magnitude above the
~1e-9 residuals of a converged basis, which the 400-step envelope sum
(amplified by ``mu w_max``) cannot absorb.  A guard proportional to
``|R| |c_n|`` (the pre-cancellation magnitude) covers the remaining
rounding; ``||r_n||_inf <= ||r_n||_2`` keeps the certificate an upper
bound (measured ~2x loose on the target workloads).  When the current
level changes the envelope is re-based with the cached conversion
factor ``kappa(i -> i') = max_j (w_i / w_i')_j``.

Windowed sharpening, rewind, enrichment
---------------------------------------
Per-step the stepper only pays the provisional ``mu_i ||r_n||_2``
term; the reduced residual coefficients accumulate in a window of
``check_every`` steps.  A window is *closed* on cadence — or
immediately, before the offending state is handed out, when a
provisional bound crosses ``tol_kelvin``.  Closing a window whose
provisional bounds all fit the budget costs nothing; otherwise the
signed residual vectors are materialized (one batched basis GEMM per
level — still no solves) and the 2-norm terms sharpened to exact
``mu_i ||r_j||_inf``; if even that overruns, one batched multi-RHS
solve per level replaces them with the exact
``max_j |M^{-1} r_j| / w`` (usually orders of magnitude sharper: the
signed solve keeps the spatial cancellation inside ``M^{-1} r_j``)
and the scalar recursion replays.  If even the
sharpened bound exceeds the budget, the window is **rewound**: the
whole segment is re-integrated at full order from the checkpointed
entry state — rewound steps have zero residual, so ``beta`` only
contracts — and the states are absorbed into the shared basis
(restart-and-augment), so the subspace learns the segment it failed
to track.  States already emitted to the caller keep their sharpened,
within-budget bounds; a rewind replaces only the not-yet-returned
step.  Any part of a state a ``max_dim``-capped basis cannot absorb
enters the envelope through its exact projection residual, so the
certificate survives the cap (the trace just degrades toward full
order).  Traces over a basis that has converged for their workload
perform a handful of full solves (the per-level anchors and steady
states) instead of one per step.

The envelope sums per-step increments and can credit their decay but
never their cancellation over *time*, so it grows monotonically along
a trace; a basis sized to the workload (see :data:`DEFAULT_ROM_DIM`)
keeps the total well inside the budget, while tolerances pushed below
the accumulation floor stay certified but degrade toward full-order
cost.

The reduced model is obtained from the session layer via
:meth:`repro.thermal.session.SessionView.reduced`, which caches one
shared basis per ``(dim, tol)`` alongside the view's factorization
caches; see ``docs/api.md`` ("Reduced-order transients").
"""

from __future__ import annotations

import time

import numpy as np
import scipy.linalg

#: ROM engagement modes accepted by the simulators and the CLI.
ROM_MODES = ("auto", "always", "off")

#: ``auto`` engages the reduced kernel from this node count on; below
#: it the full-order sparse solves are cheap enough that the basis
#: build would dominate.
ROM_AUTO_MIN_NODES = 4096

#: Default Krylov basis dimension (``--rom-dim``).  Sized so the
#: certified envelope — which sums exact per-step increments and
#: cannot credit their cancellation over time — stays well inside the
#: default tolerance across an ambient-to-steady ramp; smaller bases
#: track the trajectory just as well but spend their certification
#: budget on the ramp and then thrash in refinement checks.
DEFAULT_ROM_DIM = 48

#: Default certified tolerance in Kelvin (``--rom-tol``).
DEFAULT_ROM_TOL_K = 1.0e-3

#: Default cadence (in steps) of the bound-vs-tolerance check: the
#: window length over which exact residual vectors accumulate before a
#: check may sharpen them with one batched full-order solve (see the
#: module docstring).  A provisional certified bound is still
#: maintained *every* step — the cadence only sets how often the
#: sharpener (and a possible restart) can run, and how many residual
#: columns one batched solve amortizes.
DEFAULT_CHECK_EVERY = 8

#: Basis columns whose post-orthogonalization norm falls below this
#: fraction of their original norm are deflated (linearly dependent).
_DEFLATION_RTOL = 1.0e-10

#: Fraction of the certified budget that cheap (2-norm) and
#: materialized (inf-norm) window commits may spend.  A commit is
#: permanent — the envelope never comes back down — so committing a
#: window "because it still fits" at cheap sharpness during a
#: transient ramp spends tolerance that solve-sharpening would have
#: preserved at ~1000x less cost, and the trace later saturates and
#: rewind-thrashes.  Gating cheap commits to the lower
#: share of the budget forces exactly the ramp windows through the
#: batched-solve sharpener while converged-basis traces (whose cheap
#: increments stay below the threshold across the horizons the basis
#: was sized for) commit without any full-order work.
_CHEAP_COMMIT_FRACTION = 0.75

#: Rounding guard of the QR-compressed residual 2-norm.  The computed
#: ``||R c||`` differs from the true ``||W c||`` by backward errors of
#: the QR factorization and the triangular product, both bounded by
#: O(n, r) * eps times the pre-cancellation magnitude ``|R| |c|``
#: (column norms of ``R`` equal those of ``W`` to eps).  Each level
#: pre-scales its ``res_colnorm`` by this factor times ``sqrt(n)``, so
#: a step's guard is the O(r) dot ``res_colnorm @ |c|`` — ~1e-12 K on
#: the target workloads, negligible against the ~1e-9 residuals it
#: protects.
_RESIDUAL_GUARD = 64.0 * float(np.finfo(float).eps)

class CertificationError(RuntimeError):
    """The a-posteriori error certificate is unavailable.

    Raised when the certification anchors are numerically invalid:
    the weight vector ``w = (G - iD)^{-1} 1`` or the transient anchor
    ``M^{-1} 1`` fails strict positivity — the inverse-positivity that
    holds for every current below runaway (Lemma 3), so in practice
    this means the current is at/beyond the runaway limit or an
    iterative backend returned an unconverged solve.
    """


def resolve_rom_mode(mode, num_nodes):
    """Whether the reduced kernel engages for ``mode`` at ``num_nodes``.

    ``"always"`` and ``"off"`` are literal; ``"auto"`` engages from
    :data:`ROM_AUTO_MIN_NODES` nodes on (the crossover where per-step
    sparse solves dominate the basis build).
    """
    if mode not in ROM_MODES:
        raise ValueError(
            "rom must be one of {}, got {!r}".format(ROM_MODES, mode)
        )
    if mode == "always":
        return True
    if mode == "off":
        return False
    return int(num_nodes) >= ROM_AUTO_MIN_NODES


def _orthonormalize(block, basis, *, deflation_rtol=_DEFLATION_RTOL):
    """Orthonormalize ``block`` against ``basis`` (and itself).

    Two passes of block Gram-Schmidt (classical with
    reorthogonalization — numerically equivalent to modified GS but
    BLAS-3), then a column-wise QR with deflation: columns whose
    residual norm drops below ``deflation_rtol`` of their incoming
    norm are linearly dependent on the span and dropped.  Returns the
    surviving orthonormal columns (possibly zero of them).
    """
    block = np.array(block, dtype=float, copy=True)
    if block.ndim == 1:
        block = block[:, None]
    incoming = np.linalg.norm(block, axis=0)
    keep = incoming > 0.0
    block = block[:, keep]
    incoming = incoming[keep]
    if block.shape[1] == 0:
        return block
    for _ in range(2):
        if basis is not None and basis.shape[1]:
            block -= basis @ (basis.T @ block)
    columns = []
    for j in range(block.shape[1]):
        column = block[:, j].copy()
        for accepted in columns:
            column -= accepted * (accepted @ column)
        norm = float(np.linalg.norm(column))
        if norm <= deflation_rtol * max(float(incoming[j]), 1.0):
            continue
        column /= norm
        # One reorthogonalization sweep against the freshly accepted
        # columns keeps the basis orthonormal to machine precision.
        for accepted in columns:
            column -= accepted * (accepted @ column)
        column /= float(np.linalg.norm(column))
        columns.append(column)
    if not columns:
        return np.zeros((block.shape[0], 0))
    return np.column_stack(columns)


def block_arnoldi(apply_operator, start_block, max_dim, *, deflation_rtol=_DEFLATION_RTOL):
    """Orthonormal basis of the block Krylov space of ``apply_operator``.

    Builds ``span{B, K B, K^2 B, ...}`` for ``K = apply_operator`` and
    ``B = start_block`` until ``max_dim`` columns are collected or the
    space is exhausted (every new direction deflates).  ``apply_operator``
    receives an ``(n, b)`` block and returns ``K`` applied columnwise —
    for the shift-invert transient operator this is one batched
    multi-RHS solve per iteration.

    Returns the ``(n, r)`` orthonormal basis with ``r <= max_dim``.
    """
    if max_dim < 1:
        raise ValueError("max_dim must be >= 1, got {}".format(max_dim))
    basis = _orthonormalize(start_block, None, deflation_rtol=deflation_rtol)
    if basis.shape[1] == 0:
        raise ValueError("start_block spans nothing (all columns deflated)")
    block = basis
    while basis.shape[1] < max_dim:
        block = _orthonormalize(
            apply_operator(block), basis, deflation_rtol=deflation_rtol
        )
        if block.shape[1] == 0:
            break
        room = max_dim - basis.shape[1]
        block = block[:, :room]
        basis = np.column_stack([basis, block])
    return basis


def reduce_pair(g, c, b, *, shift, blocks):
    """Galerkin reduction of an ``(G, C)`` pair at one expansion shift.

    The reference implementation behind the property tests: builds the
    block Krylov basis ``V`` of ``K = (G + shift C)^{-1} C`` started at
    ``(G + shift C)^{-1} B`` with ``blocks`` Arnoldi iterations, and
    projects.  For symmetric ``G`` (SPD) and ``C`` this one-sided
    projection matches the first ``2 * blocks`` moments of the transfer
    function ``H(s) = B' (G + s C)^{-1} B`` at ``s = shift`` (the
    symmetric Lanczos property) — pinned by
    ``tests/linalg/test_mor.py``.

    Parameters
    ----------
    g, c:
        Dense or sparse ``(n, n)`` matrices (``G`` SPD, ``C``
        symmetric positive semi-definite for the matching guarantee).
    b:
        Input block ``(n, m)`` (a vector is treated as one column).
    shift:
        Expansion point ``s0 > 0`` (``1 / dt`` for backward Euler).
    blocks:
        Number of block-Krylov iterations ``q``; the basis has at most
        ``q * m`` columns.

    Returns
    -------
    (v, g_r, c_r, b_r):
        The orthonormal basis and the projected matrices
        ``V' G V``, ``V' C V``, ``V' B``.
    """
    g = np.asarray(g, dtype=float) if not hasattr(g, "tocsc") else g
    b = np.asarray(b, dtype=float)
    if b.ndim == 1:
        b = b[:, None]
    if blocks < 1:
        raise ValueError("blocks must be >= 1, got {}".format(blocks))
    shift = float(shift)
    c_dense = c.toarray() if hasattr(c, "toarray") else np.asarray(c, dtype=float)
    g_dense = g.toarray() if hasattr(g, "toarray") else np.asarray(g, dtype=float)
    m0 = g_dense + shift * c_dense
    factors = scipy.linalg.lu_factor(m0)

    def solve(rhs):
        return scipy.linalg.lu_solve(factors, rhs)

    basis = block_arnoldi(
        lambda block: solve(c_dense @ block),
        solve(b),
        blocks * b.shape[1],
    )
    g_r = basis.T @ (g_dense @ basis)
    c_r = basis.T @ (c_dense @ basis)
    b_r = basis.T @ b
    return basis, g_r, c_r, b_r


def moments(g, c, b, *, shift, count):
    """First ``count`` moments of ``H(s) = B' (G + s C)^{-1} B`` at ``shift``.

    ``m_j = B' (M0^{-1} C)^j M0^{-1} B`` with ``M0 = G + shift C`` —
    the Taylor coefficients (up to sign/factorial) of the transfer
    function around the expansion point.  Dense reference used by the
    moment-matching tests; returns a list of ``(m, m)`` arrays.
    """
    g_dense = g.toarray() if hasattr(g, "toarray") else np.asarray(g, dtype=float)
    c_dense = c.toarray() if hasattr(c, "toarray") else np.asarray(c, dtype=float)
    b = np.asarray(b, dtype=float)
    if b.ndim == 1:
        b = b[:, None]
    factors = scipy.linalg.lu_factor(g_dense + float(shift) * c_dense)
    term = scipy.linalg.lu_solve(factors, b)
    out = []
    for _ in range(int(count)):
        out.append(b.T @ term)
        term = scipy.linalg.lu_solve(factors, c_dense @ term)
    return out


class _Anchor:
    """Basis-independent certification data of one current level.

    ``w = (G - iD)^{-1} 1`` (the weight vector defining the certified
    envelope norm), ``y = M^{-1} 1``, and the derived contraction /
    amplification scalars.  Survives basis enrichment.
    """

    __slots__ = ("w", "w_max", "w_min", "gamma", "mu")

    def __init__(self, w, y):
        self.w = w
        self.w_max = float(np.max(w))
        self.w_min = float(np.min(w))
        ratio = y / w
        self.gamma = 1.0 - float(np.min(ratio))
        self.mu = float(np.max(ratio))


class _LevelData:
    """Basis-stamped per-current-level data of a :class:`ReducedModel`.

    Rebuilt lazily whenever the basis is enriched; the anchors live in
    their own (persistent) cache.

    Besides the reduced solve factors, a level carries the
    QR-compressed residual generator of the step-residual evaluation:
    with ``SV = diag(s) V`` (``s = C/dt``) and ``AV = (G - iD) V``,
    the residual of a reduced step is ``r = W c`` with
    ``W = [SV | -AV | s_res]`` and coefficients ``c = [d1; d2; 1]`` —
    so ``||r||_2 = ||R c||_2`` with ``R`` the triangular QR factor of
    ``W``, an O(r^2) evaluation per step with *linear* rounding error
    (``eps * scale``; a Gram quadratic form would square the
    conditioning and drown the ~1e-9 converged-basis residuals in a
    ``sqrt(eps) * scale`` floor).  ``res_colnorm`` carries the column
    norms of ``R`` for the cancellation guard.  No full-order work
    per step.
    """

    __slots__ = ("current", "anchor", "factors", "x_star", "steady_residual",
                 "res_r", "res_colnorm")

    def __init__(self, current, anchor, factors, x_star, steady_residual,
                 res_r, res_colnorm):
        self.current = current
        self.anchor = anchor
        self.factors = factors
        self.x_star = x_star
        self.steady_residual = steady_residual
        self.res_r = res_r
        self.res_colnorm = res_colnorm


class ReducedModel:
    """A shared moment-matched reduction of one session view.

    Owns the (growable) orthonormal basis ``V``, the projected system
    matrices, the full-order residual factors and the per-level
    certification data.  One instance is shared by every trace
    requesting the same ``(dim, tol)`` from a view
    (:meth:`repro.thermal.session.SessionView.reduced`); traces carry
    their own state in :class:`ReducedTransient` steppers, so
    enrichment triggered by one trace speeds up the others.

    Parameters
    ----------
    view:
        A *shifted* :class:`~repro.thermal.session.SessionView` — the
        shift is the backward-Euler diagonal ``C / dt`` the reduction
        is built for.  Basis solves, certification anchors and
        enrichment restarts all ride the view's factorization caches.
    dim:
        Target basis dimension ``r`` of the initial build.
    tol_kelvin:
        Certified max-error budget per trace (Kelvin).
    check_every:
        Steps between bound-vs-tolerance checks (see
        :data:`DEFAULT_CHECK_EVERY`).
    max_dim:
        Enrichment ceiling; once reached, over-budget traces fall back
        to full-order solves step by step (still certified).  Defaults
        to ``4 * dim``.
    expansion_current:
        Supply current of the expansion point (default 0: the basis
        solves ride the view's base factorization).
    """

    def __init__(
        self,
        view,
        *,
        dim=DEFAULT_ROM_DIM,
        tol_kelvin=DEFAULT_ROM_TOL_K,
        check_every=DEFAULT_CHECK_EVERY,
        max_dim=None,
        expansion_current=0.0,
    ):
        shift = view.shift
        if shift is None:
            raise ValueError(
                "reduced models need a shifted (transient) view; the "
                "steady-state view has no capacitance"
            )
        if dim < 1:
            raise ValueError("dim must be >= 1, got {}".format(dim))
        if tol_kelvin <= 0.0:
            raise ValueError(
                "tol_kelvin must be positive, got {}".format(tol_kelvin)
            )
        if check_every < 1:
            raise ValueError(
                "check_every must be >= 1, got {}".format(check_every)
            )
        self.view = view
        self.system = view.system
        self.shift = shift
        self.dim_target = int(min(dim, self.system.num_nodes))
        self.tol_kelvin = float(tol_kelvin)
        self.check_every = int(check_every)
        self.max_dim = int(
            min(
                max_dim if max_dim is not None else 4 * self.dim_target,
                self.system.num_nodes,
            )
        )
        if self.max_dim < self.dim_target:
            raise ValueError(
                "max_dim must be >= dim, got {} < {}".format(
                    self.max_dim, self.dim_target
                )
            )
        self.expansion_current = float(expansion_current)
        # Shared instrumentation (all traces of this model).
        self.full_solves = 0
        self.full_solve_columns = 0
        self.rom_steps = 0
        self.enrichments = 0
        self.restarts = 0
        self.refinements = 0
        self.build_time_s = 0.0
        self._anchors = {}   # exact float current -> _Anchor (persistent)
        self._kappas = {}    # (from, to) current pair -> envelope factor
        self._levels = {}    # exact float current -> _LevelData (basis-stamped)
        self._steady_absorbed = set()
        self._generation = 0
        self._build_basis()

    # ------------------------------------------------------------------
    # Basis construction and projection
    # ------------------------------------------------------------------

    def _full_solve(self, current, rhs):
        """One (possibly multi-RHS) full-order solve through the view."""
        self.full_solves += 1
        self.full_solve_columns += 1 if rhs.ndim == 1 else rhs.shape[1]
        return self.view.solve_rhs(current, rhs)

    def _build_basis(self):
        start = time.perf_counter()
        system = self.system
        n = system.num_nodes
        ones = np.ones(n)
        # Start block: the uniform vector (ambient initial states are
        # represented exactly) plus the shift-inverted input columns —
        # the first step responses of the constant and Joule power
        # terms.  Further blocks Krylov-extend with K = M0^{-1} S.
        seed_inputs = [system.p_base]
        if np.any(system.joule):
            seed_inputs.append(system.joule)
        seeded = self._full_solve(
            self.expansion_current, np.column_stack(seed_inputs)
        )
        start_block = np.column_stack([ones] + [seeded[:, j] for j in range(seeded.shape[1])])
        basis = block_arnoldi(
            lambda block: self._full_solve(
                self.expansion_current, self.shift[:, None] * block
            ),
            start_block,
            self.dim_target,
        )
        self._set_basis(basis)
        self.build_time_s += time.perf_counter() - start

    def _set_basis(self, basis):
        """Install a basis and (re)compute every projected factor."""
        system = self.system
        self.v = basis
        # Projected system blocks (r x r) and input projections; the
        # n x r intermediates are scratch — per-step residual *norms*
        # are evaluated in reduced coordinates through each level's
        # QR-compressed residual generator, so only the basis itself
        # is kept at full order.
        gv = system.g_matrix @ basis
        sv = self.shift[:, None] * basis
        self.s_r = basis.T @ sv
        self.g_r = basis.T @ gv
        self.d_r = basis.T @ (system.d_diagonal[:, None] * basis)
        self.p_base_r = basis.T @ system.p_base
        self.joule_r = basis.T @ system.joule
        self._levels = {}
        self._generation += 1

    @property
    def dim(self):
        """Current basis dimension (grows on enrichment)."""
        return self.v.shape[1]

    @property
    def generation(self):
        """Monotone counter bumped on every basis change (steppers use
        it to detect enrichment performed by sibling traces)."""
        return self._generation

    def stats(self):
        """Plain-data instrumentation snapshot (JSON-representable)."""
        return {
            "dim": int(self.dim),
            "dim_target": int(self.dim_target),
            "max_dim": int(self.max_dim),
            "tol_kelvin": float(self.tol_kelvin),
            "check_every": int(self.check_every),
            "full_solves": int(self.full_solves),
            "full_solve_columns": int(self.full_solve_columns),
            "rom_steps": int(self.rom_steps),
            "enrichments": int(self.enrichments),
            "restarts": int(self.restarts),
            "refinements": int(self.refinements),
            "levels": len(self._anchors),
        }

    # ------------------------------------------------------------------
    # Per-level data
    # ------------------------------------------------------------------

    def _anchor(self, current):
        """The basis-independent certification anchor of one level.

        One steady-view solve ``w = (G - iD)^{-1} 1`` and one
        shifted-view solve ``y = M^{-1} 1``; both must be strictly
        positive (inverse positivity below runaway) or
        :class:`CertificationError` is raised.  Cached per exact float
        current, surviving basis enrichment.
        """
        cached = self._anchors.get(current)
        if cached is not None:
            return cached
        ones = np.ones(self.system.num_nodes)
        w = self.view.session.base_view().solve_rhs(current, ones)
        self.full_solves += 1
        self.full_solve_columns += 1
        y = self._full_solve(current, ones)
        if float(np.min(w)) <= 0.0 or float(np.min(y)) <= 0.0:
            raise CertificationError(
                "inverse positivity fails at i = {} A — certification "
                "anchors unavailable (current at/beyond runaway, or an "
                "unconverged iterative solve)".format(current)
            )
        anchor = _Anchor(w, y)
        self._anchors[current] = anchor
        return anchor

    def kappa(self, current_from, current_to):
        """Envelope conversion factor between two current levels.

        The certified envelope ``|e| <= beta w_from`` re-bases to the
        destination weight as ``beta' = beta * max_j (w_from/w_to)_j``.
        Cached per ordered pair (weights are basis-independent).
        """
        key = (current_from, current_to)
        cached = self._kappas.get(key)
        if cached is None:
            cached = float(np.max(
                self._anchor(current_from).w / self._anchor(current_to).w
            ))
            self._kappas[key] = cached
        return cached

    def level(self, current):
        """The (lazily built, basis-stamped) level data for a current."""
        current = float(current)
        data = self._levels.get(current)
        if data is not None:
            return data
        anchor = self._anchor(current)
        # Absorb the full-order steady state of this level: a Galerkin
        # basis reproduces in-span steady states exactly, so this
        # zeroes the persistent component of the step residual — the
        # term that would otherwise accumulate in the envelope for the
        # whole approach to steady state.  The solve rides the steady
        # view's per-current solution cache.
        if current not in self._steady_absorbed:
            self._steady_absorbed.add(current)
            self.full_solves += 1
            self.full_solve_columns += 1
            self.absorb(self.view.session.base_view().solve(current))
        a_r = self.g_r - current * self.d_r
        m_r = self.s_r + a_r
        factors = scipy.linalg.lu_factor(m_r, check_finite=False)
        p_r = self.p_base_r + (current * current) * self.joule_r
        x_star = scipy.linalg.cho_solve(
            scipy.linalg.cho_factor(a_r, check_finite=False), p_r,
            check_finite=False,
        )
        # Exact full-order steady residual of the subspace at this
        # level — the anchor of the per-step residual evaluation (the
        # stepper only adds increment terms around x_star) — plus the
        # QR compression of the residual generator: every step
        # residual is r = W c with W = [SV | -AV | s_res] and O(r)
        # coefficients c = [d1; d2; 1], so the triangular factor of a
        # one-off QR of W gives ||r||_2 = ||R c||_2 per step with
        # linear (eps * scale) rounding — a Gram quadratic form would
        # square the conditioning and drown converged-basis residuals.
        # W, AV, SV are n x O(r) scratch, discarded here.
        av = self.system.g_matrix @ self.v - current * (
            self.system.d_diagonal[:, None] * self.v
        )
        steady_residual = self.system.power_vector(current) - av @ x_star
        dim = self.v.shape[1]
        generator = np.empty((self.system.num_nodes, 2 * dim + 1))
        generator[:, :dim] = self.shift[:, None] * self.v
        generator[:, dim:2 * dim] = -av
        generator[:, 2 * dim] = steady_residual
        # mode="r" keeps the full (n, k) array of zero-padded rows —
        # slice to the leading k x k triangle so the per-step product
        # is O(r^2), not an n-sized GEMV.
        res_r = np.ascontiguousarray(
            scipy.linalg.qr(generator, mode="r", check_finite=False)[0][
                : generator.shape[1]
            ]
        )
        colnorm = np.sqrt(np.sum(res_r * res_r, axis=0))
        data = _LevelData(
            current, anchor, factors, x_star, steady_residual,
            res_r=res_r,
            res_colnorm=(
                _RESIDUAL_GUARD
                * float(np.sqrt(self.system.num_nodes))
                * colnorm
            ),
        )
        self._levels[current] = data
        return data

    # ------------------------------------------------------------------
    # Enrichment
    # ------------------------------------------------------------------

    def absorb(self, theta):
        """Augment the basis so ``theta`` is represented exactly.

        Returns True when the basis changed.  No-ops when ``theta``
        already lies in the span (to deflation precision) or the
        enrichment ceiling is reached.
        """
        room = self.max_dim - self.dim
        if room <= 0:
            return False
        addition = _orthonormalize(theta, self.v)[:, :room]
        if addition.shape[1] == 0:
            return False
        self.enrichments += 1
        self._set_basis(np.column_stack([self.v, addition]))
        return True

    def project(self, theta):
        """Coefficients of ``theta`` in the current basis (``V' theta``)."""
        return self.v.T @ np.asarray(theta, dtype=float)

    def lift(self, x):
        """Full-order lift ``V x`` of a reduced state."""
        return self.v @ x


class ReducedTransient:
    """One trace's stepper over a shared :class:`ReducedModel`.

    Carries the per-trace reduced state, the running certified bound
    and (optionally) a maintained row sub-basis for cheap partial
    lifts.  The model (basis, level data, counters) is shared —
    enrichment triggered here benefits every sibling trace.

    Parameters
    ----------
    rom:
        The shared :class:`ReducedModel`.
    theta0:
        Full-order initial state (Kelvin).  Absorbed into the basis
        when not already representable, so the certified bound starts
        at the exact (usually zero) projection error.
    lift_rows:
        Optional node indices to maintain a row sub-basis for;
        :meth:`theta_rows` then lifts only those rows in
        ``O(len(rows) * r)`` per call — the control loop's
        sensor/silicon fast path.  When given, the certified Kelvin
        bounds cover exactly those rows: the envelope ``|e| <= beta w``
        is per-node, so the Kelvin conversion uses ``max(w[rows])``
        instead of the global ``max(w)``.  That is not just cheaper to
        maintain — silicon weights sit far below the TEC hot-junction
        peak of ``w``, so a row-certified trace keeps headroom under
        ``tol_kelvin`` (and avoids refinement work) much longer.
    """

    def __init__(self, rom, theta0, *, lift_rows=None):
        self.rom = rom
        theta0 = np.asarray(theta0, dtype=float)
        if theta0.shape != (rom.system.num_nodes,):
            raise ValueError(
                "theta0 must have length {}, got shape {}".format(
                    rom.system.num_nodes, theta0.shape
                )
            )
        rom.absorb(theta0)
        self._generation = rom.generation
        self.x = rom.project(theta0)
        # The certified envelope is |error| <= beta * w_level; until
        # the first step fixes a level, the initial projection
        # residual (zero unless the basis hit max_dim) is carried as a
        # pending Kelvin-norm vector and folded into beta against the
        # first level's weight.
        self._rows = (
            None if lift_rows is None
            else np.asarray(lift_rows, dtype=np.intp)
        )
        self._row_wmax = {}
        residual0 = theta0 - rom.lift(self.x)
        reported0 = (
            residual0 if self._rows is None else residual0[self._rows]
        )
        pending = float(np.max(np.abs(reported0))) if reported0.size else 0.0
        self._pending = (
            residual0 if float(np.max(np.abs(residual0))) > 0.0 else None
        )
        self._beta = 0.0
        self._level_current = None
        self._max_certified_k = pending
        self.steps = 0
        self._since_check = 0
        # The open certification window: per-step records since the
        # last check, carrying the reduced residual coefficients so a
        # check can materialize the signed residual vectors and
        # sharpen the provisional bound retroactively — batched GEMM
        # first, one batched solve per current level only if still
        # over budget (see _check).
        self._window = []
        self._checkpoint_beta = 0.0
        self._checkpoint_x = self.x.copy()
        self._rows_basis = None if self._rows is None else rom.v[self._rows]

    def _w_max(self, current, anchor):
        """Kelvin conversion weight for reported bounds at a level.

        The envelope ``|e| <= beta w`` holds per node; a trace that
        only reports ``lift_rows`` is certified at those rows, so the
        conversion takes the weight maximum over them.
        """
        if self._rows is None:
            return anchor.w_max
        cached = self._row_wmax.get(current)
        if cached is None:
            cached = float(np.max(anchor.w[self._rows]))
            self._row_wmax[current] = cached
        return cached

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    def _sync_generation(self):
        """Pick up basis growth performed by sibling traces.

        New basis columns are orthogonal to the old ones, so the
        existing coefficients stay valid — the state is padded with
        zeros and the maintained row sub-basis re-sliced.
        """
        if self._generation == self.rom.generation:
            return
        dim = self.rom.dim
        if self.x.shape[0] < dim:
            padded = np.zeros(dim)
            padded[: self.x.shape[0]] = self.x
            self.x = padded
        if self._checkpoint_x.shape[0] < dim:
            padded = np.zeros(dim)
            padded[: self._checkpoint_x.shape[0]] = self._checkpoint_x
            self._checkpoint_x = padded
        if self._rows is not None:
            self._rows_basis = self.rom.v[self._rows]
        self._generation = self.rom.generation

    @property
    def bound_k(self):
        """Current certified max error (Kelvin) vs the full
        backward-Euler trajectory from the same initial state and
        current/power sequence — over all nodes, or over ``lift_rows``
        when the trace reports only those.  Mid-window this is the
        provisional (always valid, possibly un-sharpened) value."""
        if self._level_current is None:
            if self._pending is None:
                return 0.0
            return float(np.max(np.abs(self._pending)))
        anchor = self.rom._anchor(self._level_current)
        return self._beta * self._w_max(self._level_current, anchor)

    @property
    def max_bound_k(self):
        """Certified max error bound over the whole trace so far.

        Closed windows contribute their (possibly sharpened) per-step
        bounds; the open window contributes its provisional per-step
        bounds, which are valid but may still be sharpened downward at
        the next check.
        """
        open_max = max(
            (record[5] for record in self._window), default=0.0
        )
        return max(self._max_certified_k, open_max)

    @property
    def certified_error_k(self):
        """Alias of :attr:`max_bound_k`."""
        return self.max_bound_k

    def theta_full(self):
        """Full-order lift of the current state (length ``n``)."""
        self._sync_generation()
        return self.rom.lift(self.x)

    def theta_rows(self):
        """Lift at the ``lift_rows`` nodes only (``O(rows * r)``)."""
        if self._rows is None:
            raise RuntimeError("stepper was built without lift_rows")
        self._sync_generation()
        return self._rows_basis @ self.x

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self, current, *, extra=None, extra_rows=None):
        """Advance one certified backward-Euler step at ``current``.

        Parameters
        ----------
        current:
            Supply current of the step (selects the cached level).
        extra / extra_rows:
            Optional power override: ``extra`` (W) added at node
            indices ``extra_rows`` on top of the steady power vector
            ``p(i)`` — the simulators' per-step tile power deltas.
            The override is projected onto the basis for the reduced
            right-hand side and enters the exact residual evaluation
            at full order.

        Returns the reduced state; lift with :meth:`theta_full` /
        :meth:`theta_rows`.  When the tentative bound would exceed the
        model's ``tol_kelvin`` at a check step, the step is answered by
        a full-order restart instead and the basis is enriched.
        """
        rom = self.rom
        current = float(current)
        level = rom.level(current)
        # After level(): a first visit to a level may have enriched the
        # basis with its steady state, so sync before touching x.
        self._sync_generation()
        anchor = level.anchor
        # Envelope context of this step: re-base onto this level's
        # weight and fold in any pending Kelvin-norm residual.
        kappa = 1.0
        if self._level_current is not None and self._level_current != current:
            kappa = rom.kappa(self._level_current, current)
        pre_add = 0.0
        if self._pending is not None:
            pre_add = float(np.max(np.abs(self._pending) / anchor.w))
            self._pending = None
        self._level_current = current
        x_old = self.x
        rhs_r = rom.s_r @ x_old + rom.p_base_r + (
            (current * current) * rom.joule_r
        )
        rows = None
        if extra is not None:
            extra = np.asarray(extra, dtype=float)
            rows = np.asarray(extra_rows, dtype=np.intp)
            rhs_r = rhs_r + rom.v[rows].T @ extra
        x_new = scipy.linalg.lu_solve(
            level.factors, rhs_r, check_finite=False
        )
        # Residual norm of the step, exactly, in O(r^2) reduced
        # coordinates: with d1 = x_old - x_new and d2 = x_new - x*,
        # r = W [d1; d2; 1] for the level's residual generator
        # W = [SV | -AV | s_res], so ||r||_2 = ||R c||_2 through the
        # cached triangular QR factor, and ||r||_inf <= ||r||_2 keeps
        # the certificate an upper bound.  The res_colnorm dot guards
        # the floating-point rounding (see _RESIDUAL_GUARD); the
        # signed residual vector is only materialized if the window
        # overruns the budget (_materialize_window).
        d1 = x_old - x_new
        d2 = x_new - level.x_star
        coeffs = np.concatenate([d1, d2, [1.0]])
        norm2 = float(np.linalg.norm(level.res_r @ coeffs)) + float(
            level.res_colnorm @ np.abs(coeffs)
        )
        if rows is not None and extra.size:
            # Triangle inequality for the power override: sharpened to
            # the exact folded-in norm at materialization if needed.
            norm2 += float(np.linalg.norm(extra))
        t_prov = anchor.mu * norm2
        beta = anchor.gamma * (kappa * self._beta + pre_add) + t_prov
        rom.rom_steps += 1
        w_max = self._w_max(current, anchor)
        # Window record: [gamma, kappa, pre_add, t, payload, bound_k
        # after this step, current, w_max, extra, extra_rows].  The
        # payload starts as the (d1, x_new) coefficient pair, becomes
        # the signed residual vector once materialized, and None once
        # solve-sharpened; the last two fields let a failed check
        # rewind the window at full order.
        self._window.append([
            anchor.gamma, kappa, pre_add, t_prov, (d1, x_new),
            beta * w_max, current, w_max, extra, rows,
        ])
        self._beta = beta
        self.x = x_new
        self.steps += 1
        self._since_check += 1
        # Close the window on cadence, or *immediately* when this
        # step's provisional bound crosses the budget: states handed
        # out so far all carried valid bounds within tol at emission
        # time, and checking before this one escapes keeps it that way
        # (a rewind replaces this step's state, never an emitted one).
        if (
            self._since_check >= rom.check_every
            or beta * w_max > rom.tol_kelvin
        ):
            self._since_check = 0
            self._check()
        return self.x

    # ------------------------------------------------------------------
    # Certification checks
    # ------------------------------------------------------------------

    def _check(self):
        """Close the window: sharpen if over budget, rewind if still over.

        The provisional bound is valid at any sharpness, so a window
        whose provisional endpoint stays inside the cheap-commit
        budget (:data:`_CHEAP_COMMIT_FRACTION` of ``tol_kelvin`` —
        commits are permanent, so cheap sharpness may only spend the
        lower half) commits as-is, no full-order work at all — the
        converged-basis steady state of every trace.  Otherwise the window's
        signed residual vectors are materialized (one batched basis
        GEMM per current level, still no solves) and the cheap 2-norm
        terms replaced by exact ``mu ||r||_inf`` ones; if that is
        still over budget, one batched multi-RHS solve per current
        level replaces them with the exact ``max(M^{-1}|r| / w)`` —
        typically orders of magnitude sharper, because the Galerkin
        residual is nearly invisible to ``M^{-1}`` — and the scalar
        recursion replays.  Only if the *sharpened* bound still
        exceeds the budget is the window rewound at full order (which
        also enriches the basis with the rewound states).  Because
        :meth:`step` closes the window the moment a provisional bound
        crosses the budget, every state already emitted carried a
        within-budget bound at emission time, and sharpening only ever
        lowers those bounds — a rewind touches nothing the caller has
        seen except the current, not-yet-returned step.
        """
        rom = self.rom
        cheap_budget = _CHEAP_COMMIT_FRACTION * rom.tol_kelvin
        if max(record[5] for record in self._window) <= cheap_budget:
            self._commit_window(self._beta)
            return
        exact = self._materialize_window()
        if max(record[5] for record in self._window) <= cheap_budget:
            self._beta = exact
            self._commit_window(exact)
            return
        refined = self._refine()
        if max(record[5] for record in self._window) <= rom.tol_kelvin:
            self._beta = refined
            self._commit_window(refined)
            return
        self._rewind_window()

    def _commit_window(self, beta):
        """Certify every step of the window at its current sharpness."""
        for record in self._window:
            self._max_certified_k = max(self._max_certified_k, record[5])
        self._window = []
        self._checkpoint_beta = beta
        self._checkpoint_x = self.x.copy()

    def _materialize_window(self):
        """Materialize signed residual vectors; sharpen to exact inf-norms.

        The per-step residual identity ``r = SV d1 + p(i) - AV x_new``
        (the ``x_star`` terms cancel, so mid-window enrichment — which
        re-bases ``x_star`` — cannot skew old records; coefficient
        vectors recorded before an enrichment extend exactly with
        zeros) is evaluated with one batched basis GEMM and one sparse
        mat-mat per current level in the window.  No solves.  Each
        record's cheap 2-norm term is replaced with the exact
        ``mu ||r||_inf`` (never larger), the signed vector is left in
        the record for :meth:`_refine`, and the envelope recursion
        replays from the checkpoint.  Returns the sharpened endpoint.
        """
        rom = self.rom
        system = rom.system
        dim = rom.dim
        groups = {}
        for index, record in enumerate(self._window):
            if isinstance(record[4], tuple):
                groups.setdefault(record[6], []).append(index)
        for group_current, indices in groups.items():
            count = len(indices)
            coeffs = np.zeros((dim, 2 * count))
            for position, i in enumerate(indices):
                d1, x_new = self._window[i][4]
                coeffs[: d1.shape[0], position] = d1
                coeffs[: x_new.shape[0], count + position] = x_new
            lifted = rom.v @ coeffs
            states = lifted[:, count:]
            block = (
                rom.shift[:, None] * lifted[:, :count]
                - (system.g_matrix @ states
                   - group_current * (system.d_diagonal[:, None] * states))
                + system.power_vector(group_current)[:, None]
            )
            mu = rom._anchor(group_current).mu
            for position, i in enumerate(indices):
                record = self._window[i]
                residual = block[:, position]
                if record[8] is not None and record[8].size:
                    residual[record[9]] += record[8]
                record[3] = min(
                    record[3], mu * float(np.max(np.abs(residual)))
                )
                record[4] = residual
        beta = self._checkpoint_beta
        for record in self._window:
            beta = record[0] * (record[1] * beta + record[2]) + record[3]
            record[5] = beta * record[7]
        return beta

    def _refine(self):
        """Sharpen the window's residual terms with batched solves.

        Groups the stored signed ``r_j`` vectors by current level,
        answers each group with one multi-RHS full-order solve,
        replaces the provisional ``mu ||r_j||_inf`` terms with the
        exact ``max(|M^{-1} r_j| / w)`` — the *signed* solve keeps the
        cancellation inside ``M^{-1} r_j`` that the provisional bound
        must forfeit — and replays the envelope recursion from the
        window checkpoint.  Returns the sharpened endpoint ``beta``;
        per-step bounds in the records are updated in place.
        """
        rom = self.rom
        rom.refinements += 1
        groups = {}
        for index, record in enumerate(self._window):
            if record[4] is not None:
                groups.setdefault(record[6], []).append(index)
        for group_current, indices in groups.items():
            block = np.column_stack(
                [self._window[i][4] for i in indices]
            )
            solved = np.abs(rom._full_solve(group_current, block))
            w = rom._anchor(group_current).w
            sharpened = np.max(solved / w[:, None], axis=0)
            for position, i in enumerate(indices):
                self._window[i][3] = max(float(sharpened[position]), 0.0)
                self._window[i][4] = None
        beta = self._checkpoint_beta
        for record in self._window:
            beta = record[0] * (record[1] * beta + record[2]) + record[3]
            record[5] = beta * record[7]
        return beta

    def _rewind_window(self):
        """Replay the failed window at full order, then enrich.

        Re-integrates every step of the window from the checkpointed
        state with full-order solves — each rewound step has zero
        residual, so its envelope obeys ``beta_n = gamma_n beta_ctx``
        and only *contracts* — then absorbs the rewound states into
        the basis as one block, so the subspace learns the trajectory
        segment it just failed to track.

        Only the *last* record's state and bound are replaced: earlier
        window steps were already emitted to the caller with their
        (refined, within-budget) bounds, and those bounds stay — the
        replay exists to reset the state error and enrich the basis,
        not to rewrite history the caller has seen.  Any part of the
        final state a ``max_dim``-capped basis cannot represent enters
        the envelope through its exact projection residual, so the
        certificate survives the cap (such traces just degrade toward
        one full solve per window).
        """
        rom = self.rom
        rom.restarts += 1
        rom.rom_steps -= len(self._window)
        theta = rom.lift(self._checkpoint_x)
        beta = self._checkpoint_beta
        states = []
        for record in self._window:
            current = record[6]
            rhs = rom.shift * theta + rom.system.power_vector(current)
            if record[8] is not None and record[8].size:
                rhs[record[9]] += record[8]
            theta = rom._full_solve(current, rhs)
            states.append(theta)
            beta = record[0] * (record[1] * beta + record[2])
        last_record = self._window[-1]
        last_record[5] = beta * last_record[7]
        grew = rom.absorb(np.column_stack(states))
        if grew:
            self._sync_generation()
        self.x = rom.project(theta)
        residual = np.abs(theta - rom.lift(self.x))
        if float(np.max(residual)) > 0.0:
            anchor = rom._anchor(last_record[6])
            beta += float(np.max(residual / anchor.w))
            last_record[5] = beta * last_record[7]
        self._beta = beta
        self._commit_window(beta)
