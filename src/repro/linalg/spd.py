"""Positive-definiteness tests.

The paper's runaway-current computation (Section V.C.1) binary-searches
the largest ``i`` such that ``G - i D`` is positive definite, using a
Cholesky factorization as the O(n^3) definiteness oracle.  This module
provides that oracle for dense and sparse symmetric matrices, plus an
eigenvalue-based check for the *nonsymmetric* matrices that appear in
the Conjecture 1 campaign (Definition 2 of the paper uses the quadratic
form ``x' M x > 0``, which for a general real matrix depends only on
the symmetric part).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp
from scipy.sparse.linalg import splu


def cholesky_is_spd(matrix):
    """Cholesky oracle: True iff the symmetric matrix is positive definite.

    This is the primitive the paper uses inside the binary search for
    ``lambda_m``.  For sparse input an LDL-style check via sparse LU on
    the symmetric matrix is used; for dense input LAPACK's ``potrf``.
    """
    if sp.issparse(matrix):
        return _sparse_is_spd(matrix)
    dense = np.asarray(matrix, dtype=float)
    _require_square(dense)
    if dense.size == 0:
        return True
    try:
        scipy.linalg.cholesky(dense, lower=True)
    except scipy.linalg.LinAlgError:
        return False
    return True


_DENSE_FALLBACK_SIZE = 4000


def _sparse_is_spd(matrix):
    matrix = matrix.tocsc()
    n = matrix.shape[0]
    if n == 0:
        return True
    if n <= _DENSE_FALLBACK_SIZE:
        # Package-scale networks (hundreds to a few thousand nodes) are
        # cheapest and safest to test with a dense Cholesky.
        return cholesky_is_spd(matrix.toarray())
    try:
        # For very large systems, factor with diagonal pivoting
        # suppressed: when SuperLU performs no off-diagonal pivoting the
        # matrix is SPD iff every pivot is positive.
        lu = splu(matrix, diag_pivot_thresh=0.0, options={"SymmetricMode": True})
    except RuntimeError:
        # Singular matrix (factorization failed): not positive definite.
        return False
    return bool(np.all(lu.U.diagonal() > 0.0))


def is_positive_definite(matrix, *, symmetric=None, tol=0.0):
    """Definition 2: ``x' M x > 0`` for all non-zero real ``x``.

    For a general real matrix the quadratic form depends only on the
    symmetric part ``(M + M') / 2``; the test is that the symmetric
    part's smallest eigenvalue exceeds ``tol``.

    Parameters
    ----------
    matrix:
        Square real matrix (dense or sparse).
    symmetric:
        If True, skip symmetrization (slightly cheaper, uses Cholesky).
        If None, symmetry is detected.
    tol:
        Eigenvalue slack: the matrix is reported definite when the
        smallest eigenvalue of the symmetric part is ``> tol``.
    """
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    _require_square(dense)
    if dense.size == 0:
        return True
    if symmetric is None:
        symmetric = np.allclose(dense, dense.T, atol=1.0e-13, rtol=1.0e-13)
    sym_part = dense if symmetric else 0.5 * (dense + dense.T)
    if tol == 0.0 and symmetric:
        return cholesky_is_spd(sym_part)
    eigenvalues = scipy.linalg.eigvalsh(sym_part)
    return bool(eigenvalues[0] > tol)


def smallest_eigenvalue_symmetric_part(matrix):
    """Smallest eigenvalue of ``(M + M') / 2``.

    Positive iff the matrix is positive definite in the Definition 2
    sense; used to quantify margins in the Conjecture 1 campaign.
    """
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
    _require_square(dense)
    if dense.size == 0:
        raise ValueError("matrix must be non-empty")
    sym_part = 0.5 * (dense + dense.T)
    return float(scipy.linalg.eigvalsh(sym_part)[0])


def _require_square(dense):
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError("matrix must be square, got shape {}".format(dense.shape))
