"""Cross-round bordered Woodbury solves for growing TEC deployments.

GreedyDeploy's consecutive rounds assemble systems that differ by a
handful of nodes: covering a tile removes its TIM node and adds two
TEC nodes, and perturbs the conductance rows of the touched
neighbours.  This module expresses round ``k+1``'s conductance matrix
as a low-rank symmetric update of an *anchor* round's factorization,
so a whole greedy run pays one sparse LU instead of one per round.

Embed every round's ``G_k`` into a common augmented index space
(anchor nodes first, nodes created since appended; node *names* are
stable across rounds, indices are not).  With
``A = blkdiag(G_anchor, gamma I_extra)`` and the correction
``C = embed(G_k) + gamma I_dropped - A`` supported on a small index
set ``P`` (dropped TIMs, touched neighbours, new TEC nodes), the
bordered Woodbury identity

    (A + I_P M I_P^T)^{-1}
        = A^{-1} - A^{-1} I_P (I + M Z_P)^{-1} M I_P^T A^{-1}

with ``M = C[P, P]`` and ``Z_P = I_P^T A^{-1} I_P`` answers
``G_k^{-1}`` through the anchor factorization.  This form only needs
``I + M Z_P`` invertible (true whenever ``G_k`` is nonsingular), not
``M`` itself — the correction blocks are typically singular.

Because the deployment grows monotonically, ``P`` grows too, and when
a round's new correction entries are *disjoint* from the previous
ones (the common case: newly covered tiles not adjacent to earlier
coverage), the dense capacitance ``K = I + M Z_P`` changes only by a
border block.  :class:`_BorderedDense` then *extends* the existing
factorization via the block-Schur complement instead of refactorizing
— and older rounds keep solving through their prefix of the border
chain.  The bordering premise fails when a round touches nodes inside
the previous correction block (covering a tile adjacent to an
earlier-covered one changes old rows of ``M``) or when the new
off-diagonal coupling is nonzero; those rounds refactorize the
capacitance from scratch **against the same anchor** (still no sparse
LU).  A fresh anchor (one new sparse LU) is taken only when the
correction support outgrows ``max_correction_fraction`` of the anchor
size, where the dense correction arithmetic would dominate.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

#: Relative pivot threshold below which a dense (Schur) factor is
#: treated as singular and the bordering/refactorization attempt is
#: abandoned for the next-cheaper fallback.
_DENSE_RCOND = 1.0e-12


class _BorderedDense:
    """A dense LU grown by border blocks (block-LU / Schur bordering).

    Level 0 factors the initial matrix; :meth:`extend` appends a
    ``[[A, B], [C, D]]`` border whose Schur complement
    ``S = D - C A^{-1} B`` is factored against the existing chain.
    :meth:`solve` accepts a ``levels`` prefix so snapshots taken
    before later extensions keep solving their own (smaller) matrix.
    """

    def __init__(self, matrix):
        matrix = np.asarray(matrix, dtype=float)
        self._base = scipy.linalg.lu_factor(matrix, check_finite=False)
        _check_dense_factors(self._base)
        self._borders = []  # (Y = A^{-1} B, C, Schur LU factors, k)
        self.size = matrix.shape[0]

    @property
    def levels(self):
        return len(self._borders)

    def size_at(self, levels):
        size = self._base[0].shape[0]
        for y_block, _, _, k in self._borders[:levels]:
            size += k
        return size

    def extend(self, b_block, c_block, d_block):
        """Grow by one border block; False when the Schur complement is
        singular to working precision (caller refactorizes)."""
        b_block = np.asarray(b_block, dtype=float)
        c_block = np.asarray(c_block, dtype=float)
        d_block = np.asarray(d_block, dtype=float)
        y_block = self.solve(b_block)
        schur = d_block - c_block @ y_block
        try:
            factors = scipy.linalg.lu_factor(schur, check_finite=False)
            _check_dense_factors(factors)
        except np.linalg.LinAlgError:
            return False
        self._borders.append((y_block, c_block, factors, d_block.shape[0]))
        self.size += d_block.shape[0]
        return True

    def solve(self, rhs, levels=None):
        rhs = np.asarray(rhs, dtype=float)
        one_dim = rhs.ndim == 1
        if one_dim:
            rhs = rhs[:, None]
        if levels is None:
            levels = len(self._borders)
        x = self._solve_level(levels, rhs)
        return x[:, 0] if one_dim else x

    def _solve_level(self, level, rhs):
        if level == 0:
            return scipy.linalg.lu_solve(self._base, rhs, check_finite=False)
        y_block, c_block, factors, k = self._borders[level - 1]
        top = self._solve_level(level - 1, rhs[:-k])
        y = scipy.linalg.lu_solve(
            factors, rhs[-k:] - c_block @ top, check_finite=False
        )
        return np.concatenate([top - y_block @ y, y], axis=0)


def _check_dense_factors(factors):
    u_diag = np.abs(np.diag(factors[0]))
    if not np.all(np.isfinite(u_diag)) or (
        u_diag.size and u_diag.min() <= _DENSE_RCOND * max(u_diag.max(), 1.0)
    ):
        raise np.linalg.LinAlgError("dense factor singular to working precision")


class _BorderedBaseSolve:
    """Per-round ``G_k^{-1}`` view handed to ``SteadyStateSolver.adopt_base``.

    Snapshots everything round-specific (index permutation, correction
    block, capacitance prefix level) so later extensions of the shared
    border chain do not invalidate it.
    """

    def __init__(self, context, perm, n_aug, p_indices, m_block, apinv, levels):
        self._context = context
        self._perm = perm
        self._n_aug = n_aug
        self._p = p_indices
        self._m = m_block
        self._apinv = apinv
        self._levels = levels

    def solve(self, rhs):
        ctx = self._context
        rhs = np.asarray(rhs, dtype=float)
        one_dim = rhs.ndim == 1
        block = rhs[:, None] if one_dim else rhs
        rhs_aug = np.zeros((self._n_aug, block.shape[1]))
        rhs_aug[self._perm] = block
        x0 = ctx._apply_anchor_inverse(rhs_aug)
        if self._p.size:
            correction = ctx._k.solve(self._m @ x0[self._p], levels=self._levels)
            x0 -= self._apinv @ correction
        x = x0[self._perm]
        return x[:, 0] if one_dim else x


class BorderedDeployContext:
    """Cross-round solve reuse for a monotonically growing deployment.

    One context accompanies one GreedyDeploy run.  Call
    :meth:`attach` with each round's freshly built model (before any
    solve); it either captures the round as the anchor, or injects a
    bordered/refactorized cross-round view into the round's solver via
    :meth:`~repro.thermal.solve.SteadyStateSolver.adopt_base`.  The
    returned mode string is one of ``"skipped"`` (non-reuse backend),
    ``"anchor"``, ``"bordered"``, ``"refactorized"`` or
    ``"reanchored"`` — see the module docstring for when each fires.
    """

    def __init__(self, *, max_correction_fraction=0.4, gamma=None):
        self.max_correction_fraction = float(max_correction_fraction)
        self._gamma_override = gamma
        self._gamma = 1.0
        self._anchor_lu = None
        self._anchor_g = None
        self._anchor_n = 0
        self._aug_names = {}
        self._extra_names = []
        self._anchor_cols = {}   # aug index -> anchor part of A^{-1} e_p
        self._p_list = []
        self._m = None
        self._k = None
        self.anchor_rounds = 0
        self.bordered_rounds = 0
        self.refactorized_rounds = 0
        self.anchor_columns = 0

    # ------------------------------------------------------------------
    # Anchor plumbing
    # ------------------------------------------------------------------

    def _set_anchor(self, model):
        self._anchor_lu = model.solver.base_factorization()
        self._anchor_g = model.system.g_matrix.tocsc()
        self._anchor_n = model.system.num_nodes
        self._aug_names = {
            node.name: index for index, node in enumerate(model.network.nodes)
        }
        self._extra_names = []
        self._anchor_cols = {}
        self._p_list = []
        self._m = None
        self._k = None
        diag = self._anchor_g.diagonal()
        self._gamma = (
            float(self._gamma_override)
            if self._gamma_override is not None
            else float(np.median(diag[diag > 0.0])) if np.any(diag > 0.0) else 1.0
        )
        self.anchor_rounds += 1

    def _apply_anchor_inverse(self, rhs_aug):
        """``A^{-1} rhs`` on the augmented space (block-diagonal)."""
        x = np.empty_like(rhs_aug)
        x[: self._anchor_n] = self._anchor_lu.solve(rhs_aug[: self._anchor_n])
        x[self._anchor_n:] = rhs_aug[self._anchor_n:] / self._gamma
        return x

    def _apinv_columns(self, p_indices):
        """The dense block ``A^{-1} I_P`` (new anchor columns batched)."""
        n_aug = self._anchor_n + len(self._extra_names)
        missing = [
            p for p in p_indices if p < self._anchor_n and p not in self._anchor_cols
        ]
        if missing:
            rhs = np.zeros((self._anchor_n, len(missing)))
            rhs[missing, np.arange(len(missing))] = 1.0
            solved = self._anchor_lu.solve(rhs)
            for j, p in enumerate(missing):
                self._anchor_cols[p] = solved[:, j].copy()
            self.anchor_columns += len(missing)
        apinv = np.zeros((n_aug, len(p_indices)))
        for j, p in enumerate(p_indices):
            if p < self._anchor_n:
                apinv[: self._anchor_n, j] = self._anchor_cols[p]
            else:
                apinv[p, j] = 1.0 / self._gamma
        return apinv

    # ------------------------------------------------------------------
    # Per-round attach
    # ------------------------------------------------------------------

    def attach(self, model):
        """Seed ``model``'s solver from the accumulated cross-round state.

        Returns the mode string (see the class docstring).  Must be
        called before the model performs any solve.
        """
        solver = model.solver
        if solver.effective_mode != "reuse":
            return "skipped"
        if self._anchor_lu is None:
            self._set_anchor(model)
            return "anchor"

        names = [node.name for node in model.network.nodes]
        perm = np.empty(len(names), dtype=np.intp)
        for index, name in enumerate(names):
            aug = self._aug_names.get(name)
            if aug is None:
                aug = self._anchor_n + len(self._extra_names)
                self._aug_names[name] = aug
                self._extra_names.append(name)
            perm[index] = aug
        n_aug = self._anchor_n + len(self._extra_names)

        # Correction C = embed(G_k) + gamma I_dropped - A on the
        # augmented space.  Untouched entries cancel bitwise (blueprint
        # replay re-emits identical conductance streams), so the
        # support of C is exactly the perturbed node set.
        coo = model.system.g_matrix.tocoo()
        embed = sp.coo_matrix(
            (coo.data, (perm[coo.row], perm[coo.col])), shape=(n_aug, n_aug)
        ).tocsr()
        present = np.zeros(n_aug, dtype=bool)
        present[perm] = True
        gamma_fill = np.where(present, 0.0, self._gamma)
        n_extra = n_aug - self._anchor_n
        a_aug = sp.block_diag(
            [self._anchor_g, sp.diags(np.full(n_extra, self._gamma))],
            format="csr",
        ) if n_extra else self._anchor_g.tocsr()
        corr = (embed + sp.diags(gamma_fill) - a_aug).tocsr()
        corr.eliminate_zeros()

        touched = np.flatnonzero(np.diff(corr.indptr))
        r_fraction = touched.size / max(self._anchor_n, 1)
        if r_fraction > self.max_correction_fraction:
            self._set_anchor(model)
            return "reanchored"

        old_p = self._p_list
        new_p = sorted(set(touched.tolist()) - set(old_p))
        p_total = list(old_p) + new_p
        p_array = np.asarray(p_total, dtype=np.intp)
        m_full = corr[p_array][:, p_array].toarray()

        r_old = len(old_p)
        can_border = (
            self._k is not None
            and self._m is not None
            and np.array_equal(m_full[:r_old, :r_old], self._m)
            and not np.any(m_full[:r_old, r_old:])
        )

        apinv = self._apinv_columns(p_total)
        z_block = apinv[p_array, :]
        k_full = np.eye(len(p_total)) + m_full @ z_block

        mode = None
        if can_border and len(new_p):
            if self._k.extend(
                k_full[:r_old, r_old:],
                k_full[r_old:, :r_old],
                k_full[r_old:, r_old:],
            ):
                mode = "bordered"
        elif can_border:
            # Nothing new in the correction (identical support and
            # entries): the existing chain already factors K.
            mode = "bordered"
        if mode is None:
            try:
                self._k = _BorderedDense(k_full)
            except np.linalg.LinAlgError:
                # Capacitance singular against this anchor (numerically
                # degenerate correction): fall back to a fresh anchor.
                self._set_anchor(model)
                return "reanchored"
            mode = "refactorized"

        self._p_list = p_total
        self._m = m_full
        view = _BorderedBaseSolve(
            self, perm, n_aug, p_array, m_full, apinv, self._k.levels
        )
        solver.adopt_base(view)
        if mode == "bordered":
            self.bordered_rounds += 1
        else:
            self.refactorized_rounds += 1
        return mode
