"""Steady-state nodal analysis (Section IV.C) on the solve-session core.

Solves ``(G - i D) theta = p(i)`` through the pluggable backend layer
of :mod:`repro.thermal.session`.  Six modes are accepted by
:class:`SteadyStateSolver` (and by everything that forwards to it —
``CoolingSystemProblem``, sweep scenarios, the CLI ``--backend`` flag):

``mode="direct"``
    One sparse LU per distinct current, kept in a true-LRU cache.  The
    seed behaviour; cost ``O(LU(n))`` per *distinct* current.

``mode="reuse"``
    Blocked Woodbury factorization reuse.  ``D`` is diagonal and only
    non-zero on the TEC hot/cold nodes, so ``G - i D`` is a low-rank
    diagonal perturbation of ``G``.  The engine factorizes ``G`` once
    per assembled system, batch-solves the ``2 m`` influence columns
    ``W = G^{-1} I_S`` (``S`` = Peltier support) in one BLAS-3 pass,
    and answers every current through the Woodbury identity

        (G - i D)^{-1} b = x + W (I - i d Z)^{-1} (i d x_S)

    with ``x = G^{-1} b``, ``Z = I_S^T W`` and ``d`` the support
    diagonal.  The power-vector solves are *blocked over currents*
    too: ``p(i) = p_base + i^2 joule`` is linear in ``(1, i^2)``, so
    one two-column triangular solve answers ``G^{-1} p(i)`` for every
    current ever requested.  Per current this leaves one dense
    ``2m x 2m`` capacitance factorization (cached per current, LRU)
    and BLAS-3 back-substitutions — ``O((2m)^3)`` once per current,
    ``O(n * 2m)`` per solve.  Ideal while the support is small; the
    capacitance blows up quadratically-to-cubically as deployments
    densify.

``mode="krylov"``
    G-preconditioned iterative solves
    (:func:`repro.linalg.krylov.krylov_solve`).  The cached base-``G``
    sparse LU preconditions GMRES (or BiCGSTAB) on ``G - i D``; the
    preconditioned operator is ``I - i G^{-1} D``, whose spectrum
    clusters at 1 with a spread shrinking in the runaway margin, so a
    handful of iterations suffice per current *independent of the
    deployment density*.  Per current: ``k`` triangular solves plus
    ``k`` sparse mat-vecs (``k`` ~ 5-30), no dense capacitance at
    all.  A residual above the target triggers an automatic fallback
    to the direct per-current LU (counted in
    ``SolverStats.krylov_fallbacks``), so krylov never silently
    degrades accuracy.

``mode="cholesky"``
    Like ``direct`` — one factorization per distinct current, kept in
    the same LRU cache — but the SPD matrix ``G - i D`` is factored
    through :func:`repro.linalg.cholesky.spd_factorize`: CHOLMOD's
    supernodal sparse Cholesky when scikit-sparse is importable, a
    symmetric-mode pivot-free SuperLU with a positive-pivot check
    otherwise.  Half the flops/fill of a general LU on large grids;
    an indefinite matrix (current at/beyond ``lambda_m``) raises the
    same :class:`SingularSystemError`.

``mode="mg"``
    Geometric-multigrid preconditioned CG
    (:mod:`repro.linalg.multigrid`).  One aggregation hierarchy is
    built per view from the current-independent base ``S + G`` over
    the assembled system's lattice geometry — per-layer 2x2 tile
    agglomeration, Galerkin coarse operators, Chebyshev smoothing, a
    direct solve on the coarsest level — and the fine-level operator
    is applied matrix-free through the lattice stencil with the
    Peltier ``- i D`` term as a diagonal correction, so every current,
    round and scenario shares one hierarchy (``SolverStats.mg_*``
    counts builds, solves, cycles and fallbacks).  O(n) work *and*
    memory: no assembled factorization above the coarsest level, which
    is what makes >= 256x256 chiplet-scale grids tractable.  Same
    never-degrade contract as ``krylov`` — a missed residual target
    falls back to an exact per-current factorization.

``mode="auto"``
    Pick ``reuse``, ``krylov`` or ``mg`` per assembled system
    (:func:`select_backend`): small supports keep the dense Woodbury
    update, dense deployments on fine grids switch to the iterative
    backend, and grids at/past ``MG_NODE_CROSSOVER`` nodes go
    multigrid regardless of support.

Per-current caches key on the **exact float value** of the current
(``float(i)`` equality — no quantization).  Golden-section probes at
nearly identical currents (e.g. ``i`` and ``i * (1 + 1e-15)``) are
*distinct* keys and always miss; this is deliberate, keeps replay
bit-reproducible, and is pinned by
``tests/thermal/test_solve.py::TestExactFloatCacheKey`` — introducing
a quantized key must be an explicit behaviour change there.

The full factorization/caching/backend machinery lives in
:mod:`repro.thermal.session`: a :class:`SolveSession` per assembled
system hands out :class:`SessionView` objects per diagonal shift, and
:class:`SteadyStateSolver` *is* the session's unshifted view (it
subclasses :class:`SessionView` and registers itself as the session's
zero-shift entry), so the transient integrator, the control loop and
the multi-pin engine obtained from ``solver.session`` share its stats,
its base factorization policy and its backend selection.  Historical
imports — :class:`SolverStats`, :class:`SingularSystemError`,
:data:`SOLVER_MODES`, :func:`select_backend` and the ``auto``
threshold constants — are re-exported here unchanged.
"""

from __future__ import annotations

from repro.thermal.session import (
    AUTO_SUPPORT_COEFF,
    AUTO_SUPPORT_FLOOR,
    MG_NODE_CROSSOVER,
    SOLVER_MODES,
    BatchColumn,
    BatchResult,
    SessionView,
    SingularSystemError,
    SolveSession,
    SolverStats,
    select_backend,
)

__all__ = [
    "AUTO_SUPPORT_COEFF",
    "AUTO_SUPPORT_FLOOR",
    "MG_NODE_CROSSOVER",
    "SOLVER_MODES",
    "BatchColumn",
    "BatchResult",
    "SessionView",
    "SingularSystemError",
    "SolveSession",
    "SolverStats",
    "SteadyStateSolver",
    "select_backend",
]


class SteadyStateSolver(SessionView):
    """Factorization-caching solver for one assembled system.

    The unshifted :class:`~repro.thermal.session.SessionView` of a
    freshly created :class:`~repro.thermal.session.SolveSession` —
    constructing a solver constructs its session, reachable as
    :attr:`session` for consumers that need shifted or
    arbitrary-diagonal views of the same system (transient, control
    loop, multi-pin).

    Parameters
    ----------
    system:
        An :class:`~repro.thermal.assembly.AssembledSystem`.
    cache_size:
        Number of per-current cache entries kept (true LRU): LU
        factorizations in ``direct`` mode, dense capacitance
        factorizations in ``reuse`` mode, and solved temperature
        vectors in both.  Keys are exact float currents — see the
        module docstring.
    mode:
        One of :data:`SOLVER_MODES` — ``"direct"``, ``"reuse"``,
        ``"krylov"``, or ``"auto"`` (resolved per system by
        :func:`select_backend`; see
        :attr:`~repro.thermal.session.SessionView.effective_mode`).
    stats:
        Optional shared :class:`SolverStats`; a private one is created
        when omitted.
    krylov_method / krylov_rtol / krylov_maxiter / krylov_restart:
        Knobs of the iterative backend (ignored by the other modes):
        method (``"gmres"`` or ``"bicgstab"``), relative residual
        target, outer-iteration budget per right-hand side, and GMRES
        restart length.  The ``mg`` backend shares the residual target
        and iteration budget for its preconditioned CG.
    mg_options:
        Optional dict of multigrid build knobs forwarded to
        :class:`~repro.linalg.multigrid.MultigridHierarchy` by the
        ``mg`` backend (ignored by the other modes).
    """

    def __init__(
        self,
        system,
        cache_size=8,
        *,
        mode="direct",
        stats=None,
        krylov_method="gmres",
        krylov_rtol=1.0e-10,
        krylov_maxiter=200,
        krylov_restart=40,
        mg_options=None,
    ):
        session = SolveSession(
            system,
            mode=mode,
            cache_size=cache_size,
            stats=stats,
            krylov_method=krylov_method,
            krylov_rtol=krylov_rtol,
            krylov_maxiter=krylov_maxiter,
            krylov_restart=krylov_restart,
            mg_options=mg_options,
        )
        super().__init__(session, None, cache_size)
        session._views[None] = self
