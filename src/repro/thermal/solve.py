"""Steady-state nodal analysis (Section IV.C).

Solves ``(G - i D) theta = p(i)`` by sparse LU.  A small factorization
cache keyed on the supply current makes the repeated solves of the
current-optimization inner loop cheap: the greedy algorithm and the
1-D current search evaluate many right-hand sides at the same current.

Also provides the influence-row solves used by the convexity
certificate: row ``k`` of ``H = (G - i D)^{-1}`` is the solution of
``(G - i D) h = e_k`` because the system matrix is symmetric.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.linalg.spd import cholesky_is_spd


class SingularSystemError(RuntimeError):
    """Raised when ``G - i D`` is singular or indefinite at the requested
    current — i.e. the current is at or beyond the runaway limit
    ``lambda_m`` (Theorem 1)."""


class SteadyStateSolver:
    """Factorization-caching solver for one assembled system.

    Parameters
    ----------
    system:
        An :class:`~repro.thermal.assembly.AssembledSystem`.
    cache_size:
        Number of LU factorizations kept (LRU by insertion order).
    """

    def __init__(self, system, cache_size=8):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1, got {}".format(cache_size))
        self.system = system
        self._cache_size = cache_size
        self._lu_cache = {}

    def _factorization(self, current):
        current = float(current)
        lu = self._lu_cache.get(current)
        if lu is None:
            matrix = self.system.system_matrix(current)
            try:
                lu = splu(matrix.tocsc())
            except RuntimeError as error:
                raise SingularSystemError(
                    "system matrix singular at i = {} A (at/beyond runaway)".format(
                        current
                    )
                ) from error
            if len(self._lu_cache) >= self._cache_size:
                oldest = next(iter(self._lu_cache))
                del self._lu_cache[oldest]
            self._lu_cache[current] = lu
        return lu

    def solve(self, current=0.0, *, check_definite=False):
        """Temperatures (Kelvin) at supply current ``current``.

        Parameters
        ----------
        current:
            TEC supply current in amperes.
        check_definite:
            When True, verify that ``G - i D`` is positive definite
            before solving and raise :class:`SingularSystemError` if it
            is not (i.e. the current exceeds ``lambda_m``).  The
            optimizer keeps currents inside ``[0, lambda_m)`` itself, so
            the check is off by default.
        """
        if check_definite and not cholesky_is_spd(self.system.system_matrix(current)):
            raise SingularSystemError(
                "G - i D is not positive definite at i = {} A "
                "(current at/beyond the runaway limit)".format(current)
            )
        lu = self._factorization(current)
        theta = lu.solve(self.system.power_vector(current))
        if not np.all(np.isfinite(theta)):
            raise SingularSystemError(
                "solve produced non-finite temperatures at i = {} A".format(current)
            )
        return theta

    def solve_rhs(self, current, rhs):
        """Solve ``(G - i D) x = rhs`` for an arbitrary right-hand side."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.system.num_nodes:
            raise ValueError(
                "rhs has length {}, system has {} nodes".format(
                    rhs.shape[0], self.system.num_nodes
                )
            )
        lu = self._factorization(current)
        return lu.solve(rhs)

    def influence_rows(self, current, node_indices):
        """Rows of ``H = (G - i D)^{-1}`` for the given nodes.

        Because the system matrix is symmetric, row ``k`` equals the
        solution of ``(G - i D) h = e_k``.  Returns an array of shape
        ``(len(node_indices), n)``.
        """
        n = self.system.num_nodes
        node_indices = list(node_indices)
        rhs = np.zeros((n, len(node_indices)))
        for j, k in enumerate(node_indices):
            rhs[int(k), j] = 1.0
        lu = self._factorization(current)
        return lu.solve(rhs).T
