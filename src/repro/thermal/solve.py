"""Steady-state nodal analysis (Section IV.C) and the solve engine.

Solves ``(G - i D) theta = p(i)`` by sparse LU.  Two engine modes are
provided, selected per :class:`SteadyStateSolver`:

``mode="direct"``
    One sparse LU per distinct current, kept in a true-LRU cache.  The
    seed behaviour, now with recency-refreshing eviction so the
    alternating-current access pattern of the golden-section search and
    the Armijo backtracking line search actually hits.

``mode="reuse"``
    Factorization reuse across currents.  ``D`` is diagonal and only
    non-zero on the TEC hot/cold nodes, so ``G - i D`` is a low-rank
    diagonal perturbation of ``G``.  The engine factorizes ``G`` once
    per assembled system, batch-solves the ``2 m`` influence columns
    ``W = G^{-1} I_S`` (``S`` = Peltier support), and answers every
    current through the Woodbury identity

        (G - i D)^{-1} b = x + W (I - i d Z)^{-1} (i d x_S)

    with ``x = G^{-1} b``, ``Z = I_S^T W`` and ``d`` the support
    diagonal.  Per current this costs one triangular solve plus a dense
    ``2m x 2m`` factorization — no new sparse LU — which is what makes
    the repeated-solve pattern of GreedyDeploy cheap.

Every solver carries a :class:`SolverStats` instrumentation object
(optionally shared across solvers) counting factorizations, cache
traffic, solves and wall time per phase.

Also provides the influence-row solves used by the convexity
certificate: row ``k`` of ``H = (G - i D)^{-1}`` is the solution of
``(G - i D) h = e_k`` because the system matrix is symmetric.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, fields

import numpy as np
import scipy.linalg
from scipy.sparse.linalg import splu

from repro.linalg.spd import cholesky_is_spd

#: Engine modes accepted by :class:`SteadyStateSolver`.
SOLVER_MODES = ("direct", "reuse")


class SingularSystemError(RuntimeError):
    """Raised when ``G - i D`` is singular or indefinite at the requested
    current — i.e. the current is at or beyond the runaway limit
    ``lambda_m`` (Theorem 1)."""


@dataclass
class SolverStats:
    """Instrumentation counters for the steady-state solve engine.

    One instance can be shared by many solvers (every model built by a
    :class:`~repro.core.problem.CoolingSystemProblem` reports into the
    problem's stats object), so the counters aggregate over a whole
    GreedyDeploy run.

    Attributes
    ----------
    factorizations:
        Sparse LU factorizations performed (``splu`` calls).
    cap_factorizations:
        Dense Woodbury capacitance-matrix factorizations (reuse mode;
        ``2m x 2m``, orders of magnitude cheaper than a sparse LU).
    cache_hits / cache_misses / evictions:
        Per-current factorization-cache traffic.
    solves:
        ``solve`` / ``solve_rhs`` / ``influence_rows`` calls.
    rhs_columns:
        Total right-hand-side columns pushed through a factorization.
    solution_hits:
        ``solve`` calls answered from the per-current solution cache
        without any triangular solve.
    factor_time_s / solve_time_s:
        Cumulative wall time in factorization and in solves.
    full_builds / incremental_builds:
        Package networks built from scratch vs replayed from a cached
        :class:`~repro.thermal.assembly.NetworkBlueprint`.
    assembly_time_s:
        Cumulative wall time building networks and assembling matrices.
    """

    factorizations: int = 0
    cap_factorizations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    solves: int = 0
    rhs_columns: int = 0
    solution_hits: int = 0
    factor_time_s: float = 0.0
    solve_time_s: float = 0.0
    full_builds: int = 0
    incremental_builds: int = 0
    assembly_time_s: float = 0.0

    def copy(self):
        """An independent snapshot of the current counters."""
        return SolverStats(**self.as_dict())

    def diff(self, baseline):
        """Counters accumulated since ``baseline`` (an earlier copy)."""
        return SolverStats(**{
            f.name: getattr(self, f.name) - getattr(baseline, f.name)
            for f in fields(self)
        })

    def merge(self, other):
        """Fold another stats object into this one (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def cache_hit_rate(self):
        """Hit fraction of the per-current cache (0 when untouched)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self):
        """Plain-data view (JSON-representable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self):
        """Compact one-line report for CLIs and benchmarks."""
        return (
            "{} LU + {} cap factorizations, {} solves ({} rhs cols), "
            "cache {}/{} hit ({:.0f}%), {} evictions, "
            "builds {} full + {} incremental".format(
                self.factorizations,
                self.cap_factorizations,
                self.solves,
                self.rhs_columns,
                self.cache_hits,
                self.cache_hits + self.cache_misses,
                100.0 * self.cache_hit_rate,
                self.evictions,
                self.full_builds,
                self.incremental_builds,
            )
        )


class SteadyStateSolver:
    """Factorization-caching solver for one assembled system.

    Parameters
    ----------
    system:
        An :class:`~repro.thermal.assembly.AssembledSystem`.
    cache_size:
        Number of per-current cache entries kept (true LRU): LU
        factorizations in ``direct`` mode, dense capacitance
        factorizations in ``reuse`` mode, and solved temperature
        vectors in both.
    mode:
        ``"direct"`` (one sparse LU per current) or ``"reuse"``
        (one sparse LU per system + Woodbury per current).
    stats:
        Optional shared :class:`SolverStats`; a private one is created
        when omitted.
    """

    def __init__(self, system, cache_size=8, *, mode="direct", stats=None):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1, got {}".format(cache_size))
        if mode not in SOLVER_MODES:
            raise ValueError(
                "mode must be one of {}, got {!r}".format(SOLVER_MODES, mode)
            )
        self.system = system
        self.mode = mode
        self.stats = stats if stats is not None else SolverStats()
        self._cache_size = cache_size
        self._lu_cache = OrderedDict()
        self._solution_cache = OrderedDict()
        # Reuse-mode state, built lazily on first solve.
        self._base_lu = None
        self._support = None
        self._d_support = None
        self._w = None
        self._z = None
        self._cap_cache = OrderedDict()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _cache_get(self, cache, key):
        entry = cache.get(key)
        if entry is not None:
            cache.move_to_end(key)
        return entry

    def _cache_put(self, cache, key, entry):
        if len(cache) >= self._cache_size:
            cache.popitem(last=False)
            self.stats.evictions += 1
        cache[key] = entry

    # ------------------------------------------------------------------
    # Direct mode: one sparse LU per current
    # ------------------------------------------------------------------

    def _splu(self, matrix, current):
        start = time.perf_counter()
        try:
            lu = splu(matrix.tocsc())
        except RuntimeError as error:
            raise SingularSystemError(
                "system matrix singular at i = {} A (at/beyond runaway)".format(
                    current
                )
            ) from error
        finally:
            self.stats.factor_time_s += time.perf_counter() - start
        self.stats.factorizations += 1
        return lu

    def _factorization(self, current):
        current = float(current)
        lu = self._cache_get(self._lu_cache, current)
        if lu is None:
            self.stats.cache_misses += 1
            lu = self._splu(self.system.system_matrix(current), current)
            self._cache_put(self._lu_cache, current, lu)
        else:
            self.stats.cache_hits += 1
        return lu

    # ------------------------------------------------------------------
    # Reuse mode: factorize G once, Woodbury per current
    # ------------------------------------------------------------------

    def _base_factorization(self):
        if self._base_lu is None:
            self._base_lu = self._splu(self.system.g_matrix, 0.0)
            support = np.flatnonzero(self.system.d_diagonal)
            self._support = support
            self._d_support = self.system.d_diagonal[support]
            if support.size:
                rhs = np.zeros((self.system.num_nodes, support.size))
                rhs[support, np.arange(support.size)] = 1.0
                start = time.perf_counter()
                self._w = self._base_lu.solve(rhs)
                self.stats.solve_time_s += time.perf_counter() - start
                self.stats.rhs_columns += int(support.size)
                self._z = self._w[support, :]
        return self._base_lu

    def _capacitance(self, current):
        """LU factors of ``I - i d Z`` for the Woodbury correction."""
        factors = self._cache_get(self._cap_cache, current)
        if factors is None:
            self.stats.cache_misses += 1
            size = self._support.size
            cap = np.eye(size) - current * (self._d_support[:, None] * self._z)
            factors = scipy.linalg.lu_factor(cap, check_finite=False)
            self.stats.cap_factorizations += 1
            self._cache_put(self._cap_cache, current, factors)
        else:
            self.stats.cache_hits += 1
        return factors

    def _apply_inverse(self, current, rhs):
        """``(G - i D)^{-1} rhs`` in the active engine mode.

        ``rhs`` may be 1-D or 2-D (columns are independent right-hand
        sides sharing one factorization).
        """
        columns = 1 if rhs.ndim == 1 else rhs.shape[1]
        if self.mode == "direct":
            lu = self._factorization(current)
            start = time.perf_counter()
            x = lu.solve(rhs)
            self.stats.solve_time_s += time.perf_counter() - start
            self.stats.rhs_columns += columns
            return x
        lu = self._base_factorization()
        start = time.perf_counter()
        x = lu.solve(rhs)
        self.stats.solve_time_s += time.perf_counter() - start
        self.stats.rhs_columns += columns
        if current == 0.0 or self._support.size == 0:
            return x
        factors = self._capacitance(current)
        x_support = x[self._support]
        small = scipy.linalg.lu_solve(
            factors,
            current * (self._d_support * x_support.T).T,
            check_finite=False,
        )
        return x + self._w @ small

    # ------------------------------------------------------------------
    # Public solves
    # ------------------------------------------------------------------

    def solve(self, current=0.0, *, check_definite=False):
        """Temperatures (Kelvin) at supply current ``current``.

        Parameters
        ----------
        current:
            TEC supply current in amperes.
        check_definite:
            When True, verify that ``G - i D`` is positive definite
            before solving and raise :class:`SingularSystemError` if it
            is not (i.e. the current exceeds ``lambda_m``).  The
            optimizer keeps currents inside ``[0, lambda_m)`` itself, so
            the check is off by default.
        """
        current = float(current)
        if check_definite and not cholesky_is_spd(self.system.system_matrix(current)):
            raise SingularSystemError(
                "G - i D is not positive definite at i = {} A "
                "(current at/beyond the runaway limit)".format(current)
            )
        self.stats.solves += 1
        cached = self._cache_get(self._solution_cache, current)
        if cached is not None:
            self.stats.solution_hits += 1
            return cached.copy()
        theta = self._apply_inverse(current, self.system.power_vector(current))
        if not np.all(np.isfinite(theta)):
            raise SingularSystemError(
                "solve produced non-finite temperatures at i = {} A".format(current)
            )
        self._cache_put(self._solution_cache, current, theta.copy())
        return theta

    def solve_rhs(self, current, rhs):
        """Solve ``(G - i D) x = rhs`` for arbitrary right-hand sides.

        ``rhs`` may be a length-``n`` vector or an ``(n, k)`` matrix of
        ``k`` independent right-hand sides solved in one batched pass
        against the shared factorization.
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.system.num_nodes:
            raise ValueError(
                "rhs has length {}, system has {} nodes".format(
                    rhs.shape[0], self.system.num_nodes
                )
            )
        self.stats.solves += 1
        return self._apply_inverse(float(current), rhs)

    def influence_rows(self, current, node_indices):
        """Rows of ``H = (G - i D)^{-1}`` for the given nodes.

        Because the system matrix is symmetric, row ``k`` equals the
        solution of ``(G - i D) h = e_k``.  Returns an array of shape
        ``(len(node_indices), n)``; all columns share one factorization
        (batched multi-RHS solve).
        """
        n = self.system.num_nodes
        node_indices = list(node_indices)
        rhs = np.zeros((n, len(node_indices)))
        for j, k in enumerate(node_indices):
            rhs[int(k), j] = 1.0
        return self.solve_rhs(current, rhs).T
