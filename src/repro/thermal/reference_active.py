"""Fine-grid reference with embedded TEC devices (beyond the paper).

The paper validates only the *passive* package against HotSpot 4.1.
This module extends the fine-grid reference so the **active** case can
be validated too: each deployed TEC keeps its lumped two-node device
model (it is, physically, a lumped device), but its faces couple to
the *fine* voxel grid — the cold face to every die-surface voxel of
its tile, the hot face to every spreader-surface voxel — while the
TIM voxels it displaces are removed.  The resulting system is

    (G_f - i D_f) theta = p_f(i)

on the fine grid, solved directly.  Comparing per-tile silicon
temperatures against the compact model at the same current tests the
whole active path: stamp wiring, Peltier sign conventions, Joule
bookkeeping and the lumping conventions around the device.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.tec.materials import chowdhury_thin_film_tec
from repro.thermal.reference import ReferenceGridModel
from repro.utils import kelvin_to_celsius


class ActiveReferenceGridModel(ReferenceGridModel):
    """Fine-grid reference solver with deployed TEC devices.

    Parameters
    ----------
    grid, power_map, stack, refine, ...:
        As for :class:`~repro.thermal.reference.ReferenceGridModel`.
    tec_tiles:
        Flat tile indices covered by devices.
    device:
        :class:`~repro.tec.materials.TecDeviceParameters`.

    Notes
    -----
    The passive base class assembles the voxel system; this subclass
    then (a) deletes the TIM-column voxels of covered tiles by zeroing
    their couplings and replacing them with the device, (b) appends
    two unknowns per device, and (c) solves the current-dependent
    system.  Die-exit and spreader-entry resistances are *not* added
    in series here — the fine grid resolves those paths itself, which
    is exactly what makes the comparison meaningful.
    """

    def __init__(self, grid, power_map, *, tec_tiles=(), device=None, **kwargs):
        super().__init__(grid, power_map, **kwargs)
        self.device = device if device is not None else chowdhury_thin_film_tec()
        self.tec_tiles = tuple(sorted({int(t) for t in tec_tiles}))
        for tile in self.tec_tiles:
            if not 0 <= tile < grid.num_tiles:
                raise IndexError("TEC tile {} out of range".format(tile))
        self._build_active_system()

    # ------------------------------------------------------------------

    def _column_cells(self, tile, z_range):
        """Voxel indices of one tile's column over a z slab range."""
        refine = self.refine
        row, col = self.grid.row_col(tile)
        cells = []
        for z in z_range:
            for sub_y in range(refine):
                for sub_x in range(refine):
                    y = self._die_y0 + row * refine + sub_y
                    x = self._die_x0 + col * refine + sub_x
                    index = self._index[z, y, x]
                    if index < 0:
                        raise RuntimeError("inactive voxel in die footprint")
                    cells.append(index)
        return cells

    def _layer_slab_range(self, name):
        """Slab index range [start, stop) of one layer."""
        start = 0
        for layer, _ in self._layers:
            if layer.name == name:
                break
            start += 1
        stop = start
        for layer, _ in self._layers[start:]:
            if layer.name != name:
                break
            stop += 1
        return start, stop

    def _build_active_system(self):
        base = self._matrix.tolil(copy=True)
        rhs_base = self._rhs.copy()
        n = self.num_cells
        device = self.device

        tim_start, tim_stop = self._layer_slab_range("tim")
        die_start, die_stop = self._layer_slab_range("die")
        spr_start, _ = self._layer_slab_range("spreader")

        extra = 2 * len(self.tec_tiles)
        total = n + extra
        matrix = sp.lil_matrix((total, total))
        matrix[:n, :n] = base
        rhs = np.zeros(total)
        rhs[:n] = rhs_base

        self._hot_unknowns = []
        self._cold_unknowns = []
        joule = np.zeros(total)
        d_diag = np.zeros(total)

        per_cell = self.refine * self.refine
        for dev_index, tile in enumerate(self.tec_tiles):
            cold = n + 2 * dev_index
            hot = n + 2 * dev_index + 1
            self._cold_unknowns.append(cold)
            self._hot_unknowns.append(hot)

            # Remove the TIM column: zero its couplings (and their
            # reflections from the neighbours' diagonals), then pin
            # each orphaned cell at ambient through a tiny conductance
            # so the matrix stays nonsingular.
            tim_cells = self._column_cells(tile, range(tim_start, tim_stop))
            for cell in tim_cells:
                for other in list(matrix.rows[cell]):
                    if other != cell:
                        coupling = -matrix[cell, other]
                        if coupling > 0.0:
                            matrix[cell, other] = 0.0
                            matrix[other, cell] = 0.0
                            matrix[other, other] -= coupling
                matrix[cell, cell] = 1e-9
                rhs[cell] = 1e-9 * 318.15

            # Cold face <-> die top voxels of the tile.
            die_top = self._column_cells(tile, [die_stop - 1])
            g_c_share = device.cold_contact_conductance / per_cell
            for cell in die_top:
                matrix[cell, cell] += g_c_share
                matrix[cold, cold] += g_c_share
                matrix[cell, cold] -= g_c_share
                matrix[cold, cell] -= g_c_share

            # Hot face <-> spreader bottom voxels of the tile.
            spr_bottom = self._column_cells(tile, [spr_start])
            g_h_share = device.hot_contact_conductance / per_cell
            for cell in spr_bottom:
                matrix[cell, cell] += g_h_share
                matrix[hot, hot] += g_h_share
                matrix[cell, hot] -= g_h_share
                matrix[hot, cell] -= g_h_share

            # Film conduction, Joule coefficients, Peltier diagonal.
            kappa = device.thermal_conductance
            matrix[cold, cold] += kappa
            matrix[hot, hot] += kappa
            matrix[cold, hot] -= kappa
            matrix[hot, cold] -= kappa
            joule[cold] = 0.5 * device.electrical_resistance
            joule[hot] = 0.5 * device.electrical_resistance
            d_diag[hot] = +device.seebeck
            d_diag[cold] = -device.seebeck

        self._active_matrix = sp.csc_matrix(matrix)
        self._active_rhs = rhs
        self._active_joule = joule
        self._active_d = d_diag
        self._active_solutions = {}

    # ------------------------------------------------------------------

    def solve_active(self, current=0.0):
        """Fine-grid steady state (Kelvin, voxel+device vector)."""
        current = float(current)
        if current < 0.0:
            raise ValueError("current must be >= 0")
        cached = self._active_solutions.get(current)
        if cached is None:
            matrix = self._active_matrix
            if current:
                matrix = (matrix - current * sp.diags(self._active_d)).tocsc()
            rhs = self._active_rhs + current * current * self._active_joule
            cached = splu(matrix).solve(rhs)
            if not np.all(np.isfinite(cached)):
                raise RuntimeError("active reference solve diverged")
            self._active_solutions[current] = cached
        return cached

    def tile_temperatures_c_active(self, current=0.0):
        """Per-tile silicon temperatures (Celsius) at a supply current."""
        theta = self.solve_active(current)
        refine = self.refine
        die_start, die_stop = self._layer_slab_range("die")
        result = np.zeros(self.grid.num_tiles)
        for flat in range(self.grid.num_tiles):
            cells = self._column_cells(flat, range(die_start, die_stop))
            result[flat] = float(np.mean(theta[cells]))
        return kelvin_to_celsius(result)

    def tec_face_temperatures_k(self, current=0.0):
        """Device cold/hot face temperatures (Kelvin) at a current."""
        theta = self.solve_active(current)
        return (
            theta[np.asarray(self._cold_unknowns, dtype=int)],
            theta[np.asarray(self._hot_unknowns, dtype=int)],
        )
