"""Assembly of the nodal equations ``(G - i D) theta = p(i)``.

Given a :class:`~repro.thermal.network.ThermalNetwork`, this module
builds the matrices of Equation (4)/(5) of the paper:

* ``G``: symmetric conductance matrix.  Off-diagonals are ``-g_kl``;
  diagonals are the sum of incident conductances *including* the
  conductance to the ambient voltage source (eliminating the ambient
  node keeps ``G`` positive definite — Lemma 1).
* ``D``: diagonal Peltier coupling matrix (``+alpha`` at hot nodes,
  ``-alpha`` at cold nodes).
* ``p(i) = p_base + i^2 * joule``: the power vector; ``p_base``
  carries the tile powers plus the ambient contribution
  ``g_ground * theta_ambient``, and ``joule`` carries the TEC
  ``r/2`` coefficients.

The module also provides :class:`NetworkBlueprint`, the incremental
assembly cache of the solve engine: the deployment-independent build
stream of a package network (the ``G`` skeleton with every TIM tile
present) is recorded once, together with per-tile TEC stamp templates,
and any concrete deployment is then *replayed* — TIM nodes of covered
tiles dropped, stamp deltas inserted — without re-deriving any layer
physics.  Replay emits the exact same builder-call stream the direct
build would, in the same order, so the assembled matrices are bitwise
identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.linalg.multigrid import LatticeGeometry
from repro.thermal.network import NodeRole, ThermalNetwork
from repro.utils import celsius_to_kelvin

#: Node roles that live on the tile lattice, with the layer id each
#: maps to in the :class:`~repro.linalg.multigrid.LatticeGeometry`
#: handed to the multigrid backend.  TIM and the TEC membrane occupy
#: distinct ids even though they share the physical gap — the stencil
#: probes vertical couplings between every layer pair, so holes in
#: either (covered vs. uncovered tiles) cost nothing.
_LATTICE_LAYERS = {
    NodeRole.SILICON: 0,
    NodeRole.TEC_COLD: 1,
    NodeRole.TEC_HOT: 2,
    NodeRole.TIM: 3,
    NodeRole.SPREADER: 4,
    NodeRole.SINK: 5,
    NodeRole.INTERPOSER: 6,
}


def extract_lattice(network, grid_shape):
    """Map a package network onto a :class:`LatticeGeometry`.

    Every node of a gridded role carrying a ``tile`` meta entry is
    placed at (layer-of-role, tile); everything else — periphery
    rings, lumped extras — stays off-lattice (``-1``) and rides
    through the multigrid coarsening as singleton aggregates.  A
    duplicate (layer, tile) claim keeps the first node and demotes the
    rest off-lattice, so irregular future stacks degrade gracefully
    instead of corrupting the stencil.
    """
    rows, cols = int(grid_shape[0]), int(grid_shape[1])
    n = network.num_nodes
    layer = np.full(n, -1, dtype=np.int64)
    tile = np.full(n, -1, dtype=np.int64)
    seen = set()
    for index, node in enumerate(network.nodes):
        layer_id = _LATTICE_LAYERS.get(node.role)
        if layer_id is None:
            continue
        tile_index = node.meta.get("tile")
        if tile_index is None:
            continue
        tile_index = int(tile_index)
        if not 0 <= tile_index < rows * cols:
            continue
        key = (layer_id, tile_index)
        if key in seen:
            continue
        seen.add(key)
        layer[index] = layer_id
        tile[index] = tile_index
    return LatticeGeometry(rows=rows, cols=cols, layer=layer, tile=tile)


@dataclass(frozen=True)
class AssembledSystem:
    """The assembled steady-state system.

    Attributes
    ----------
    g_matrix:
        Sparse CSC conductance matrix ``G`` (n x n).
    d_diagonal:
        The diagonal of ``D`` as a dense length-n vector (mostly zero).
    p_base:
        Constant part of the power vector (tile power + ambient term).
    joule:
        Per-node coefficients of the ``i^2`` power term (W / A^2).
    ambient_k:
        Ambient temperature (Kelvin) folded into ``p_base``.
    lattice:
        Optional :class:`~repro.linalg.multigrid.LatticeGeometry`
        describing the layered tile-lattice placement of the nodes;
        present when :func:`assemble` was given the grid shape.  The
        ``mg`` backend coarsens geometrically and applies the operator
        matrix-free through it; without it multigrid falls back to
        algebraic pairwise aggregation.
    """

    g_matrix: sp.csc_matrix
    d_diagonal: np.ndarray
    p_base: np.ndarray
    joule: np.ndarray
    ambient_k: float
    lattice: LatticeGeometry | None = None

    @property
    def num_nodes(self):
        return self.g_matrix.shape[0]

    def d_matrix(self):
        """``D`` as a sparse diagonal matrix."""
        return sp.diags(self.d_diagonal)

    def _support_positions(self):
        """CSC data positions of ``G``'s diagonal on ``D``'s support.

        Computed lazily once; lets :meth:`system_matrix` form
        ``G - i D`` by patching a copy of ``G.data`` instead of going
        through sparse subtraction (``D`` never adds structure because
        every node's diagonal is populated).
        """
        cached = getattr(self, "_support_pos_cache", None)
        if cached is None:
            support = np.flatnonzero(self.d_diagonal)
            indptr = self.g_matrix.indptr
            indices = self.g_matrix.indices
            positions = np.empty(support.size, dtype=np.int64)
            for j, k in enumerate(support):
                start, stop = indptr[k], indptr[k + 1]
                offset = np.searchsorted(indices[start:stop], k)
                positions[j] = start + offset
            cached = (support, positions)
            object.__setattr__(self, "_support_pos_cache", cached)
        return cached

    def system_matrix(self, current):
        """``G - i D`` for supply current ``current`` (CSC).

        The result shares ``G``'s sparsity structure (index arrays are
        reused; only the data vector is copied and patched on the
        Peltier support), so repeated calls across currents are cheap.
        """
        current = float(current)
        if current == 0.0 or not np.any(self.d_diagonal):
            return self.g_matrix
        support, positions = self._support_positions()
        data = self.g_matrix.data.copy()
        data[positions] -= current * self.d_diagonal[support]
        return sp.csc_matrix(
            (data, self.g_matrix.indices, self.g_matrix.indptr),
            shape=self.g_matrix.shape,
        )

    def power_vector(self, current):
        """``p(i) = p_base + i^2 * joule``."""
        current = float(current)
        if current == 0.0 or not np.any(self.joule):
            return self.p_base
        return self.p_base + current * current * self.joule


#: Event tags of the blueprint stream.
_NODE, _COND, _GROUND, _SOURCE, _JOULE, _PELTIER, _STAMPS = range(7)


class NetworkBlueprint:
    """Deployment-independent recording of a package network build.

    The model builder runs once against this object exactly as it
    would against a :class:`~repro.thermal.network.ThermalNetwork`,
    with *every* TIM tile present and no TEC stamped; the stream of
    builder calls is recorded verbatim.  TEC stamp deltas are recorded
    separately, one template per tile, between
    :meth:`begin_stamp_template` / :meth:`end_stamp_template`, and
    :meth:`mark_stamp_section` marks where stamps belong in the stream.

    :meth:`instantiate` then replays the stream for a concrete
    deployment: TIM nodes of covered tiles (and every component
    incident to them) are skipped, surviving node indices are renumbered
    in stream order, and the covered tiles' stamp templates are emitted
    at the marker.  Because the replayed call sequence is identical to
    what a from-scratch build of the same deployment produces, the
    assembled system is bitwise identical — only the repeated layer
    physics and node bookkeeping are skipped.

    Conductances that depend on the per-tile die conductivity scale
    (die lateral edges, die-to-TIM verticals, TEC cold contacts) are
    *tagged* during recording via :meth:`tag_die_scale` with their
    unscaled ingredients; :meth:`instantiate` can then replay the same
    blueprint under a **different** ``die_conductivity_scale``,
    recomputing exactly those values with the builder's own formulas —
    still bitwise identical to a from-scratch build with that scale.
    This is what lets the nonlinear fixed-point iteration update the
    scale field without reconstructing the model each pass.
    """

    def __init__(self):
        self._events = []
        self._event_tags = {}
        self._templates = {}
        self._template = None
        self._template_tags = None
        self._template_tile = None
        self._num_nodes = 0
        self._tim_node_tile = {}
        self._has_marker = False

    # ------------------------------------------------------------------
    # Builder API (duck-compatible with ThermalNetwork)
    # ------------------------------------------------------------------

    def add_node(self, name, role=NodeRole.OTHER, **meta):
        if self._template is not None:
            token = -(1 + sum(1 for e in self._template if e[0] == _NODE))
            self._template.append((_NODE, token, str(name), role, meta))
            return token
        index = self._num_nodes
        self._num_nodes += 1
        if role is NodeRole.TIM:
            # The tile whose TEC coverage displaces this TIM node.  On
            # a composite layout the node's ``tile`` meta is its
            # *bounding-lattice* placement while deployments key on
            # the *global* flat index, carried as ``cover_tile``; on
            # the single-die package the two coincide.
            self._tim_node_tile[index] = int(
                meta.get("cover_tile", meta.get("tile", -1))
            )
        self._events.append((_NODE, index, str(name), role, meta))
        return index

    def _sink(self):
        return self._events if self._template is None else self._template

    def add_conductance(self, a, b, conductance):
        self._sink().append((_COND, a, b, float(conductance)))

    def add_ground_conductance(self, node, conductance):
        self._sink().append((_GROUND, node, float(conductance)))

    def add_source(self, node, power):
        self._sink().append((_SOURCE, node, float(power)))

    def add_joule(self, node, coefficient):
        self._sink().append((_JOULE, node, float(coefficient)))

    def set_peltier(self, node, alpha_signed):
        self._sink().append((_PELTIER, node, float(alpha_signed)))

    def tag_die_scale(self, kind, tiles, payload):
        """Tag the last recorded event as die-conductivity-scale bound.

        ``kind`` names the builder formula (``"die_lateral"``,
        ``"die_tim"`` or ``"stamp_cold"``), ``tiles`` the flat tile
        indices whose scale entries feed it, and ``payload`` the
        *unscaled* ingredients; :meth:`instantiate` recomputes the
        tagged value from these when replaying under a different
        ``die_conductivity_scale``.  Builders call this through
        ``getattr(net, "tag_die_scale", None)``, so a plain
        :class:`~repro.thermal.network.ThermalNetwork` (which has no
        tagging) records nothing.
        """
        sink = self._events if self._template is None else self._template
        if not sink:
            raise RuntimeError("no event recorded yet to tag")
        tags = self._event_tags if self._template is None else self._template_tags
        tags[len(sink) - 1] = (str(kind), tuple(int(t) for t in tiles), payload)

    # ------------------------------------------------------------------
    # Recording structure
    # ------------------------------------------------------------------

    def mark_stamp_section(self):
        """Mark the point of the stream where TEC stamps are inserted."""
        if self._has_marker:
            raise RuntimeError("stamp section already marked")
        self._events.append((_STAMPS,))
        self._has_marker = True

    def begin_stamp_template(self, tile):
        """Start recording the stamp delta of ``tile``."""
        if self._template is not None:
            raise RuntimeError("a stamp template is already being recorded")
        if tile in self._templates:
            raise ValueError("tile {} already has a stamp template".format(tile))
        self._template = []
        self._template_tags = {}
        self._template_tile = int(tile)

    def end_stamp_template(self, stamp):
        """Finish the active template; ``stamp`` is the token-valued
        :class:`~repro.tec.stamp.TecStamp` returned by ``stamp_tec``."""
        if self._template is None:
            raise RuntimeError("no stamp template is being recorded")
        self._templates[self._template_tile] = (
            self._template, stamp, self._template_tags
        )
        self._template = None
        self._template_tags = None

    @property
    def num_tiles_templated(self):
        return len(self._templates)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def instantiate(self, tec_tiles, die_conductivity_scale=None):
        """Replay the recorded build for a concrete deployment.

        Returns ``(network, stamps)`` — a populated
        :class:`~repro.thermal.network.ThermalNetwork` and the list of
        :class:`~repro.tec.stamp.TecStamp` records with real node
        indices, ordered by tile.

        When ``die_conductivity_scale`` is given (per-tile positive
        factors, flat row-major), every conductance tagged via
        :meth:`tag_die_scale` is recomputed from its unscaled payload
        under that scale field instead of replaying the recorded value
        — bitwise identical to building the same deployment from
        scratch with the same scale.
        """
        if self._template is not None:
            raise RuntimeError("cannot instantiate while recording a template")
        if not self._has_marker:
            raise RuntimeError("blueprint has no stamp section marker")
        covered = {int(t) for t in tec_tiles}
        missing = covered - set(self._templates)
        if missing:
            raise ValueError(
                "no stamp template for tiles {}".format(sorted(missing))
            )
        scale = None
        if die_conductivity_scale is not None:
            scale = np.asarray(die_conductivity_scale, dtype=float)
        net = ThermalNetwork()
        index = {}
        stamps = []
        for position, event in enumerate(self._events):
            kind = event[0]
            if kind == _NODE:
                _, bare, name, role, meta = event
                tile = self._tim_node_tile.get(bare)
                if tile is not None and tile in covered:
                    index[bare] = None
                else:
                    index[bare] = net.add_node(name, role, **meta)
            elif kind == _STAMPS:
                for tile in sorted(covered):
                    stamps.append(
                        self._replay_template(net, tile, index, scale)
                    )
            else:
                value = None
                if scale is not None:
                    tag = self._event_tags.get(position)
                    if tag is not None:
                        value = self._scaled_value(tag, scale)
                self._apply(net, event, index, value)
        return net, stamps

    @staticmethod
    def _scaled_value(tag, scale):
        """Recompute a tagged conductance under a scale field.

        Each branch repeats the exact float expression of the builder
        that recorded the tag (``PackageThermalModel._build_core`` /
        ``stamp_tec``), so replay stays bitwise identical to a direct
        build — including for an all-ones scale, since ``x * 1.0 == x``
        and ``r / 1.0 == r`` exactly.
        """
        kind, tiles, payload = tag
        if kind == "die_lateral":
            sa, sb = scale[tiles[0]], scale[tiles[1]]
            return payload * (2.0 * sa * sb / (sa + sb))
        if kind == "die_tim":
            r_die_exit, tim_half = payload
            return 1.0 / (r_die_exit / scale[tiles[0]] + tim_half)
        if kind == "stamp_cold":
            g_contact, r_die_exit = payload
            return 1.0 / (1.0 / g_contact + r_die_exit / scale[tiles[0]])
        raise ValueError("unknown die-scale tag kind {!r}".format(kind))

    def _apply(self, net, event, index, value=None):
        kind = event[0]
        if kind == _COND:
            a, b = index[event[1]], index[event[2]]
            if a is None or b is None:
                return
            net.add_conductance(a, b, event[3] if value is None else value)
            return
        node = index[event[1]]
        if node is None:
            return
        if kind == _GROUND:
            net.add_ground_conductance(node, event[2])
        elif kind == _SOURCE:
            net.add_source(node, event[2])
        elif kind == _JOULE:
            net.add_joule(node, event[2])
        elif kind == _PELTIER:
            net.set_peltier(node, event[2])

    def _replay_template(self, net, tile, index, scale=None):
        events, stamp, tags = self._templates[tile]
        local = {}

        def resolve(token):
            return local[token] if token < 0 else index[token]

        for position, event in enumerate(events):
            kind = event[0]
            if kind == _NODE:
                _, token, name, role, meta = event
                local[token] = net.add_node(name, role, **meta)
            elif kind == _COND:
                value = event[3]
                if scale is not None:
                    tag = tags.get(position)
                    if tag is not None:
                        value = self._scaled_value(tag, scale)
                net.add_conductance(resolve(event[1]), resolve(event[2]), value)
            elif kind == _GROUND:
                net.add_ground_conductance(resolve(event[1]), event[2])
            elif kind == _SOURCE:
                net.add_source(resolve(event[1]), event[2])
            elif kind == _JOULE:
                net.add_joule(resolve(event[1]), event[2])
            elif kind == _PELTIER:
                net.set_peltier(resolve(event[1]), event[2])
        return dataclasses.replace(
            stamp,
            hot_node=resolve(stamp.hot_node),
            cold_node=resolve(stamp.cold_node),
        )


def assemble(network, ambient_c, grid_shape=None):
    """Assemble an :class:`AssembledSystem` from a network.

    Parameters
    ----------
    network:
        A populated :class:`~repro.thermal.network.ThermalNetwork`.
    ambient_c:
        Ambient temperature in Celsius (folded into ``p_base`` as
        ``g_ground * theta_ambient`` with the ambient in Kelvin).
    grid_shape:
        Optional ``(rows, cols)`` tile-grid shape.  When given, the
        node placement is captured as a
        :class:`~repro.linalg.multigrid.LatticeGeometry` on
        :attr:`AssembledSystem.lattice` so the ``mg`` backend can
        coarsen geometrically and run its matrix-free stencil.

    Raises
    ------
    ValueError
        If the network is empty or no node is grounded (the steady
        state would be unbounded — heat would have nowhere to go).
    """
    n = network.num_nodes
    if n == 0:
        raise ValueError("cannot assemble an empty network")
    ground = dict(network.ground_items())
    if not ground:
        raise ValueError(
            "network has no conductance to ambient; the steady state is undefined"
        )
    ambient_k = celsius_to_kelvin(ambient_c)

    diagonal = np.zeros(n)
    rows, cols, data = [], [], []
    for (a, b), conductance in network.conductance_items():
        rows.extend((a, b))
        cols.extend((b, a))
        data.extend((-conductance, -conductance))
        diagonal[a] += conductance
        diagonal[b] += conductance
    for node, conductance in ground.items():
        diagonal[node] += conductance

    rows.extend(range(n))
    cols.extend(range(n))
    data.extend(diagonal)
    g_matrix = sp.csc_matrix(
        sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    )

    p_base = np.zeros(n)
    for node, power in network.source_items():
        p_base[node] += power
    for node, conductance in ground.items():
        p_base[node] += conductance * ambient_k

    joule = np.zeros(n)
    for node, coefficient in network.joule_items():
        joule[node] += coefficient

    d_diagonal = np.zeros(n)
    for node, alpha in network.peltier_items():
        d_diagonal[node] = alpha

    lattice = None
    if grid_shape is not None:
        lattice = extract_lattice(network, grid_shape)

    return AssembledSystem(
        g_matrix=g_matrix,
        d_diagonal=d_diagonal,
        p_base=p_base,
        joule=joule,
        ambient_k=ambient_k,
        lattice=lattice,
    )
