"""Assembly of the nodal equations ``(G - i D) theta = p(i)``.

Given a :class:`~repro.thermal.network.ThermalNetwork`, this module
builds the matrices of Equation (4)/(5) of the paper:

* ``G``: symmetric conductance matrix.  Off-diagonals are ``-g_kl``;
  diagonals are the sum of incident conductances *including* the
  conductance to the ambient voltage source (eliminating the ambient
  node keeps ``G`` positive definite — Lemma 1).
* ``D``: diagonal Peltier coupling matrix (``+alpha`` at hot nodes,
  ``-alpha`` at cold nodes).
* ``p(i) = p_base + i^2 * joule``: the power vector; ``p_base``
  carries the tile powers plus the ambient contribution
  ``g_ground * theta_ambient``, and ``joule`` carries the TEC
  ``r/2`` coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils import celsius_to_kelvin


@dataclass(frozen=True)
class AssembledSystem:
    """The assembled steady-state system.

    Attributes
    ----------
    g_matrix:
        Sparse CSC conductance matrix ``G`` (n x n).
    d_diagonal:
        The diagonal of ``D`` as a dense length-n vector (mostly zero).
    p_base:
        Constant part of the power vector (tile power + ambient term).
    joule:
        Per-node coefficients of the ``i^2`` power term (W / A^2).
    ambient_k:
        Ambient temperature (Kelvin) folded into ``p_base``.
    """

    g_matrix: sp.csc_matrix
    d_diagonal: np.ndarray
    p_base: np.ndarray
    joule: np.ndarray
    ambient_k: float

    @property
    def num_nodes(self):
        return self.g_matrix.shape[0]

    def d_matrix(self):
        """``D`` as a sparse diagonal matrix."""
        return sp.diags(self.d_diagonal)

    def system_matrix(self, current):
        """``G - i D`` for supply current ``current`` (CSC)."""
        current = float(current)
        if current == 0.0 or not np.any(self.d_diagonal):
            return self.g_matrix
        return (self.g_matrix - current * sp.diags(self.d_diagonal)).tocsc()

    def power_vector(self, current):
        """``p(i) = p_base + i^2 * joule``."""
        current = float(current)
        if current == 0.0 or not np.any(self.joule):
            return self.p_base
        return self.p_base + current * current * self.joule


def assemble(network, ambient_c):
    """Assemble an :class:`AssembledSystem` from a network.

    Parameters
    ----------
    network:
        A populated :class:`~repro.thermal.network.ThermalNetwork`.
    ambient_c:
        Ambient temperature in Celsius (folded into ``p_base`` as
        ``g_ground * theta_ambient`` with the ambient in Kelvin).

    Raises
    ------
    ValueError
        If the network is empty or no node is grounded (the steady
        state would be unbounded — heat would have nowhere to go).
    """
    n = network.num_nodes
    if n == 0:
        raise ValueError("cannot assemble an empty network")
    ground = dict(network.ground_items())
    if not ground:
        raise ValueError(
            "network has no conductance to ambient; the steady state is undefined"
        )
    ambient_k = celsius_to_kelvin(ambient_c)

    diagonal = np.zeros(n)
    rows, cols, data = [], [], []
    for (a, b), conductance in network.conductance_items():
        rows.extend((a, b))
        cols.extend((b, a))
        data.extend((-conductance, -conductance))
        diagonal[a] += conductance
        diagonal[b] += conductance
    for node, conductance in ground.items():
        diagonal[node] += conductance

    rows.extend(range(n))
    cols.extend(range(n))
    data.extend(diagonal)
    g_matrix = sp.csc_matrix(
        sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    )

    p_base = np.zeros(n)
    for node, power in network.source_items():
        p_base[node] += power
    for node, conductance in ground.items():
        p_base[node] += conductance * ambient_k

    joule = np.zeros(n)
    for node, coefficient in network.joule_items():
        joule[node] += coefficient

    d_diagonal = np.zeros(n)
    for node, alpha in network.peltier_items():
        d_diagonal[node] = alpha

    return AssembledSystem(
        g_matrix=g_matrix,
        d_diagonal=d_diagonal,
        p_base=p_base,
        joule=joule,
        ambient_k=ambient_k,
    )
