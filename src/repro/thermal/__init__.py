"""Compact thermal modeling of the chip package (Section IV).

This package implements the HotSpot-style compact thermal model the
paper builds its optimization on, plus an independent fine-grid
finite-difference reference solver used for validation (the role
HotSpot 4.1 plays in Section VI).

Layout of the model (Figure 2/3 of the paper):

* the **silicon** die, dissected into ``p x q`` tiles, each the size of
  one thin-film TEC device (0.5 mm x 0.5 mm), carrying the worst-case
  power of the transistors in that tile;
* the **TIM** layer between die and spreader — the layer whose tiles
  are substituted by TEC device models where TECs are deployed;
* the **heat spreader** (copper), larger than the die, modeled as a
  central grid plus peripheral nodes;
* the **heat sink**, larger still, with convection to the ambient;
* the **ambient**, a Dirichlet temperature eliminated into the power
  vector, leaving ``G`` positive definite (Lemma 1).

Public entry point: :class:`repro.thermal.model.PackageThermalModel`.
"""

from repro.thermal.geometry import TileGrid
from repro.thermal.materials import (
    AIR,
    ALUMINUM,
    COPPER,
    SILICON,
    TIM,
    Material,
)
from repro.thermal.model import PackageThermalModel, ThermalState
from repro.thermal.network import NodeRole, ThermalNetwork
from repro.thermal.nonlinear import NonlinearSteadyState, silicon_conductivity_scale
from repro.thermal.spreading import (
    package_peak_resistance_estimate,
    spreading_resistance,
)
from repro.thermal.reference import ReferenceGridModel
from repro.thermal.reference_active import ActiveReferenceGridModel
from repro.thermal.solve import SolverStats, SteadyStateSolver
from repro.thermal.stack import Layer, PackageStack
from repro.thermal.transient import TransientSimulator, node_capacitances
from repro.thermal.validation import ValidationReport, validate_against_reference

__all__ = [
    "AIR",
    "ALUMINUM",
    "ActiveReferenceGridModel",
    "COPPER",
    "Layer",
    "Material",
    "NodeRole",
    "NonlinearSteadyState",
    "PackageStack",
    "PackageThermalModel",
    "ReferenceGridModel",
    "SILICON",
    "SolverStats",
    "SteadyStateSolver",
    "TIM",
    "ThermalNetwork",
    "ThermalState",
    "TileGrid",
    "TransientSimulator",
    "ValidationReport",
    "node_capacitances",
    "package_peak_resistance_estimate",
    "silicon_conductivity_scale",
    "spreading_resistance",
    "validate_against_reference",
]
