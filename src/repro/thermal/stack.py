"""Package layer stack description (Figure 2 of the paper).

A :class:`PackageStack` captures the vertical structure of a
high-performance chip package: silicon die against a heat spreader
with a TIM layer in between, the spreader against a fan-cooled heat
sink, convection from the sink to the ambient.

The default geometry follows HotSpot 4.1's example package scaled to
the paper's 6 mm x 6 mm die; the convection resistance is the package
level knob that is calibrated once against the fine-grid reference
model (see ``repro.thermal.validation`` and DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.thermal.materials import COPPER, SILICON, TIM, Material
from repro.utils import check_positive


@dataclass(frozen=True)
class Layer:
    """One conduction layer of the package.

    Attributes
    ----------
    name:
        Identifier used in node names and reports.
    material:
        The layer :class:`~repro.thermal.materials.Material`.
    thickness:
        Layer thickness in metres.
    side:
        Lateral side length in metres of the (square) layer footprint;
        ``None`` means "same as the die".
    """

    name: str
    material: Material
    thickness: float
    side: Optional[float] = None

    def __post_init__(self):
        check_positive(self.thickness, "thickness")
        if self.side is not None:
            check_positive(self.side, "side")

    def vertical_half_resistance(self, area):
        """Resistance of half this layer's thickness over ``area``.

        Vertical conductances between two stacked layers combine the
        two facing half-layer resistances in series.
        """
        area = check_positive(area, "area")
        return 0.5 * self.thickness / (self.material.thermal_conductivity * area)

    def vertical_generation_resistance(self, area):
        """Node-to-face resistance for a layer with internal generation.

        For a layer that *generates* its heat uniformly over the
        volume (the silicon die), the lumped node represents the
        volume-average temperature; with an adiabatic far face the
        average-to-exit-face resistance is ``t / (3 k A)`` rather than
        the mid-plane ``t / (2 k A)``.  Using it keeps the compact
        model consistent with the volume-averaged temperatures the
        fine-grid reference reports.
        """
        area = check_positive(area, "area")
        return self.thickness / (3.0 * self.material.thermal_conductivity * area)

    def lateral_conductance(self, face_width, pitch):
        """Lateral conductance between two adjacent cells of this layer.

        ``face_width`` is the width of the shared face; the
        cross-section is ``face_width * thickness`` and the conduction
        length is the cell ``pitch``.
        """
        return self.material.conductance(face_width * self.thickness, pitch)


@dataclass(frozen=True)
class PackageStack:
    """Vertical structure of the chip package.

    Attributes
    ----------
    die, tim, spreader, sink:
        The four conduction layers, bottom (junction) to top (air).
        ``spreader.side`` and ``sink.side`` give the lateral extents of
        the overhanging layers.
    convection_resistance:
        Total sink-to-ambient convection resistance in K/W (HotSpot's
        ``r_convec``); distributed over sink nodes by footprint area.
    ambient_c:
        Ambient temperature in Celsius (HotSpot default 45 C).
    """

    die: Layer = field(
        default_factory=lambda: Layer("die", SILICON, thickness=0.30e-3)
    )
    tim: Layer = field(
        default_factory=lambda: Layer("tim", TIM, thickness=0.05e-3)
    )
    spreader: Layer = field(
        default_factory=lambda: Layer("spreader", COPPER, thickness=1.0e-3, side=18.0e-3)
    )
    sink: Layer = field(
        default_factory=lambda: Layer("sink", COPPER, thickness=6.9e-3, side=36.0e-3)
    )
    convection_resistance: float = 1.096
    ambient_c: float = 45.0

    def __post_init__(self):
        check_positive(self.convection_resistance, "convection_resistance")

    def with_convection_resistance(self, resistance):
        """Copy of this stack with a different convection resistance."""
        return replace(self, convection_resistance=resistance)

    def with_ambient(self, ambient_c):
        """Copy of this stack with a different ambient temperature."""
        return replace(self, ambient_c=ambient_c)

    def conduction_layers(self):
        """The four conduction layers bottom-to-top."""
        return (self.die, self.tim, self.spreader, self.sink)

    def validate_for_die(self, die_side):
        """Check that overhanging layers are at least die-sized.

        Raises ``ValueError`` when the spreader or sink footprint is
        smaller than the die, which the periphery construction cannot
        represent: an undersized spreader would turn the overhang
        depths negative and silently produce negative spreading
        resistances downstream.
        """
        die_side = check_positive(die_side, "die_side")
        return self.validate_footprints(die_side, die_side)

    def validate_footprints(self, region_width, region_height):
        """Check the overhanging layers cover a rectangular region.

        ``region_width`` / ``region_height`` are the lateral extents
        (metres) of the footprint the spreader must cover — the die of
        the single-die package, the chiplet bounding box of a
        composite layout.  Each (square) overhanging layer must be at
        least as large as the region it covers in **both** dimensions,
        and the sink at least spreader-sized.  Returns the resolved
        ``(spreader_side, sink_side)``.
        """
        region_width = check_positive(region_width, "region_width")
        region_height = check_positive(region_height, "region_height")
        region_side = max(region_width, region_height)
        spreader_side = self.spreader.side or region_side
        sink_side = self.sink.side or spreader_side
        if spreader_side < region_side:
            raise ValueError(
                "spreader side {} m is smaller than the {} x {} m region "
                "it must cover".format(spreader_side, region_width, region_height)
            )
        if sink_side < spreader_side:
            raise ValueError(
                "sink side {} m is smaller than the spreader side {} m".format(
                    sink_side, spreader_side
                )
            )
        return spreader_side, sink_side
