"""Tile-grid geometry.

The paper dissects the silicon layer into ``p x q`` tiles, each with
the lateral footprint of one thin-film TEC device (estimated at
0.5 mm x 0.5 mm from the 7x7-array figure in reference [1]).  The same
grid indexes the TIM layer and the central regions of the spreader and
sink layers.

:class:`TileGrid` owns the (row, col) <-> flat-index mapping used by
every other subsystem; all flat indices in the library are
**row-major** (``flat = row * cols + col``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_positive
from repro.utils.validate import check_index


@dataclass(frozen=True)
class TileGrid:
    """A rectangular grid of equal tiles.

    Attributes
    ----------
    rows, cols:
        Grid dimensions (the paper's ``p x q``; 12 x 12 in Section VI).
    tile_width, tile_height:
        Lateral tile dimensions in metres (0.5 mm each by default).
    """

    rows: int
    cols: int
    tile_width: float = 0.5e-3
    tile_height: float = 0.5e-3

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                "grid must have at least one tile, got {}x{}".format(self.rows, self.cols)
            )
        check_positive(self.tile_width, "tile_width")
        check_positive(self.tile_height, "tile_height")

    @property
    def num_tiles(self):
        """Total number of tiles ``rows * cols``."""
        return self.rows * self.cols

    @property
    def tile_area(self):
        """Footprint of one tile in m^2."""
        return self.tile_width * self.tile_height

    @property
    def width(self):
        """Total grid width (along columns) in metres."""
        return self.cols * self.tile_width

    @property
    def height(self):
        """Total grid height (along rows) in metres."""
        return self.rows * self.tile_height

    @property
    def area(self):
        """Total grid footprint in m^2."""
        return self.width * self.height

    def flat_index(self, row, col):
        """Row-major flat index of tile ``(row, col)``."""
        row = check_index(row, "row", self.rows)
        col = check_index(col, "col", self.cols)
        return row * self.cols + col

    def row_col(self, flat):
        """Inverse of :meth:`flat_index`."""
        flat = check_index(flat, "flat", self.num_tiles)
        return divmod(flat, self.cols)

    def tile_center(self, row, col):
        """Centre of tile ``(row, col)`` in metres, origin at grid corner."""
        row = check_index(row, "row", self.rows)
        col = check_index(col, "col", self.cols)
        return ((col + 0.5) * self.tile_width, (row + 0.5) * self.tile_height)

    def iter_tiles(self):
        """Yield ``(flat, row, col)`` for every tile in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield row * self.cols + col, row, col

    def neighbors(self, row, col):
        """Yield the 4-connected neighbour coordinates of ``(row, col)``."""
        row = check_index(row, "row", self.rows)
        col = check_index(col, "col", self.cols)
        if row > 0:
            yield row - 1, col
        if row < self.rows - 1:
            yield row + 1, col
        if col > 0:
            yield row, col - 1
        if col < self.cols - 1:
            yield row, col + 1

    def iter_lateral_pairs(self):
        """Yield each adjacent tile pair once, as flat indices.

        East pairs come with the tile-to-tile pitch ``tile_width``;
        south pairs with ``tile_height``::

            for a, b, pitch, cross_width in grid.iter_lateral_pairs():
                ...

        ``cross_width`` is the width of the shared face in the lateral
        plane (a thickness factor turns it into a cross-section area).
        """
        for row in range(self.rows):
            for col in range(self.cols):
                flat = row * self.cols + col
                if col < self.cols - 1:
                    yield flat, flat + 1, self.tile_width, self.tile_height
                if row < self.rows - 1:
                    yield flat, flat + self.cols, self.tile_height, self.tile_width

    def boundary_tiles(self, side):
        """Flat indices of the tiles on one side of the grid.

        ``side`` is one of ``"north"`` (row 0), ``"south"`` (last row),
        ``"west"`` (col 0), ``"east"`` (last col).  Corner tiles appear
        on both adjacent sides.
        """
        if side == "north":
            return [self.flat_index(0, c) for c in range(self.cols)]
        if side == "south":
            return [self.flat_index(self.rows - 1, c) for c in range(self.cols)]
        if side == "west":
            return [self.flat_index(r, 0) for r in range(self.rows)]
        if side == "east":
            return [self.flat_index(r, self.cols - 1) for r in range(self.rows)]
        raise ValueError(
            "side must be north/south/east/west, got {!r}".format(side)
        )

    def to_grid(self, flat_values):
        """Reshape a flat per-tile vector to a ``(rows, cols)`` array."""
        arr = np.asarray(flat_values)
        if arr.shape != (self.num_tiles,):
            raise ValueError(
                "expected a flat vector of length {}, got shape {}".format(
                    self.num_tiles, arr.shape
                )
            )
        return arr.reshape(self.rows, self.cols)
