"""Tile-grid geometry.

The paper dissects the silicon layer into ``p x q`` tiles, each with
the lateral footprint of one thin-film TEC device (estimated at
0.5 mm x 0.5 mm from the 7x7-array figure in reference [1]).  The same
grid indexes the TIM layer and the central regions of the spreader and
sink layers.

:class:`TileGrid` owns the (row, col) <-> flat-index mapping used by
every other subsystem; all flat indices in the library are
**row-major** (``flat = row * cols + col``).

:class:`CompositeGrid` extends that index space to 2.5D chiplet
layouts: N chiplet grids placed on a shared lattice, each occupying a
contiguous row-major block of the global flat index space, with a
bounding tile lattice (covering chiplets *and* the gaps between them)
for the layers every chiplet shares — interposer, spreader, sink.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_positive
from repro.utils.validate import check_index


@dataclass(frozen=True)
class TileGrid:
    """A rectangular grid of equal tiles.

    Attributes
    ----------
    rows, cols:
        Grid dimensions (the paper's ``p x q``; 12 x 12 in Section VI).
    tile_width, tile_height:
        Lateral tile dimensions in metres (0.5 mm each by default).
    """

    rows: int
    cols: int
    tile_width: float = 0.5e-3
    tile_height: float = 0.5e-3

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                "grid must have at least one tile, got {}x{}".format(self.rows, self.cols)
            )
        check_positive(self.tile_width, "tile_width")
        check_positive(self.tile_height, "tile_height")

    @property
    def num_tiles(self):
        """Total number of tiles ``rows * cols``."""
        return self.rows * self.cols

    @property
    def tile_area(self):
        """Footprint of one tile in m^2."""
        return self.tile_width * self.tile_height

    @property
    def width(self):
        """Total grid width (along columns) in metres."""
        return self.cols * self.tile_width

    @property
    def height(self):
        """Total grid height (along rows) in metres."""
        return self.rows * self.tile_height

    @property
    def area(self):
        """Total grid footprint in m^2."""
        return self.width * self.height

    def flat_index(self, row, col):
        """Row-major flat index of tile ``(row, col)``."""
        row = check_index(row, "row", self.rows)
        col = check_index(col, "col", self.cols)
        return row * self.cols + col

    def row_col(self, flat):
        """Inverse of :meth:`flat_index`."""
        flat = check_index(flat, "flat", self.num_tiles)
        return divmod(flat, self.cols)

    def tile_center(self, row, col):
        """Centre of tile ``(row, col)`` in metres, origin at grid corner."""
        row = check_index(row, "row", self.rows)
        col = check_index(col, "col", self.cols)
        return ((col + 0.5) * self.tile_width, (row + 0.5) * self.tile_height)

    def iter_tiles(self):
        """Yield ``(flat, row, col)`` for every tile in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield row * self.cols + col, row, col

    def neighbors(self, row, col):
        """Yield the 4-connected neighbour coordinates of ``(row, col)``."""
        row = check_index(row, "row", self.rows)
        col = check_index(col, "col", self.cols)
        if row > 0:
            yield row - 1, col
        if row < self.rows - 1:
            yield row + 1, col
        if col > 0:
            yield row, col - 1
        if col < self.cols - 1:
            yield row, col + 1

    def iter_lateral_pairs(self):
        """Yield each adjacent tile pair once, as flat indices.

        East pairs come with the tile-to-tile pitch ``tile_width``;
        south pairs with ``tile_height``::

            for a, b, pitch, cross_width in grid.iter_lateral_pairs():
                ...

        ``cross_width`` is the width of the shared face in the lateral
        plane (a thickness factor turns it into a cross-section area).
        """
        for row in range(self.rows):
            for col in range(self.cols):
                flat = row * self.cols + col
                if col < self.cols - 1:
                    yield flat, flat + 1, self.tile_width, self.tile_height
                if row < self.rows - 1:
                    yield flat, flat + self.cols, self.tile_height, self.tile_width

    def boundary_tiles(self, side):
        """Flat indices of the tiles on one side of the grid.

        ``side`` is one of ``"north"`` (row 0), ``"south"`` (last row),
        ``"west"`` (col 0), ``"east"`` (last col).  Corner tiles appear
        on both adjacent sides.
        """
        if side == "north":
            return [self.flat_index(0, c) for c in range(self.cols)]
        if side == "south":
            return [self.flat_index(self.rows - 1, c) for c in range(self.cols)]
        if side == "west":
            return [self.flat_index(r, 0) for r in range(self.rows)]
        if side == "east":
            return [self.flat_index(r, self.cols - 1) for r in range(self.rows)]
        raise ValueError(
            "side must be north/south/east/west, got {!r}".format(side)
        )

    def to_grid(self, flat_values):
        """Reshape a flat per-tile vector to a ``(rows, cols)`` array."""
        arr = np.asarray(flat_values)
        if arr.shape != (self.num_tiles,):
            raise ValueError(
                "expected a flat vector of length {}, got shape {}".format(
                    self.num_tiles, arr.shape
                )
            )
        return arr.reshape(self.rows, self.cols)


@dataclass(frozen=True)
class CompositeGrid:
    """The flat index space of a multi-chiplet layout.

    Each chiplet keeps its own :class:`TileGrid`; chiplet ``c``'s tiles
    occupy the contiguous row-major block
    ``[block_offset(c), block_offset(c) + grids[c].num_tiles)`` of the
    **global** flat index space, so every subsystem that keys on flat
    tile indices (power maps, TEC deployments, the greedy loop) works
    on a composite layout unchanged.  A one-chiplet composite at origin
    ``(0, 0)`` reproduces :class:`TileGrid`'s indexing exactly.

    The chiplets sit on a shared **bounding lattice** (the tile grid of
    the interposer/spreader/sink layers): chiplet ``c``'s tile
    ``(r, c')`` maps to bounding tile
    ``(origins[c][0] + r, origins[c][1] + c')``.  All chiplets must
    share one tile pitch (the bounding lattice is uniform) and their
    footprints must not overlap.

    Attributes
    ----------
    grids:
        Per-chiplet :class:`TileGrid` tuple (at least one).
    origins:
        Per-chiplet ``(row_offset, col_offset)`` placements on the
        bounding lattice, in tile units, non-negative.
    """

    grids: tuple
    origins: tuple

    def __post_init__(self):
        grids = tuple(self.grids)
        origins = tuple((int(r), int(c)) for r, c in self.origins)
        object.__setattr__(self, "grids", grids)
        object.__setattr__(self, "origins", origins)
        if not grids:
            raise ValueError("a CompositeGrid needs at least one chiplet grid")
        if len(origins) != len(grids):
            raise ValueError(
                "got {} origins for {} chiplet grids".format(
                    len(origins), len(grids)
                )
            )
        for grid in grids:
            if not isinstance(grid, TileGrid):
                raise TypeError(
                    "chiplet grids must be TileGrid, got {!r}".format(type(grid))
                )
            if (
                grid.tile_width != grids[0].tile_width
                or grid.tile_height != grids[0].tile_height
            ):
                raise ValueError(
                    "chiplet grids must share one tile pitch; "
                    "got {}x{} vs {}x{}".format(
                        grid.tile_width, grid.tile_height,
                        grids[0].tile_width, grids[0].tile_height,
                    )
                )
        rects = []
        for grid, (row0, col0) in zip(grids, origins):
            if row0 < 0 or col0 < 0:
                raise ValueError(
                    "chiplet origins must be non-negative, got {}".format(
                        (row0, col0)
                    )
                )
            rects.append((row0, col0, row0 + grid.rows, col0 + grid.cols))
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                r0, c0, r1, c1 = rects[i]
                s0, d0, s1, d1 = rects[j]
                if r0 < s1 and s0 < r1 and c0 < d1 and d0 < c1:
                    raise ValueError(
                        "chiplet footprints {} and {} overlap".format(i, j)
                    )
        offsets = [0]
        for grid in grids:
            offsets.append(offsets[-1] + grid.num_tiles)
        object.__setattr__(self, "_block_offsets", tuple(offsets))

    # -- block structure ------------------------------------------------

    @property
    def num_chiplets(self):
        """Number of chiplet grids."""
        return len(self.grids)

    @property
    def num_tiles(self):
        """Total tile count over every chiplet."""
        return self._block_offsets[-1]

    def block_offset(self, chiplet):
        """First global flat index of chiplet ``chiplet``'s block."""
        chiplet = check_index(chiplet, "chiplet", self.num_chiplets)
        return self._block_offsets[chiplet]

    def block_slice(self, chiplet):
        """Slice of the global flat space owned by chiplet ``chiplet``."""
        chiplet = check_index(chiplet, "chiplet", self.num_chiplets)
        return slice(self._block_offsets[chiplet], self._block_offsets[chiplet + 1])

    # -- global <-> local index mapping ---------------------------------

    def global_index(self, chiplet, row, col):
        """Global flat index of tile ``(row, col)`` of chiplet ``chiplet``."""
        chiplet = check_index(chiplet, "chiplet", self.num_chiplets)
        return self._block_offsets[chiplet] + self.grids[chiplet].flat_index(row, col)

    def locate(self, flat):
        """Inverse of :meth:`global_index`: ``(chiplet, row, col)``."""
        flat = check_index(flat, "flat", self.num_tiles)
        for chiplet, grid in enumerate(self.grids):
            offset = self._block_offsets[chiplet]
            if flat < offset + grid.num_tiles:
                row, col = grid.row_col(flat - offset)
                return chiplet, row, col
        raise AssertionError("unreachable: flat index within bounds")

    def chiplet_of(self, flat):
        """Chiplet index owning global flat tile ``flat``."""
        return self.locate(flat)[0]

    def iter_tiles(self):
        """Yield ``(flat, chiplet, row, col)`` in global flat order."""
        for chiplet, grid in enumerate(self.grids):
            offset = self._block_offsets[chiplet]
            for local, row, col in grid.iter_tiles():
                yield offset + local, chiplet, row, col

    # -- the shared bounding lattice ------------------------------------

    @property
    def tile_width(self):
        """Common tile width (metres) of every chiplet grid."""
        return self.grids[0].tile_width

    @property
    def tile_height(self):
        """Common tile height (metres) of every chiplet grid."""
        return self.grids[0].tile_height

    @property
    def tile_area(self):
        """Footprint of one (uniform-pitch) tile in m^2."""
        return self.tile_width * self.tile_height

    @property
    def rows(self):
        """Row count of the bounding lattice."""
        return max(
            row0 + grid.rows for grid, (row0, _) in zip(self.grids, self.origins)
        )

    @property
    def cols(self):
        """Column count of the bounding lattice."""
        return max(
            col0 + grid.cols for grid, (_, col0) in zip(self.grids, self.origins)
        )

    @property
    def width(self):
        """Bounding-lattice width (along columns) in metres."""
        return self.cols * self.tile_width

    @property
    def height(self):
        """Bounding-lattice height (along rows) in metres."""
        return self.rows * self.tile_height

    @property
    def area(self):
        """Bounding-lattice footprint in m^2."""
        return self.width * self.height

    def bounding_grid(self):
        """The bounding lattice as a plain :class:`TileGrid`."""
        return TileGrid(
            self.rows, self.cols,
            tile_width=self.tile_width, tile_height=self.tile_height,
        )

    def lattice_index(self, flat):
        """Bounding-lattice flat index of global tile ``flat``."""
        chiplet, row, col = self.locate(flat)
        row0, col0 = self.origins[chiplet]
        return (row0 + row) * self.cols + (col0 + col)

    def row_col(self, flat):
        """Bounding-lattice ``(row, col)`` of global tile ``flat``.

        The lattice-coordinate counterpart of
        :meth:`TileGrid.row_col` — spatial consumers (device
        clustering, plots) see the package plan, not the per-chiplet
        block order.
        """
        chiplet, row, col = self.locate(flat)
        row0, col0 = self.origins[chiplet]
        return row0 + row, col0 + col

    def tile_center(self, row, col):
        """Centre of lattice tile ``(row, col)``, origin at the corner."""
        row = check_index(row, "row", self.rows)
        col = check_index(col, "col", self.cols)
        return ((col + 0.5) * self.tile_width, (row + 0.5) * self.tile_height)

    def occupied_lattice_tiles(self):
        """Bounding flat index per global tile, length ``num_tiles``."""
        return np.array(
            [self.lattice_index(flat) for flat in range(self.num_tiles)],
            dtype=np.int64,
        )

    def to_grid(self, flat_values):
        """Scatter a global flat vector onto the bounding lattice.

        Returns a ``(rows, cols)`` float array; lattice tiles not
        covered by any chiplet (the gaps) are NaN.
        """
        arr = np.asarray(flat_values, dtype=float)
        if arr.shape != (self.num_tiles,):
            raise ValueError(
                "expected a flat vector of length {}, got shape {}".format(
                    self.num_tiles, arr.shape
                )
            )
        out = np.full((self.rows, self.cols), np.nan)
        out.flat[self.occupied_lattice_tiles()] = arr
        return out
