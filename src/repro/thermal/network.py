"""The thermal conductance network.

Heat transfer is treated through its electrical dual (Section IV.A):
heat flow is "current" through thermal conductances, temperatures are
node "voltages" against a ground at absolute zero, power dissipation is
a current source, and the ambient is a constant voltage source that is
eliminated into the right-hand side during assembly.

:class:`ThermalNetwork` is the mutable builder the package model and
the TEC stamps write into; :func:`repro.thermal.assembly.assemble`
turns it into the ``(G, D, p_base, joule)`` matrices of Equation (4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils import check_nonnegative, check_positive
from repro.utils.validate import check_index


class NodeRole(enum.Enum):
    """Classification of network nodes.

    ``SILICON`` nodes are the paper's set SIL (the tiles whose peak
    temperature the optimization constrains); ``TEC_HOT`` / ``TEC_COLD``
    are HOT / CLD.  The remaining roles exist for reporting and for the
    layered builder; the matrices do not distinguish them.
    """

    SILICON = "silicon"
    TIM = "tim"
    INTERPOSER = "interposer"
    SPREADER = "spreader"
    SPREADER_PERIPHERY = "spreader-periphery"
    SINK = "sink"
    SINK_PERIPHERY = "sink-periphery"
    TEC_HOT = "tec-hot"
    TEC_COLD = "tec-cold"
    OTHER = "other"


@dataclass
class Node:
    """One network node.

    ``meta`` carries builder-specific context (e.g. the tile flat index
    a silicon node corresponds to).
    """

    name: str
    role: NodeRole
    meta: dict = field(default_factory=dict)


class ThermalNetwork:
    """Mutable thermal-network builder.

    The builder accumulates:

    * **conductances** between node pairs (parallel additions merge);
    * **ground conductances** from a node to the ambient voltage source;
    * **sources**: constant heat inputs in watts;
    * **joule coefficients**: heat inputs of ``coeff * i^2`` watts
      (the TEC's ``r/2`` terms, Section IV.C);
    * **peltier coefficients**: the diagonal of ``D`` (``+alpha`` on
      hot nodes, ``-alpha`` on cold nodes).
    """

    def __init__(self):
        self.nodes = []
        self._conductances = {}
        self._ground = {}
        self._sources = {}
        self._joule = {}
        self._peltier = {}

    def __len__(self):
        return len(self.nodes)

    @property
    def num_nodes(self):
        """Number of nodes added so far."""
        return len(self.nodes)

    def add_node(self, name, role=NodeRole.OTHER, **meta):
        """Add a node; returns its index."""
        if not isinstance(role, NodeRole):
            raise TypeError("role must be a NodeRole, got {!r}".format(role))
        self.nodes.append(Node(str(name), role, dict(meta)))
        return len(self.nodes) - 1

    def add_conductance(self, a, b, conductance):
        """Add a thermal conductance (W/K) between nodes ``a`` and ``b``.

        Parallel conductances between the same pair accumulate.
        """
        a = check_index(a, "a", len(self.nodes))
        b = check_index(b, "b", len(self.nodes))
        if a == b:
            raise ValueError("conductance endpoints must differ, got node {}".format(a))
        conductance = check_positive(conductance, "conductance")
        key = (a, b) if a < b else (b, a)
        self._conductances[key] = self._conductances.get(key, 0.0) + conductance

    def add_ground_conductance(self, node, conductance):
        """Add a conductance (W/K) from ``node`` to the ambient source."""
        node = check_index(node, "node", len(self.nodes))
        conductance = check_positive(conductance, "conductance")
        self._ground[node] = self._ground.get(node, 0.0) + conductance

    def add_source(self, node, power):
        """Add a constant heat source (W, >= 0) at ``node``."""
        node = check_index(node, "node", len(self.nodes))
        power = check_nonnegative(power, "power")
        if power:
            self._sources[node] = self._sources.get(node, 0.0) + power

    def add_joule(self, node, coefficient):
        """Add a current-dependent source ``coefficient * i^2`` at ``node``."""
        node = check_index(node, "node", len(self.nodes))
        coefficient = check_nonnegative(coefficient, "coefficient")
        if coefficient:
            self._joule[node] = self._joule.get(node, 0.0) + coefficient

    def set_peltier(self, node, alpha_signed):
        """Set the ``D`` diagonal entry for ``node``.

        ``+alpha`` for a TEC hot node, ``-alpha`` for a cold node
        (Equation 5).  A node may carry at most one Peltier entry; a
        second assignment raises, because stacking two TEC sides on one
        node has no physical meaning in this model.
        """
        node = check_index(node, "node", len(self.nodes))
        alpha_signed = float(alpha_signed)
        if node in self._peltier:
            raise ValueError("node {} already has a Peltier coefficient".format(node))
        if alpha_signed == 0.0:
            raise ValueError("Peltier coefficient must be non-zero")
        self._peltier[node] = alpha_signed

    def conductance_items(self):
        """Iterate ``((a, b), g)`` over accumulated pair conductances."""
        return self._conductances.items()

    def ground_items(self):
        """Iterate ``(node, g)`` over ground conductances."""
        return self._ground.items()

    def source_items(self):
        """Iterate ``(node, watts)`` over constant sources."""
        return self._sources.items()

    def joule_items(self):
        """Iterate ``(node, coeff)`` over Joule coefficients."""
        return self._joule.items()

    def peltier_items(self):
        """Iterate ``(node, signed_alpha)`` over ``D`` diagonal entries."""
        return self._peltier.items()

    def indices_with_role(self, role):
        """All node indices whose role is ``role``, in insertion order."""
        return [k for k, node in enumerate(self.nodes) if node.role is role]

    def node_name(self, index):
        """Name of node ``index``."""
        index = check_index(index, "index", len(self.nodes))
        return self.nodes[index].name

    def total_ground_conductance(self):
        """Sum of all conductances to ambient (W/K)."""
        return sum(self._ground.values())

    def total_source_power(self):
        """Sum of all constant heat sources (W)."""
        return sum(self._sources.values())
