"""Closed-form spreading resistance (Song/Lee/Au) — analytic cross-check.

The compact network and the fine-grid reference are both numerical;
this module provides the classic closed-form estimate of the thermal
resistance of a small heat source on a larger conductive plate with
convection behind it (Song, Lee & Au, SEMI-THERM 1994), which the test
suite uses as an independent order-of-magnitude check on the package
model — a defense against unit errors that two numerical models could
share.

The source and plate are mapped to equivalent-area circles:

    r1 = sqrt(A_source / pi),   r2 = sqrt(A_plate / pi)
    eps = r1 / r2,  tau = t / r2,  Bi = h r2 / k
    lambda_c = pi + 1 / (sqrt(pi) eps)
    phi = (tanh(lambda_c tau) + lambda_c / Bi)
          / (1 + (lambda_c / Bi) tanh(lambda_c tau))
    psi_max = eps tau / sqrt(pi) + (1 - eps) phi / sqrt(pi)
    R_sp    = psi_max / (k r1 sqrt(pi))

``psi_max`` is the maximum (source-centre) dimensionless constriction
resistance; ``R_sp`` the corresponding spreading resistance in K/W.
"""

from __future__ import annotations

import math

from repro.utils import check_positive


def one_dimensional_resistance(thickness, conductivity, area):
    """Plain 1-D conduction resistance ``t / (k A)`` in K/W."""
    thickness = check_positive(thickness, "thickness")
    conductivity = check_positive(conductivity, "conductivity")
    area = check_positive(area, "area")
    return thickness / (conductivity * area)


def spreading_resistance(
    source_area, plate_area, thickness, conductivity, h_effective
):
    """Maximum spreading resistance of a centred source (K/W).

    Parameters
    ----------
    source_area:
        Heat-source footprint (m^2), smaller than ``plate_area``.
    plate_area:
        Plate footprint (m^2).
    thickness:
        Plate thickness (m).
    conductivity:
        Plate conductivity (W/mK).
    h_effective:
        Effective heat-transfer coefficient behind the plate
        (W/m^2K); for a stack, ``1 / (R_downstream * A_plate)``.
    """
    source_area = check_positive(source_area, "source_area")
    plate_area = check_positive(plate_area, "plate_area")
    thickness = check_positive(thickness, "thickness")
    conductivity = check_positive(conductivity, "conductivity")
    h_effective = check_positive(h_effective, "h_effective")
    if source_area > plate_area:
        raise ValueError("source_area must not exceed plate_area")

    r1 = math.sqrt(source_area / math.pi)
    r2 = math.sqrt(plate_area / math.pi)
    eps = r1 / r2
    tau = thickness / r2
    biot = h_effective * r2 / conductivity
    lam = math.pi + 1.0 / (math.sqrt(math.pi) * eps)
    tanh_term = math.tanh(lam * tau)
    phi = (tanh_term + lam / biot) / (1.0 + (lam / biot) * tanh_term)
    psi_max = eps * tau / math.sqrt(math.pi) + (1.0 - eps) * phi / math.sqrt(
        math.pi
    )
    return psi_max / (conductivity * r1 * math.sqrt(math.pi))


def package_peak_resistance_estimate(stack, grid, source_tiles):
    """Closed-form junction-to-ambient resistance of a hot cluster.

    Layer-by-layer, outside in: the convection resistance backs a
    spreading stage in the sink (source = spreader footprint), which
    backs a spreading stage in the spreader (source = die footprint),
    which backs the TIM crossed at die scale, which backs a spreading
    stage in the *die* (source = the hot cluster).  Each stage's
    backside coefficient is the whole downstream resistance spread
    over the stage's plate area.

    The Song/Lee formula is a maximum (source-centre) resistance for a
    single plate; applied to a thin multilayer it brackets the
    cluster-average resistance from above.  The cross-check test
    requires the network's measured value to sit within a factor ~2
    below this estimate — a deliberate, loose sanity band whose job is
    to catch unit/geometry errors, not to re-derive the network.
    """
    source_tiles = list(source_tiles)
    if not source_tiles:
        raise ValueError("need at least one source tile")
    die, tim, spreader, sink = stack.conduction_layers()
    source_area = len(source_tiles) * grid.tile_area
    die_area = grid.area
    spreader_area = (spreader.side or grid.width) ** 2
    sink_area = (sink.side or spreader.side or grid.width) ** 2

    convection = stack.convection_resistance
    sink_stage = spreading_resistance(
        spreader_area,
        sink_area,
        sink.thickness,
        sink.material.thermal_conductivity,
        1.0 / (convection * sink_area),
    )
    spreader_stage = spreading_resistance(
        die_area,
        spreader_area,
        spreader.thickness,
        spreader.material.thermal_conductivity,
        1.0 / ((sink_stage + convection) * spreader_area),
    )
    tim_stage = one_dimensional_resistance(
        tim.thickness, tim.material.thermal_conductivity, die_area
    )
    downstream = tim_stage + spreader_stage + sink_stage + convection
    die_stage = spreading_resistance(
        source_area,
        die_area,
        die.thickness,
        die.material.thermal_conductivity,
        1.0 / (downstream * die_area),
    )
    return die_stage + downstream
