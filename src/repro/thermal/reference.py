"""Independent fine-grid finite-difference reference solver.

Plays the role HotSpot 4.1 plays in Section VI of the paper: an
independent, finer discretization of the same package physics that the
compact model is validated against ("the two results agreed closely —
the worst-case difference is less than 1.5 C").

The solver discretizes the package on a rectilinear voxel grid:

* laterally, the die footprint is subdivided ``refine`` times per tile
  (so fine cells align with tile boundaries) and the spreader/sink
  overhangs are subdivided into ``overhang_cells`` rings per side;
* vertically, each conduction layer is split into a configurable
  number of slabs;
* die and TIM voxels exist only over the die footprint, spreader
  voxels over the spreader footprint, sink voxels everywhere;
* tile power is injected volumetrically over the die voxels of the
  tile (consistent with the compact model's one-node-per-tile die
  layer), and convection is distributed over the top sink voxels by
  area.

The implementation shares **no code** with the compact model beyond
the material/stack records: conductances are formed cell-by-cell from
harmonic means, and the sparse system is assembled directly.  That
independence is what makes the validation meaningful.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve

from repro.thermal.geometry import TileGrid
from repro.thermal.stack import PackageStack
from repro.utils import celsius_to_kelvin, check_finite, kelvin_to_celsius


def _segment(lo, hi, cells):
    """Uniform cell edges from ``lo`` to ``hi`` (``cells`` intervals)."""
    return np.linspace(lo, hi, cells + 1)


class ReferenceGridModel:
    """Fine-grid steady-state reference solver (no TECs).

    Parameters
    ----------
    grid:
        The silicon tile grid (defines the die footprint and the
        reporting granularity).
    power_map:
        Worst-case power per tile (W), flat row-major.
    stack:
        The :class:`~repro.thermal.stack.PackageStack` shared with the
        compact model under validation.
    refine:
        Lateral subdivisions per tile over the die (>= 1).
    overhang_cells:
        Lateral cells per overhang region per side (>= 1).
    die_slabs, tim_slabs, spreader_slabs, sink_slabs:
        Vertical slabs per layer.
    """

    def __init__(
        self,
        grid,
        power_map,
        *,
        stack=None,
        refine=2,
        overhang_cells=3,
        die_slabs=2,
        tim_slabs=2,
        spreader_slabs=3,
        sink_slabs=3,
    ):
        if not isinstance(grid, TileGrid):
            raise TypeError("grid must be a TileGrid, got {!r}".format(type(grid)))
        if refine < 1 or overhang_cells < 1:
            raise ValueError("refine and overhang_cells must be >= 1")
        for name, value in (
            ("die_slabs", die_slabs),
            ("tim_slabs", tim_slabs),
            ("spreader_slabs", spreader_slabs),
            ("sink_slabs", sink_slabs),
        ):
            if value < 1:
                raise ValueError("{} must be >= 1, got {}".format(name, value))
        self.grid = grid
        self.stack = stack if stack is not None else PackageStack()
        power_map = check_finite(power_map, "power_map")
        if power_map.shape != (grid.num_tiles,):
            raise ValueError(
                "power_map must have length {}, got shape {}".format(
                    grid.num_tiles, power_map.shape
                )
            )
        self.power_map = power_map.copy()
        self.refine = int(refine)

        die, tim, spreader, sink = self.stack.conduction_layers()
        die_w, die_h = grid.width, grid.height
        spr_side = spreader.side or max(die_w, die_h)
        snk_side = sink.side or spr_side

        # ---- lateral edges (common to every layer; voxels are masked).
        self._x_edges = self._lateral_edges(die_w, spr_side, snk_side, grid.cols, overhang_cells)
        self._y_edges = self._lateral_edges(die_h, spr_side, snk_side, grid.rows, overhang_cells)
        self._dx = np.diff(self._x_edges)
        self._dy = np.diff(self._y_edges)
        # Offsets of the die region within the lateral grid.
        self._die_x0 = self._die_offset(die_w, spr_side, snk_side, overhang_cells)
        self._die_y0 = self._die_offset(die_h, spr_side, snk_side, overhang_cells)

        # ---- vertical slabs, bottom (junction) to top (air).
        self._layers = []
        for layer, slabs in (
            (die, die_slabs),
            (tim, tim_slabs),
            (spreader, spreader_slabs),
            (sink, sink_slabs),
        ):
            dz = layer.thickness / slabs
            for _ in range(slabs):
                self._layers.append((layer, dz))
        self._die_slab_count = die_slabs

        # ---- voxel activity masks per slab.
        self._footprints = {
            "die": (die_w, die_h),
            "spreader": (spr_side, spr_side),
            "sink": (snk_side, snk_side),
        }
        self._masks = [self._mask_for(layer) for layer, _ in self._layers]

        self._assemble()

    # ------------------------------------------------------------------

    def _lateral_edges(self, die_side, spr_side, snk_side, die_cells, overhang_cells):
        refine = self.refine
        half_die = 0.5 * die_side
        half_spr = 0.5 * spr_side
        half_snk = 0.5 * snk_side
        pieces = []
        if half_snk > half_spr:
            pieces.append(_segment(-half_snk, -half_spr, overhang_cells)[:-1])
        if half_spr > half_die:
            pieces.append(_segment(-half_spr, -half_die, overhang_cells)[:-1])
        pieces.append(_segment(-half_die, half_die, die_cells * refine)[:-1])
        if half_spr > half_die:
            pieces.append(_segment(half_die, half_spr, overhang_cells)[:-1])
        if half_snk > half_spr:
            pieces.append(_segment(half_spr, half_snk, overhang_cells)[:-1])
        edges = np.concatenate(pieces + [np.array([half_snk])])
        return edges

    def _die_offset(self, die_side, spr_side, snk_side, overhang_cells):
        offset = 0
        if snk_side > spr_side:
            offset += overhang_cells
        if spr_side > die_side:
            offset += overhang_cells
        return offset

    def _mask_for(self, layer):
        """Boolean (ny, nx) mask of active voxels for one slab."""
        name = layer.name
        if name in ("die", "tim"):
            side_w, side_h = self._footprints["die"]
        elif name == "spreader":
            side_w, side_h = self._footprints["spreader"]
        else:
            side_w, side_h = self._footprints["sink"]
        x_centers = 0.5 * (self._x_edges[:-1] + self._x_edges[1:])
        y_centers = 0.5 * (self._y_edges[:-1] + self._y_edges[1:])
        eps = 1.0e-12
        in_x = np.abs(x_centers) <= 0.5 * side_w + eps
        in_y = np.abs(y_centers) <= 0.5 * side_h + eps
        return np.outer(in_y, in_x)

    # ------------------------------------------------------------------

    def _assemble(self):
        nx = self._dx.shape[0]
        ny = self._dy.shape[0]
        nz = len(self._layers)

        index = -np.ones((nz, ny, nx), dtype=int)
        counter = 0
        for z in range(nz):
            mask = self._masks[z]
            for y in range(ny):
                for x in range(nx):
                    if mask[y, x]:
                        index[z, y, x] = counter
                        counter += 1
        self._index = index
        self.num_cells = counter

        rows, cols, data = [], [], []
        diagonal = np.zeros(counter)
        rhs = np.zeros(counter)
        ambient_k = celsius_to_kelvin(self.stack.ambient_c)

        def couple(a, b, conductance):
            rows.extend((a, b))
            cols.extend((b, a))
            data.extend((-conductance, -conductance))
            diagonal[a] += conductance
            diagonal[b] += conductance

        for z in range(nz):
            layer_z, dz_z = self._layers[z]
            k_z = layer_z.material.thermal_conductivity
            for y in range(ny):
                for x in range(nx):
                    a = index[z, y, x]
                    if a < 0:
                        continue
                    # +x neighbour
                    if x + 1 < nx and index[z, y, x + 1] >= 0:
                        b = index[z, y, x + 1]
                        face = self._dy[y] * dz_z
                        g = face / (
                            0.5 * self._dx[x] / k_z + 0.5 * self._dx[x + 1] / k_z
                        )
                        couple(a, b, g)
                    # +y neighbour
                    if y + 1 < ny and index[z, y + 1, x] >= 0:
                        b = index[z, y + 1, x]
                        face = self._dx[x] * dz_z
                        g = face / (
                            0.5 * self._dy[y] / k_z + 0.5 * self._dy[y + 1] / k_z
                        )
                        couple(a, b, g)
                    # +z neighbour
                    if z + 1 < nz and index[z + 1, y, x] >= 0:
                        layer_up, dz_up = self._layers[z + 1]
                        k_up = layer_up.material.thermal_conductivity
                        b = index[z + 1, y, x]
                        face = self._dx[x] * self._dy[y]
                        g = face / (0.5 * dz_z / k_z + 0.5 * dz_up / k_up)
                        couple(a, b, g)

        # Convection from the top sink slab, distributed by area.
        top = nz - 1
        top_mask = self._masks[top]
        top_area = float(
            np.sum(np.outer(self._dy, self._dx)[top_mask])
        )
        h_total = 1.0 / self.stack.convection_resistance
        for y in range(ny):
            for x in range(nx):
                a = index[top, y, x]
                if a < 0:
                    continue
                area = self._dx[x] * self._dy[y]
                g = h_total * area / top_area
                diagonal[a] += g
                rhs[a] += g * ambient_k

        # Volumetric tile power over the die slabs.
        refine = self.refine
        die_volume_slabs = self._die_slab_count
        for flat, row, col in self.grid.iter_tiles():
            power = self.power_map[flat]
            if power == 0.0:
                continue
            per_cell = power / (refine * refine * die_volume_slabs)
            for z in range(die_volume_slabs):
                for sub_y in range(refine):
                    for sub_x in range(refine):
                        y = self._die_y0 + row * refine + sub_y
                        x = self._die_x0 + col * refine + sub_x
                        a = index[z, y, x]
                        if a < 0:
                            raise RuntimeError(
                                "die voxel unexpectedly inactive at {}".format((z, y, x))
                            )
                        rhs[a] += per_cell

        rows.extend(range(counter))
        cols.extend(range(counter))
        data.extend(diagonal)
        self._matrix = sp.csc_matrix(
            sp.coo_matrix((data, (rows, cols)), shape=(counter, counter))
        )
        self._rhs = rhs
        self._solution_k = None

    # ------------------------------------------------------------------

    def solve(self):
        """Solve the fine-grid steady state; cached after the first call."""
        if self._solution_k is None:
            self._solution_k = spsolve(self._matrix, self._rhs)
            if not np.all(np.isfinite(self._solution_k)):
                raise RuntimeError("reference solve produced non-finite temperatures")
        return self._solution_k

    def tile_temperatures_c(self):
        """Per-tile silicon temperatures (Celsius), flat row-major.

        Each tile's value is the volume average of its die voxels over
        every die slab — consistent with the compact model's lumped
        one-node-per-tile die layer.
        """
        theta = self.solve()
        refine = self.refine
        result = np.zeros(self.grid.num_tiles)
        for flat, row, col in self.grid.iter_tiles():
            total = 0.0
            count = 0
            for z in range(self._die_slab_count):
                for sub_y in range(refine):
                    for sub_x in range(refine):
                        y = self._die_y0 + row * refine + sub_y
                        x = self._die_x0 + col * refine + sub_x
                        total += theta[self._index[z, y, x]]
                        count += 1
            result[flat] = total / count
        return kelvin_to_celsius(result)

    def peak_tile_temperature_c(self):
        """Hottest tile temperature (Celsius)."""
        return float(np.max(self.tile_temperatures_c()))
