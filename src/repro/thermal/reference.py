"""Independent fine-grid finite-difference reference solver.

Plays the role HotSpot 4.1 plays in Section VI of the paper: an
independent, finer discretization of the same package physics that the
compact model is validated against ("the two results agreed closely —
the worst-case difference is less than 1.5 C").

The solver discretizes the package on a rectilinear voxel grid:

* laterally, the die footprint is subdivided ``refine`` times per tile
  (so fine cells align with tile boundaries) and the spreader/sink
  overhangs are subdivided into ``overhang_cells`` rings per side;
* vertically, each conduction layer is split into a configurable
  number of slabs;
* die and TIM voxels exist only over the die footprint, spreader
  voxels over the spreader footprint, sink voxels everywhere;
* tile power is injected volumetrically over the die voxels of the
  tile (consistent with the compact model's one-node-per-tile die
  layer), and convection is distributed over the top sink voxels by
  area.

The implementation shares **no code** with the compact model beyond
the material/stack records: conductances are formed cell-by-cell from
harmonic means, and the sparse system is assembled directly.  That
independence is what makes the validation meaningful.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve

from repro.thermal.geometry import TileGrid
from repro.thermal.stack import PackageStack
from repro.utils import celsius_to_kelvin, check_finite, kelvin_to_celsius


def _segment(lo, hi, cells):
    """Uniform cell edges from ``lo`` to ``hi`` (``cells`` intervals)."""
    return np.linspace(lo, hi, cells + 1)


class ReferenceGridModel:
    """Fine-grid steady-state reference solver (no TECs).

    Parameters
    ----------
    grid:
        The silicon tile grid (defines the die footprint and the
        reporting granularity).
    power_map:
        Worst-case power per tile (W), flat row-major.
    stack:
        The :class:`~repro.thermal.stack.PackageStack` shared with the
        compact model under validation.
    refine:
        Lateral subdivisions per tile over the die (>= 1).
    overhang_cells:
        Lateral cells per overhang region per side (>= 1).
    die_slabs, tim_slabs, spreader_slabs, sink_slabs:
        Vertical slabs per layer.
    """

    def __init__(
        self,
        grid,
        power_map,
        *,
        stack=None,
        refine=2,
        overhang_cells=3,
        die_slabs=2,
        tim_slabs=2,
        spreader_slabs=3,
        sink_slabs=3,
    ):
        if not isinstance(grid, TileGrid):
            raise TypeError("grid must be a TileGrid, got {!r}".format(type(grid)))
        if refine < 1 or overhang_cells < 1:
            raise ValueError("refine and overhang_cells must be >= 1")
        for name, value in (
            ("die_slabs", die_slabs),
            ("tim_slabs", tim_slabs),
            ("spreader_slabs", spreader_slabs),
            ("sink_slabs", sink_slabs),
        ):
            if value < 1:
                raise ValueError("{} must be >= 1, got {}".format(name, value))
        self.grid = grid
        self.stack = stack if stack is not None else PackageStack()
        power_map = check_finite(power_map, "power_map")
        if power_map.shape != (grid.num_tiles,):
            raise ValueError(
                "power_map must have length {}, got shape {}".format(
                    grid.num_tiles, power_map.shape
                )
            )
        self.power_map = power_map.copy()
        self.refine = int(refine)

        die, tim, spreader, sink = self.stack.conduction_layers()
        die_w, die_h = grid.width, grid.height
        # An undersized spreader/sink would silently invert the
        # overhang segments below (negative cell widths -> negative
        # resistances); fail loudly instead.
        self.stack.validate_footprints(die_w, die_h)
        spr_side = spreader.side or max(die_w, die_h)
        snk_side = sink.side or spr_side

        # ---- lateral edges (common to every layer; voxels are masked).
        self._x_edges = self._lateral_edges(die_w, spr_side, snk_side, grid.cols, overhang_cells)
        self._y_edges = self._lateral_edges(die_h, spr_side, snk_side, grid.rows, overhang_cells)
        self._dx = np.diff(self._x_edges)
        self._dy = np.diff(self._y_edges)
        # Offsets of the die region within the lateral grid.
        self._die_x0 = self._die_offset(die_w, spr_side, snk_side, overhang_cells)
        self._die_y0 = self._die_offset(die_h, spr_side, snk_side, overhang_cells)

        # ---- vertical slabs, bottom (junction) to top (air).
        self._layers = []
        for layer, slabs in (
            (die, die_slabs),
            (tim, tim_slabs),
            (spreader, spreader_slabs),
            (sink, sink_slabs),
        ):
            dz = layer.thickness / slabs
            for _ in range(slabs):
                self._layers.append((layer, dz))
        self._die_slab_count = die_slabs

        # ---- voxel activity masks per slab.
        self._footprints = {
            "die": (die_w, die_h),
            "spreader": (spr_side, spr_side),
            "sink": (snk_side, snk_side),
        }
        self._masks = [self._mask_for(layer) for layer, _ in self._layers]

        self._assemble()

    # ------------------------------------------------------------------

    def _lateral_edges(self, die_side, spr_side, snk_side, die_cells, overhang_cells):
        refine = self.refine
        half_die = 0.5 * die_side
        half_spr = 0.5 * spr_side
        half_snk = 0.5 * snk_side
        pieces = []
        if half_snk > half_spr:
            pieces.append(_segment(-half_snk, -half_spr, overhang_cells)[:-1])
        if half_spr > half_die:
            pieces.append(_segment(-half_spr, -half_die, overhang_cells)[:-1])
        pieces.append(_segment(-half_die, half_die, die_cells * refine)[:-1])
        if half_spr > half_die:
            pieces.append(_segment(half_die, half_spr, overhang_cells)[:-1])
        if half_snk > half_spr:
            pieces.append(_segment(half_spr, half_snk, overhang_cells)[:-1])
        edges = np.concatenate(pieces + [np.array([half_snk])])
        return edges

    def _die_offset(self, die_side, spr_side, snk_side, overhang_cells):
        offset = 0
        if snk_side > spr_side:
            offset += overhang_cells
        if spr_side > die_side:
            offset += overhang_cells
        return offset

    def _mask_for(self, layer):
        """Boolean (ny, nx) mask of active voxels for one slab."""
        name = layer.name
        if name in ("die", "tim"):
            side_w, side_h = self._footprints["die"]
        elif name == "spreader":
            side_w, side_h = self._footprints["spreader"]
        else:
            side_w, side_h = self._footprints["sink"]
        x_centers = 0.5 * (self._x_edges[:-1] + self._x_edges[1:])
        y_centers = 0.5 * (self._y_edges[:-1] + self._y_edges[1:])
        eps = 1.0e-12
        in_x = np.abs(x_centers) <= 0.5 * side_w + eps
        in_y = np.abs(y_centers) <= 0.5 * side_h + eps
        return np.outer(in_y, in_x)

    # ------------------------------------------------------------------

    def _assemble(self):
        nx = self._dx.shape[0]
        ny = self._dy.shape[0]
        nz = len(self._layers)

        index = -np.ones((nz, ny, nx), dtype=int)
        counter = 0
        for z in range(nz):
            mask = self._masks[z]
            for y in range(ny):
                for x in range(nx):
                    if mask[y, x]:
                        index[z, y, x] = counter
                        counter += 1
        self._index = index
        self.num_cells = counter

        rows, cols, data = [], [], []
        diagonal = np.zeros(counter)
        rhs = np.zeros(counter)
        ambient_k = celsius_to_kelvin(self.stack.ambient_c)

        def couple(a, b, conductance):
            rows.extend((a, b))
            cols.extend((b, a))
            data.extend((-conductance, -conductance))
            diagonal[a] += conductance
            diagonal[b] += conductance

        for z in range(nz):
            layer_z, dz_z = self._layers[z]
            k_z = layer_z.material.thermal_conductivity
            for y in range(ny):
                for x in range(nx):
                    a = index[z, y, x]
                    if a < 0:
                        continue
                    # +x neighbour
                    if x + 1 < nx and index[z, y, x + 1] >= 0:
                        b = index[z, y, x + 1]
                        face = self._dy[y] * dz_z
                        g = face / (
                            0.5 * self._dx[x] / k_z + 0.5 * self._dx[x + 1] / k_z
                        )
                        couple(a, b, g)
                    # +y neighbour
                    if y + 1 < ny and index[z, y + 1, x] >= 0:
                        b = index[z, y + 1, x]
                        face = self._dx[x] * dz_z
                        g = face / (
                            0.5 * self._dy[y] / k_z + 0.5 * self._dy[y + 1] / k_z
                        )
                        couple(a, b, g)
                    # +z neighbour
                    if z + 1 < nz and index[z + 1, y, x] >= 0:
                        layer_up, dz_up = self._layers[z + 1]
                        k_up = layer_up.material.thermal_conductivity
                        b = index[z + 1, y, x]
                        face = self._dx[x] * self._dy[y]
                        g = face / (0.5 * dz_z / k_z + 0.5 * dz_up / k_up)
                        couple(a, b, g)

        # Convection from the top sink slab, distributed by area.
        top = nz - 1
        top_mask = self._masks[top]
        top_area = float(
            np.sum(np.outer(self._dy, self._dx)[top_mask])
        )
        h_total = 1.0 / self.stack.convection_resistance
        for y in range(ny):
            for x in range(nx):
                a = index[top, y, x]
                if a < 0:
                    continue
                area = self._dx[x] * self._dy[y]
                g = h_total * area / top_area
                diagonal[a] += g
                rhs[a] += g * ambient_k

        # Volumetric tile power over the die slabs.
        refine = self.refine
        die_volume_slabs = self._die_slab_count
        for flat, row, col in self.grid.iter_tiles():
            power = self.power_map[flat]
            if power == 0.0:
                continue
            per_cell = power / (refine * refine * die_volume_slabs)
            for z in range(die_volume_slabs):
                for sub_y in range(refine):
                    for sub_x in range(refine):
                        y = self._die_y0 + row * refine + sub_y
                        x = self._die_x0 + col * refine + sub_x
                        a = index[z, y, x]
                        if a < 0:
                            raise RuntimeError(
                                "die voxel unexpectedly inactive at {}".format((z, y, x))
                            )
                        rhs[a] += per_cell

        rows.extend(range(counter))
        cols.extend(range(counter))
        data.extend(diagonal)
        self._matrix = sp.csc_matrix(
            sp.coo_matrix((data, (rows, cols)), shape=(counter, counter))
        )
        self._rhs = rhs
        self._solution_k = None

    # ------------------------------------------------------------------

    def solve(self):
        """Solve the fine-grid steady state; cached after the first call."""
        if self._solution_k is None:
            self._solution_k = spsolve(self._matrix, self._rhs)
            if not np.all(np.isfinite(self._solution_k)):
                raise RuntimeError("reference solve produced non-finite temperatures")
        return self._solution_k

    def tile_temperatures_c(self):
        """Per-tile silicon temperatures (Celsius), flat row-major.

        Each tile's value is the volume average of its die voxels over
        every die slab — consistent with the compact model's lumped
        one-node-per-tile die layer.
        """
        theta = self.solve()
        refine = self.refine
        result = np.zeros(self.grid.num_tiles)
        for flat, row, col in self.grid.iter_tiles():
            total = 0.0
            count = 0
            for z in range(self._die_slab_count):
                for sub_y in range(refine):
                    for sub_x in range(refine):
                        y = self._die_y0 + row * refine + sub_y
                        x = self._die_x0 + col * refine + sub_x
                        total += theta[self._index[z, y, x]]
                        count += 1
            result[flat] = total / count
        return kelvin_to_celsius(result)

    def peak_tile_temperature_c(self):
        """Hottest tile temperature (Celsius)."""
        return float(np.max(self.tile_temperatures_c()))


_REF_SIDES = ("north", "east", "south", "west")


class ReferenceChipletModel:
    """Independent reference assembly of a 2.5D chiplet package.

    Validates the composite chiplet model the way the paper validated
    its compact model against HotSpot: a from-scratch, direct sparse
    assembly of the same package physics — per-chiplet silicon/TIM
    islands, the shared interposer with microbump links and lateral
    spreading, the shared spreader/sink with overhang periphery rings
    and area-distributed convection — sharing **no builder code** with
    :class:`~repro.thermal.model.CompositeThermalModel` (no
    ``ThermalNetwork``, no blueprint machinery, no layer stamping
    helpers; every conductance is formed here from the material records
    directly, and the system is solved by a plain ``spsolve``).

    Because both sides discretize the package identically (one node
    per tile per layer, the same lumping conventions), agreement is
    expected to floating-point accuracy — the differential suite pins
    the peak-temperature difference at <= 1e-6 K, which is what makes
    this a meaningful end-to-end check of the composite stamping,
    assembly, indexing and solve pipeline.  No-TEC layouts only (the
    validation operating point, like Section VI's HotSpot comparison).
    """

    #: Effective-length factor for conduction into the lumped overhang
    #: rings; must match the compact model's calibrated value for the
    #: discretizations to coincide.
    SPREADING_FACTOR = 0.2

    def __init__(self, layout):
        from repro.thermal.chiplet import ChipletLayout

        if not isinstance(layout, ChipletLayout):
            raise TypeError(
                "layout must be a ChipletLayout, got {!r}".format(type(layout))
            )
        self.layout = layout
        self.composite = layout.composite_grid()
        self.stack = layout.stack
        self._solution_k = None
        self._assemble()

    # ------------------------------------------------------------------

    def _assemble(self):
        layout = self.layout
        composite = self.composite
        stack = self.stack
        die, tim, spreader, sink = stack.conduction_layers()
        interposer = layout.interposer

        rows, cols = composite.rows, composite.cols
        tw, th = composite.tile_width, composite.tile_height
        tile_area = tw * th
        num_lattice = rows * cols
        bounding_w = cols * tw
        bounding_h = rows * th

        # ---- node numbering (silicon, tim, [interposer], spreader,
        # sink, periphery), all indexed independently of the builder.
        counter = 0
        sil = list(range(counter, counter + composite.num_tiles))
        counter += composite.num_tiles
        tim_idx = list(range(counter, counter + composite.num_tiles))
        counter += composite.num_tiles
        itp = None
        if interposer is not None:
            itp = list(range(counter, counter + num_lattice))
            counter += num_lattice
        spr = list(range(counter, counter + num_lattice))
        counter += num_lattice
        snk = list(range(counter, counter + num_lattice))
        counter += num_lattice

        rows_l, cols_l, data = [], [], []
        diagonal = {}
        rhs = {}
        ambient_k = celsius_to_kelvin(stack.ambient_c)

        def couple(a, b, g):
            rows_l.extend((a, b))
            cols_l.extend((b, a))
            data.extend((-g, -g))
            diagonal[a] = diagonal.get(a, 0.0) + g
            diagonal[b] = diagonal.get(b, 0.0) + g

        def ground(a, g):
            diagonal[a] = diagonal.get(a, 0.0) + g
            rhs[a] = rhs.get(a, 0.0) + g * ambient_k

        # ---- per-chiplet tile bookkeeping on the bounding lattice.
        lattice_of = composite.occupied_lattice_tiles()
        power = layout.power_vector()
        for flat in range(composite.num_tiles):
            if power[flat] > 0.0:
                rhs[sil[flat]] = rhs.get(sil[flat], 0.0) + power[flat]

        # ---- lateral conduction.  Die/TIM inside each chiplet island;
        # interposer/spreader/sink across the whole bounding lattice.
        def lateral_g(material, thickness, face, pitch):
            return material.thermal_conductivity * (face * thickness) / pitch

        for chiplet_index, cgrid in enumerate(composite.grids):
            offset = composite.block_offset(chiplet_index)
            for r in range(cgrid.rows):
                for c in range(cgrid.cols):
                    local = r * cgrid.cols + c
                    if c + 1 < cgrid.cols:
                        couple(
                            sil[offset + local], sil[offset + local + 1],
                            lateral_g(die.material, die.thickness, th, tw),
                        )
                        couple(
                            tim_idx[offset + local], tim_idx[offset + local + 1],
                            lateral_g(tim.material, tim.thickness, th, tw),
                        )
                    if r + 1 < cgrid.rows:
                        couple(
                            sil[offset + local], sil[offset + local + cgrid.cols],
                            lateral_g(die.material, die.thickness, tw, th),
                        )
                        couple(
                            tim_idx[offset + local],
                            tim_idx[offset + local + cgrid.cols],
                            lateral_g(tim.material, tim.thickness, tw, th),
                        )
        shared = [(spreader, spr), (sink, snk)]
        if itp is not None:
            shared.append((interposer.layer(), itp))
        for layer, nodes in shared:
            for r in range(rows):
                for c in range(cols):
                    lat = r * cols + c
                    if c + 1 < cols:
                        couple(
                            nodes[lat], nodes[lat + 1],
                            lateral_g(layer.material, layer.thickness, th, tw),
                        )
                    if r + 1 < rows:
                        couple(
                            nodes[lat], nodes[lat + cols],
                            lateral_g(layer.material, layer.thickness, tw, th),
                        )

        # ---- vertical conduction: generation-exit (t/3k) out of the
        # die, mid-plane halves elsewhere, microbumps into the
        # interposer, optional lumped TSV/board leakage.
        k_die = die.material.thermal_conductivity
        k_tim = tim.material.thermal_conductivity
        k_spr = spreader.material.thermal_conductivity
        k_snk = sink.material.thermal_conductivity
        r_die_exit = die.thickness / (3.0 * k_die * tile_area)
        r_tim_half = 0.5 * tim.thickness / (k_tim * tile_area)
        r_spr_half = 0.5 * spreader.thickness / (k_spr * tile_area)
        r_snk_half = 0.5 * sink.thickness / (k_snk * tile_area)
        g_die_tim = 1.0 / (r_die_exit + r_tim_half)
        g_tim_spr = 1.0 / (r_tim_half + r_spr_half)
        g_spr_snk = 1.0 / (r_spr_half + r_snk_half)
        for flat in range(composite.num_tiles):
            lat = int(lattice_of[flat])
            couple(sil[flat], tim_idx[flat], g_die_tim)
            couple(tim_idx[flat], spr[lat], g_tim_spr)
            if itp is not None:
                couple(sil[flat], itp[lat], interposer.microbump_conductance)
        for lat in range(num_lattice):
            couple(spr[lat], snk[lat], g_spr_snk)
        if itp is not None and interposer.board_resistance is not None:
            g_board = 1.0 / (interposer.board_resistance * num_lattice)
            for lat in range(num_lattice):
                ground(itp[lat], g_board)

        # ---- periphery: trapezoidal overhang rings per side, lateral
        # edge-tile fan-in shortened by the spreading factor,
        # vertical ring-to-ring conduction.
        spr_side = spreader.side or max(bounding_w, bounding_h)
        snk_side = sink.side or spr_side
        spr_overhang_w = max(0.0, 0.5 * (spr_side - bounding_w))
        spr_overhang_h = max(0.0, 0.5 * (spr_side - bounding_h))
        snk_overhang = max(0.0, 0.5 * (snk_side - spr_side))

        spr_area = {}
        snk_inner_area = {}
        snk_outer_area = {}
        for side in _REF_SIDES:
            horizontal = side in ("north", "south")
            inner_edge = bounding_w if horizontal else bounding_h
            overhang = spr_overhang_h if horizontal else spr_overhang_w
            if overhang > 0.0:
                spr_area[side] = 0.5 * (inner_edge + spr_side) * overhang
                snk_inner_area[side] = spr_area[side]
            if snk_overhang > 0.0:
                snk_outer_area[side] = 0.5 * (spr_side + snk_side) * snk_overhang

        spr_ring = {}
        snk_inner = {}
        snk_outer = {}
        for side in _REF_SIDES:
            if side in spr_area:
                spr_ring[side] = counter
                counter += 1
                snk_inner[side] = counter
                counter += 1
            if side in snk_outer_area:
                snk_outer[side] = counter
                counter += 1

        def boundary_lattice(side):
            if side == "north":
                return [c for c in range(cols)]
            if side == "south":
                return [(rows - 1) * cols + c for c in range(cols)]
            if side == "west":
                return [r * cols for r in range(rows)]
            return [r * cols + cols - 1 for r in range(rows)]

        for side in _REF_SIDES:
            if side not in spr_ring:
                continue
            horizontal = side in ("north", "south")
            overhang = spr_overhang_h if horizontal else spr_overhang_w
            pitch = th if horizontal else tw
            face = tw if horizontal else th
            distance = 0.5 * pitch + self.SPREADING_FACTOR * overhang
            for lat in boundary_lattice(side):
                couple(
                    spr[lat], spr_ring[side],
                    k_spr * (face * spreader.thickness) / distance,
                )
                couple(
                    snk[lat], snk_inner[side],
                    k_snk * (face * sink.thickness) / distance,
                )
        for side, area in spr_area.items():
            g = 1.0 / (
                0.5 * spreader.thickness / (k_spr * area)
                + 0.5 * sink.thickness / (k_snk * area)
            )
            couple(spr_ring[side], snk_inner[side], g)
        for side in _REF_SIDES:
            if side not in snk_outer:
                continue
            if side in snk_inner:
                horizontal = side in ("north", "south")
                overhang = spr_overhang_h if horizontal else spr_overhang_w
                distance = self.SPREADING_FACTOR * (overhang + snk_overhang)
                couple(
                    snk_inner[side], snk_outer[side],
                    k_snk * (spr_side * sink.thickness) / distance,
                )
            else:
                for lat in boundary_lattice(side):
                    face = tw if side in ("north", "south") else th
                    couple(
                        snk[lat], snk_outer[side],
                        k_snk * (face * sink.thickness) / (0.5 * snk_overhang),
                    )

        # ---- convection to ambient, distributed by footprint area.
        total_conductance = 1.0 / stack.convection_resistance
        total_area = (
            bounding_w * bounding_h
            + sum(snk_inner_area.values())
            + sum(snk_outer_area.values())
        )
        per_tile = total_conductance * (tile_area / total_area)
        for lat in range(num_lattice):
            ground(snk[lat], per_tile)
        for side, node in snk_inner.items():
            ground(node, total_conductance * snk_inner_area[side] / total_area)
        for side, node in snk_outer.items():
            ground(node, total_conductance * snk_outer_area[side] / total_area)

        # ---- assemble.
        n = counter
        self.num_nodes = n
        diag_vec = np.zeros(n)
        for node, value in diagonal.items():
            diag_vec[node] = value
        rows_l.extend(range(n))
        cols_l.extend(range(n))
        data.extend(diag_vec)
        self._matrix = sp.csc_matrix(
            sp.coo_matrix((data, (rows_l, cols_l)), shape=(n, n))
        )
        rhs_vec = np.zeros(n)
        for node, value in rhs.items():
            rhs_vec[node] = value
        self._rhs = rhs_vec
        self._silicon = np.asarray(sil)

    # ------------------------------------------------------------------

    def solve(self):
        """Solve the reference steady state; cached after the first call."""
        if self._solution_k is None:
            self._solution_k = spsolve(self._matrix, self._rhs)
            if not np.all(np.isfinite(self._solution_k)):
                raise RuntimeError(
                    "chiplet reference solve produced non-finite temperatures"
                )
        return self._solution_k

    def tile_temperatures_c(self):
        """Per-tile silicon temperatures (Celsius), global flat order."""
        return kelvin_to_celsius(self.solve()[self._silicon])

    def peak_tile_temperature_c(self):
        """Hottest tile temperature (Celsius)."""
        return float(np.max(self.tile_temperatures_c()))
