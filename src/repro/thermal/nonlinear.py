"""Temperature-dependent silicon conductivity (beyond the paper).

The compact model (like HotSpot's default) uses a constant silicon
conductivity.  Physically, silicon's lattice conductivity falls with
temperature — approximately

    k(T) = k_300 * (300 K / T) ** 1.3

over the operating range, which makes hot spots *hotter* than the
linear model predicts (the hotter the tile, the worse it conducts).

:class:`NonlinearSteadyState` resolves this with damped fixed-point
iteration: solve the linear model, evaluate each tile's conductivity
scale at its own temperature, rebuild the die conductances
(``model.with_die_conductivity_scale(...)`` — a blueprint replay that
recomputes only the scale-tagged conductances, not a from-scratch
model construction), repeat until the temperature field stops moving.
Convergence is fast (the coupling is mild); five iterations typically
reach micro-kelvin changes.

The effect on the Alpha benchmark is one to two degrees at the peak
(the die runs ~60 K above the 300 K reference, costing ~20% of its
conductivity) — visible, but well below the cooling swings under
study, which supports the paper's (and HotSpot's) use of the linear
model.  Quantified in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_positive
from repro.utils.validate import check_in_range


def silicon_conductivity_scale(temperature_k, *, reference_k=300.0, exponent=1.3):
    """Scale factor ``(T_ref / T) ** exponent`` (array-safe)."""
    temperature = np.asarray(temperature_k, dtype=float)
    if np.any(temperature <= 0.0):
        raise ValueError("temperatures must be positive (Kelvin)")
    return (reference_k / temperature) ** exponent


@dataclass
class NonlinearResult:
    """Converged nonlinear steady state.

    Attributes
    ----------
    state:
        Final :class:`~repro.thermal.model.ThermalState`.
    model:
        The rebuilt model embedding the converged conductivity scales.
    iterations:
        Fixed-point iterations performed.
    converged:
        Whether the field change fell below the tolerance.
    peak_shift_c:
        Nonlinear peak minus linear peak (positive: nonlinearity makes
        the hot spot hotter).
    scale_range:
        ``(min, max)`` of the converged conductivity scale factors.
    """

    state: object
    model: object
    iterations: int
    converged: bool
    peak_shift_c: float
    scale_range: tuple


class NonlinearSteadyState:
    """Fixed-point solver for temperature-dependent silicon conductivity.

    Parameters
    ----------
    model:
        The (linear) :class:`PackageThermalModel` to correct; its own
        conductivity scale, if any, is replaced.
    exponent:
        The ``k ~ T^-exponent`` power law (1.3 for silicon; 0 recovers
        the linear model exactly).
    reference_k:
        Temperature (K) at which the stack's nominal conductivity is
        quoted.
    damping:
        Fraction of the new scale mixed in per iteration (1 = undamped).
    """

    def __init__(self, model, *, exponent=1.3, reference_k=300.0, damping=1.0):
        self.base_model = model
        self.exponent = float(exponent)
        if self.exponent < 0.0:
            raise ValueError("exponent must be >= 0")
        self.reference_k = check_positive(reference_k, "reference_k")
        self.damping = check_in_range(
            damping, "damping", 0.0, 1.0, inclusive=(False, True)
        )

    def solve(self, current=0.0, *, max_iterations=25, tolerance_k=1.0e-6):
        """Converge the nonlinear steady state at a supply current.

        Returns a :class:`NonlinearResult`.
        """
        linear_state = self.base_model.solve(current)
        linear_peak = linear_state.peak_silicon_c
        if self.exponent == 0.0:
            return NonlinearResult(
                state=linear_state,
                model=self.base_model,
                iterations=0,
                converged=True,
                peak_shift_c=0.0,
                scale_range=(1.0, 1.0),
            )

        scale = np.ones(self.base_model.grid.num_tiles)
        silicon_k = linear_state.silicon_k
        model = self.base_model
        state = linear_state
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            target = silicon_conductivity_scale(
                silicon_k, reference_k=self.reference_k, exponent=self.exponent
            )
            scale = (1.0 - self.damping) * scale + self.damping * target
            model = self.base_model.with_die_conductivity_scale(scale)
            state = model.solve(current)
            change = float(np.max(np.abs(state.silicon_k - silicon_k)))
            silicon_k = state.silicon_k
            if change < tolerance_k:
                converged = True
                break
        return NonlinearResult(
            state=state,
            model=model,
            iterations=iterations,
            converged=converged,
            peak_shift_c=state.peak_silicon_c - linear_peak,
            scale_range=(float(np.min(scale)), float(np.max(scale))),
        )
