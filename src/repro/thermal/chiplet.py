"""2.5D multi-chiplet package layouts.

The paper models one 6 mm x 6 mm die on one package stack; this module
describes the heterogeneous packages the ROADMAP's chiplet workload
targets (3D-ICE-style 2.5D systems): N chiplets — each with its own
:class:`~repro.thermal.geometry.TileGrid`, worst-case power map and
placement — mounted on a shared silicon interposer and cooled through
one shared TIM / spreader / sink stack.

Heat leaves each chiplet two ways, mirroring a lidded 2.5D package:

* **up** through its TIM tile (or a deployed TEC) into the shared
  spreader and sink — the same per-tile vertical chain as the
  single-die package;
* **down** through its microbump field into the interposer, which
  spreads laterally across the whole package (coupling the chiplets
  thermally) and optionally leaks into the board through a lumped
  TSV/ball path.

A :class:`ChipletLayout` is pure description; the composite network is
stamped by :class:`~repro.thermal.model.CompositeThermalModel`, and
:func:`~repro.thermal.model.thermal_model_for_layout` routes
single-die layouts to the exact single-die build path (bitwise
identical blueprints) so the refactor is provably non-regressive.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.power.maps import compose_chiplet_power
from repro.thermal.geometry import CompositeGrid, TileGrid
from repro.thermal.materials import SILICON, Material
from repro.thermal.stack import Layer, PackageStack
from repro.utils import check_finite, check_positive

#: Default per-tile microbump-field conductance (W/K): a ~100-bump
#: copper field under one 0.5 mm x 0.5 mm tile (25 um bumps at 50 um
#: pitch), contact losses folded in.
DEFAULT_MICROBUMP_CONDUCTANCE = 0.5


@dataclass(frozen=True)
class ChipletSpec:
    """One chiplet of a 2.5D layout.

    Attributes
    ----------
    name:
        Identifier used in node names and reports.
    grid:
        The chiplet's silicon :class:`~repro.thermal.geometry.TileGrid`.
    power_map:
        Worst-case power per tile (W), flat row-major, stored as a
        tuple so the spec stays hashable; or a scalar total split
        evenly over the tiles.
    row_offset / col_offset:
        Placement on the shared bounding lattice, in tile units.
    """

    name: str
    grid: TileGrid
    power_map: tuple
    row_offset: int = 0
    col_offset: int = 0

    def __post_init__(self):
        power = self.power_map
        if np.ndim(power) == 0:
            total = float(power)
            if total < 0.0:
                raise ValueError("chiplet power must be non-negative")
            power = tuple([total / self.grid.num_tiles] * self.grid.num_tiles)
        else:
            power = tuple(float(p) for p in power)
            if len(power) != self.grid.num_tiles:
                raise ValueError(
                    "power_map must have length {}, got {}".format(
                        self.grid.num_tiles, len(power)
                    )
                )
            if any(p < 0.0 for p in power):
                raise ValueError("power_map entries must be non-negative")
        check_finite(np.asarray(power), "power_map")
        object.__setattr__(self, "power_map", power)
        object.__setattr__(self, "row_offset", int(self.row_offset))
        object.__setattr__(self, "col_offset", int(self.col_offset))
        if self.row_offset < 0 or self.col_offset < 0:
            raise ValueError("chiplet offsets must be non-negative")

    @property
    def total_power_w(self):
        """Sum of the chiplet's tile powers (W)."""
        return float(sum(self.power_map))


@dataclass(frozen=True)
class InterposerSpec:
    """The shared interposer and its vertical links.

    Attributes
    ----------
    material / thickness:
        Interposer slab (silicon, 100 um by default).
    microbump_conductance:
        Chiplet-tile-to-interposer vertical conductance (W/K per
        tile) through the microbump field.
    board_resistance:
        Optional lumped interposer-to-board resistance (K/W, total
        over the package) through the TSV/ball path, distributed over
        the interposer tiles by area; ``None`` models an adiabatic
        board (all heat exits through the sink).
    """

    material: Material = SILICON
    thickness: float = 100.0e-6
    microbump_conductance: float = DEFAULT_MICROBUMP_CONDUCTANCE
    board_resistance: Optional[float] = None

    def __post_init__(self):
        check_positive(self.thickness, "thickness")
        check_positive(self.microbump_conductance, "microbump_conductance")
        if self.board_resistance is not None:
            check_positive(self.board_resistance, "board_resistance")

    def layer(self):
        """The interposer as a :class:`~repro.thermal.stack.Layer`."""
        return Layer("interposer", self.material, self.thickness)


@dataclass(frozen=True)
class ChipletLayout:
    """A 2.5D package: chiplets + interposer + shared cooling stack.

    Attributes
    ----------
    chiplets:
        Tuple of :class:`ChipletSpec` (at least one, unique names,
        non-overlapping footprints, one shared tile pitch).
    stack:
        The shared :class:`~repro.thermal.stack.PackageStack` (die
        layer thickness/material describes every chiplet's silicon;
        TIM/spreader/sink are the shared cooling path).
    interposer:
        Optional :class:`InterposerSpec`; ``None`` drops the
        interposer entirely (chiplets couple only through the
        spreader, and a one-chiplet layout without an interposer is
        exactly the paper's single-die package).
    """

    chiplets: tuple
    stack: PackageStack = field(default_factory=PackageStack)
    interposer: Optional[InterposerSpec] = None

    def __post_init__(self):
        chiplets = tuple(self.chiplets)
        object.__setattr__(self, "chiplets", chiplets)
        if not chiplets:
            raise ValueError("a ChipletLayout needs at least one chiplet")
        names = [spec.name for spec in chiplets]
        if len(set(names)) != len(names):
            raise ValueError("chiplet names must be unique, got {}".format(names))
        grid = self.composite_grid()  # validates overlap / pitch
        self.stack.validate_footprints(grid.width, grid.height)

    # -- derived geometry ----------------------------------------------

    def composite_grid(self):
        """The layout's :class:`~repro.thermal.geometry.CompositeGrid`."""
        return CompositeGrid(
            grids=tuple(spec.grid for spec in self.chiplets),
            origins=tuple(
                (spec.row_offset, spec.col_offset) for spec in self.chiplets
            ),
        )

    def power_vector(self):
        """Global flat power vector over every chiplet block."""
        return compose_chiplet_power(
            self.composite_grid(),
            [np.asarray(spec.power_map) for spec in self.chiplets],
        )

    @property
    def num_chiplets(self):
        return len(self.chiplets)

    @property
    def total_power_w(self):
        """Package-level worst-case power (W)."""
        return float(sum(spec.total_power_w for spec in self.chiplets))

    def is_single_die(self):
        """True when this layout is exactly the single-die package.

        One chiplet, at the lattice origin, with no interposer — the
        composite build would add nothing the single-die build does
        not, so :func:`~repro.thermal.model.thermal_model_for_layout`
        routes such layouts through the unchanged single-die code path
        (bitwise-identical blueprints).
        """
        if self.num_chiplets != 1 or self.interposer is not None:
            return False
        spec = self.chiplets[0]
        return spec.row_offset == 0 and spec.col_offset == 0

    def with_stack(self, stack):
        """Copy of the layout on a different package stack."""
        return replace(self, stack=stack)

    def chiplet_tiles(self, chiplet):
        """Global flat tile indices of one chiplet (by index or name)."""
        if isinstance(chiplet, str):
            names = [spec.name for spec in self.chiplets]
            chiplet = names.index(chiplet)
        grid = self.composite_grid()
        block = grid.block_slice(chiplet)
        return tuple(range(block.start, block.stop))


def grown_default_stack(width, height, *, stack=None):
    """The default package stack, spreader/sink grown to cover a region.

    The calibrated :class:`~repro.thermal.stack.PackageStack` targets
    the paper's 6 mm die; a wide chiplet lattice can exceed its
    spreader footprint, which :meth:`PackageStack.validate_footprints`
    (rightly) rejects.  Starting from ``stack`` (default package when
    ``None``), grow the spreader to at least 1.5x the region's larger
    side and the sink to at least 2x the spreader, leaving an
    already-large-enough stack untouched.
    """
    stack = stack if stack is not None else PackageStack()
    region = max(float(width), float(height))
    spreader_side = stack.spreader.side or region
    sink_side = stack.sink.side or spreader_side
    spreader_side = max(spreader_side, 1.5 * region)
    sink_side = max(sink_side, 2.0 * spreader_side)
    return replace(
        stack,
        spreader=replace(stack.spreader, side=spreader_side),
        sink=replace(stack.sink, side=sink_side),
    )


def layout_from_plain(chiplets, *, stack=None, interposer=True,
                      tile_width=0.5e-3, tile_height=0.5e-3):
    """Build a :class:`ChipletLayout` from plain scenario data.

    ``chiplets`` is an iterable of ``(rows, cols, row_offset,
    col_offset, power_w)`` tuples — the hashable wire format the sweep
    scenarios and serve schemas carry.  ``interposer`` may be ``True``
    (default spec), ``False``/``None`` (no interposer) or an
    :class:`InterposerSpec`.  With ``stack=None`` the default package
    is grown to cover the lattice (:func:`grown_default_stack`), since
    wire-format callers cannot size the spreader themselves.
    """
    specs = []
    for index, entry in enumerate(chiplets):
        rows, cols, row_offset, col_offset, power_w = entry
        specs.append(
            ChipletSpec(
                name="chiplet{}".format(index),
                grid=TileGrid(
                    int(rows), int(cols),
                    tile_width=tile_width, tile_height=tile_height,
                ),
                power_map=float(power_w),
                row_offset=row_offset,
                col_offset=col_offset,
            )
        )
    if interposer is True:
        interposer = InterposerSpec()
    elif interposer is False:
        interposer = None
    if stack is None:
        grid = CompositeGrid(
            grids=tuple(spec.grid for spec in specs),
            origins=tuple(
                (spec.row_offset, spec.col_offset) for spec in specs
            ),
        )
        stack = grown_default_stack(grid.width, grid.height)
    return ChipletLayout(
        chiplets=tuple(specs),
        stack=stack,
        interposer=interposer,
    )


def demo_two_chiplet_layout(*, rows=8, cols=8, gap=2, power_w=30.0,
                            stack=None, interposer=None):
    """A compact CPU + accelerator demo: two grids separated by a gap.

    Two ``rows x cols`` chiplets side by side with ``gap`` empty
    lattice columns between them, each dissipating ``power_w``, on the
    default interposer — the layout the chiplet differential tests,
    the example and the ``repro chiplet`` CLI default to.
    """
    if stack is None:
        # Grow the calibrated spreader/sink to cover the wider package.
        width = (2 * cols + gap) * 0.5e-3
        height = rows * 0.5e-3
        stack = grown_default_stack(width, height)
    return layout_from_plain(
        (
            (rows, cols, 0, 0, power_w),
            (rows, cols, 0, cols + gap, power_w),
        ),
        stack=stack,
        interposer=InterposerSpec() if interposer is None else interposer,
    )
