"""Transient extension of the compact model (beyond the paper).

The paper restricts itself to steady state ("the thermal capacitance is
not included in our model since we are focusing on the steady state
behavior").  This module adds the capacitances back and integrates the
RC network with the unconditionally stable backward-Euler scheme:

    (C / dt + G - i D) theta_{n+1} = (C / dt) theta_n + p(i, t_{n+1})

Per-node capacitances come from the layer volumes
(``C = c_v * volume``); TEC hot/cold nodes carry the (tiny) film
capacitance split in half.  The simulator supports time-varying power
maps, which lets the examples play workload traces through the
cooling system and watch the hotspot respond.

The shifted systems are solved through the model's
:class:`~repro.thermal.session.SolveSession`: the simulator requests
the session's ``C / dt`` view, so its factorizations live in the
shared per-(shift, current) LRU cache — a closed control loop running
the same model at the same ``dt`` hits the very same entries, and
``SolverStats`` aggregates transient work alongside the steady solves.

Large models can route the integration through the view's certified
reduced-order model (``rom="auto"|"always"|"off"``, see
:mod:`repro.linalg.mor`): each step becomes a dense solve in a
~30-dimensional Krylov subspace with an a-posteriori error bound
(:attr:`TransientSimulator.certified_error_k`) guaranteed against the
full-order trajectory; the basis is shared through the view's ROM
cache, so concurrent traces over the same model warm each other up.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.mor import ReducedTransient, resolve_rom_mode
from repro.thermal.network import NodeRole
from repro.utils import celsius_to_kelvin, check_positive, kelvin_to_celsius

_GRIDDED_ROLES = {
    NodeRole.SILICON: "die",
    NodeRole.TIM: "tim",
    NodeRole.SPREADER: "spreader",
    NodeRole.SINK: "sink",
}

_PERIPHERY_ROLES = {
    NodeRole.SPREADER_PERIPHERY: "spreader",
    NodeRole.SINK_PERIPHERY: "sink",
}


def node_capacitances(model):
    """Per-node thermal capacitances (J/K) for a package model.

    Gridded layer nodes use ``c_v * tile_area * thickness``; periphery
    nodes use their stored footprint area; TEC nodes get half the film
    volume each (using the super-lattice heat capacity as a stand-in
    for the thin device stack).
    """
    from repro.thermal.materials import BISMUTH_TELLURIDE_SUPERLATTICE

    layers = {layer.name: layer for layer in model.stack.conduction_layers()}
    tile_area = model.grid.tile_area
    capacitance = np.zeros(model.num_nodes)
    for index, node in enumerate(model.network.nodes):
        if node.role in _GRIDDED_ROLES:
            layer = layers[_GRIDDED_ROLES[node.role]]
            capacitance[index] = (
                layer.material.volumetric_heat_capacity * tile_area * layer.thickness
            )
        elif node.role in _PERIPHERY_ROLES:
            layer = layers[_PERIPHERY_ROLES[node.role]]
            area = node.meta.get("area", tile_area)
            capacitance[index] = (
                layer.material.volumetric_heat_capacity * area * layer.thickness
            )
        elif node.role is NodeRole.INTERPOSER:
            interposer = getattr(model, "interposer_layer", None)
            if interposer is None:
                capacitance[index] = 1.0e-6
            else:
                capacitance[index] = (
                    interposer.material.volumetric_heat_capacity
                    * tile_area
                    * interposer.thickness
                )
        elif node.role in (NodeRole.TEC_HOT, NodeRole.TEC_COLD):
            film_volume = model.device.footprint * 1.5e-5  # ~15 um stack
            capacitance[index] = (
                0.5
                * BISMUTH_TELLURIDE_SUPERLATTICE.volumetric_heat_capacity
                * film_volume
            )
        else:
            capacitance[index] = 1.0e-6  # numerical floor for stray nodes
    return capacitance


class TransientSimulator:
    """Backward-Euler integrator over a package model's RC network.

    Parameters
    ----------
    model:
        A :class:`~repro.thermal.model.PackageThermalModel`.
    current:
        TEC supply current, fixed over the simulation (A).
    dt:
        Time step in seconds.  Backward Euler is unconditionally
        stable, so ``dt`` trades accuracy against step count only.
    initial_state:
        Starting temperatures: ``"ambient"`` (uniform ambient),
        ``"steady"`` (the steady state at ``current``), or an explicit
        Kelvin vector.
    session:
        Optional :class:`~repro.thermal.session.SolveSession` to solve
        through; defaults to the model's own session.  Passing a shared
        session lets several integrators (or a control loop) over the
        same model share one ``C / dt`` factorization cache.
    rom:
        Reduced-order mode: ``"off"`` always integrates at full order,
        ``"always"`` always goes through the view's certified ROM, and
        ``"auto"`` (the default) engages the ROM once the model has at
        least :data:`~repro.linalg.mor.ROM_AUTO_MIN_NODES` nodes —
        below that a sparse solve is already cheap.
    rom_dim / rom_tol:
        Target Krylov basis size and certified error budget (K) for
        the ROM; ``None`` takes the :mod:`repro.linalg.mor` defaults.
    """

    def __init__(
        self,
        model,
        *,
        current=0.0,
        dt=1.0e-3,
        initial_state="ambient",
        session=None,
        rom="auto",
        rom_dim=None,
        rom_tol=None,
    ):
        self.model = model
        self.current = float(current)
        self.dt = check_positive(dt, "dt")
        self.capacitance = node_capacitances(model)
        system = model.system
        self.session = session if session is not None else model.session
        self._view = self.session.view(self.capacitance / self.dt)
        self._base_power = system.power_vector(self.current)
        self._tile_power_reference = model.power_map.copy()
        self._silicon = np.asarray(model.silicon_nodes)
        self.rom_mode = rom
        self._rom = None
        self._rom_trace = None
        if resolve_rom_mode(rom, model.num_nodes):
            self._rom = self._view.reduced(dim=rom_dim, tol_kelvin=rom_tol)

        if isinstance(initial_state, str):
            if initial_state == "ambient":
                self.theta_k = np.full(
                    model.num_nodes, celsius_to_kelvin(model.stack.ambient_c)
                )
            elif initial_state == "steady":
                self.theta_k = model.solve(self.current).theta_k.copy()
            else:
                raise ValueError(
                    "initial_state must be 'ambient', 'steady' or a vector"
                )
        else:
            theta = np.asarray(initial_state, dtype=float)
            if theta.shape != (model.num_nodes,):
                raise ValueError(
                    "initial_state must have length {}, got shape {}".format(
                        model.num_nodes, theta.shape
                    )
                )
            self.theta_k = theta.copy()
        self.time_s = 0.0
        if self._rom is not None:
            self._rom_trace = ReducedTransient(self._rom, self.theta_k)

    @property
    def rom_active(self):
        """Whether steps go through the certified reduced model."""
        return self._rom_trace is not None

    @property
    def certified_error_k(self):
        """Certified max Kelvin error vs the full-order trajectory.

        Exactly ``0.0`` when the ROM is off (the trajectory *is* the
        full-order one).
        """
        if self._rom_trace is None:
            return 0.0
        return self._rom_trace.certified_error_k

    def rom_stats(self):
        """Work counters of the shared reduced model (None when off)."""
        return None if self._rom is None else self._rom.stats()

    def _power_delta(self, power_map):
        """Validate a per-tile override, return its delta vs the model."""
        power_map = np.asarray(power_map, dtype=float)
        if power_map.shape != self._tile_power_reference.shape:
            raise ValueError(
                "power_map must have length {}, got shape {}".format(
                    self._tile_power_reference.shape[0], power_map.shape
                )
            )
        return power_map - self._tile_power_reference

    def step(self, power_map=None):
        """Advance one time step; returns the new Kelvin vector.

        ``power_map`` optionally replaces the per-tile silicon powers
        for this step (flat, W); TEC Joule terms and the ambient
        contribution are unaffected.
        """
        if self._rom_trace is not None:
            extra = rows = None
            if power_map is not None:
                extra = self._power_delta(power_map)
                rows = self._silicon
            self._rom_trace.step(self.current, extra=extra, extra_rows=rows)
            self.theta_k = self._rom_trace.theta_full()
            self.time_s += self.dt
            return self.theta_k
        rhs = (self.capacitance / self.dt) * self.theta_k + self._base_power
        if power_map is not None:
            rhs[self._silicon] += self._power_delta(power_map)
        self.theta_k = self._view.solve_rhs(self.current, rhs)
        self.time_s += self.dt
        return self.theta_k

    def peak_silicon_c(self):
        """Current hottest silicon tile (Celsius)."""
        return float(kelvin_to_celsius(np.max(self.theta_k[self._silicon])))

    def run(self, steps, *, power_schedule=None, record_peak=True):
        """Integrate ``steps`` steps.

        Parameters
        ----------
        steps:
            Number of backward-Euler steps.
        power_schedule:
            Optional callable ``(step_index, time_s) -> power_map or
            None`` supplying a per-step tile power map.
        record_peak:
            When True, return the peak-temperature trace.

        Returns
        -------
        numpy.ndarray or None
            Peak silicon temperature (Celsius) after each step.
        """
        if steps < 1:
            raise ValueError("steps must be >= 1, got {}".format(steps))
        trace = np.empty(steps) if record_peak else None
        for index in range(steps):
            power_map = None
            if power_schedule is not None:
                power_map = power_schedule(index, self.time_s)
            self.step(power_map)
            if record_peak:
                trace[index] = self.peak_silicon_c()
        return trace

    def settle(self, *, tolerance_c=1.0e-3, max_steps=200_000):
        """Integrate until the peak temperature stops moving.

        Returns the number of steps taken.  Useful for verifying that
        the transient settles onto the steady-state solver's answer.
        """
        previous = self.peak_silicon_c()
        for step_index in range(1, max_steps + 1):
            self.step()
            current = self.peak_silicon_c()
            if abs(current - previous) < tolerance_c:
                return step_index
            previous = current
        raise RuntimeError(
            "transient did not settle within {} steps".format(max_steps)
        )
