"""The shared solve-session engine behind every linear solve.

Everything the paper's machinery computes reduces to solves of shifted
nodal systems

    (S + G - D_x) theta = b

where ``G`` is the assembled conductance matrix, ``S`` an optional
additive diagonal (zero for steady state, ``C / dt`` for the
backward-Euler transient systems) and ``D_x`` a Peltier diagonal —
either the shared-current form ``i D`` of Equation (4) or an arbitrary
per-device diagonal (the multi-pin generalization).  A
:class:`SolveSession` owns one assembled system together with the
solver mode, the Krylov knobs and the :class:`SolverStats`
instrumentation, and hands out one :class:`SessionView` per distinct
diagonal shift ``S``.  Each view carries the full factorization
machinery of the engine:

* a true-LRU cache of sparse LU factors keyed on *(shift, current)* —
  the shift selects the view, the exact float current the entry;
* the blocked-Woodbury ``reuse`` backend (one sparse LU of ``S + G``
  per view, dense capacitance factorizations per current);
* the ``(S + G)``-preconditioned Krylov backend with automatic direct
  fallback;
* per-view solution caches and the arbitrary-diagonal solves of
  :meth:`SessionView.solve_diagonal`.

Consumers share sessions instead of carrying private ``splu`` calls:
the steady solver *is* the session's zero-shift view
(:class:`~repro.thermal.solve.SteadyStateSolver` subclasses
:class:`SessionView`), the transient integrator and the closed control
loop share the ``C / dt`` view (so a control trace's per-quantized-
current factorizations become cache hits with real LRU eviction), and
the multi-pin optimizer routes its per-device-current solves through
:meth:`SessionView.solve_diagonal`.

Cache keys use the **exact float value** of the current (``float(i)``
equality — no quantization) and the exact bytes of diagonal vectors.
Golden-section probes at nearly identical currents are *distinct* keys
and always miss; this is deliberate, keeps replay bit-reproducible,
and is pinned by
``tests/thermal/test_solve.py::TestExactFloatCacheKey``.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass, fields

import numpy as np
import scipy.linalg
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator, splu

from repro.linalg.cholesky import NotPositiveDefiniteError, spd_factorize
from repro.linalg.krylov import KRYLOV_METHODS, krylov_solve
from repro.linalg.spd import cholesky_is_spd

#: Engine modes accepted by :class:`SolveSession` (and by
#: :class:`~repro.thermal.solve.SteadyStateSolver`).  ``cholesky``
#: behaves exactly like ``direct`` (one factorization per current,
#: LRU-cached) but factors the SPD matrix with
#: :func:`repro.linalg.cholesky.spd_factorize` — CHOLMOD when
#: scikit-sparse is installed, a symmetric-mode SuperLU otherwise.
#: ``mg`` runs multigrid-preconditioned CG: one geometric hierarchy is
#: built per view from the current-independent base ``S + G`` (see
#: :mod:`repro.linalg.multigrid`) and the Peltier term ``- i D`` is
#: applied as a matrix-free diagonal correction on the fine level, so
#: every current, round and scenario reuses the same hierarchy.
SOLVER_MODES = ("direct", "reuse", "krylov", "cholesky", "mg", "auto")

#: ``auto`` keeps the Woodbury ``reuse`` backend up to this support
#: size regardless of the node count (the dense capacitance is trivial
#: below it).
AUTO_SUPPORT_FLOOR = 64

#: ``auto`` switches to ``krylov`` once the Peltier support exceeds
#: ``AUTO_SUPPORT_COEFF * sqrt(num_nodes)``: past that point the
#: ``O((2m)^3)`` capacitance factorization outweighs the ~constant
#: iteration count of the preconditioned Krylov solve.
AUTO_SUPPORT_COEFF = 4.0

#: ``auto`` switches to the geometric-multigrid backend once the
#: system reaches this node count, regardless of support: past it the
#: assembled factorizations' superlinear fill (memory *and* time)
#: loses to the O(n) hierarchy — the 128x128 package (~66k nodes)
#: stays on the factorized backends, 256x256 (~262k nodes) goes mg.
MG_NODE_CROSSOVER = 150_000

#: Relative threshold below which the Woodbury capacitance is treated
#: as singular (current at/beyond the runaway limit ``lambda_m``).
_CAPACITANCE_RCOND = 1.0e-12

#: Capacitance solves at an unfactorized current may be answered by
#: iterative refinement against the nearest cached factorization —
#: exact on convergence (machine-precision residual), falling back to
#: a fresh factorization otherwise.  Only worthwhile once the support
#: is large enough that a factorization (``m^3/3``) clearly dominates
#: a handful of refinement sweeps (``~3 m^2`` each).
_CAP_REFINE_MIN_SUPPORT = 64

#: Relative residual demanded of a refined capacitance solve.
_CAP_REFINE_RTOL = 1.0e-13

#: Refinement sweep budget; the attempt also aborts as soon as one
#: sweep fails to halve the residual, so a poorly matched anchor
#: current costs only ~2 sweeps before the factorization fallback.
_CAP_REFINE_MAX_ITERATIONS = 15


def select_backend(num_nodes, support_size):
    """The ``auto`` heuristic: ``"reuse"``, ``"krylov"`` or ``"mg"``.

    Chooses the blocked-Woodbury ``reuse`` backend while the Peltier
    support (``2 m`` for ``m`` deployed TECs) is small — at most
    ``max(AUTO_SUPPORT_FLOOR, AUTO_SUPPORT_COEFF * sqrt(n))`` — and
    the G-preconditioned ``krylov`` backend beyond, where the dense
    ``support x support`` capacitance factorization would dominate.
    From :data:`MG_NODE_CROSSOVER` nodes on, every assembled
    factorization (including the krylov backend's base LU
    preconditioner) is superlinear in fill, so the choice flips to the
    matrix-free ``mg`` backend independent of support.
    """
    if num_nodes >= MG_NODE_CROSSOVER:
        return "mg"
    limit = max(AUTO_SUPPORT_FLOOR, AUTO_SUPPORT_COEFF * math.sqrt(num_nodes))
    return "reuse" if support_size <= limit else "krylov"


class SingularSystemError(RuntimeError):
    """Raised when the system matrix is singular or indefinite at the
    requested current — i.e. the current is at or beyond the runaway
    limit ``lambda_m`` (Theorem 1)."""


@dataclass
class SolverStats:
    """Instrumentation counters for the solve engine.

    One instance can be shared by many solvers and sessions (every
    model built by a :class:`~repro.core.problem.CoolingSystemProblem`
    reports into the problem's stats object), so the counters
    aggregate over a whole GreedyDeploy run — or a whole transient /
    control-loop / nonlinear workload.

    Attributes
    ----------
    factorizations:
        Sparse LU factorizations performed (``splu`` calls).
    cap_factorizations:
        Dense Woodbury capacitance-matrix factorizations (reuse mode;
        ``2m x 2m``, orders of magnitude cheaper than a sparse LU).
    cap_refinements / cap_refine_failures:
        Capacitance solves answered by iterative refinement against a
        nearby cached factorization instead of a fresh one, and
        attempts that aborted (slow convergence) and fell back.
    cache_hits / cache_misses / evictions:
        Per-current factorization-cache traffic.
    solves:
        ``solve`` / ``solve_rhs`` / ``solve_diagonal`` /
        ``influence_rows`` calls.
    rhs_columns:
        Total right-hand-side columns pushed through a factorization.
    solution_hits:
        ``solve`` calls answered from the per-current solution cache
        without any triangular solve.
    krylov_solves / krylov_iterations:
        Iterative (krylov-backend) solve calls and their total matrix
        applications.
    krylov_fallbacks:
        Krylov solves whose residual missed the target and fell back
        to a direct per-current LU.
    mg_hierarchies:
        Multigrid hierarchies built (``mg`` backend; one per view and
        process — the acceptance tests assert a multi-current solve
        sequence builds exactly one).
    mg_solves / mg_cycles:
        ``mg``-backend solve calls and the total multigrid cycles they
        spent (one V-cycle per preconditioned CG iteration).
    mg_fallbacks:
        ``mg`` solves whose residual missed the target and fell back
        to a direct per-current LU.
    factor_time_s / solve_time_s:
        Cumulative wall time in factorization and in solves.
    full_builds / incremental_builds:
        Package networks built from scratch vs replayed from a cached
        :class:`~repro.thermal.assembly.NetworkBlueprint`.
    assembly_time_s:
        Cumulative wall time building networks and assembling matrices.
    """

    factorizations: int = 0
    cap_factorizations: int = 0
    cap_refinements: int = 0
    cap_refine_failures: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    solves: int = 0
    rhs_columns: int = 0
    solution_hits: int = 0
    krylov_solves: int = 0
    krylov_iterations: int = 0
    krylov_fallbacks: int = 0
    mg_hierarchies: int = 0
    mg_solves: int = 0
    mg_cycles: int = 0
    mg_fallbacks: int = 0
    factor_time_s: float = 0.0
    solve_time_s: float = 0.0
    full_builds: int = 0
    incremental_builds: int = 0
    assembly_time_s: float = 0.0

    def copy(self):
        """An independent snapshot of the current counters."""
        return SolverStats(**self.as_dict())

    def diff(self, baseline):
        """Counters accumulated since ``baseline`` (an earlier copy)."""
        return SolverStats(**{
            f.name: getattr(self, f.name) - getattr(baseline, f.name)
            for f in fields(self)
        })

    def merge(self, other):
        """Fold another stats object into this one (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def cache_hit_rate(self):
        """Hit fraction of the per-current cache (0 when untouched)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self):
        """Plain-data view (JSON-representable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self):
        """Compact one-line report for CLIs and benchmarks."""
        line = (
            "{} LU + {} cap factorizations, {} solves ({} rhs cols), "
            "cache {}/{} hit ({:.0f}%), {} evictions, "
            "builds {} full + {} incremental".format(
                self.factorizations,
                self.cap_factorizations,
                self.solves,
                self.rhs_columns,
                self.cache_hits,
                self.cache_hits + self.cache_misses,
                100.0 * self.cache_hit_rate,
                self.evictions,
                self.full_builds,
                self.incremental_builds,
            )
        )
        if self.krylov_solves:
            line += ", krylov {} solves / {} iters / {} fallbacks".format(
                self.krylov_solves, self.krylov_iterations, self.krylov_fallbacks
            )
        if self.mg_solves or self.mg_hierarchies:
            line += ", mg {} hierarchies / {} solves / {} cycles / {} fallbacks".format(
                self.mg_hierarchies, self.mg_solves, self.mg_cycles,
                self.mg_fallbacks,
            )
        if self.cap_refinements or self.cap_refine_failures:
            line += ", cap refine {} ok / {} fallback".format(
                self.cap_refinements, self.cap_refine_failures
            )
        return line


@dataclass(frozen=True)
class BatchColumn:
    """Per-column record of a :meth:`SessionView.solve_batch` result.

    Attributes
    ----------
    index:
        Position of the column in the request.
    current:
        Exact float supply current of the column.
    peak_k:
        Maximum entry of the column's solution (Kelvin rise for the
        steady system).
    solution_hit:
        True when the column was answered straight from the per-current
        solution cache (power-vector batches only).
    grouped:
        Number of request columns that shared this column's
        factorization group — columns at the same exact float current
        are stacked into one multi-RHS solve, so ``grouped > 1`` marks
        a genuinely batched BLAS-3 column.
    stats:
        Plain-dict :class:`SolverStats` delta attributed to the
        column's group (columns of one group share the delta).
    """

    index: int
    current: float
    peak_k: float
    solution_hit: bool
    grouped: int
    stats: dict


@dataclass(frozen=True)
class BatchResult:
    """Stacked result of :meth:`SessionView.solve_batch`.

    ``temperatures`` is the ``(n, k)`` column-stacked solution block —
    column ``j`` answers request column ``j`` in order.  ``columns``
    carries one :class:`BatchColumn` per request column and ``stats``
    the overall :class:`SolverStats` delta of the whole batch.
    """

    temperatures: np.ndarray
    columns: tuple
    currents: tuple
    stats: dict

    def __len__(self):
        return len(self.columns)

    @property
    def peaks_k(self):
        """Per-column solution maxima as a length-``k`` array."""
        return np.array([column.peak_k for column in self.columns])


class SessionView:
    """One diagonal shift of a :class:`SolveSession`.

    A view answers solves of ``(S + G - i D) x = b`` for its fixed
    shift ``S`` (``None`` means the steady-state system ``G - i D``)
    across any number of currents, carrying the per-current LRU caches
    and backend machinery described in the module docstring.  Views
    are obtained from :meth:`SolveSession.view` — one per distinct
    shift, shared by every consumer requesting the same shift — except
    the zero-shift view, which is the model's
    :class:`~repro.thermal.solve.SteadyStateSolver` itself.

    Parameters
    ----------
    session:
        The owning :class:`SolveSession`.
    shift:
        Additive diagonal ``S`` as a dense length-``n`` vector, or
        None for the unshifted steady-state system.
    cache_size:
        Number of per-current cache entries kept (true LRU): LU
        factorizations in ``direct`` mode, dense capacitance
        factorizations in ``reuse`` mode, and solved temperature
        vectors in both.  Keys are exact float currents — see the
        module docstring.
    """

    def __init__(self, session, shift=None, cache_size=8):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1, got {}".format(cache_size))
        self.session = session
        self.system = session.system
        self.stats = session.stats
        if shift is not None:
            shift = np.ascontiguousarray(np.asarray(shift, dtype=float))
            if shift.shape != (self.system.num_nodes,):
                raise ValueError(
                    "shift must have length {}, got shape {}".format(
                        self.system.num_nodes, shift.shape
                    )
                )
        self._shift = shift
        self._shift_diag_matrix = None
        self._shifted_base = None
        self._cache_size = cache_size
        self._lu_cache = OrderedDict()
        self._solution_cache = OrderedDict()
        # Reuse/krylov shared state, built lazily on first solve.
        self._base_lu = None
        self._support = None
        self._d_support = None
        self._w = None
        self._z = None
        self._zd_matrix = None
        self._x_pair = None
        self._cap_cache = OrderedDict()
        # Arbitrary-diagonal machinery (multi-pin solves); kept apart
        # from the float-keyed scalar caches so the refinement anchor
        # search never mixes key types.
        self._diag_lu_cache = OrderedDict()
        self._diag_cap_cache = OrderedDict()
        # Reduced-order models keyed on their (dim, tol, cadence)
        # request; shared by every trace over this shift (the basis is
        # enriched in place).  Never LRU-evicted — a model is a few
        # n x r arrays, far smaller than one LU factor.
        self._reduced_cache = {}
        # The multigrid hierarchy of the mg backend: built once per
        # view from the current-independent base ``S + G`` (like the
        # reduced models, never evicted) and shared by every current —
        # the Peltier ``- i D`` term rides on top as a matrix-free
        # diagonal correction.  The integer aggregation plan is pushed
        # up to the session so sibling views skip re-aggregation.
        self._mg = None
        self._krylov_method = session.krylov_method
        self._krylov_rtol = session.krylov_rtol
        self._krylov_maxiter = session.krylov_maxiter
        self._krylov_restart = session.krylov_restart

    def __getstate__(self):
        """Pickle support: drop live factorization handles.

        ``splu`` factors wrap SuperLU objects that cannot be pickled
        and must not be shared across a ``fork``/spawn boundary (the
        serve layer's process-pool tier and any sweep worker that
        receives a warmed problem would otherwise crash).  Everything
        derived from a factorization — LU caches, the Woodbury
        influence block, solution caches, shifted-matrix scratch — is
        dropped here and rebuilt lazily on first solve in the new
        process.  Plain state (shift vector, cache capacity, Krylov
        knobs, the shared stats object) survives the round trip, so an
        unpickled view answers bit-identical solves; pinned by
        ``tests/thermal/test_session.py::TestForkSafety``.
        """
        state = self.__dict__.copy()
        state["_shift_diag_matrix"] = None
        state["_shifted_base"] = None
        state["_lu_cache"] = OrderedDict()
        state["_solution_cache"] = OrderedDict()
        state["_base_lu"] = None
        state["_support"] = None
        state["_d_support"] = None
        state["_w"] = None
        state["_z"] = None
        state["_zd_matrix"] = None
        state["_x_pair"] = None
        state["_cap_cache"] = OrderedDict()
        state["_diag_lu_cache"] = OrderedDict()
        state["_diag_cap_cache"] = OrderedDict()
        state["_reduced_cache"] = {}
        # The hierarchy itself pickles safely (its coarse-level splu
        # handle is dropped by its own __getstate__), but it is
        # factorization-scale state: drop it like the caches and
        # rebuild lazily — cheaply, since the session's aggregation
        # plan survives the round trip.
        state["_mg"] = None
        return state

    @property
    def mode(self):
        """The session's requested solver mode (see :data:`SOLVER_MODES`)."""
        return self.session.mode

    @property
    def effective_mode(self):
        """The backend actually answering solves.

        Equal to :attr:`mode` except under ``"auto"``, where the
        choice between ``"reuse"`` and ``"krylov"`` is made once per
        assembled system by :func:`select_backend` (support size vs
        node count) and shared by every view of the session.
        """
        return self.session.effective_mode

    @property
    def shift(self):
        """The view's additive diagonal (copy), or None when unshifted."""
        return None if self._shift is None else self._shift.copy()

    # ------------------------------------------------------------------
    # Shifted matrices
    # ------------------------------------------------------------------

    def _shift_diags(self):
        if self._shift_diag_matrix is None:
            self._shift_diag_matrix = sp.diags(self._shift)
        return self._shift_diag_matrix

    def _matrix(self, current):
        """``S + G - i D`` for this view's shift (CSC)."""
        matrix = self.system.system_matrix(current)
        if self._shift is None:
            return matrix
        return (self._shift_diags() + matrix).tocsc()

    def _base_matrix(self):
        """``S + G`` — the view's current-independent base matrix."""
        if self._shift is None:
            return self.system.g_matrix
        if self._shifted_base is None:
            self._shifted_base = (
                self._shift_diags() + self.system.g_matrix
            ).tocsc()
        return self._shifted_base

    def _diagonal_matrix(self, diagonal):
        """``S + G - diag(d)`` for an arbitrary per-node diagonal."""
        matrix = (self.system.g_matrix - sp.diags(diagonal)).tocsc()
        if self._shift is None:
            return matrix
        return (self._shift_diags() + matrix).tocsc()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _cache_get(self, cache, key):
        entry = cache.get(key)
        if entry is not None:
            cache.move_to_end(key)
        return entry

    def _cache_put(self, cache, key, entry):
        if len(cache) >= self._cache_size:
            cache.popitem(last=False)
            self.stats.evictions += 1
        cache[key] = entry

    # ------------------------------------------------------------------
    # Direct mode: one sparse LU per current
    # ------------------------------------------------------------------

    def _splu(self, matrix, label):
        """Factor a sparse system matrix through the mode's kernel.

        The single factorization seam of the engine: per-current
        matrices, the shared base matrix and arbitrary-diagonal
        matrices all pass through here.  ``cholesky`` mode swaps the
        general sparse LU for the SPD factorization of
        :func:`repro.linalg.cholesky.spd_factorize`; an indefinite
        matrix (current at/beyond ``lambda_m``) surfaces as the same
        :class:`SingularSystemError` the other backends raise.
        """
        start = time.perf_counter()
        try:
            if self.effective_mode == "cholesky":
                lu = spd_factorize(matrix.tocsc())
            else:
                lu = splu(matrix.tocsc())
        except (RuntimeError, NotPositiveDefiniteError) as error:
            raise SingularSystemError(
                "system matrix singular at {} (at/beyond runaway)".format(label)
            ) from error
        finally:
            self.stats.factor_time_s += time.perf_counter() - start
        self.stats.factorizations += 1
        return lu

    def _factorization(self, current):
        """The per-current LU, LRU-cached on the exact float ``current``
        (no quantization — see the module docstring)."""
        current = float(current)
        lu = self._cache_get(self._lu_cache, current)
        if lu is None:
            self.stats.cache_misses += 1
            lu = self._splu(
                self._matrix(current), "i = {} A".format(current)
            )
            self._cache_put(self._lu_cache, current, lu)
        else:
            self.stats.cache_hits += 1
        return lu

    def _apply_direct(self, current, rhs):
        lu = self._factorization(current)
        return self._timed_lu_solve(lu, rhs)

    def _timed_lu_solve(self, lu, rhs):
        start = time.perf_counter()
        x = lu.solve(rhs)
        self.stats.solve_time_s += time.perf_counter() - start
        self.stats.rhs_columns += 1 if rhs.ndim == 1 else rhs.shape[1]
        return x

    # ------------------------------------------------------------------
    # Reuse mode: factorize S + G once, blocked Woodbury per current
    # ------------------------------------------------------------------

    def _base_factorization(self):
        """The shared sparse LU of ``S + G`` (reuse preconditioner too)."""
        if self._base_lu is None:
            self._base_lu = self._splu(self._base_matrix(), "i = 0.0 A")
            support = np.flatnonzero(self.system.d_diagonal)
            self._support = support
            self._d_support = self.system.d_diagonal[support]
        return self._base_lu

    def base_factorization(self):
        """The base factorization of ``S + G`` (public accessor).

        Builds it on first call (reuse/krylov machinery).  The returned
        object answers ``.solve(rhs)`` for 1-D or ``(n, k)`` right-hand
        sides; the incremental deployment engine anchors its
        cross-round bordered solves on it.
        """
        return self._base_factorization()

    def adopt_base(self, base_solve):
        """Inject an external base-``G`` solve (cross-round reuse).

        ``base_solve`` must answer ``.solve(rhs)`` with ``G^{-1} rhs``
        for this solver's assembled system — e.g. a
        :class:`~repro.thermal.border.BorderedDeployContext` view that
        expresses this round's ``G`` as a bordered low-rank update of
        an earlier round's factorization.  A reuse-mode round seeded
        this way performs **zero** new sparse LU factorizations: the
        influence block ``W``, the base power pair and every Woodbury
        correction ride the adopted solve.

        Only meaningful on the unshifted view, in (effective) ``reuse``
        mode, and before the view has built its own base factorization.
        """
        if self._shift is not None:
            raise RuntimeError(
                "adopt_base is only available on the unshifted (steady) view"
            )
        if self.effective_mode != "reuse":
            raise RuntimeError(
                "adopt_base requires the 'reuse' backend, solver is {!r}".format(
                    self.effective_mode
                )
            )
        if self._base_lu is not None:
            raise RuntimeError("base factorization already built; cannot adopt")
        if not hasattr(base_solve, "solve"):
            raise TypeError("base_solve must expose a .solve(rhs) method")
        self._base_lu = base_solve
        support = np.flatnonzero(self.system.d_diagonal)
        self._support = support
        self._d_support = self.system.d_diagonal[support]

    def influence_block(self):
        """``(support, d_support, w, z)`` of the Woodbury engine.

        Forces the base factorization and the batched influence build
        (reuse-mode machinery) and returns the Peltier support indices,
        the support diagonal, the influence columns ``W = G^{-1} I_S``
        and ``Z = W[support]``.  The reduced runaway eigenproblem is
        ``eig(Z diag(d_S))`` — the incremental deployment engine uses
        this to compute ``lambda_m`` (and its eigenvector) with zero
        additional factorizations.
        """
        self._ensure_influence()
        if self._support.size == 0:
            empty = np.zeros((self.system.num_nodes, 0))
            return self._support, self._d_support, empty, np.zeros((0, 0))
        return self._support, self._d_support, self._w, self._z

    def _ensure_influence(self):
        """Batch-solve the Woodbury influence block ``W = G^{-1} I_S``.

        Deferred past :meth:`_base_factorization` so the krylov
        backend — which shares the base LU but never forms ``W`` —
        does not pay the ``O(n * 2m)`` memory and solve cost of the
        dense influence block on dense deployments.
        """
        lu = self._base_factorization()
        if self._w is None and self._support.size:
            rhs = np.zeros((self.system.num_nodes, self._support.size))
            rhs[self._support, np.arange(self._support.size)] = 1.0
            self._w = self._timed_lu_solve(lu, rhs)
            self._z = self._w[self._support, :]

    def _base_pair(self):
        """``G^{-1} [p_base, joule]`` — the blocked power solves.

        ``p(i) = p_base + i^2 joule`` is linear in ``(1, i^2)``, so
        this single two-column solve answers the base part of *every*
        per-current power solve; :meth:`solve` in reuse mode then pays
        only the dense Woodbury correction per current.
        """
        lu = self._base_factorization()
        if self._x_pair is None:
            rhs = np.column_stack([self.system.p_base, self.system.joule])
            self._x_pair = self._timed_lu_solve(lu, rhs)
        return self._x_pair

    def _capacitance(self, current):
        """LU factors of ``I - i d Z`` for the Woodbury correction.

        Cached per exact float current (LRU).  Raises
        :class:`SingularSystemError` when the capacitance is singular
        to working precision — ``I - i d Z`` is singular exactly when
        ``G - i D`` is, i.e. at the runaway current ``lambda_m``.
        """
        factors = self._cache_get(self._cap_cache, current)
        if factors is None:
            self.stats.cache_misses += 1
            size = self._support.size
            cap = np.eye(size) - current * self._zd()
            factors = self._cap_factorize(
                cap, "i = {} A".format(current)
            )
            self._cache_put(self._cap_cache, current, factors)
        else:
            self.stats.cache_hits += 1
        return factors

    def _cap_factorize(self, cap, label):
        """Dense-factorize a Woodbury capacitance with singularity guard."""
        factors = scipy.linalg.lu_factor(cap, check_finite=False)
        self.stats.cap_factorizations += 1
        u_diag = np.abs(np.diag(factors[0]))
        if not np.all(np.isfinite(u_diag)) or (
            u_diag.min() <= _CAPACITANCE_RCOND * max(u_diag.max(), 1.0)
        ):
            raise SingularSystemError(
                "Woodbury capacitance singular at {} "
                "(current at/beyond the runaway limit)".format(label)
            )
        return factors

    def _zd(self):
        """The dense ``diag(d_S) Z`` block (built once, reused by every
        capacitance assembly and refinement residual)."""
        if self._zd_matrix is None:
            self._zd_matrix = self._d_support[:, None] * self._z
        return self._zd_matrix

    def _cap_solve(self, current, rhs):
        """Solve ``(I - i d Z) y = rhs``, preferring cached work.

        Order of preference: an exact cached factorization at this
        current; iterative refinement against the *nearest* cached
        factorization (exact to ``_CAP_REFINE_RTOL`` on success —
        Problem 2 searches and shift-invert iterations evaluate
        tightly clustered currents, where refinement converges in a
        couple of ``m^2`` sweeps instead of a fresh ``m^3/3``
        factorization); a fresh factorization otherwise.
        """
        factors = self._cache_get(self._cap_cache, current)
        if factors is not None:
            self.stats.cache_hits += 1
            return scipy.linalg.lu_solve(factors, rhs, check_finite=False)
        if self._cap_cache and self._support.size >= _CAP_REFINE_MIN_SUPPORT:
            anchor = min(self._cap_cache, key=lambda cached: abs(cached - current))
            refined = self._cap_refine(current, anchor, rhs)
            if refined is not None:
                self.stats.cap_refinements += 1
                return refined
            self.stats.cap_refine_failures += 1
        factors = self._capacitance(current)
        return scipy.linalg.lu_solve(factors, rhs, check_finite=False)

    def _cap_refine(self, current, anchor, rhs):
        """Iterative refinement of a capacitance solve at ``current``
        against the cached factorization at ``anchor``.

        Returns the solution once the relative residual reaches
        ``_CAP_REFINE_RTOL``, or None when a sweep fails to halve the
        residual (anchor too far, or current near runaway) — the
        caller then pays a fresh factorization, so accuracy never
        degrades.
        """
        factors = self._cap_cache[anchor]
        zd = self._zd()
        rhs_norm = float(np.linalg.norm(rhs))
        if rhs_norm == 0.0:
            return np.zeros_like(rhs)
        start = time.perf_counter()
        solution = scipy.linalg.lu_solve(factors, rhs, check_finite=False)
        previous = math.inf
        outcome = None
        for _ in range(_CAP_REFINE_MAX_ITERATIONS):
            residual = rhs - solution + current * (zd @ solution)
            residual_norm = float(np.linalg.norm(residual))
            if residual_norm <= _CAP_REFINE_RTOL * rhs_norm:
                outcome = solution
                break
            if not math.isfinite(residual_norm) or residual_norm >= 0.5 * previous:
                break
            previous = residual_norm
            solution = solution + scipy.linalg.lu_solve(
                factors, residual, check_finite=False
            )
        self.stats.solve_time_s += time.perf_counter() - start
        return outcome

    def _woodbury_correct(self, current, x):
        """Apply the low-rank correction turning ``(S+G)^{-1} b`` into
        ``(S + G - i D)^{-1} b`` (``x`` may be 1-D or a column block)."""
        if current == 0.0 or self._support.size == 0:
            return x
        self._ensure_influence()
        x_support = x[self._support]
        small = self._cap_solve(
            current, current * (self._d_support * x_support.T).T
        )
        return x + self._w @ small

    def _apply_reuse(self, current, rhs):
        lu = self._base_factorization()
        x = self._timed_lu_solve(lu, rhs)
        return self._woodbury_correct(current, x)

    def _reuse_solve_power(self, current):
        """Reuse-mode fast path for the power vector: zero triangular
        solves per current thanks to the blocked base pair."""
        pair = self._base_pair()
        if current == 0.0:
            x = pair[:, 0].copy()
        else:
            x = pair[:, 0] + (current * current) * pair[:, 1]
        return self._woodbury_correct(current, x)

    # ------------------------------------------------------------------
    # Krylov mode: (S+G)-preconditioned GMRES/BiCGSTAB per current
    # ------------------------------------------------------------------

    def _apply_krylov(self, current, rhs):
        lu = self._base_factorization()
        if current == 0.0 or self._support.size == 0:
            return self._timed_lu_solve(lu, rhs)
        matrix = self._matrix(current)
        start = time.perf_counter()
        x, report = krylov_solve(
            matrix,
            rhs,
            preconditioner=lu,
            method=self._krylov_method,
            rtol=self._krylov_rtol,
            maxiter=self._krylov_maxiter,
            restart=self._krylov_restart,
        )
        self.stats.solve_time_s += time.perf_counter() - start
        self.stats.krylov_solves += 1
        self.stats.krylov_iterations += report.iterations
        if not report.converged:
            # Residual missed the target (stagnation, near-runaway
            # ill-conditioning, or an exhausted iteration budget):
            # fall back to an exact per-current factorization so the
            # iterative backend never degrades accuracy.
            self.stats.krylov_fallbacks += 1
            return self._apply_direct(current, rhs)
        self.stats.rhs_columns += 1 if rhs.ndim == 1 else rhs.shape[1]
        return x

    # ------------------------------------------------------------------
    # Multigrid mode: hierarchy-preconditioned CG, matrix-free operator
    # ------------------------------------------------------------------

    def _mg_hierarchy(self):
        """The view's multigrid hierarchy, built once and shared.

        Builds from the current-independent base ``S + G`` over the
        system's :class:`~repro.linalg.multigrid.LatticeGeometry`
        (algebraic pairwise fallback without one).  The first hierarchy
        of the session publishes its integer aggregation plan on the
        session, so hierarchies of sibling shifted views — and of
        views rebuilt after a fork — skip the aggregation pass and only
        pay the Galerkin products.
        """
        if self._mg is None:
            from repro.linalg.multigrid import MultigridHierarchy

            options = dict(self.session.mg_options or {})
            start = time.perf_counter()
            self._mg = MultigridHierarchy(
                self._base_matrix(),
                geometry=getattr(self.system, "lattice", None),
                plan=self.session._mg_plan,
                **options,
            )
            self.stats.factor_time_s += time.perf_counter() - start
            self.stats.mg_hierarchies += 1
            if self.session._mg_plan is None:
                self.session._mg_plan = self._mg.plan
        return self._mg

    def _mg_operator(self, hierarchy, diagonal=None):
        """``S + G - diag(d)`` as a matrix-free operator.

        The hierarchy applies the base operator (through its lattice
        stencil when available); the Peltier diagonal — rank ``2m`` on
        the TEC support — stays a fine-level correction, which is what
        lets one hierarchy serve every current, round and scenario.
        """
        n = self.system.num_nodes
        if diagonal is None:
            matvec = hierarchy.apply_fine
        else:
            def matvec(v):
                return hierarchy.apply_fine(v) - (diagonal * v.T).T
        return LinearOperator((n, n), matvec=matvec, dtype=float)

    def _mg_correction(self, current):
        """The per-current diagonal ``i d`` (None when zero)."""
        current = float(current)
        if current == 0.0 or not np.any(self.system.d_diagonal):
            return None
        return current * self.system.d_diagonal

    def _run_mg(self, operator, rhs, fallback):
        """One mg-preconditioned CG solve with exact direct fallback."""
        hierarchy = self._mg_hierarchy()
        cycles_before = hierarchy.cycles
        start = time.perf_counter()
        x, report = krylov_solve(
            operator,
            rhs,
            preconditioner=hierarchy.precondition,
            method="cg",
            rtol=self._krylov_rtol,
            maxiter=self._krylov_maxiter,
        )
        self.stats.solve_time_s += time.perf_counter() - start
        self.stats.mg_solves += 1
        self.stats.mg_cycles += hierarchy.cycles - cycles_before
        if not report.converged:
            # Same contract as the krylov backend: accuracy never
            # degrades — stagnation (e.g. at/beyond runaway, where the
            # operator loses definiteness and CG loses its footing)
            # falls back to an exact per-current factorization.
            self.stats.mg_fallbacks += 1
            return fallback()
        self.stats.rhs_columns += 1 if rhs.ndim == 1 else rhs.shape[1]
        return x

    def _apply_mg(self, current, rhs):
        hierarchy = self._mg_hierarchy()
        operator = self._mg_operator(
            hierarchy, self._mg_correction(current)
        )
        return self._run_mg(
            operator, rhs, lambda: self._apply_direct(current, rhs)
        )

    def _diag_mg(self, d, rhs):
        """Arbitrary-diagonal mg solve (``d`` may be None for zero)."""
        hierarchy = self._mg_hierarchy()
        operator = self._mg_operator(hierarchy, d)
        if d is None:
            fallback = lambda: self._timed_lu_solve(  # noqa: E731
                self._base_factorization(), rhs
            )
        else:
            fallback = lambda: self._diag_direct(d, rhs)  # noqa: E731
        return self._run_mg(operator, rhs, fallback)

    # ------------------------------------------------------------------
    # Backend dispatch
    # ------------------------------------------------------------------

    def _apply_inverse(self, current, rhs):
        """``(S + G - i D)^{-1} rhs`` through the effective backend.

        ``rhs`` may be 1-D or 2-D (columns are independent right-hand
        sides sharing one factorization / preconditioner).
        """
        mode = self.effective_mode
        if mode in ("direct", "cholesky"):
            return self._apply_direct(current, rhs)
        if mode == "reuse":
            return self._apply_reuse(current, rhs)
        if mode == "mg":
            return self._apply_mg(current, rhs)
        return self._apply_krylov(current, rhs)

    # ------------------------------------------------------------------
    # Public solves
    # ------------------------------------------------------------------

    def solve(self, current=0.0, *, check_definite=False):
        """Temperatures (Kelvin) at supply current ``current``.

        Solves against the steady power vector ``p(i)``; only
        physically meaningful on the unshifted view (shifted views
        answer transient systems whose right-hand side carries the
        state — use :meth:`solve_rhs` there).

        Parameters
        ----------
        current:
            TEC supply current in amperes.
        check_definite:
            When True, verify that the system matrix is positive
            definite before solving and raise
            :class:`SingularSystemError` if it is not (i.e. the current
            exceeds ``lambda_m``).  The optimizer keeps currents inside
            ``[0, lambda_m)`` itself, so the check is off by default.
        """
        current = float(current)
        if check_definite and not cholesky_is_spd(self._matrix(current)):
            raise SingularSystemError(
                "G - i D is not positive definite at i = {} A "
                "(current at/beyond the runaway limit)".format(current)
            )
        self.stats.solves += 1
        cached = self._cache_get(self._solution_cache, current)
        if cached is not None:
            self.stats.solution_hits += 1
            return cached.copy()
        if self.effective_mode == "reuse":
            theta = self._reuse_solve_power(current)
        else:
            theta = self._apply_inverse(current, self.system.power_vector(current))
        if not np.all(np.isfinite(theta)):
            raise SingularSystemError(
                "solve produced non-finite temperatures at i = {} A".format(current)
            )
        self._cache_put(self._solution_cache, current, theta.copy())
        return theta

    def solve_rhs(self, current, rhs):
        """Solve ``(S + G - i D) x = rhs`` for arbitrary right-hand sides.

        ``rhs`` may be a length-``n`` vector or an ``(n, k)`` matrix of
        ``k`` independent right-hand sides solved in one batched pass
        against the shared factorization (one BLAS-3 call in reuse
        mode).
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.system.num_nodes:
            raise ValueError(
                "rhs has length {}, system has {} nodes".format(
                    rhs.shape[0], self.system.num_nodes
                )
            )
        self.stats.solves += 1
        return self._apply_inverse(float(current), rhs)

    def solve_batch(self, currents, loads=None):
        """Batched solves across currents (and scenarios) in one call.

        The BLAS-3 kernel of the engine: ``k`` solve requests —
        column ``j`` asking for ``(S + G - i_j D)^{-1} b_j`` — are
        answered as stacked multi-RHS triangular solves instead of
        ``k`` independent vector solves.

        Parameters
        ----------
        currents:
            Sequence of ``k`` supply currents, one per column.
        loads:
            Optional ``(n, k)`` right-hand-side block, column ``j``
            paired with ``currents[j]``.  When omitted, every column
            solves against the steady power vector ``p(i_j)`` — the
            classic multi-current operating-point batch — and each
            column is answered through (and feeds) the per-current
            solution cache, so a batched solve is bit-identical to the
            serial :meth:`solve` loop.

        With explicit ``loads``, columns sharing an exact float
        current are grouped into one multi-RHS solve against that
        current's factorization; in ``reuse`` mode the *entire* block
        additionally rides a single stacked base solve
        ``(S + G)^{-1} loads`` before the per-group dense Woodbury
        corrections, so the sparse triangular work is one BLAS-3 call
        for the whole batch regardless of how many currents appear.

        Returns
        -------
        BatchResult
            ``(n, k)`` stacked solutions plus per-column records; the
            empty batch returns an ``(n, 0)`` block and no columns.
        """
        currents = [float(current) for current in currents]
        k = len(currents)
        n = self.system.num_nodes
        batch_before = self.stats.copy()
        temperatures = np.empty((n, k), dtype=float)
        columns = []
        if loads is None:
            for j, current in enumerate(currents):
                before = self.stats.copy()
                theta = self.solve(current)
                temperatures[:, j] = theta
                delta = self.stats.diff(before)
                columns.append(BatchColumn(
                    index=j,
                    current=current,
                    peak_k=float(theta.max()) if n else 0.0,
                    solution_hit=delta.solution_hits > 0,
                    grouped=1,
                    stats=delta.as_dict(),
                ))
        else:
            loads = np.asarray(loads, dtype=float)
            if loads.ndim != 2 or loads.shape != (n, k):
                raise ValueError(
                    "loads must have shape ({}, {}), got {}".format(
                        n, k, loads.shape
                    )
                )
            groups = OrderedDict()
            for j, current in enumerate(currents):
                groups.setdefault(current, []).append(j)
            base_block = None
            if self.effective_mode == "reuse" and k:
                # One stacked triangular solve answers the base part of
                # every column; the per-current work left is the dense
                # Woodbury correction of each group.
                lu = self._base_factorization()
                base_block = self._timed_lu_solve(lu, loads)
            for current, members in groups.items():
                before = self.stats.copy()
                if base_block is not None:
                    self.stats.solves += 1
                    block = self._woodbury_correct(
                        current, base_block[:, members]
                    )
                else:
                    block = self.solve_rhs(current, loads[:, members])
                delta = self.stats.diff(before).as_dict()
                for position, j in enumerate(members):
                    temperatures[:, j] = block[:, position]
                    columns.append(BatchColumn(
                        index=j,
                        current=current,
                        peak_k=float(block[:, position].max()) if n else 0.0,
                        solution_hit=False,
                        grouped=len(members),
                        stats=delta,
                    ))
            columns.sort(key=lambda column: column.index)
        return BatchResult(
            temperatures=temperatures,
            columns=tuple(columns),
            currents=tuple(currents),
            stats=self.stats.diff(batch_before).as_dict(),
        )

    def reduced(self, *, dim=None, tol_kelvin=None, check_every=None,
                max_dim=None):
        """The view's shared reduced-order model for a ROM request.

        Builds (once) and returns a
        :class:`~repro.linalg.mor.ReducedModel` — a block-Arnoldi
        moment-matched reduction of this view's backward-Euler system
        with a certified a-posteriori error bound; see the
        ``repro.linalg.mor`` module docstring.  Models are cached on
        the exact ``(dim, tol_kelvin, check_every, max_dim)`` request,
        alongside (and ride on) the view's factorization caches: the
        basis build and every certification anchor and enrichment
        restart go through :meth:`solve_rhs`, so the model inherits the
        session's backend.  Only shifted (transient) views can be
        reduced.  Traces step a shared model through
        :class:`~repro.linalg.mor.ReducedTransient`.
        """
        from repro.linalg import mor

        if self._shift is None:
            raise ValueError(
                "only shifted (transient) views can be reduced; the "
                "steady-state view has no capacitance"
            )
        key = (
            int(dim) if dim is not None else mor.DEFAULT_ROM_DIM,
            float(tol_kelvin) if tol_kelvin is not None
            else mor.DEFAULT_ROM_TOL_K,
            int(check_every) if check_every is not None
            else mor.DEFAULT_CHECK_EVERY,
            int(max_dim) if max_dim is not None else None,
        )
        model = self._reduced_cache.get(key)
        if model is None:
            model = mor.ReducedModel(
                self,
                dim=key[0],
                tol_kelvin=key[1],
                check_every=key[2],
                max_dim=key[3],
            )
            self._reduced_cache[key] = model
        return model

    def solve_diagonal(self, diagonal, rhs):
        """Solve ``(S + G - diag(d)) x = rhs`` for a per-node diagonal.

        Generalizes the shared-current form ``i D`` to an arbitrary
        Peltier diagonal ``d`` — the multi-pin engine's per-device
        currents stamp ``alpha_j i_j`` entries here.  Factorizations
        are LRU-cached on the exact bytes of ``d``.  In ``reuse`` mode
        the diagonal must be supported on the Peltier support (true
        for any per-device current vector); diagonals outside the
        support fall back to a direct factorization.
        """
        d = np.ascontiguousarray(np.asarray(diagonal, dtype=float))
        if d.shape != (self.system.num_nodes,):
            raise ValueError(
                "diagonal must have length {}, got shape {}".format(
                    self.system.num_nodes, d.shape
                )
            )
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self.system.num_nodes:
            raise ValueError(
                "rhs has length {}, system has {} nodes".format(
                    rhs.shape[0], self.system.num_nodes
                )
            )
        self.stats.solves += 1
        mode = self.effective_mode
        if mode == "mg":
            # The zero diagonal routes through mg too: the hierarchy
            # *is* this view's base solver, so no base LU is built.
            return self._diag_mg(d if np.any(d) else None, rhs)
        if not np.any(d):
            return self._timed_lu_solve(self._base_factorization(), rhs)
        if mode == "reuse":
            return self._diag_reuse(d, rhs)
        if mode == "krylov":
            return self._diag_krylov(d, rhs)
        return self._diag_direct(d, rhs)

    def _diag_direct(self, d, rhs):
        key = d.tobytes()
        lu = self._cache_get(self._diag_lu_cache, key)
        if lu is None:
            self.stats.cache_misses += 1
            lu = self._splu(self._diagonal_matrix(d), "per-device currents")
            self._cache_put(self._diag_lu_cache, key, lu)
        else:
            self.stats.cache_hits += 1
        return self._timed_lu_solve(lu, rhs)

    def _diag_reuse(self, d, rhs):
        self._ensure_influence()
        if self._support.size == 0:
            # No Peltier support but a non-zero diagonal: not a TEC
            # diagonal — answer it exactly with a direct factorization.
            return self._diag_direct(d, rhs)
        off_support = np.ones(self.system.num_nodes, dtype=bool)
        off_support[self._support] = False
        if np.any(d[off_support]):
            return self._diag_direct(d, rhs)
        lu = self._base_factorization()
        x = self._timed_lu_solve(lu, rhs)
        d_support = d[self._support]
        key = d.tobytes()
        factors = self._cache_get(self._diag_cap_cache, key)
        if factors is None:
            self.stats.cache_misses += 1
            cap = np.eye(self._support.size) - d_support[:, None] * self._z
            factors = self._cap_factorize(cap, "per-device currents")
            self._cache_put(self._diag_cap_cache, key, factors)
        else:
            self.stats.cache_hits += 1
        x_support = x[self._support]
        small = scipy.linalg.lu_solve(
            factors, (d_support * x_support.T).T, check_finite=False
        )
        return x + self._w @ small

    def _diag_krylov(self, d, rhs):
        lu = self._base_factorization()
        matrix = self._diagonal_matrix(d)
        start = time.perf_counter()
        x, report = krylov_solve(
            matrix,
            rhs,
            preconditioner=lu,
            method=self._krylov_method,
            rtol=self._krylov_rtol,
            maxiter=self._krylov_maxiter,
            restart=self._krylov_restart,
        )
        self.stats.solve_time_s += time.perf_counter() - start
        self.stats.krylov_solves += 1
        self.stats.krylov_iterations += report.iterations
        if not report.converged:
            self.stats.krylov_fallbacks += 1
            return self._diag_direct(d, rhs)
        self.stats.rhs_columns += 1 if rhs.ndim == 1 else rhs.shape[1]
        return x

    def influence_rows(self, current, node_indices):
        """Rows of ``H = (S + G - i D)^{-1}`` for the given nodes.

        Because the system matrix is symmetric, row ``k`` equals the
        solution of ``(S + G - i D) h = e_k``.  Returns an array of
        shape ``(len(node_indices), n)``; all columns share one
        factorization (batched multi-RHS solve).
        """
        n = self.system.num_nodes
        node_indices = list(node_indices)
        rhs = np.zeros((n, len(node_indices)))
        for j, k in enumerate(node_indices):
            rhs[int(k), j] = 1.0
        return self.solve_rhs(current, rhs).T

    def solver_state_bytes(self):
        """Deterministic byte count of the view's live solver state.

        Sums everything the backend holds beyond the assembled system
        (which every backend shares): sparse factor fill at 12
        bytes/nonzero (8 of value + ~4 of index), the dense Woodbury
        influence/capacitance blocks, the blocked power pair, and the
        multigrid hierarchy's coarse operators, transfers and stencil.
        A *deterministic* proxy rather than an RSS probe on purpose —
        ``tracemalloc`` cannot see SuperLU's C-heap allocations, so the
        backend benchmarks compare this accounting instead.
        """
        total = 0
        for lu in list(self._lu_cache.values()) + list(
            self._diag_lu_cache.values()
        ):
            total += _factor_bytes(lu)
        if self._base_lu is not None:
            total += _factor_bytes(self._base_lu)
        for block in (self._w, self._z, self._zd_matrix, self._x_pair):
            if block is not None:
                total += block.nbytes
        for factors in list(self._cap_cache.values()) + list(
            self._diag_cap_cache.values()
        ):
            total += factors[0].nbytes + factors[1].nbytes
        if self._mg is not None:
            total += self._mg.operator_bytes()
        return total


def _factor_bytes(factor):
    """12 bytes per stored factor nonzero (value + compressed index).

    Both factor kinds the engine produces expose their fill: SuperLU
    handles via ``.nnz`` (L + U nonzeros) and
    :class:`~repro.linalg.cholesky.CholeskyFactor` via its ``nnz``
    slot.  Adopted bordered solves (no ``nnz``) count zero — their
    memory belongs to the donor round.
    """
    nnz = getattr(factor, "nnz", None)
    return int(nnz) * 12 if nnz is not None else 0


class SolveSession:
    """Shared solve engine over one assembled system.

    Owns the assembled system, the solver-mode resolution, the Krylov
    knobs and the (optionally shared) :class:`SolverStats`, and hands
    out :class:`SessionView` objects per diagonal shift.  Views are
    cached on the exact bytes of the shift vector, so every consumer
    asking for the same ``C / dt`` diagonal shares one set of
    factorizations — the transient integrator and the closed control
    loop literally hit each other's cache entries.

    Parameters
    ----------
    system:
        An :class:`~repro.thermal.assembly.AssembledSystem`.
    mode:
        One of :data:`SOLVER_MODES` — ``"direct"``, ``"reuse"``,
        ``"krylov"``, or ``"auto"`` (resolved once per session by
        :func:`select_backend`; see :attr:`effective_mode`).
    cache_size:
        Default per-view LRU capacity (see :class:`SessionView`).
    stats:
        Optional shared :class:`SolverStats`; a private one is created
        when omitted.
    krylov_method / krylov_rtol / krylov_maxiter / krylov_restart:
        Knobs of the iterative backend.  The ``mg`` backend shares
        ``krylov_rtol`` / ``krylov_maxiter`` for its preconditioned CG
        outer iteration (``krylov_method`` / ``krylov_restart`` do not
        apply — mg always runs CG).
    mg_options:
        Optional dict of :class:`~repro.linalg.multigrid.MultigridHierarchy`
        build knobs (``coarse_size``, ``smoother``, ``sweeps``,
        ``cycle_kind``, ...) forwarded verbatim when the ``mg`` backend
        builds a view's hierarchy; ignored by the other modes.
    """

    def __init__(
        self,
        system,
        *,
        mode="direct",
        cache_size=8,
        stats=None,
        krylov_method="gmres",
        krylov_rtol=1.0e-10,
        krylov_maxiter=200,
        krylov_restart=40,
        mg_options=None,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1, got {}".format(cache_size))
        if mode not in SOLVER_MODES:
            raise ValueError(
                "mode must be one of {}, got {!r}".format(SOLVER_MODES, mode)
            )
        if krylov_method not in KRYLOV_METHODS:
            raise ValueError(
                "krylov_method must be one of {}, got {!r}".format(
                    KRYLOV_METHODS, krylov_method
                )
            )
        self.system = system
        self.mode = mode
        self.stats = stats if stats is not None else SolverStats()
        self.cache_size = cache_size
        self.krylov_method = krylov_method
        self.krylov_rtol = float(krylov_rtol)
        self.krylov_maxiter = int(krylov_maxiter)
        self.krylov_restart = int(krylov_restart)
        self.mg_options = dict(mg_options) if mg_options else None
        self._resolved_mode = None
        self._views = {}
        # Aggregation plan shared across this session's hierarchies
        # (plain integer arrays — pickles with the session, so forked
        # workers re-Galerkin without re-aggregating).
        self._mg_plan = None

    @property
    def effective_mode(self):
        """The backend answering solves (``auto`` resolved per system)."""
        if self._resolved_mode is None:
            if self.mode == "auto":
                support = int(np.count_nonzero(self.system.d_diagonal))
                self._resolved_mode = select_backend(
                    self.system.num_nodes, support
                )
            else:
                self._resolved_mode = self.mode
        return self._resolved_mode

    def view(self, shift=None, *, cache_size=None):
        """The session's view for a diagonal shift (cached).

        ``shift`` is a dense length-``n`` vector (e.g. ``C / dt``) or
        None for the steady-state view.  Views are keyed on the exact
        bytes of the shift, so equal shifts share one view — and one
        set of factorizations.  A larger ``cache_size`` request grows
        an existing view's LRU capacity (it never shrinks).
        """
        if shift is None:
            key = None
        else:
            shift = np.ascontiguousarray(np.asarray(shift, dtype=float))
            if shift.shape != (self.system.num_nodes,):
                raise ValueError(
                    "shift must have length {}, got shape {}".format(
                        self.system.num_nodes, shift.shape
                    )
                )
            key = shift.tobytes()
        view = self._views.get(key)
        if view is None:
            view = SessionView(
                self,
                shift,
                cache_size if cache_size is not None else self.cache_size,
            )
            self._views[key] = view
        elif cache_size is not None and cache_size > view._cache_size:
            view._cache_size = int(cache_size)
        return view

    def base_view(self):
        """The unshifted (steady-state) view."""
        return self.view(None)

    def solve_batch(self, currents, loads=None):
        """Batched steady-state solves — see :meth:`SessionView.solve_batch`.

        Convenience delegate to the unshifted view, so session holders
        (the serve tier's warm pools, the sweep worker) can stack
        requests without first asking for a view.
        """
        return self.base_view().solve_batch(currents, loads)

    @property
    def num_views(self):
        """Distinct shifts this session has handed out views for."""
        return len(self._views)

    def stats_snapshot(self):
        """Plain-dict copy of the session's counters.

        Safe to hand across threads and serialize as-is — the serve
        layer's ``/stats`` endpoint and the session pool report these
        without touching the live (mutable) :class:`SolverStats`.
        """
        return self.stats.as_dict()

    def cache_info(self):
        """Aggregate cache occupancy across every view (plain data).

        Counts live entries, not capacity: sparse LU factors
        (``direct`` mode and the per-view base factorization), dense
        Woodbury capacitance factors, cached solution vectors, and
        arbitrary-diagonal entries.  Serve-pool eviction decisions and
        the ``/stats`` endpoint read this snapshot.
        """
        info = {
            "views": len(self._views),
            "lu_entries": 0,
            "base_factorizations": 0,
            "cap_entries": 0,
            "solution_entries": 0,
            "diagonal_entries": 0,
            "reduced_entries": 0,
            "mg_hierarchies": 0,
        }
        for view in self._views.values():
            info["lu_entries"] += len(view._lu_cache)
            info["base_factorizations"] += 1 if view._base_lu is not None else 0
            info["cap_entries"] += len(view._cap_cache)
            info["solution_entries"] += len(view._solution_cache)
            info["diagonal_entries"] += (
                len(view._diag_lu_cache) + len(view._diag_cap_cache)
            )
            info["reduced_entries"] += len(view._reduced_cache)
            info["mg_hierarchies"] += 1 if view._mg is not None else 0
        return info
