"""Thermal material properties.

Values follow the HotSpot 4.1 defaults where the paper references them
("silicon thermal conductivity, convection, etc., were set according to
an existing thermal simulator, HotSpot 4.1") and standard handbook
values elsewhere.  Volumetric heat capacities are carried for the
transient extension; the paper itself analyses steady state only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import check_positive


@dataclass(frozen=True)
class Material:
    """An isotropic thermal material.

    Attributes
    ----------
    name:
        Human-readable identifier.
    thermal_conductivity:
        In W / (m K).
    volumetric_heat_capacity:
        In J / (m^3 K); used only by the transient extension.
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self):
        check_positive(self.thermal_conductivity, "thermal_conductivity")
        check_positive(self.volumetric_heat_capacity, "volumetric_heat_capacity")

    def conductance(self, area, length):
        """Conduction conductance ``k A / L`` of a prism of this material.

        Parameters
        ----------
        area:
            Cross-section normal to the heat flow, in m^2.
        length:
            Length along the heat flow, in m.
        """
        area = check_positive(area, "area")
        length = check_positive(length, "length")
        return self.thermal_conductivity * area / length


SILICON = Material("silicon", thermal_conductivity=100.0, volumetric_heat_capacity=1.75e6)
"""Bulk silicon at operating temperature (HotSpot default k = 100 W/mK)."""

COPPER = Material("copper", thermal_conductivity=400.0, volumetric_heat_capacity=3.55e6)
"""Copper for spreader / sink (HotSpot default k = 400 W/mK)."""

ALUMINUM = Material("aluminum", thermal_conductivity=237.0, volumetric_heat_capacity=2.42e6)
"""Aluminum, the paper's alternative spreader material."""

TIM = Material("tim", thermal_conductivity=4.0, volumetric_heat_capacity=4.0e6)
"""Thermal interface material (HotSpot default k = 4 W/mK)."""

AIR = Material("air", thermal_conductivity=0.026, volumetric_heat_capacity=1.2e3)
"""Still air, for completeness (convection is modeled as a film
coefficient, not through this record)."""

BISMUTH_TELLURIDE_SUPERLATTICE = Material(
    "Bi2Te3/Sb2Te3 superlattice",
    thermal_conductivity=1.2,
    volumetric_heat_capacity=1.2e6,
)
"""Cross-plane conductivity of the thin-film superlattice of
Chowdhury et al. (Nature Nanotech. 2009), reference [1] of the paper."""


_BY_NAME = {
    material.name: material
    for material in (SILICON, COPPER, ALUMINUM, TIM, AIR, BISMUTH_TELLURIDE_SUPERLATTICE)
}


def material_by_name(name):
    """Look up a built-in material by its ``name`` attribute."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            "unknown material {!r}; known: {}".format(name, sorted(_BY_NAME))
        ) from None
