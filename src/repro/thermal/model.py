"""The package-level compact thermal model (Section IV).

:class:`PackageThermalModel` assembles the full chip package — silicon
tiles, TIM (or TEC devices where deployed), heat spreader with
periphery, heat sink with periphery, and convection to ambient — into
the nodal system ``(G - i D) theta = p(i)`` and exposes steady-state
solves, runaway-current computation and TEC power accounting.

The layered construction mirrors HotSpot's grid model:

* every conduction layer over the die footprint is dissected into the
  same ``p x q`` tile grid; vertical conductances combine the facing
  half-layer resistances in series;
* the spreader's overhang beyond the die is modeled with four
  peripheral nodes (one per side), the sink's overhang with four inner
  (over the spreader overhang) and four outer (beyond the spreader)
  peripheral nodes;
* convection is distributed over the sink nodes by footprint area.

Models are immutable once built: changing the TEC deployment creates a
new model (:meth:`PackageThermalModel.with_tec_tiles`), which keeps the
greedy algorithm's bookkeeping trivial and the solver caches valid.
"""

from __future__ import annotations

import time

import numpy as np

from repro.linalg.runaway import runaway_current as _runaway_current
from repro.tec.materials import chowdhury_thin_film_tec
from repro.tec.stamp import stamp_tec
from repro.thermal.assembly import NetworkBlueprint, assemble
from repro.thermal.chiplet import ChipletLayout
from repro.thermal.geometry import TileGrid
from repro.thermal.network import NodeRole, ThermalNetwork
from repro.thermal.solve import SolverStats, SteadyStateSolver
from repro.thermal.stack import PackageStack
from repro.utils import check_finite, kelvin_to_celsius

_SIDES = ("north", "east", "south", "west")


class ThermalState:
    """A solved steady state of a :class:`PackageThermalModel`.

    Wraps the nodal temperature vector (Kelvin) with convenience views;
    reporting methods return Celsius, matching the paper's tables.
    """

    def __init__(self, model, current, theta_k):
        self.model = model
        self.current = float(current)
        self.theta_k = np.asarray(theta_k, dtype=float)

    @property
    def silicon_k(self):
        """Per-tile silicon temperatures (Kelvin), flat row-major."""
        return self.theta_k[self.model.silicon_nodes]

    @property
    def silicon_c(self):
        """Per-tile silicon temperatures (Celsius), flat row-major."""
        return kelvin_to_celsius(self.silicon_k)

    @property
    def silicon_grid_c(self):
        """Silicon temperatures as a ``(rows, cols)`` Celsius array."""
        return self.model.grid.to_grid(self.silicon_c)

    @property
    def peak_silicon_c(self):
        """The paper's ``theta_peak``: hottest silicon tile, Celsius."""
        return float(np.max(self.silicon_c))

    @property
    def peak_tile(self):
        """Flat index of the hottest silicon tile."""
        return int(np.argmax(self.silicon_k))

    def temperature_c(self, node):
        """Temperature of an arbitrary network node in Celsius."""
        return float(kelvin_to_celsius(self.theta_k[node]))

    def tec_face_temperatures_k(self):
        """``(theta_c, theta_h)`` arrays over deployed devices (Kelvin).

        Ordered like ``model.stamps``; empty arrays when no TEC is
        deployed.
        """
        cold = self.theta_k[self.model.cold_nodes] if self.model.cold_nodes else np.array([])
        hot = self.theta_k[self.model.hot_nodes] if self.model.hot_nodes else np.array([])
        return cold, hot

    def tec_input_power_w(self):
        """Total electrical TEC power at this state (Equation 3 summed).

        This is the ``P_TEC`` column of Table I.
        """
        if not self.model.stamps:
            return 0.0
        cold, hot = self.tec_face_temperatures_k()
        device = self.model.device
        i = self.current
        joule = device.electrical_resistance * i * i * len(self.model.stamps)
        peltier = device.seebeck * i * float(np.sum(hot - cold))
        return joule + peltier


class PackageThermalModel:
    """Compact thermal model of a chip package with optional TECs.

    Parameters
    ----------
    grid:
        The silicon :class:`~repro.thermal.geometry.TileGrid`.
    power_map:
        Worst-case power per tile (W), flat row-major, length
        ``grid.num_tiles``, non-negative.
    stack:
        :class:`~repro.thermal.stack.PackageStack`; defaults to the
        calibrated package of DESIGN.md.
    tec_tiles:
        Iterable of flat tile indices covered by TEC devices (the
        paper's ``S_TEC``).  May be empty.
    device:
        :class:`~repro.tec.materials.TecDeviceParameters`; defaults to
        the calibrated thin-film device.  The tile footprint must match
        the device footprint (Problem 1 assumes tiles the size of one
        device).
    blueprint:
        Optional :class:`~repro.thermal.assembly.NetworkBlueprint`
        recorded from a sibling model (same grid/stack/device/powers):
        the network is then replayed incrementally instead of rebuilt
        from scratch — bitwise-identical matrices, a fraction of the
        build cost.  Obtain one via :meth:`network_blueprint`.
    solver_mode / solver_cache_size:
        Engine knobs forwarded to
        :class:`~repro.thermal.solve.SteadyStateSolver` — any of
        :data:`~repro.thermal.solve.SOLVER_MODES` (``"direct"``,
        ``"reuse"``, ``"krylov"``, ``"auto"``).
    solver_stats:
        Optional shared :class:`~repro.thermal.solve.SolverStats` that
        build and solve instrumentation is reported into.
    """

    #: Effective-length factor for conduction into the lumped overhang
    #: rings; < 0.5 because heat fans out in two dimensions on its way
    #: into the ring.  Calibrated once against the fine-grid reference.
    SPREADING_FACTOR = 0.2

    def __init__(
        self,
        grid,
        power_map,
        *,
        stack=None,
        tec_tiles=(),
        device=None,
        die_conductivity_scale=None,
        blueprint=None,
        solver_mode="direct",
        solver_cache_size=8,
        solver_stats=None,
    ):
        if not isinstance(grid, TileGrid):
            raise TypeError("grid must be a TileGrid, got {!r}".format(type(grid)))
        self.grid = grid
        self.stack = stack if stack is not None else PackageStack()
        self.device = device if device is not None else chowdhury_thin_film_tec()
        power_map = check_finite(power_map, "power_map")
        if power_map.shape != (grid.num_tiles,):
            raise ValueError(
                "power_map must have length {}, got shape {}".format(
                    grid.num_tiles, power_map.shape
                )
            )
        if np.any(power_map < 0.0):
            raise ValueError("power_map entries must be non-negative")
        self.power_map = power_map.copy()

        tec_tiles = sorted({int(t) for t in tec_tiles})
        for tile in tec_tiles:
            if not 0 <= tile < grid.num_tiles:
                raise IndexError(
                    "TEC tile {} out of range [0, {})".format(tile, grid.num_tiles)
                )
        self.tec_tiles = tuple(tec_tiles)

        if die_conductivity_scale is None:
            self._die_k_scale = None
        else:
            scale = check_finite(die_conductivity_scale, "die_conductivity_scale")
            if scale.shape != (grid.num_tiles,):
                raise ValueError(
                    "die_conductivity_scale must have length {}, got shape {}".format(
                        grid.num_tiles, scale.shape
                    )
                )
            if np.any(scale <= 0.0):
                raise ValueError("die_conductivity_scale entries must be positive")
            self._die_k_scale = scale.copy()

        self._die_side_w = grid.width
        self._die_side_h = grid.height
        self.stack.validate_for_die(max(self._die_side_w, self._die_side_h))

        self._init_engine(blueprint, solver_mode, solver_cache_size, solver_stats)

    def _init_engine(self, blueprint, solver_mode, solver_cache_size, solver_stats):
        """Build (or replay) the network and boot the solve engine.

        Shared tail of the constructor; :class:`CompositeThermalModel`
        reuses it after its own geometry setup, so both model kinds
        ride one build/assemble/solver pipeline.
        """
        stats = solver_stats if solver_stats is not None else SolverStats()
        self._blueprint = blueprint
        self._solver_mode = solver_mode
        self._solver_cache_size = solver_cache_size
        build_start = time.perf_counter()
        if blueprint is None:
            self.network = ThermalNetwork()
            self.stamps = []
            self._build_network()
            stats.full_builds += 1
        else:
            self.network, self.stamps = blueprint.instantiate(
                self.tec_tiles, die_conductivity_scale=self._die_k_scale
            )
            stats.incremental_builds += 1
        self.system = assemble(
            self.network,
            self.stack.ambient_c,
            grid_shape=(self.grid.rows, self.grid.cols),
        )
        stats.assembly_time_s += time.perf_counter() - build_start
        self.solver = SteadyStateSolver(
            self.system, solver_cache_size, mode=solver_mode, stats=stats
        )

        self.silicon_nodes = self.network.indices_with_role(NodeRole.SILICON)
        self.hot_nodes = [stamp.hot_node for stamp in self.stamps]
        self.cold_nodes = [stamp.cold_node for stamp in self.stamps]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_network(self):
        net = self.network
        silicon, spreader_nodes, sink_nodes = self._build_core(
            net, set(self.tec_tiles)
        )
        for flat in self.tec_tiles:
            self.stamps.append(
                self._stamp_tile(net, flat, silicon[flat], spreader_nodes[flat])
            )
        self._build_periphery(net, silicon, spreader_nodes, sink_nodes)

    def _stamp_tile(self, net, flat, silicon_node, spreader_node):
        """Stamp one TEC device under tile ``flat`` (Figure 4).

        The die-exit / spreader-entry lumping resistances are carried
        in series with the contacts so covered and uncovered tiles see
        the same layer conventions.
        """
        die, _, spreader, _ = self.stack.conduction_layers()
        return stamp_tec(
            net,
            self.device,
            silicon_node=silicon_node,
            spreader_node=spreader_node,
            tile=flat,
            cold_series_resistance=self._die_exit_resistance(flat),
            hot_series_resistance=spreader.vertical_half_resistance(
                self.grid.tile_area
            ),
            cold_series_base=die.vertical_generation_resistance(
                self.grid.tile_area
            ),
        )

    def _die_exit_resistance(self, flat):
        """Die node-to-exit-face resistance of tile ``flat`` (t/3k)."""
        die = self.stack.conduction_layers()[0]
        r_die_exit = die.vertical_generation_resistance(self.grid.tile_area)
        if self._die_k_scale is None:
            return r_die_exit
        return r_die_exit / self._die_k_scale[flat]

    def network_blueprint(self):
        """Record a :class:`~repro.thermal.assembly.NetworkBlueprint`.

        The blueprint captures this model's deployment-independent
        build stream (every TIM tile present) plus one TEC stamp
        template per tile; sibling models for *any* deployment of the
        same grid/stack/device/powers can then be instantiated from it
        incrementally (see ``blueprint=`` in the constructor).
        """
        bp = NetworkBlueprint()
        silicon, spreader_nodes, sink_nodes = self._build_core(bp, frozenset())
        bp.mark_stamp_section()
        for flat, _, _ in self.grid.iter_tiles():
            bp.begin_stamp_template(flat)
            stamp = self._stamp_tile(bp, flat, silicon[flat], spreader_nodes[flat])
            bp.end_stamp_template(stamp)
        self._build_periphery(bp, silicon, spreader_nodes, sink_nodes)
        return bp

    def _build_core(self, net, tec_set):
        """Nodes, sources and layer conduction of the tile grid.

        ``net`` is a :class:`ThermalNetwork` or a recording
        :class:`~repro.thermal.assembly.NetworkBlueprint`; ``tec_set``
        holds the covered tiles (empty when recording a blueprint —
        coverage is applied at replay).  Returns the silicon, spreader
        and sink node lists.
        """
        grid = self.grid
        stack = self.stack
        die, tim, spreader, sink = stack.conduction_layers()
        tile_area = grid.tile_area

        silicon = [
            net.add_node("die[{}]".format(flat), NodeRole.SILICON, tile=flat)
            for flat, _, _ in grid.iter_tiles()
        ]
        tim_nodes = {}
        for flat, _, _ in grid.iter_tiles():
            if flat not in tec_set:
                tim_nodes[flat] = net.add_node(
                    "tim[{}]".format(flat), NodeRole.TIM, tile=flat
                )
        spreader_nodes = [
            net.add_node("spr[{}]".format(flat), NodeRole.SPREADER, tile=flat)
            for flat, _, _ in grid.iter_tiles()
        ]
        sink_nodes = [
            net.add_node("snk[{}]".format(flat), NodeRole.SINK, tile=flat)
            for flat, _, _ in grid.iter_tiles()
        ]

        # Tile powers.
        for flat, _, _ in grid.iter_tiles():
            if self.power_map[flat] > 0.0:
                net.add_source(silicon[flat], self.power_map[flat])

        # Lateral conduction inside each gridded layer.  Die edges
        # honour the optional per-tile conductivity scaling (two
        # half-tiles in series -> harmonic mean of the scales) and are
        # tagged with their unscaled value when ``net`` records die-
        # scale tags (blueprints replayable under any scale field).
        tag = getattr(net, "tag_die_scale", None)
        for a, b, pitch, face in grid.iter_lateral_pairs():
            base = die.lateral_conductance(face, pitch)
            value = base
            if self._die_k_scale is not None:
                sa, sb = self._die_k_scale[a], self._die_k_scale[b]
                value = base * (2.0 * sa * sb / (sa + sb))
            net.add_conductance(silicon[a], silicon[b], value)
            if tag is not None:
                tag("die_lateral", (a, b), base)
        for layer, nodes in (
            (spreader, spreader_nodes),
            (sink, sink_nodes),
        ):
            for a, b, pitch, face in grid.iter_lateral_pairs():
                net.add_conductance(
                    nodes[a], nodes[b], layer.lateral_conductance(face, pitch)
                )
        # Lateral conduction in the TIM exists only between uncovered
        # tiles (a deployed TEC replaces the whole TIM tile).
        for a, b, pitch, face in grid.iter_lateral_pairs():
            if a in tim_nodes and b in tim_nodes:
                net.add_conductance(
                    tim_nodes[a], tim_nodes[b], tim.lateral_conductance(face, pitch)
                )

        # Vertical conduction through the stack (per tile).
        # The die generates its heat internally, so its node-to-face
        # resistance uses the volume-average (t/3k) convention; the
        # passive layers use the usual mid-plane (t/2k) convention.
        tim_half = tim.vertical_half_resistance(tile_area)
        r_die_exit = die.vertical_generation_resistance(tile_area)
        g_tim_spr = 1.0 / (
            tim_half + spreader.vertical_half_resistance(tile_area)
        )
        g_spr_snk = 1.0 / (
            spreader.vertical_half_resistance(tile_area)
            + sink.vertical_half_resistance(tile_area)
        )

        for flat, _, _ in grid.iter_tiles():
            if flat in tim_nodes:
                g_die_tim = 1.0 / (self._die_exit_resistance(flat) + tim_half)
                net.add_conductance(silicon[flat], tim_nodes[flat], g_die_tim)
                if tag is not None:
                    tag("die_tim", (flat,), (r_die_exit, tim_half))
                net.add_conductance(tim_nodes[flat], spreader_nodes[flat], g_tim_spr)
            net.add_conductance(spreader_nodes[flat], sink_nodes[flat], g_spr_snk)

        return silicon, spreader_nodes, sink_nodes

    def _build_periphery(self, net, silicon, spreader_nodes, sink_nodes,
                         grid=None):
        """Spreader/sink overhang nodes and convection to ambient.

        ``grid`` is the tile grid the spreader/sink node lists are
        indexed by — the silicon grid for the single-die package; the
        bounding lattice for a composite layout (whose shared layers
        span chiplets and gaps alike).
        """
        grid = grid if grid is not None else self.grid
        stack = self.stack
        _, _, spreader, sink = stack.conduction_layers()

        die_w, die_h = self._die_side_w, self._die_side_h
        spr_side = spreader.side or max(die_w, die_h)
        snk_side = sink.side or spr_side
        spr_overhang_w = max(0.0, 0.5 * (spr_side - die_w))
        spr_overhang_h = max(0.0, 0.5 * (spr_side - die_h))
        snk_overhang = max(0.0, 0.5 * (snk_side - spr_side))

        # Trapezoidal footprints of the overhang regions (per side).
        def _trapezoid(inner_edge, outer_edge, depth):
            return 0.5 * (inner_edge + outer_edge) * depth

        spr_area = {}
        snk_inner_area = {}
        snk_outer_area = {}
        for side in _SIDES:
            horizontal = side in ("north", "south")
            inner_edge = die_w if horizontal else die_h
            overhang = spr_overhang_h if horizontal else spr_overhang_w
            if overhang > 0.0:
                spr_area[side] = _trapezoid(inner_edge, spr_side, overhang)
                snk_inner_area[side] = spr_area[side]
            if snk_overhang > 0.0:
                snk_outer_area[side] = _trapezoid(spr_side, snk_side, snk_overhang)

        spr_periphery = {}
        snk_inner = {}
        snk_outer = {}
        for side in _SIDES:
            overhang = spr_overhang_h if side in ("north", "south") else spr_overhang_w
            if overhang > 0.0:
                spr_periphery[side] = net.add_node(
                    "spr.periphery.{}".format(side),
                    NodeRole.SPREADER_PERIPHERY,
                    area=spr_area[side],
                )
                snk_inner[side] = net.add_node(
                    "snk.inner.{}".format(side),
                    NodeRole.SINK_PERIPHERY,
                    area=snk_inner_area[side],
                )
            if snk_overhang > 0.0:
                snk_outer[side] = net.add_node(
                    "snk.outer.{}".format(side),
                    NodeRole.SINK_PERIPHERY,
                    area=snk_outer_area[side],
                )

        # Spreader edge tiles -> spreader periphery (lateral copper).
        # The effective conduction length into the overhang ring is
        # shortened by the SPREADING_FACTOR to account for the 2-D
        # fan-out the lumped ring cannot represent (calibrated against
        # the fine-grid reference; see thermal/validation.py).
        for side in _SIDES:
            if side not in spr_periphery:
                continue
            horizontal = side in ("north", "south")
            overhang = spr_overhang_h if horizontal else spr_overhang_w
            pitch = grid.tile_height if horizontal else grid.tile_width
            face = grid.tile_width if horizontal else grid.tile_height
            distance = 0.5 * pitch + self.SPREADING_FACTOR * overhang
            for flat in grid.boundary_tiles(side):
                g = spreader.material.conductance(
                    face * spreader.thickness, distance
                )
                net.add_conductance(spreader_nodes[flat], spr_periphery[side], g)

        # Sink edge tiles -> sink inner periphery (lateral in the sink).
        for side in _SIDES:
            if side not in snk_inner:
                continue
            horizontal = side in ("north", "south")
            overhang = spr_overhang_h if horizontal else spr_overhang_w
            pitch = grid.tile_height if horizontal else grid.tile_width
            face = grid.tile_width if horizontal else grid.tile_height
            distance = 0.5 * pitch + self.SPREADING_FACTOR * overhang
            for flat in grid.boundary_tiles(side):
                g = sink.material.conductance(face * sink.thickness, distance)
                net.add_conductance(sink_nodes[flat], snk_inner[side], g)

        # Vertical: spreader periphery -> sink inner periphery.
        for side, area in spr_area.items():
            g = 1.0 / (
                spreader.vertical_half_resistance(area)
                + sink.vertical_half_resistance(area)
            )
            net.add_conductance(spr_periphery[side], snk_inner[side], g)

        # Lateral: sink inner periphery -> sink outer periphery.
        for side in _SIDES:
            if side not in snk_outer:
                continue
            if side in snk_inner:
                horizontal = side in ("north", "south")
                overhang = spr_overhang_h if horizontal else spr_overhang_w
                distance = self.SPREADING_FACTOR * (overhang + snk_overhang)
                face = spr_side
                g = sink.material.conductance(face * sink.thickness, distance)
                net.add_conductance(snk_inner[side], snk_outer[side], g)
            else:
                # Degenerate: spreader no larger than the die — couple
                # the outer ring straight to the sink edge tiles.
                for flat in grid.boundary_tiles(side):
                    face = (
                        grid.tile_width
                        if side in ("north", "south")
                        else grid.tile_height
                    )
                    g = sink.material.conductance(
                        face * sink.thickness, 0.5 * snk_overhang
                    )
                    net.add_conductance(sink_nodes[flat], snk_outer[side], g)

        # Convection: distribute 1 / R_convec over sink nodes by area.
        total_conductance = 1.0 / stack.convection_resistance
        total_area = grid.area + sum(snk_inner_area.values()) + sum(
            snk_outer_area.values()
        )
        per_tile = total_conductance * (grid.tile_area / total_area)
        for flat, _, _ in grid.iter_tiles():
            net.add_ground_conductance(sink_nodes[flat], per_tile)
        for side, node in snk_inner.items():
            net.add_ground_conductance(
                node, total_conductance * snk_inner_area[side] / total_area
            )
        for side, node in snk_outer.items():
            net.add_ground_conductance(
                node, total_conductance * snk_outer_area[side] / total_area
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self):
        """Size of the nodal system."""
        return self.network.num_nodes

    @property
    def session(self):
        """The model's :class:`~repro.thermal.session.SolveSession`.

        The shared factorization engine behind :attr:`solver` — the
        transient integrator, the closed control loop and the multi-pin
        engine obtain their shifted / arbitrary-diagonal views from it,
        so every consumer of this model shares one set of
        factorizations and one stats object.
        """
        return self.solver.session

    @property
    def total_chip_power_w(self):
        """Sum of the worst-case tile powers (W)."""
        return float(np.sum(self.power_map))

    def with_tec_tiles(self, tec_tiles):
        """New model with a different TEC deployment (same everything else).

        The sibling shares this model's solver configuration and stats,
        and — when available — its network blueprint, so the rebuild is
        incremental.
        """
        return PackageThermalModel(
            self.grid,
            self.power_map,
            stack=self.stack,
            tec_tiles=tec_tiles,
            device=self.device,
            die_conductivity_scale=self._die_k_scale,
            blueprint=self._blueprint,
            solver_mode=self._solver_mode,
            solver_cache_size=self._solver_cache_size,
            solver_stats=self.solver.stats,
        )

    def ensure_blueprint(self):
        """This model's blueprint, recording (and caching) it on demand.

        Returns the blueprint the model was built from, or records one
        via :meth:`network_blueprint` on first call and reuses it for
        every later sibling build.
        """
        if self._blueprint is None:
            self._blueprint = self.network_blueprint()
        return self._blueprint

    def with_die_conductivity_scale(self, die_conductivity_scale):
        """Sibling with a different per-tile die conductivity scale.

        Replays this model's (recorded-on-demand) blueprint under the
        new scale field — no from-scratch network construction, bitwise
        identical matrices (see
        :meth:`~repro.thermal.assembly.NetworkBlueprint.tag_die_scale`).
        The sibling shares this model's solver configuration and stats;
        the nonlinear fixed-point iteration rebuilds through this.
        """
        return PackageThermalModel(
            self.grid,
            self.power_map,
            stack=self.stack,
            tec_tiles=self.tec_tiles,
            device=self.device,
            die_conductivity_scale=die_conductivity_scale,
            blueprint=self.ensure_blueprint(),
            solver_mode=self._solver_mode,
            solver_cache_size=self._solver_cache_size,
            solver_stats=self.solver.stats,
        )

    def solve(self, current=0.0, *, check_definite=False):
        """Steady state at the given shared supply current.

        Returns a :class:`ThermalState`.  ``current`` must lie below the
        runaway limit ``lambda_m``; with ``check_definite=True`` this is
        verified (at the cost of a Cholesky factorization).
        """
        current = float(current)
        if current < 0.0:
            raise ValueError("current must be >= 0, got {}".format(current))
        theta = self.solver.solve(current, check_definite=check_definite)
        return ThermalState(self, current, theta)

    def solve_batch(self, currents):
        """Steady states at several supply currents in one batched solve.

        Stacks the requested operating points through
        :meth:`~repro.thermal.session.SessionView.solve_batch` — one
        batched kernel call instead of ``len(currents)`` independent
        solves — and returns a list of :class:`ThermalState`, one per
        current in order.  Each state is bit-identical to the serial
        ``solve(current)`` result.
        """
        currents = [float(current) for current in currents]
        for current in currents:
            if current < 0.0:
                raise ValueError("current must be >= 0, got {}".format(current))
        batch = self.solver.solve_batch(currents)
        return [
            ThermalState(self, current, batch.temperatures[:, j].copy())
            for j, current in enumerate(currents)
        ]

    def peak_silicon_c(self, current=0.0):
        """Hottest silicon tile temperature (Celsius) at ``current``."""
        return self.solve(current).peak_silicon_c

    def matrices(self):
        """The assembled ``(G, d_diagonal, p_base, joule)`` quadruple."""
        system = self.system
        return system.g_matrix, system.d_diagonal, system.p_base, system.joule

    def runaway_current(self, method="eigen", **kwargs):
        """The runaway limit ``lambda_m`` of this deployment (Theorem 1).

        Returns a :class:`~repro.linalg.runaway.RunawayCurrent`;
        ``math.inf`` when no TEC is deployed (``D = 0``).
        """
        return _runaway_current(
            self.system.g_matrix, self.system.d_diagonal, method=method, **kwargs
        )


class CompositeThermalModel(PackageThermalModel):
    """Compact thermal model of a 2.5D multi-chiplet package.

    Stamps a :class:`~repro.thermal.chiplet.ChipletLayout` — N chiplet
    tile grids, the shared interposer with microbump vertical links and
    lateral spreading, and the shared TIM/spreader/sink cooling stack —
    into the same node/conductance network machinery as the single-die
    :class:`PackageThermalModel`, so every downstream subsystem
    (blueprint replay, :class:`~repro.thermal.session.SolveSession`
    caching, the mg hierarchy, GreedyDeploy, sweep and serve) works on
    composite models unchanged.

    Indexing conventions:

    * silicon tiles (power maps, ``tec_tiles``, the ``silicon_nodes``
      ordering, everything GreedyDeploy touches) use the **global**
      flat index of the layout's
      :class:`~repro.thermal.geometry.CompositeGrid` — per-chiplet
      contiguous row-major blocks;
    * the shared interposer/spreader/sink layers are gridded over the
      **bounding lattice** (chiplet footprints plus the gaps between
      them), which is also the ``(rows, cols)`` shape handed to the
      multigrid backend — node ``tile`` metadata carries bounding
      lattice indices so the mg stencil sees one coherent lattice.

    Use :func:`thermal_model_for_layout` rather than constructing this
    directly: single-die layouts must route through
    :class:`PackageThermalModel` itself (the exact code path the paper
    package takes today, bitwise-identical blueprints).
    """

    def __init__(
        self,
        layout,
        *,
        tec_tiles=(),
        device=None,
        blueprint=None,
        solver_mode="direct",
        solver_cache_size=8,
        solver_stats=None,
    ):
        if not isinstance(layout, ChipletLayout):
            raise TypeError(
                "layout must be a ChipletLayout, got {!r}".format(type(layout))
            )
        self.layout = layout
        self.grid = layout.composite_grid()
        self.stack = layout.stack
        self.device = device if device is not None else chowdhury_thin_film_tec()
        self.power_map = layout.power_vector()

        tec_tiles = sorted({int(t) for t in tec_tiles})
        for tile in tec_tiles:
            if not 0 <= tile < self.grid.num_tiles:
                raise IndexError(
                    "TEC tile {} out of range [0, {})".format(
                        tile, self.grid.num_tiles
                    )
                )
        self.tec_tiles = tuple(tec_tiles)
        self._die_k_scale = None

        self._bounding = self.grid.bounding_grid()
        self._die_side_w = self.grid.width
        self._die_side_h = self.grid.height
        self.stack.validate_footprints(self._die_side_w, self._die_side_h)

        self._init_engine(blueprint, solver_mode, solver_cache_size, solver_stats)

    @property
    def interposer_layer(self):
        """The interposer :class:`~repro.thermal.stack.Layer` or None."""
        spec = self.layout.interposer
        return spec.layer() if spec is not None else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_network(self):
        net = self.network
        silicon, spreader_nodes, sink_nodes = self._build_composite_core(
            net, set(self.tec_tiles)
        )
        for flat in self.tec_tiles:
            self.stamps.append(
                self._stamp_tile(
                    net, flat, silicon[flat],
                    spreader_nodes[self.grid.lattice_index(flat)],
                )
            )
        self._build_periphery(
            net, silicon, spreader_nodes, sink_nodes, grid=self._bounding
        )

    def network_blueprint(self):
        """Record the composite build as a replayable blueprint.

        Same contract as the single-die
        :meth:`PackageThermalModel.network_blueprint`: the stream is
        recorded with every TIM tile present plus one TEC stamp
        template per **global** tile, and any deployment of the same
        layout replays bitwise-identically.
        """
        bp = NetworkBlueprint()
        silicon, spreader_nodes, sink_nodes = self._build_composite_core(
            bp, frozenset()
        )
        bp.mark_stamp_section()
        for flat in range(self.grid.num_tiles):
            bp.begin_stamp_template(flat)
            stamp = self._stamp_tile(
                bp, flat, silicon[flat],
                spreader_nodes[self.grid.lattice_index(flat)],
            )
            bp.end_stamp_template(stamp)
        self._build_periphery(
            bp, silicon, spreader_nodes, sink_nodes, grid=self._bounding
        )
        return bp

    def _stamp_tile(self, net, flat, silicon_node, spreader_node):
        """Stamp one TEC under **global** tile ``flat``.

        Identical series-resistance lumping to the single-die stamp;
        the node metadata additionally carries the bounding-lattice
        placement so the mg stencil keeps its coherent tile grid.
        """
        die, _, spreader, _ = self.stack.conduction_layers()
        return stamp_tec(
            net,
            self.device,
            silicon_node=silicon_node,
            spreader_node=spreader_node,
            tile=flat,
            lattice_tile=self.grid.lattice_index(flat),
            cold_series_resistance=self._die_exit_resistance(flat),
            hot_series_resistance=spreader.vertical_half_resistance(
                self.grid.tile_area
            ),
            cold_series_base=die.vertical_generation_resistance(
                self.grid.tile_area
            ),
        )

    def _build_composite_core(self, net, tec_set):
        """Nodes, sources and layer conduction of the composite stack.

        Per chiplet: silicon tiles with their power sources, TIM tiles
        (where no TEC covers them), lateral die/TIM conduction, and the
        per-tile vertical chain die -> TIM -> spreader.  Shared over
        the bounding lattice: interposer (with microbump links up to
        each chiplet tile and optional TSV/board leakage), spreader and
        sink layers with lateral conduction across chiplets and gaps.
        Returns ``(silicon, spreader_nodes, sink_nodes)`` — silicon
        indexed by global flat, the shared layers by bounding flat.
        """
        grid = self.grid
        layout = self.layout
        bounding = self._bounding
        stack = self.stack
        die, tim, spreader, sink = stack.conduction_layers()
        interposer = self.interposer_layer
        tile_area = grid.tile_area
        lattice_of = grid.occupied_lattice_tiles()

        silicon = []
        for flat, chiplet, _, _ in grid.iter_tiles():
            name = layout.chiplets[chiplet].name
            silicon.append(
                net.add_node(
                    "die[{}:{}]".format(name, flat),
                    NodeRole.SILICON,
                    tile=int(lattice_of[flat]),
                    chiplet=chiplet,
                )
            )
        tim_nodes = {}
        for flat, chiplet, _, _ in grid.iter_tiles():
            if flat not in tec_set:
                name = layout.chiplets[chiplet].name
                tim_nodes[flat] = net.add_node(
                    "tim[{}:{}]".format(name, flat),
                    NodeRole.TIM,
                    tile=int(lattice_of[flat]),
                    cover_tile=flat,
                    chiplet=chiplet,
                )
        interposer_nodes = None
        if interposer is not None:
            interposer_nodes = [
                net.add_node(
                    "itp[{}]".format(lat), NodeRole.INTERPOSER, tile=lat
                )
                for lat, _, _ in bounding.iter_tiles()
            ]
        spreader_nodes = [
            net.add_node("spr[{}]".format(lat), NodeRole.SPREADER, tile=lat)
            for lat, _, _ in bounding.iter_tiles()
        ]
        sink_nodes = [
            net.add_node("snk[{}]".format(lat), NodeRole.SINK, tile=lat)
            for lat, _, _ in bounding.iter_tiles()
        ]

        # Tile powers.
        for flat in range(grid.num_tiles):
            if self.power_map[flat] > 0.0:
                net.add_source(silicon[flat], self.power_map[flat])

        # Lateral conduction: die and TIM within each chiplet only
        # (chiplets are physically separate islands of silicon)...
        tag = getattr(net, "tag_die_scale", None)
        for chiplet, cgrid in enumerate(grid.grids):
            offset = grid.block_offset(chiplet)
            for a, b, pitch, face in cgrid.iter_lateral_pairs():
                base = die.lateral_conductance(face, pitch)
                net.add_conductance(silicon[offset + a], silicon[offset + b], base)
                if tag is not None:
                    tag("die_lateral", (offset + a, offset + b), base)
        # ... the shared layers across the whole bounding lattice,
        # gaps included — this is the lateral interposer/spreader
        # spreading that couples the chiplets.
        shared_layers = [(spreader, spreader_nodes), (sink, sink_nodes)]
        if interposer_nodes is not None:
            shared_layers.insert(0, (interposer, interposer_nodes))
        for layer, nodes in shared_layers:
            for a, b, pitch, face in bounding.iter_lateral_pairs():
                net.add_conductance(
                    nodes[a], nodes[b], layer.lateral_conductance(face, pitch)
                )
        for chiplet, cgrid in enumerate(grid.grids):
            offset = grid.block_offset(chiplet)
            for a, b, pitch, face in cgrid.iter_lateral_pairs():
                ga, gb = offset + a, offset + b
                if ga in tim_nodes and gb in tim_nodes:
                    net.add_conductance(
                        tim_nodes[ga], tim_nodes[gb],
                        tim.lateral_conductance(face, pitch),
                    )

        # Vertical conduction.  Chiplet tiles follow the single-die
        # conventions exactly (t/3k generation exit, mid-plane halves);
        # the microbump field links each silicon tile down into the
        # interposer, and spreader -> sink spans the full lattice.
        tim_half = tim.vertical_half_resistance(tile_area)
        r_die_exit = die.vertical_generation_resistance(tile_area)
        g_tim_spr = 1.0 / (
            tim_half + spreader.vertical_half_resistance(tile_area)
        )
        g_spr_snk = 1.0 / (
            spreader.vertical_half_resistance(tile_area)
            + sink.vertical_half_resistance(tile_area)
        )

        for flat in range(grid.num_tiles):
            lat = int(lattice_of[flat])
            if flat in tim_nodes:
                g_die_tim = 1.0 / (self._die_exit_resistance(flat) + tim_half)
                net.add_conductance(silicon[flat], tim_nodes[flat], g_die_tim)
                if tag is not None:
                    tag("die_tim", (flat,), (r_die_exit, tim_half))
                net.add_conductance(
                    tim_nodes[flat], spreader_nodes[lat], g_tim_spr
                )
            if interposer_nodes is not None:
                net.add_conductance(
                    silicon[flat],
                    interposer_nodes[lat],
                    layout.interposer.microbump_conductance,
                )
        for lat in range(bounding.num_tiles):
            net.add_conductance(spreader_nodes[lat], sink_nodes[lat], g_spr_snk)

        # Optional lumped TSV/ball path from the interposer into the
        # board, distributed uniformly over the interposer tiles.
        if (
            interposer_nodes is not None
            and layout.interposer.board_resistance is not None
        ):
            g_board = 1.0 / (
                layout.interposer.board_resistance * bounding.num_tiles
            )
            for lat in range(bounding.num_tiles):
                net.add_ground_conductance(interposer_nodes[lat], g_board)

        return silicon, spreader_nodes, sink_nodes

    # ------------------------------------------------------------------
    # Siblings
    # ------------------------------------------------------------------

    def with_tec_tiles(self, tec_tiles):
        """Sibling composite model with a different TEC deployment."""
        return CompositeThermalModel(
            self.layout,
            tec_tiles=tec_tiles,
            device=self.device,
            blueprint=self._blueprint,
            solver_mode=self._solver_mode,
            solver_cache_size=self._solver_cache_size,
            solver_stats=self.solver.stats,
        )

    def with_die_conductivity_scale(self, die_conductivity_scale):
        raise NotImplementedError(
            "per-tile die conductivity scaling is not supported on "
            "composite chiplet models yet"
        )

    def tiles_by_chiplet(self, tiles=None):
        """Group global flat tile indices by chiplet name.

        ``tiles`` defaults to this model's TEC deployment; the result
        maps chiplet name to a sorted tuple of that chiplet's tiles —
        the per-chiplet placement view of a composite deployment.
        """
        tiles = self.tec_tiles if tiles is None else tiles
        groups = {spec.name: [] for spec in self.layout.chiplets}
        for tile in tiles:
            chiplet = self.grid.chiplet_of(int(tile))
            groups[self.layout.chiplets[chiplet].name].append(int(tile))
        return {name: tuple(sorted(ts)) for name, ts in groups.items()}


def thermal_model_for_layout(layout, **kwargs):
    """The thermal model of a :class:`~repro.thermal.chiplet.ChipletLayout`.

    Routes single-die layouts (one chiplet at the origin, no
    interposer) through :class:`PackageThermalModel` — the **exact**
    code path a plain grid/power-map build takes, so the blueprint is
    bitwise identical to today's single-die path — and everything else
    through :class:`CompositeThermalModel`.  Keyword arguments
    (``tec_tiles``, ``device``, ``blueprint``, ``solver_mode``,
    ``solver_cache_size``, ``solver_stats``) pass through unchanged.
    """
    if not isinstance(layout, ChipletLayout):
        raise TypeError(
            "layout must be a ChipletLayout, got {!r}".format(type(layout))
        )
    if layout.is_single_die():
        spec = layout.chiplets[0]
        return PackageThermalModel(
            spec.grid,
            np.asarray(spec.power_map),
            stack=layout.stack,
            **kwargs,
        )
    return CompositeThermalModel(layout, **kwargs)
