"""HotSpot power-trace (``.ptrace``) reading and writing.

Format: a header line of whitespace-separated unit names, then one
line per sampling interval with that many per-unit power values in
watts.  This is the format the paper's flow produces from M5 + Wattch
before reducing to worst-case powers.
"""

from __future__ import annotations

import numpy as np


def write_ptrace(path, unit_names, powers, *, header_comment=None):
    """Write a power trace.

    Parameters
    ----------
    path:
        Output file.
    unit_names:
        Column names.
    powers:
        Array-like of shape ``(steps, units)`` in watts.
    header_comment:
        Optional ``#`` comment line written first.
    """
    unit_names = [str(name) for name in unit_names]
    array = np.asarray(powers, dtype=float)
    if array.ndim != 2 or array.shape[1] != len(unit_names):
        raise ValueError(
            "powers must have shape (steps, {}), got {}".format(
                len(unit_names), array.shape
            )
        )
    if np.any(~np.isfinite(array)) or np.any(array < 0.0):
        raise ValueError("powers must be finite and non-negative")
    lines = []
    if header_comment:
        lines.append("# {}".format(header_comment))
    lines.append("\t".join(unit_names))
    for row in array:
        lines.append("\t".join("{:.6f}".format(value) for value in row))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


def read_ptrace(path):
    """Read a power trace.

    Returns
    -------
    (unit_names, powers):
        The column names and a float array of shape ``(steps, units)``.
    """
    unit_names = None
    rows = []
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if unit_names is None:
                unit_names = fields
                continue
            if len(fields) != len(unit_names):
                raise ValueError(
                    "{}:{}: expected {} values, got {}".format(
                        path, line_number, len(unit_names), len(fields)
                    )
                )
            try:
                rows.append([float(f) for f in fields])
            except ValueError as error:
                raise ValueError(
                    "{}:{}: non-numeric power value".format(path, line_number)
                ) from error
    if unit_names is None:
        raise ValueError("{}: empty power trace".format(path))
    if not rows:
        raise ValueError("{}: header but no samples".format(path))
    return unit_names, np.asarray(rows)


def trace_to_ptrace(path, floorplan, trace, nominal_powers, *, static_fraction=0.3):
    """Write a :class:`~repro.power.workloads.WorkloadTrace` as ``.ptrace``."""
    series = trace.unit_power_series(nominal_powers, static_fraction=static_fraction)
    write_ptrace(
        path,
        trace.unit_names,
        series,
        header_comment="workload {!r} over floorplan with {} units".format(
            trace.workload, len(floorplan.units)
        ),
    )
