"""JSON serialization of benchmark rows, deployments and sweep reports.

Archives Table-I runs so different calibrations / code versions can be
diffed, and lets external tooling consume the reproduction's outputs.
Sweep reports (``repro.sweep``) round-trip losslessly: every record in
a :class:`~repro.sweep.report.SweepReport` is plain data by design.
"""

from __future__ import annotations

import dataclasses
import json

from repro.core.report import BenchmarkRow

_SCHEMA_VERSION = 1


def _load_document(source, kind):
    """Parse a path or JSON string and check the document ``kind``."""
    if isinstance(source, str) and source.lstrip().startswith("{"):
        document = json.loads(source)
    else:
        with open(source) as handle:
            document = json.load(handle)
    if document.get("kind") != kind:
        raise ValueError(
            "not a {} document (kind={!r})".format(kind, document.get("kind"))
        )
    if document.get("schema") != _SCHEMA_VERSION:
        raise ValueError(
            "unsupported schema version {!r}".format(document.get("schema"))
        )
    return document


def rows_to_json(rows, path=None, *, metadata=None):
    """Serialize :class:`BenchmarkRow` objects to JSON.

    Parameters
    ----------
    rows:
        Iterable of rows.
    path:
        When given, write the JSON there; the document string is
        returned either way.
    metadata:
        Optional dict merged into the document header (e.g. git rev,
        calibration tag).
    """
    document = {
        "schema": _SCHEMA_VERSION,
        "kind": "table1-rows",
        "rows": [dataclasses.asdict(row) for row in rows],
    }
    if metadata:
        document["metadata"] = dict(metadata)
    text = json.dumps(document, indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text


def rows_from_json(source):
    """Load rows written by :func:`rows_to_json`.

    ``source`` is a path or a JSON string (detected by content).
    """
    document = _load_document(source, "table1-rows")
    return [BenchmarkRow(**row) for row in document["rows"]]


def sweep_report_to_json(report, path=None, *, metadata=None):
    """Serialize a :class:`~repro.sweep.report.SweepReport` to JSON.

    Same conventions as :func:`rows_to_json`: the document string is
    returned, and also written to ``path`` when given.
    """
    document = {
        "schema": _SCHEMA_VERSION,
        "kind": "sweep-report",
        "report": dataclasses.asdict(report),
    }
    if metadata:
        document["metadata"] = dict(metadata)
    text = json.dumps(document, indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text


def sweep_report_from_json(source):
    """Load a report written by :func:`sweep_report_to_json`.

    ``source`` is a path or a JSON string (detected by content).
    Returns a fully reconstructed
    :class:`~repro.sweep.report.SweepReport`.
    """
    from repro.sweep.report import ScenarioError, ScenarioResult, SweepReport

    document = _load_document(source, "sweep-report")
    payload = document["report"]
    return SweepReport(
        spec_name=payload["spec_name"],
        backend=payload["backend"],
        workers=payload["workers"],
        results=tuple(ScenarioResult(**r) for r in payload["results"]),
        errors=tuple(ScenarioError(**e) for e in payload["errors"]),
        wall_time_s=payload["wall_time_s"],
        scenario_time_s=payload["scenario_time_s"],
        metadata=payload.get("metadata", {}),
    )


def bench_report_to_json(name, entries, path=None, *, metadata=None):
    """Serialize benchmark measurements to the shared ``BENCH_*.json`` schema.

    Every benchmark in ``benchmarks/`` emits this document shape at the
    repo root (``BENCH_backends.json``, ``BENCH_solver.json``,
    ``BENCH_sweep.json``) so the perf trajectory can be tracked across
    commits with one parser.

    Parameters
    ----------
    name:
        Benchmark identifier (e.g. ``"backends"``).
    entries:
        Iterable of plain dicts — one measurement each (workload
        descriptor, wall-clock seconds, derived ratios ...).  Values
        must be JSON-representable.
    path:
        When given, write the JSON there; the document string is
        returned either way.
    metadata:
        Optional dict merged into the document header (machine info,
        tool version ...).
    """
    document = {
        "schema": _SCHEMA_VERSION,
        "kind": "bench-report",
        "name": str(name),
        "entries": [dict(entry) for entry in entries],
    }
    if metadata:
        document["metadata"] = dict(metadata)
    text = json.dumps(document, indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text


def bench_report_from_json(source):
    """Load a benchmark document written by :func:`bench_report_to_json`.

    ``source`` is a path or a JSON string (detected by content).
    Returns ``(name, entries, metadata)``.
    """
    document = _load_document(source, "bench-report")
    return (
        document["name"],
        list(document["entries"]),
        document.get("metadata", {}),
    )


def deployment_to_dict(result):
    """Flatten a :class:`~repro.core.deploy.DeploymentResult` to plain data.

    Only JSON-representable fields are kept (models and problems are
    referenced by name).
    """
    return {
        "problem": getattr(result.problem, "name", None),
        "feasible": bool(result.feasible),
        "tec_tiles": list(result.tec_tiles),
        "num_tecs": result.num_tecs,
        "current_a": float(result.current),
        "peak_c": float(result.peak_c),
        "no_tec_peak_c": float(result.no_tec_peak_c),
        "cooling_swing_c": float(result.cooling_swing_c),
        "tec_power_w": float(result.tec_power_w),
        "runtime_s": float(result.runtime_s),
        "solver_stats": (
            result.solver_stats.as_dict()
            if getattr(result, "solver_stats", None) is not None
            else None
        ),
        "deploy_stats": (
            result.deploy_stats.as_dict()
            if getattr(result, "deploy_stats", None) is not None
            else None
        ),
        "iterations": [
            {
                "index": it.index,
                "added_tiles": list(it.added_tiles),
                "deployment_size": it.deployment_size,
                "current_a": float(it.current),
                "peak_c": float(it.peak_c),
                "offending_tiles": list(it.offending_tiles),
            }
            for it in result.iterations
        ],
    }
