"""File formats: HotSpot interchange and result serialization.

The paper's toolchain is built around HotSpot 4.1, whose plain-text
formats are the de-facto interchange for architecture-level thermal
work.  This package reads and writes them so the library can consume
existing floorplans/traces and emit artifacts other tools understand:

``flp``
    HotSpot floorplan files (``<unit> <width> <height> <left> <bottom>``
    in metres).  Non-rectangular units (the hypothetical chips grow
    blob-shaped units) are decomposed into maximal rectangles on write
    and re-merged on read.
``ptrace``
    HotSpot power traces (header of unit names, one row of per-unit
    watts per interval).
``results``
    JSON serialization of Table-I-style benchmark rows and deployment
    results, for archiving and cross-run comparison.
"""

from repro.io.flp import (
    FlpRect,
    floorplan_from_flp,
    read_flp,
    write_flp,
)
from repro.io.ptrace import read_ptrace, write_ptrace
from repro.io.results import (
    bench_report_from_json,
    bench_report_to_json,
    deployment_to_dict,
    rows_from_json,
    rows_to_json,
)

__all__ = [
    "FlpRect",
    "bench_report_from_json",
    "bench_report_to_json",
    "deployment_to_dict",
    "floorplan_from_flp",
    "read_flp",
    "read_ptrace",
    "rows_from_json",
    "rows_to_json",
    "write_flp",
    "write_ptrace",
]
