"""HotSpot floorplan (``.flp``) reading and writing.

Format (one line per rectangle, SI metres, ``#`` comments)::

    <unit-name> <width> <height> <left-x> <bottom-y>

The library's :class:`~repro.power.floorplan.Floorplan` stores units as
tile sets, which is more general than rectangles (the Section VI.B
hypothetical chips grow blob-shaped units).  On write, each unit is
decomposed into maximal row-run rectangles named ``<unit>``,
``<unit>.1``, ``<unit>.2``, ...; on read, suffixed parts are merged
back into one unit.

Coordinates: the grid origin is the die's top-left corner with rows
growing downward (row-major flat indices); ``.flp`` uses a bottom-left
origin with y growing upward, so row ``r`` maps to
``bottom-y = (rows - 1 - r) * tile_height``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.thermal.geometry import TileGrid


@dataclass(frozen=True)
class FlpRect:
    """One rectangle of a HotSpot floorplan file (SI metres)."""

    name: str
    width: float
    height: float
    left: float
    bottom: float

    def to_line(self):
        """Render as one ``.flp`` line."""
        return "{}\t{:.6e}\t{:.6e}\t{:.6e}\t{:.6e}".format(
            self.name, self.width, self.height, self.left, self.bottom
        )


def _unit_rectangles(grid, unit):
    """Decompose a unit's tile set into maximal rectangles.

    Greedy: take the smallest uncovered flat index, extend the run
    rightward within the row, then extend the resulting strip downward
    while every tile below is also in the unit and uncovered.
    """
    remaining = set(unit.tiles)
    rects = []
    while remaining:
        start = min(remaining)
        row0, col0 = grid.row_col(start)
        # extend right
        width = 1
        while (
            col0 + width < grid.cols
            and grid.flat_index(row0, col0 + width) in remaining
        ):
            width += 1
        # extend down
        height = 1
        while row0 + height < grid.rows and all(
            grid.flat_index(row0 + height, c) in remaining
            for c in range(col0, col0 + width)
        ):
            height += 1
        for r in range(row0, row0 + height):
            for c in range(col0, col0 + width):
                remaining.discard(grid.flat_index(r, c))
        rects.append((row0, col0, height, width))
    return rects


def write_flp(floorplan, path, *, header=True):
    """Write a floorplan as a HotSpot ``.flp`` file.

    Returns the list of :class:`FlpRect` written (also useful for
    in-memory round trips in tests).
    """
    grid = floorplan.grid
    rects = []
    for unit in floorplan.units:
        pieces = _unit_rectangles(grid, unit)
        for index, (row0, col0, rows, cols) in enumerate(pieces):
            name = unit.name if index == 0 else "{}.{}".format(unit.name, index)
            rects.append(
                FlpRect(
                    name=name,
                    width=cols * grid.tile_width,
                    height=rows * grid.tile_height,
                    left=col0 * grid.tile_width,
                    bottom=(grid.rows - row0 - rows) * grid.tile_height,
                )
            )
    lines = []
    if header:
        lines.append("# floorplan written by repro (HotSpot .flp format)")
        lines.append("# <unit-name> <width> <height> <left-x> <bottom-y>")
    lines.extend(rect.to_line() for rect in rects)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return rects


def read_flp(path):
    """Read a HotSpot ``.flp`` file into a list of :class:`FlpRect`."""
    rects = []
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) < 5:
                raise ValueError(
                    "{}:{}: expected 5 fields, got {!r}".format(
                        path, line_number, raw.rstrip()
                    )
                )
            name = fields[0]
            try:
                width, height, left, bottom = (float(f) for f in fields[1:5])
            except ValueError as error:
                raise ValueError(
                    "{}:{}: non-numeric geometry in {!r}".format(
                        path, line_number, raw.rstrip()
                    )
                ) from error
            if width <= 0.0 or height <= 0.0:
                raise ValueError(
                    "{}:{}: non-positive rectangle {!r}".format(
                        path, line_number, name
                    )
                )
            rects.append(FlpRect(name, width, height, left, bottom))
    if not rects:
        raise ValueError("{}: no rectangles found".format(path))
    return rects


def _base_name(name):
    """Merge key for suffixed rectangle parts (``IntReg.1`` -> ``IntReg``)."""
    stem, dot, suffix = name.rpartition(".")
    if dot and suffix.isdigit():
        return stem
    return name


def floorplan_from_flp(path, grid, unit_powers, *, require_cover=True):
    """Rasterize an ``.flp`` file onto a tile grid.

    Parameters
    ----------
    path:
        The ``.flp`` file.
    grid:
        Target :class:`~repro.thermal.geometry.TileGrid`; a tile
        belongs to the rectangle containing its centre.
    unit_powers:
        Mapping of (merged) unit name to worst-case power in watts.
        Every unit in the file must have an entry.
    require_cover:
        Passed through to :class:`~repro.power.floorplan.Floorplan`.

    Returns
    -------
    Floorplan
    """
    rects = read_flp(path)
    tiles_by_unit = {}
    eps = 1e-12
    for rect in rects:
        name = _base_name(rect.name)
        tiles = tiles_by_unit.setdefault(name, [])
        for flat, row, col in grid.iter_tiles():
            cx, cy_top = grid.tile_center(row, col)
            # convert the top-origin y to the flp's bottom-origin y
            cy = grid.height - cy_top
            if (
                rect.left - eps <= cx <= rect.left + rect.width + eps
                and rect.bottom - eps <= cy <= rect.bottom + rect.height + eps
            ):
                if flat not in tiles:
                    tiles.append(flat)
    units = []
    for name, tiles in tiles_by_unit.items():
        if name not in unit_powers:
            raise KeyError(
                "no power given for unit {!r} (have: {})".format(
                    name, sorted(unit_powers)
                )
            )
        units.append(FunctionalUnit(name, tiles, unit_powers[name]))
    return Floorplan(grid, units, require_cover=require_cover)
