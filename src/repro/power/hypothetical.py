"""Hypothetical benchmark chips (Section VI.B).

The paper's second benchmark set is ten hypothetical chips, each a
12 x 12 tile array over a 6 mm x 6 mm floorplan:

* the floorplan is randomly divided into functional units of 5 to 15
  tiles each;
* two units are selected and given a much higher power density than
  the rest — typically 30% of chip power in 10% of chip area
  (imitating the non-uniform power of real processors);
* total chip power ranges from 15 W to 25 W.

:func:`hypothetical_chip` reproduces that generator.  Units are grown
by randomized flood fill (the paper does not require rectangles), the
hot pair is chosen to match the 10%-area target as closely as
possible, and all randomness is driven by an explicit seed so each
benchmark (HC01..HC10, seeds pinned in
``repro.experiments.benchmarks``) is perfectly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.thermal.geometry import TileGrid
from repro.utils import check_in_range, check_positive, ensure_rng


@dataclass(frozen=True)
class HypotheticalChipConfig:
    """Generator knobs for one hypothetical chip.

    Defaults follow Section VI.B; see the module docstring.
    """

    rows: int = 12
    cols: int = 12
    tile_width: float = 0.5e-3
    tile_height: float = 0.5e-3
    min_unit_tiles: int = 5
    max_unit_tiles: int = 15
    hot_unit_count: int = 2
    hot_power_fraction: float = 0.30
    hot_area_fraction: float = 0.10
    total_power_w: float = 20.0

    def __post_init__(self):
        if not 1 <= self.min_unit_tiles <= self.max_unit_tiles:
            raise ValueError(
                "need 1 <= min_unit_tiles <= max_unit_tiles, got {}..{}".format(
                    self.min_unit_tiles, self.max_unit_tiles
                )
            )
        if self.hot_unit_count < 1:
            raise ValueError("hot_unit_count must be >= 1")
        check_in_range(self.hot_power_fraction, "hot_power_fraction", 0.0, 1.0,
                       inclusive=(False, False))
        check_in_range(self.hot_area_fraction, "hot_area_fraction", 0.0, 1.0,
                       inclusive=(False, False))
        check_positive(self.total_power_w, "total_power_w")

    def grid(self):
        """The chip's tile grid."""
        return TileGrid(self.rows, self.cols, tile_width=self.tile_width,
                        tile_height=self.tile_height)


def _grow_units(grid, rng, min_tiles, max_tiles):
    """Partition the grid into connected units of min..max tiles.

    Randomized flood fill: repeatedly seed a unit at the first
    unassigned tile, grow it through random unassigned neighbours to a
    random target size, then continue.  Units that end up smaller than
    ``min_tiles`` (trapped pockets) are merged into a random adjacent
    unit, which may push that unit past ``max_tiles`` — matching the
    paper's loose "between 5 and 15 tiles" phrasing for the common
    case while always producing a full cover.
    """
    owner = np.full(grid.num_tiles, -1, dtype=int)
    units = []

    for start, _, _ in grid.iter_tiles():
        if owner[start] != -1:
            continue
        target = int(rng.integers(min_tiles, max_tiles + 1))
        unit_id = len(units)
        tiles = [start]
        owner[start] = unit_id
        frontier = [start]
        while frontier and len(tiles) < target:
            pick = int(rng.integers(0, len(frontier)))
            tile = frontier[pick]
            row, col = grid.row_col(tile)
            candidates = [
                grid.flat_index(r, c)
                for r, c in grid.neighbors(row, col)
                if owner[grid.flat_index(r, c)] == -1
            ]
            if not candidates:
                frontier.pop(pick)
                continue
            chosen = candidates[int(rng.integers(0, len(candidates)))]
            owner[chosen] = unit_id
            tiles.append(chosen)
            frontier.append(chosen)
        units.append(tiles)

    # Merge undersized pockets into adjacent units.
    changed = True
    while changed:
        changed = False
        for unit_id, tiles in enumerate(units):
            if not tiles or len(tiles) >= min_tiles:
                continue
            neighbours = set()
            for tile in tiles:
                row, col = grid.row_col(tile)
                for r, c in grid.neighbors(row, col):
                    other = owner[grid.flat_index(r, c)]
                    if other != unit_id and other != -1 and units[other]:
                        neighbours.add(other)
            if not neighbours:
                continue
            target_id = sorted(neighbours)[int(rng.integers(0, len(neighbours)))]
            units[target_id].extend(tiles)
            for tile in tiles:
                owner[tile] = target_id
            units[unit_id] = []
            changed = True
    return [tiles for tiles in units if tiles]


def hypothetical_chip(config=None, *, seed=None, name_prefix="U"):
    """Generate one hypothetical chip as a :class:`Floorplan`.

    Parameters
    ----------
    config:
        :class:`HypotheticalChipConfig`; defaults match Section VI.B.
    seed:
        Seed or ``numpy.random.Generator`` driving every random choice.
    name_prefix:
        Unit names are ``<prefix>00``, ``<prefix>01``, ... with the hot
        pair renamed ``HOT0``, ``HOT1``.

    Returns
    -------
    Floorplan
        Total power equals ``config.total_power_w`` exactly; the hot
        units jointly draw ``hot_power_fraction`` of it.
    """
    config = config if config is not None else HypotheticalChipConfig()
    rng = ensure_rng(seed)
    grid = config.grid()
    tile_sets = _grow_units(grid, rng, config.min_unit_tiles, config.max_unit_tiles)
    if len(tile_sets) <= config.hot_unit_count:
        raise RuntimeError(
            "partition produced only {} units; cannot pick {} hot units".format(
                len(tile_sets), config.hot_unit_count
            )
        )

    # Pick the hot set: the combination (greedily assembled) whose area
    # is closest to the target fraction.
    target_tiles = config.hot_area_fraction * grid.num_tiles
    order = rng.permutation(len(tile_sets))
    sizes = np.array([len(t) for t in tile_sets])
    best_combo = None
    best_err = None
    for _ in range(64):
        combo = sorted(
            rng.choice(len(tile_sets), size=config.hot_unit_count, replace=False)
        )
        err = abs(float(np.sum(sizes[combo])) - target_tiles)
        if best_err is None or err < best_err:
            best_err = err
            best_combo = combo
    hot_ids = set(int(u) for u in best_combo)
    del order

    hot_total = config.hot_power_fraction * config.total_power_w
    cool_total = config.total_power_w - hot_total
    hot_sizes = np.array([len(tile_sets[u]) for u in sorted(hot_ids)], dtype=float)
    cool_ids = [u for u in range(len(tile_sets)) if u not in hot_ids]
    cool_weights = np.array(
        [len(tile_sets[u]) * rng.uniform(0.5, 1.5) for u in cool_ids]
    )
    cool_weights /= cool_weights.sum()

    units = []
    hot_rank = 0
    cool_rank = 0
    for unit_id, tiles in enumerate(tile_sets):
        if unit_id in hot_ids:
            share = hot_total * len(tiles) / float(hot_sizes.sum())
            units.append(FunctionalUnit("HOT{}".format(hot_rank), tiles, share))
            hot_rank += 1
        else:
            share = cool_total * cool_weights[cool_ids.index(unit_id)]
            units.append(
                FunctionalUnit(
                    "{}{:02d}".format(name_prefix, cool_rank), tiles, share
                )
            )
            cool_rank += 1
    return Floorplan(grid, units)
