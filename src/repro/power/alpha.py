"""The Alpha-21364-like benchmark chip (Section VI.A).

A 6 mm x 6 mm die at 65 nm, dissected into 12 x 12 tiles of
0.5 mm x 0.5 mm (one TEC footprint each).  The floorplan follows the
classic EV6-derived layout used by HotSpot (L2 across the bottom,
caches and front-end at the top, the integer/floating-point execution
cluster in the middle), and the worst-case unit powers reproduce every
statistic the paper publishes for this benchmark:

* total worst-case chip power: **20.6 W**;
* IntReg power density: **282.4 W/cm^2**;
* L2 power density: **25.0 W/cm^2**;
* the heavily-used units (IntReg, IntExec, IQ, LSQ, FPMul, FPAdd)
  consume **28.1%** of total power in roughly a tenth of the area;
* without TECs the hottest tile reaches ~91.8 C under the calibrated
  package (the ``theta_peak`` column of Table I).

The per-unit worst-case numbers stand in for the paper's
M5 + Wattch + SPEC2000 measurements (plus 20% margin); the synthetic
trace generator in :mod:`repro.power.workloads` produces time series
consistent with them.
"""

from __future__ import annotations

from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.thermal.geometry import TileGrid

#: The six units the paper singles out as "heavily used".
HIGH_POWER_UNITS = ("IntReg", "IntExec", "IQ", "LSQ", "FPMul", "FPAdd")

#: Published total worst-case power of the chip (W).
TOTAL_POWER_W = 20.6

# Layout: (name, row0, col0, rows, cols, worst-case unit power in W).
# Rows run top (0) to bottom (11).  Worst-case powers include the
# paper's 20% margin and are chosen to reproduce the published
# statistics listed in the module docstring.
_UNIT_SPECS = (
    # Front end (top)
    ("Icache", 0, 0, 2, 6, 2.416),
    ("Bpred", 0, 6, 2, 3, 1.020),
    ("ITB", 0, 9, 2, 3, 0.720),
    # Floating point cluster and mappers
    ("FPMap", 2, 0, 2, 2, 0.480),
    ("FPReg", 2, 2, 2, 2, 0.560),
    ("FPMul", 2, 4, 1, 2, 0.440),
    ("FPAdd", 2, 6, 1, 2, 0.320),
    ("FPQ", 3, 4, 1, 4, 0.520),
    ("IntMap", 2, 8, 2, 2, 0.600),
    ("IntQ", 2, 10, 2, 2, 0.640),
    # Integer execution cluster (the hot row)
    ("IntReg", 4, 0, 1, 4, 2.824),
    ("IntExec", 4, 4, 1, 4, 1.200),
    ("IQ", 4, 8, 1, 2, 0.520),
    ("LSQ", 4, 10, 1, 2, 0.480),
    # Data-side memory structures
    ("Dcache", 5, 0, 2, 6, 2.520),
    ("DTB", 5, 6, 2, 3, 0.780),
    ("LdStQ", 5, 9, 2, 3, 0.810),
    # L2 across the bottom five rows
    ("L2", 7, 0, 5, 12, 3.750),
)


def alpha_grid():
    """The 12 x 12, 0.5 mm-pitch tile grid of the Alpha benchmark."""
    return TileGrid(12, 12, tile_width=0.5e-3, tile_height=0.5e-3)


def alpha_floorplan():
    """The Alpha-21364-like floorplan with worst-case unit powers.

    The floorplan tiles the grid exactly and its total power is scaled
    to the published 20.6 W (the raw unit budgets sum to within 0.1%
    of it already).
    """
    grid = alpha_grid()
    units = [
        FunctionalUnit.from_rect(name, grid, row0, col0, rows, cols, power)
        for name, row0, col0, rows, cols, power in _UNIT_SPECS
    ]
    plan = Floorplan(grid, units)
    return Floorplan(grid, plan.scaled_to_total(TOTAL_POWER_W).units)


def alpha_power_map():
    """Worst-case per-tile power of the Alpha chip (flat, W)."""
    return alpha_floorplan().power_map()
