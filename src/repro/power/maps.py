"""Power-density maps and summaries.

Report-side helpers: convert per-tile power vectors to the W/cm^2
densities the paper quotes, summarize a floorplan's statistics, and
render small ASCII heat maps for the examples.
"""

from __future__ import annotations

import numpy as np

from repro.utils.units import watts_per_m2_to_w_per_cm2


def power_density_map_w_cm2(grid, power_map):
    """Per-tile power density (W/cm^2) as a ``(rows, cols)`` array."""
    power_map = np.asarray(power_map, dtype=float)
    density = power_map / grid.tile_area
    return grid.to_grid(watts_per_m2_to_w_per_cm2(density))


def compose_chiplet_power(composite, per_chiplet_maps):
    """Concatenate per-chiplet power maps into the global flat vector.

    ``per_chiplet_maps`` is one flat row-major power vector (or a
    uniform scalar total split evenly over the chiplet's tiles) per
    chiplet of the :class:`~repro.thermal.geometry.CompositeGrid`, in
    chiplet order.  Returns the composite flat power vector, length
    ``composite.num_tiles``, in the block layout every subsystem keys
    on.
    """
    if len(per_chiplet_maps) != composite.num_chiplets:
        raise ValueError(
            "got {} power maps for {} chiplets".format(
                len(per_chiplet_maps), composite.num_chiplets
            )
        )
    power = np.zeros(composite.num_tiles)
    for chiplet, entry in enumerate(per_chiplet_maps):
        grid = composite.grids[chiplet]
        if np.ndim(entry) == 0:
            block = np.full(grid.num_tiles, float(entry) / grid.num_tiles)
        else:
            block = np.asarray(entry, dtype=float)
            if block.shape != (grid.num_tiles,):
                raise ValueError(
                    "chiplet {} power map must have length {}, got shape {}".format(
                        chiplet, grid.num_tiles, block.shape
                    )
                )
        if np.any(block < 0.0):
            raise ValueError(
                "chiplet {} power map entries must be non-negative".format(chiplet)
            )
        power[composite.block_slice(chiplet)] = block
    return power


def power_summary(floorplan):
    """Summary statistics of a floorplan's worst-case power.

    Returns a dict with the quantities Section VI quotes: total power,
    peak and mean tile density, and the per-unit density table.
    """
    grid = floorplan.grid
    power = floorplan.power_map()
    density = power_density_map_w_cm2(grid, power)
    per_unit = {
        unit.name: {
            "tiles": unit.num_tiles,
            "power_w": unit.power_w,
            "density_w_cm2": floorplan.unit_density_w_cm2(unit.name),
        }
        for unit in floorplan.units
    }
    return {
        "total_power_w": floorplan.total_power_w,
        "peak_density_w_cm2": float(np.max(density)),
        "mean_density_w_cm2": float(np.mean(density)),
        "units": per_unit,
    }


def render_ascii_heatmap(values, *, chars=" .:-=+*#%@", vmin=None, vmax=None):
    """Render a 2-D array as an ASCII heat map (one char per cell).

    NaN cells (the unoccupied lattice tiles of a
    :meth:`~repro.thermal.geometry.CompositeGrid.to_grid` board)
    render as blanks.  Used by the examples to show temperature and
    power maps without a plotting dependency.
    """
    grid = np.asarray(values, dtype=float)
    if grid.ndim != 2:
        raise ValueError("values must be 2-D, got shape {}".format(grid.shape))
    occupied = np.isfinite(grid)
    if not np.any(occupied):
        raise ValueError("values has no finite cells")
    lo = float(np.min(grid[occupied])) if vmin is None else float(vmin)
    hi = float(np.max(grid[occupied])) if vmax is None else float(vmax)
    span = hi - lo
    lines = []
    for row, mask in zip(grid, occupied):
        if span <= 0.0:
            indices = np.zeros(row.shape, dtype=int)
        else:
            normalized = np.clip(
                (np.where(mask, row, lo) - lo) / span, 0.0, 1.0
            )
            indices = np.minimum(
                (normalized * len(chars)).astype(int), len(chars) - 1
            )
        lines.append("".join(
            chars[i] if m else " " for i, m in zip(indices, mask)
        ))
    return "\n".join(lines)
