"""Worst-case power modeling (the Section VI workload substrate).

The paper obtains the worst-case power of each silicon tile by
simulating SPEC2000 on the M5 architectural simulator with the Wattch
power model, taking the per-functional-unit worst case and adding a
20% margin.  This package supplies the equivalent pipeline (see
DESIGN.md substitutions):

``floorplan``
    Functional units placed on the tile grid and rasterized into
    per-tile power maps.
``alpha``
    The Alpha-21364-like chip of Section VI.A: a 6 mm x 6 mm, 12 x 12
    tile floorplan whose published statistics (total 20.6 W, IntReg at
    282.4 W/cm^2, L2 at 25.0 W/cm^2, high-power units with 28.1% of
    power in ~10% of area) are reproduced exactly.
``workloads``
    A synthetic activity/power trace generator standing in for
    M5 + Wattch + SPEC2000, plus the worst-case-with-margin reduction.
``hypothetical``
    The HC01..HC10 hypothetical chip generator of Section VI.B.
``maps``
    Power-density statistics and report helpers.
"""

from repro.power.alpha import alpha_floorplan, alpha_power_map
from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.power.hypothetical import HypotheticalChipConfig, hypothetical_chip
from repro.power.maps import power_density_map_w_cm2, power_summary
from repro.power.workloads import (
    SyntheticWorkload,
    WorkloadTrace,
    worst_case_power,
)

__all__ = [
    "Floorplan",
    "FunctionalUnit",
    "HypotheticalChipConfig",
    "SyntheticWorkload",
    "WorkloadTrace",
    "alpha_floorplan",
    "alpha_power_map",
    "hypothetical_chip",
    "power_density_map_w_cm2",
    "power_summary",
    "worst_case_power",
]
