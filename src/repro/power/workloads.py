"""Synthetic workload power traces (the M5 + Wattch + SPEC2000 stand-in).

The paper obtains the worst-case per-unit powers by simulating the
SPEC2000 suite on M5 with the Wattch power model, collecting each
functional unit's worst-case power and adding a 20% margin.  Those
tools (and the traces) are not reproducible here, so this module
implements the closest synthetic equivalent (DESIGN.md substitutions):

* a :class:`SyntheticWorkload` describes a program's behaviour as
  per-unit activity biases (an integer-heavy workload keeps ``IntExec``
  busy, a memory-bound one exercises caches, ...);
* :meth:`SyntheticWorkload.trace` runs a bounded mean-reverting random
  walk per unit, producing utilization time series in [0, 1];
* a unit's power at time ``t`` is
  ``nominal * (static_fraction + (1 - static_fraction) * util(t))``;
* :func:`worst_case_power` reduces a set of traces to per-unit
  worst-case powers with the 20% margin — the quantity Problem 1
  consumes.

The Alpha benchmark's published worst-case map is defined directly in
:mod:`repro.power.alpha`; this pipeline exists to exercise the same
code path the paper's flow exercises (trace -> worst case -> optimize)
and to drive the validation and example scenarios with plausible
non-worst-case power profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.utils import check_in_range, ensure_rng


@dataclass(frozen=True)
class SyntheticWorkload:
    """A synthetic program characterized by per-unit activity biases.

    Attributes
    ----------
    name:
        Workload name (e.g. ``"int-heavy"``).
    baseline:
        Default mean utilization for units not listed in ``biases``.
    biases:
        Mapping of unit name to mean utilization in [0, 1].
    burstiness:
        Standard deviation of the per-step random walk increment; high
        values produce spiky traces that approach the worst case more
        often.
    """

    name: str
    baseline: float = 0.35
    biases: dict = field(default_factory=dict)
    burstiness: float = 0.08

    def __post_init__(self):
        check_in_range(self.baseline, "baseline", 0.0, 1.0)
        check_in_range(self.burstiness, "burstiness", 0.0, 1.0)
        for unit, value in self.biases.items():
            check_in_range(value, "biases[{!r}]".format(unit), 0.0, 1.0)

    def mean_utilization(self, unit_name):
        """Mean utilization target for one unit."""
        return self.biases.get(unit_name, self.baseline)

    def trace(self, unit_names, steps, *, seed=None):
        """Generate a :class:`WorkloadTrace` over the named units.

        A mean-reverting bounded random walk per unit:
        ``u[t+1] = clip(u[t] + 0.25 (mean - u[t]) + N(0, burstiness))``.
        """
        if steps < 1:
            raise ValueError("steps must be >= 1, got {}".format(steps))
        rng = ensure_rng(seed)
        unit_names = list(unit_names)
        means = np.array([self.mean_utilization(u) for u in unit_names])
        utils = np.empty((steps, len(unit_names)))
        current = means.copy()
        for t in range(steps):
            noise = rng.normal(0.0, self.burstiness, size=means.shape)
            current = np.clip(current + 0.25 * (means - current) + noise, 0.0, 1.0)
            utils[t] = current
        return WorkloadTrace(self.name, unit_names, utils)


@dataclass(frozen=True)
class WorkloadTrace:
    """Per-unit utilization time series of one workload run.

    Attributes
    ----------
    workload:
        Name of the generating workload.
    unit_names:
        Column order of ``utilization``.
    utilization:
        Array of shape ``(steps, units)`` with values in [0, 1].
    """

    workload: str
    unit_names: list
    utilization: np.ndarray

    @property
    def steps(self):
        """Number of time steps."""
        return self.utilization.shape[0]

    def unit_power_series(self, nominal_powers, *, static_fraction=0.3):
        """Per-unit power time series (W), shape ``(steps, units)``.

        ``nominal_powers`` maps unit name to the unit's nominal peak
        power (full utilization, before margin).
        """
        check_in_range(static_fraction, "static_fraction", 0.0, 1.0)
        nominal = np.array([nominal_powers[name] for name in self.unit_names])
        return nominal * (
            static_fraction + (1.0 - static_fraction) * self.utilization
        )

    def power_map_at(self, floorplan, nominal_powers, step, *, static_fraction=0.3):
        """Rasterized per-tile power map (W) at one time step."""
        series = self.unit_power_series(
            nominal_powers, static_fraction=static_fraction
        )
        if not 0 <= step < self.steps:
            raise IndexError("step {} out of range [0, {})".format(step, self.steps))
        snapshot = Floorplan(
            floorplan.grid,
            [
                FunctionalUnit(unit.name, unit.tiles, series[step][j])
                for j, unit in enumerate(
                    [floorplan.unit(name) for name in self.unit_names]
                )
            ],
            require_cover=False,
        )
        return snapshot.power_map()


def worst_case_power(nominal_powers, traces, *, static_fraction=0.3, margin=0.2):
    """Per-unit worst-case powers over a set of traces, with margin.

    The reduction the paper performs over its SPEC2000 simulations:
    for each functional unit, take the maximum power observed in any
    trace and add ``margin`` (20% by default).

    Returns a dict of unit name to worst-case power (W).
    """
    check_in_range(margin, "margin", 0.0, 10.0)
    if not traces:
        raise ValueError("need at least one trace")
    worst = {name: 0.0 for name in nominal_powers}
    for trace in traces:
        series = trace.unit_power_series(
            nominal_powers, static_fraction=static_fraction
        )
        peaks = series.max(axis=0)
        for name, peak in zip(trace.unit_names, peaks):
            worst[name] = max(worst[name], float(peak))
    return {name: value * (1.0 + margin) for name, value in worst.items()}


def spec2000_like_suite():
    """A small suite of synthetic workloads echoing SPEC2000 phases.

    Integer-heavy, floating-point-heavy, memory-bound and mixed
    workloads, biased over the Alpha floorplan's unit names (unknown
    names simply fall back to the baseline, so the suite works for any
    floorplan).
    """
    return [
        SyntheticWorkload(
            "int-heavy",
            baseline=0.30,
            biases={
                "IntReg": 0.9,
                "IntExec": 0.9,
                "IQ": 0.85,
                "IntMap": 0.7,
                "IntQ": 0.7,
                "LSQ": 0.6,
                "Icache": 0.6,
            },
        ),
        SyntheticWorkload(
            "fp-heavy",
            baseline=0.30,
            biases={
                "FPMul": 0.9,
                "FPAdd": 0.9,
                "FPReg": 0.8,
                "FPMap": 0.7,
                "FPQ": 0.7,
                "IntReg": 0.5,
            },
        ),
        SyntheticWorkload(
            "memory-bound",
            baseline=0.25,
            biases={
                "L2": 0.85,
                "Dcache": 0.9,
                "LdStQ": 0.85,
                "LSQ": 0.8,
                "DTB": 0.8,
            },
        ),
        SyntheticWorkload("mixed", baseline=0.55, burstiness=0.12),
    ]
