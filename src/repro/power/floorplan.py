"""Floorplans: functional units on the tile grid.

A :class:`FunctionalUnit` is a named set of tiles with a worst-case
power budget; a :class:`Floorplan` is a set of disjoint units covering
(a subset of) the grid.  Rasterizing a floorplan spreads each unit's
power uniformly over its tiles — exactly the granularity at which the
paper's Problem 1 consumes the worst-case power profile.

Units are stored as explicit tile sets rather than rectangles so the
randomly-grown units of the hypothetical chips (Section VI.B) and the
rectangular units of the Alpha floorplan share one representation.
"""

from __future__ import annotations

import numpy as np

from repro.thermal.geometry import TileGrid
from repro.utils import check_nonnegative
from repro.utils.units import watts_per_m2_to_w_per_cm2


class FunctionalUnit:
    """A named functional unit occupying a set of tiles.

    Parameters
    ----------
    name:
        Unit name (e.g. ``"IntReg"``).
    tiles:
        Iterable of flat tile indices; must be non-empty and duplicate
        free.
    power_w:
        Worst-case power of the whole unit in watts.
    """

    def __init__(self, name, tiles, power_w):
        self.name = str(name)
        tiles = [int(t) for t in tiles]
        if not tiles:
            raise ValueError("unit {!r} has no tiles".format(name))
        if len(set(tiles)) != len(tiles):
            raise ValueError("unit {!r} has duplicate tiles".format(name))
        self.tiles = tuple(sorted(tiles))
        self.power_w = check_nonnegative(power_w, "power_w")

    @property
    def num_tiles(self):
        """Tile count of the unit."""
        return len(self.tiles)

    def power_per_tile_w(self):
        """Uniform per-tile share of the unit's power."""
        return self.power_w / self.num_tiles

    @classmethod
    def from_rect(cls, name, grid, row0, col0, rows, cols, power_w):
        """Build a rectangular unit: ``rows x cols`` tiles anchored at
        ``(row0, col0)``."""
        if rows < 1 or cols < 1:
            raise ValueError("rectangle must be at least 1x1")
        tiles = [
            grid.flat_index(row0 + r, col0 + c)
            for r in range(rows)
            for c in range(cols)
        ]
        return cls(name, tiles, power_w)

    def __repr__(self):
        return "FunctionalUnit({!r}, {} tiles, {:.3f} W)".format(
            self.name, self.num_tiles, self.power_w
        )


class Floorplan:
    """Disjoint functional units on one tile grid.

    Parameters
    ----------
    grid:
        The :class:`~repro.thermal.geometry.TileGrid`.
    units:
        Iterable of :class:`FunctionalUnit`; tile sets must be
        pairwise disjoint and within the grid.
    require_cover:
        When True (default), the units must tile the grid exactly —
        every tile belongs to exactly one unit, as in both Section VI
        benchmarks.
    """

    def __init__(self, grid, units, *, require_cover=True):
        if not isinstance(grid, TileGrid):
            raise TypeError("grid must be a TileGrid, got {!r}".format(type(grid)))
        self.grid = grid
        self.units = tuple(units)
        if not self.units:
            raise ValueError("floorplan needs at least one unit")
        seen = {}
        for unit in self.units:
            for tile in unit.tiles:
                if not 0 <= tile < grid.num_tiles:
                    raise IndexError(
                        "unit {!r} tile {} outside grid [0, {})".format(
                            unit.name, tile, grid.num_tiles
                        )
                    )
                if tile in seen:
                    raise ValueError(
                        "tile {} claimed by both {!r} and {!r}".format(
                            tile, seen[tile], unit.name
                        )
                    )
                seen[tile] = unit.name
        if require_cover and len(seen) != grid.num_tiles:
            raise ValueError(
                "units cover {} of {} tiles; floorplan must tile the grid".format(
                    len(seen), grid.num_tiles
                )
            )
        names = [unit.name for unit in self.units]
        if len(set(names)) != len(names):
            raise ValueError("unit names must be unique")

    def unit(self, name):
        """Look up a unit by name."""
        for unit in self.units:
            if unit.name == name:
                return unit
        raise KeyError("no unit named {!r}".format(name))

    @property
    def total_power_w(self):
        """Sum of unit worst-case powers (W)."""
        return float(sum(unit.power_w for unit in self.units))

    def power_map(self):
        """Rasterize to a flat per-tile power vector (W)."""
        power = np.zeros(self.grid.num_tiles)
        for unit in self.units:
            power[list(unit.tiles)] += unit.power_per_tile_w()
        return power

    def unit_map(self):
        """Flat vector of unit indices per tile (-1 for uncovered)."""
        owner = np.full(self.grid.num_tiles, -1, dtype=int)
        for idx, unit in enumerate(self.units):
            owner[list(unit.tiles)] = idx
        return owner

    def unit_density_w_cm2(self, name):
        """Worst-case power density of one unit in W/cm^2."""
        unit = self.unit(name)
        area_m2 = unit.num_tiles * self.grid.tile_area
        return watts_per_m2_to_w_per_cm2(unit.power_w / area_m2)

    def area_fraction(self, names):
        """Fraction of grid tiles occupied by the named units."""
        tiles = sum(self.unit(name).num_tiles for name in names)
        return tiles / self.grid.num_tiles

    def power_fraction(self, names):
        """Fraction of total power consumed by the named units."""
        power = sum(self.unit(name).power_w for name in names)
        return power / self.total_power_w

    def scaled_to_total(self, total_power_w):
        """Copy with every unit's power scaled to hit ``total_power_w``."""
        current = self.total_power_w
        if current <= 0.0:
            raise ValueError("cannot scale a zero-power floorplan")
        factor = float(total_power_w) / current
        scaled = [
            FunctionalUnit(unit.name, unit.tiles, unit.power_w * factor)
            for unit in self.units
        ]
        return Floorplan(self.grid, scaled, require_cover=False)
