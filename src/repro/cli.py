"""Command-line interface.

Usage (also installed as the ``repro`` console script)::

    python -m repro.cli table1 [--benchmarks alpha hc01 ...] [--json OUT]
                               [--workers 4] [--sweep-report OUT]
                               [--engine incremental] [--max-rounds N]
                               [--round-stats]
    python -m repro.cli sweep [--benchmark alpha] [--power-scales 0.9 1.1]
                              [--budgets 0 0.5 1.0] [--workers 4]
                              [--backend krylov]
    python -m repro.cli solve --benchmark alpha [--limit 85] [--json OUT]
                              [--engine incremental] [--max-rounds N]
                              [--round-stats]
    python -m repro.cli solve --flp chip.flp --powers powers.json --limit 85
    python -m repro.cli transient --benchmark alpha [--tiles 27 28 ...]
                                  [--current 3.2] [--dt 1e-3] [--steps 200]
                                  [--backend reuse] [--solver-stats]
    python -m repro.cli control --benchmark alpha [--controller bangbang]
                                [--steps 400] [--dt 0.01]
                                [--control-period 0.05] [--solver-stats]
    python -m repro.cli chiplet [--chiplet 8,8,0,0,30 --chiplet 8,8,0,10,30]
                                [--deploy] [--per-chiplet-current]
                                [--no-interposer] [--board-resistance 2.0]
                                [--backend mg] [--json OUT]
    python -m repro.cli validate [--refine 2]
    python -m repro.cli runaway [--benchmark alpha]
    python -m repro.cli conjecture [--matrices 500]
    python -m repro.cli serve [--host 127.0.0.1] [--port 8080]
                              [--pool-size 8] [--batch-window 0.005]
                              [--threads 4] [--workers 4]
    python -m repro.cli info

Every subcommand returns a process exit code of 0 on success and 1 on
an infeasible/failed outcome, so the CLI composes into scripts.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__

#: Solver backends exposed by ``--backend`` / ``--solver-mode``.
#: Mirrors :data:`repro.thermal.solve.SOLVER_MODES` without importing
#: the scientific stack at parser-build time; unknown backends fail at
#: parse time with this list, uniformly across every subcommand
#: (``tests/test_cli.py::TestBackendValidation``).
_BACKENDS = ("direct", "reuse", "krylov", "cholesky", "mg", "auto")

#: GreedyDeploy engines exposed by ``--engine``.  Mirrors
#: :data:`repro.core.deploy.DEPLOY_ENGINES` (same deferred-import
#: rationale as :data:`_BACKENDS`).
_ENGINES = ("cold", "incremental")

#: Reduced-order modes exposed by ``--rom``.  Mirrors
#: :data:`repro.linalg.mor.ROM_MODES` (same deferred-import rationale
#: as :data:`_BACKENDS`).
_ROM_MODES = ("auto", "always", "off")


def add_backend_argument(parser, *, flags=("--backend",), dest="backend", help=None):
    """Register the shared ``--backend`` choice on a (sub)parser.

    Every subcommand that selects a solver backend (``sweep``,
    ``solve``, ``transient``, ``control``, ``serve``) goes through this
    helper, so the choice list exists in exactly one place and an
    unknown backend fails identically everywhere.  ``flags``/``dest``
    accommodate the ``--solver-mode`` alias, ``help`` the per-command
    phrasing.
    """
    parser.add_argument(
        *flags, dest=dest, choices=list(_BACKENDS), default=None,
        help=help or "solver backend (default: the problem default, 'reuse')",
    )


def _rom_parent_parser():
    """Parent parser carrying the reduced-order flags.

    ``repro transient`` and ``repro control`` share it via argparse
    ``parents=`` so the ``--rom*`` trio is declared once, next to the
    backend helper the same subcommands reuse.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--rom", choices=list(_ROM_MODES), default="auto",
        help="certified reduced-order transient kernel: 'auto' engages "
             "on large models, 'always' forces it, 'off' integrates at "
             "full order (default auto)",
    )
    parent.add_argument(
        "--rom-dim", type=int, default=None, metavar="R",
        help="target Krylov basis dimension (default 48)",
    )
    parent.add_argument(
        "--rom-tol", type=float, default=None, metavar="K",
        help="certified max-error budget vs the full-order trajectory, "
             "in Kelvin (default 1e-3)",
    )
    return parent


def _workers_count(text):
    """argparse type for ``--workers``: a positive integer.

    Shares :func:`repro.sweep.runner.validate_workers` with the
    library (imported lazily — argparse types only run at parse time),
    so the CLI and ``SweepRunner`` enforce the identical contract.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "invalid int value: {!r}".format(text)
        )
    from repro.sweep.runner import validate_workers

    try:
        return validate_workers(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "--workers must be a positive integer, got {}".format(value)
        )


def _rounds_count(text):
    """argparse type for ``--max-rounds``: a positive integer.

    Zero rounds would report the bare chip as infeasible without
    deploying anything — surprising from a CLI, so it is rejected up
    front (the library accepts 0 for programmatic use).
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "invalid int value: {!r}".format(text)
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            "--max-rounds must be a positive integer, got {}".format(value)
        )
    return value


def _print_round_stats(rounds, indent="  "):
    """Per-round engine instrumentation lines (``--round-stats``).

    Sweep-borne payloads strip the wall-clock fields (they are
    execution metadata, excluded from the bit-reproducible ``values``);
    the timing segment is omitted rather than printed as zero.
    """
    for entry in rounds:
        warm = "warm" if entry.get("current_warm") else "cold"
        wall = entry.get("wall_s")
        timing = "" if wall is None else "{:.3f} s, ".format(wall)
        print(
            "{}round {}: {}{} evals ({} bracket), runaway {} "
            "(lambda_m {:.4g} A), border {}".format(
                indent,
                entry.get("index"),
                timing,
                entry.get("evaluations", 0),
                warm,
                entry.get("runaway_method", "?"),
                entry.get("lambda_m", float("nan")),
                entry.get("border_mode", "off"),
            )
        )


def _add_table1(subparsers):
    parser = subparsers.add_parser(
        "table1", help="reproduce Table I (all or selected benchmarks)"
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=None,
        help="benchmark names (default: every Table I row)",
    )
    parser.add_argument("--markdown", action="store_true", help="markdown output")
    parser.add_argument("--json", metavar="PATH", help="also write rows as JSON")
    parser.add_argument(
        "--workers", type=_workers_count, default=None, metavar="N",
        help="fan the rows out over a process pool of N workers, N >= 1 "
             "(default: serial; results are bit-identical either way)",
    )
    parser.add_argument(
        "--sweep-report", metavar="PATH",
        help="write the sweep engine's report (timings, solver stats, "
             "per-row payloads) as JSON",
    )
    parser.add_argument(
        "--engine", choices=_ENGINES, default=None,
        help="GreedyDeploy engine: 'cold' (per-round recompute, default) "
             "or 'incremental' (cross-round factorization/runaway/"
             "bracket reuse)",
    )
    parser.add_argument(
        "--max-rounds", type=_rounds_count, default=None, metavar="N",
        help="greedy-round budget per row, N >= 1 (default: run to "
             "natural termination; exhausted rows report infeasible)",
    )
    parser.add_argument(
        "--round-stats", action="store_true",
        help="print per-round engine instrumentation after the table",
    )
    parser.set_defaults(func=_cmd_table1)


def _cmd_table1(args):
    from repro.experiments.table1 import run_table1
    from repro.io.results import rows_to_json, sweep_report_to_json

    comparison = run_table1(
        args.benchmarks, workers=args.workers,
        max_rounds=args.max_rounds, engine=args.engine,
    )
    print(comparison.render(markdown=args.markdown))
    print()
    print(
        "averages: P_TEC {:.2f} W (paper 1.70), SwingLoss {:.1f} C (paper 4.2)".format(
            comparison.avg_p_tec_w, comparison.avg_swing_loss_c
        )
    )
    if args.round_stats:
        if comparison.sweep_report is None:
            raise SystemExit(
                "repro table1: error: no per-round stats available for this run"
            )
        print()
        for result in comparison.sweep_report.results:
            rounds = result.values.get("round_stats", [])
            print("{} ({} engine, {} rounds):".format(
                result.name,
                result.values.get("deploy_engine", "cold"),
                len(rounds),
            ))
            _print_round_stats(rounds)
    if args.json:
        rows_to_json(comparison.rows, args.json, metadata={"tool": "repro " + __version__})
        print("rows written to {}".format(args.json))
    if args.sweep_report:
        if comparison.sweep_report is None:
            raise SystemExit(
                "repro table1: error: no sweep report available for this run"
            )
        sweep_report_to_json(
            comparison.sweep_report, args.sweep_report,
            metadata={"tool": "repro " + __version__},
        )
        print("sweep report written to {}".format(args.sweep_report))
    return 0 if all(row.feasible for row in comparison.rows) else 1


def _add_sweep(subparsers):
    parser = subparsers.add_parser(
        "sweep",
        help="run a many-scenario sweep (power scaling or Pareto budgets) "
             "over the parallel sweep engine",
    )
    parser.add_argument("--benchmark", default="alpha", help="base benchmark")
    kind = parser.add_mutually_exclusive_group()
    kind.add_argument(
        "--power-scales", nargs="+", type=float, default=None,
        metavar="FACTOR",
        help="GreedyDeploy capability envelope over scaled power maps "
             "(default sweep: 0.9 1.0 1.1 1.2 1.3)",
    )
    kind.add_argument(
        "--budgets", nargs="+", type=float, default=None, metavar="W",
        help="Pareto budget sweep (W) over the benchmark's greedy deployment",
    )
    parser.add_argument(
        "--limit", type=float, default=85.0,
        help="temperature limit for power-scaling sweeps (default 85 C)",
    )
    parser.add_argument(
        "--workers", type=_workers_count, default=None, metavar="N",
        help="process-pool size, N >= 1 (default: serial)",
    )
    add_backend_argument(
        parser,
        help="pin every scenario to one solver backend "
             "(default: the problem default, 'reuse')",
    )
    parser.add_argument(
        "--sweep-report", metavar="PATH", help="write the SweepReport as JSON"
    )
    parser.set_defaults(func=_cmd_sweep)


def _cmd_sweep(args):
    from repro.io.results import sweep_report_to_json
    from repro.sweep import SweepRunner, SweepSpec

    if args.budgets is not None:
        from repro.core.deploy import greedy_deploy
        from repro.core.pareto import front_from_sweep
        from repro.experiments.benchmarks import load_benchmark

        greedy = greedy_deploy(load_benchmark(args.benchmark))
        spec = SweepSpec.budget_sweep(
            args.benchmark, greedy.tec_tiles, args.budgets
        )
    else:
        factors = args.power_scales or (0.9, 1.0, 1.1, 1.2, 1.3)
        spec = SweepSpec.power_scaling(
            args.benchmark, factors=factors, limit_c=args.limit
        )
    if args.backend is not None:
        spec = spec.with_backend(args.backend)
    report = SweepRunner(args.workers).run(spec)
    if args.budgets is not None and report.ok:
        front = front_from_sweep(report)
        print("{:>12} {:>10} {:>12} {:>10}".format(
            "budget (W)", "i (A)", "P_TEC (W)", "peak (C)"))
        for point in front.points:
            print("{:>12.4g} {:>10.3f} {:>12.4g} {:>10.2f}".format(
                point.budget_w, point.current_a, point.p_tec_w, point.peak_c))
    else:
        for result in report.results:
            values = result.values
            print("{:<16} feasible={} TECs={:<3} i={:.2f} A peak={:.2f} C".format(
                result.name, values["feasible"], values["num_tecs"],
                values["current_a"], values["peak_c"]))
    print()
    print(report.summary())
    if args.sweep_report:
        sweep_report_to_json(
            report, args.sweep_report, metadata={"tool": "repro " + __version__}
        )
        print("sweep report written to {}".format(args.sweep_report))
    return 0 if report.ok else 1


def _add_solve(subparsers):
    parser = subparsers.add_parser(
        "solve", help="run GreedyDeploy on a benchmark or a custom .flp chip"
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark", help="registered benchmark name")
    source.add_argument("--flp", metavar="PATH", help="HotSpot floorplan file")
    parser.add_argument(
        "--powers", metavar="PATH",
        help="JSON file of unit worst-case powers (required with --flp)",
    )
    parser.add_argument(
        "--rows", type=int, default=12, help="tile rows for --flp (default 12)"
    )
    parser.add_argument(
        "--cols", type=int, default=12, help="tile cols for --flp (default 12)"
    )
    parser.add_argument(
        "--limit", type=float, default=None,
        help="max allowable temperature in C (default: benchmark's own / 85)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the result as JSON")
    parser.add_argument(
        "--full-cover", action="store_true",
        help="also run the Full-Cover baseline and report SwingLoss",
    )
    _add_solver_options(parser, "solve")
    parser.add_argument(
        "--engine", choices=_ENGINES, default=None,
        help="GreedyDeploy engine: 'cold' (per-round recompute, default) "
             "or 'incremental' (cross-round factorization/runaway/"
             "bracket reuse)",
    )
    parser.add_argument(
        "--max-rounds", type=_rounds_count, default=None, metavar="N",
        help="greedy-round budget, N >= 1 (default: run to natural "
             "termination; an exhausted budget reports infeasible)",
    )
    parser.add_argument(
        "--round-stats", action="store_true",
        help="print per-round engine instrumentation after the run",
    )
    parser.set_defaults(func=_cmd_solve)


def _cmd_solve(args):
    from repro.core.baselines import full_cover
    from repro.core.deploy import greedy_deploy
    from repro.io.results import deployment_to_dict

    problem = _load_problem(args)
    if args.limit is not None:
        problem = problem.with_limit(args.limit)
    if args.solver_mode is not None or args.solver_cache_size is not None:
        try:
            problem.configure_solver(
                mode=args.solver_mode, cache_size=args.solver_cache_size
            )
        except ValueError as error:
            raise SystemExit("repro solve: error: {}".format(error))

    result = greedy_deploy(
        problem,
        max_rounds=args.max_rounds,
        engine=args.engine if args.engine is not None else "cold",
    )
    print("problem: {} (limit {:.1f} C)".format(problem.name, problem.max_temperature_c))
    print("feasible:     {}".format(result.feasible))
    print("no-TEC peak:  {:.2f} C".format(result.no_tec_peak_c))
    print("devices:      {}".format(result.num_tecs))
    print("I_opt:        {:.2f} A".format(result.current))
    print("P_TEC:        {:.2f} W".format(result.tec_power_w))
    print("cooled peak:  {:.2f} C".format(result.peak_c))
    print("tiles:        {}".format(list(result.tec_tiles)))
    if args.full_cover:
        baseline = full_cover(problem)
        print("full-cover best peak: {:.2f} C (SwingLoss {:.2f} C)".format(
            baseline.min_peak_c, baseline.min_peak_c - result.peak_c))
    if args.round_stats and result.deploy_stats is not None:
        print("round stats ({}):".format(result.deploy_stats.summary()))
        _print_round_stats([r.as_dict() for r in result.deploy_stats.rounds])
    if args.solver_stats and result.solver_stats is not None:
        print("solver stats ({} backend):".format(problem.solver_mode))
        for line in result.solver_stats.summary().splitlines():
            print("  " + line)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(deployment_to_dict(result), handle, indent=2)
        print("result written to {}".format(args.json))
    return 0 if result.feasible else 1


def _load_problem(args):
    from repro.core.problem import CoolingSystemProblem
    from repro.experiments.benchmarks import load_benchmark

    if args.benchmark:
        return load_benchmark(args.benchmark)
    if not args.powers:
        raise SystemExit("--flp requires --powers (JSON of unit powers)")
    from repro.io.flp import floorplan_from_flp
    from repro.thermal.geometry import TileGrid

    with open(args.powers) as handle:
        unit_powers = json.load(handle)
    grid = TileGrid(args.rows, args.cols)
    floorplan = floorplan_from_flp(args.flp, grid, unit_powers)
    return CoolingSystemProblem.from_floorplan(floorplan, name=args.flp)


def _add_solver_options(parser, command):
    """The shared solver-backend flags (``solve``/``transient``/``control``)."""
    add_backend_argument(
        parser,
        flags=("--backend", "--solver-mode"),
        dest="solver_mode",
        help="steady-state solver backend: 'reuse' (blocked Woodbury, "
             "default), 'direct' (one LU per distinct current), 'krylov' "
             "(G-preconditioned GMRES with direct fallback), 'cholesky' "
             "(sparse SPD factorization; CHOLMOD when installed), or "
             "'auto' (reuse vs krylov by support size)",
    )
    parser.add_argument(
        "--solver-cache-size", type=int, default=None,
        help="per-current factorization/solution cache size (default 8)",
    )
    parser.add_argument(
        "--solver-stats", action="store_true",
        help="print solve-engine instrumentation after the run",
    )
    parser.set_defaults(_solver_command=command)


def _deployed_model(args):
    """Problem + deployed model for ``transient`` / ``control``.

    ``--tiles`` fixes the deployment explicitly; without it the
    benchmark's GreedyDeploy solution is used (and its optimum current
    becomes the default current where one is needed).
    """
    from repro.experiments.benchmarks import load_benchmark

    problem = load_benchmark(args.benchmark)
    if args.solver_mode is not None or args.solver_cache_size is not None:
        try:
            problem.configure_solver(
                mode=args.solver_mode, cache_size=args.solver_cache_size
            )
        except ValueError as error:
            raise SystemExit(
                "repro {}: error: {}".format(args._solver_command, error)
            )
    greedy = None
    if args.tiles:
        tiles = tuple(sorted({int(t) for t in args.tiles}))
    else:
        from repro.core.deploy import greedy_deploy

        greedy = greedy_deploy(problem)
        tiles = tuple(greedy.tec_tiles)
    return problem, problem.model(tiles), greedy


def _default_current(model, greedy):
    """Fall back to the deployment's Problem 2 optimum current."""
    if greedy is not None:
        return float(greedy.current)
    from repro.core.current import minimize_peak_temperature

    return float(minimize_peak_temperature(model).current)


def _print_solver_stats(problem, delta):
    print("solver stats ({} backend):".format(problem.solver_mode))
    for line in delta.summary().splitlines():
        print("  " + line)


def _add_transient(subparsers):
    parser = subparsers.add_parser(
        "transient",
        help="backward-Euler warm-up trajectory of a deployment "
             "(shared solve-session with the steady solver)",
        parents=[_rom_parent_parser()],
    )
    parser.add_argument("--benchmark", default="alpha", help="registered benchmark")
    parser.add_argument(
        "--tiles", nargs="+", type=int, default=None, metavar="TILE",
        help="deployed TEC tiles (default: the benchmark's greedy solution)",
    )
    parser.add_argument(
        "--current", type=float, default=None, metavar="A",
        help="fixed supply current (default: the deployment's I_opt)",
    )
    parser.add_argument(
        "--dt", type=float, default=1.0e-3, metavar="S",
        help="backward-Euler step in seconds (default 1 ms)",
    )
    parser.add_argument(
        "--steps", type=int, default=200, metavar="N",
        help="integration steps (default 200)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the result as JSON")
    _add_solver_options(parser, "transient")
    parser.set_defaults(func=_cmd_transient)


def _cmd_transient(args):
    from repro.thermal.transient import TransientSimulator

    if args.dt <= 0.0:
        raise SystemExit("repro transient: error: --dt must be positive")
    if args.steps < 1:
        raise SystemExit("repro transient: error: --steps must be >= 1")
    problem, model, greedy = _deployed_model(args)
    current = (
        float(args.current) if args.current is not None
        else _default_current(model, greedy)
    )
    stats_before = problem.solver_stats.copy()
    simulator = TransientSimulator(
        model, current=current, dt=args.dt, initial_state="ambient",
        rom=args.rom, rom_dim=args.rom_dim, rom_tol=args.rom_tol,
    )
    trace = simulator.run(args.steps)
    steady_peak = float(model.solve(current).peak_silicon_c)
    delta = problem.solver_stats.diff(stats_before)
    final_peak = float(trace[-1])
    max_peak = float(trace.max())
    print("problem: {} (limit {:.1f} C)".format(problem.name, problem.max_temperature_c))
    print("deployment:  {} TECs at i = {:.3f} A".format(len(model.stamps), current))
    print("integrated:  {} steps of {:.4g} s ({:.4g} s total)".format(
        args.steps, args.dt, args.steps * args.dt))
    print("final peak:  {:.2f} C".format(final_peak))
    print("max peak:    {:.2f} C".format(max_peak))
    print("steady peak: {:.2f} C (gap {:.3f} C)".format(
        steady_peak, steady_peak - final_peak))
    if simulator.rom_active:
        print("rom:         dim {} certified error {:.2e} K".format(
            simulator.rom_stats()["dim"], simulator.certified_error_k))
    if args.solver_stats:
        _print_solver_stats(problem, delta)
    if args.json:
        payload = {
            "benchmark": args.benchmark,
            "tec_tiles": [int(stamp.tile) for stamp in model.stamps],
            "current_a": current,
            "dt_s": float(args.dt),
            "steps": int(args.steps),
            "peak_trace_c": [float(v) for v in trace],
            "final_peak_c": final_peak,
            "max_peak_c": max_peak,
            "steady_peak_c": steady_peak,
            "steady_gap_c": steady_peak - final_peak,
            "solver_stats": delta.as_dict(),
            "rom": (
                dict(
                    simulator.rom_stats(),
                    certified_error_k=simulator.certified_error_k,
                )
                if simulator.rom_active else None
            ),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print("result written to {}".format(args.json))
    return 0 if max_peak <= problem.max_temperature_c else 1


def _add_control(subparsers):
    parser = subparsers.add_parser(
        "control",
        help="closed-loop DTM simulation (controller + sensors over the "
             "shared solve-session)",
        parents=[_rom_parent_parser()],
    )
    parser.add_argument("--benchmark", default="alpha", help="registered benchmark")
    parser.add_argument(
        "--tiles", nargs="+", type=int, default=None, metavar="TILE",
        help="deployed TEC tiles (default: the benchmark's greedy solution)",
    )
    parser.add_argument(
        "--controller", choices=("bangbang", "pi", "constant"),
        default="bangbang", help="DTM policy (default bangbang)",
    )
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="C",
        help="controller threshold/setpoint in C (default: the "
             "benchmark's temperature limit)",
    )
    parser.add_argument(
        "--current", type=float, default=None, metavar="A",
        help="constant-controller command (default: the deployment's I_opt)",
    )
    parser.add_argument(
        "--steps", type=int, default=400, metavar="N",
        help="integration steps (default 400)",
    )
    parser.add_argument(
        "--dt", type=float, default=0.01, metavar="S",
        help="integration step in seconds (default 10 ms)",
    )
    parser.add_argument(
        "--control-period", type=float, default=0.05, metavar="S",
        help="seconds between controller updates (default 50 ms)",
    )
    parser.add_argument(
        "--quantum", type=float, default=0.05, metavar="A",
        help="current quantization step for factorization caching "
             "(default 0.05 A)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the result as JSON")
    _add_solver_options(parser, "control")
    parser.set_defaults(func=_cmd_control)


def _cmd_control(args):
    from repro.control.controllers import (
        BangBangController,
        ConstantCurrentController,
        PiController,
    )
    from repro.control.loop import ClosedLoopSimulator
    from repro.control.sensors import SensorArray

    if args.steps < 1:
        raise SystemExit("repro control: error: --steps must be >= 1")
    problem, model, greedy = _deployed_model(args)
    threshold = (
        float(args.threshold) if args.threshold is not None
        else float(problem.max_temperature_c)
    )
    if args.controller == "bangbang":
        controller = BangBangController(threshold)
    elif args.controller == "pi":
        controller = PiController(threshold)
    else:
        current = (
            float(args.current) if args.current is not None
            else _default_current(model, greedy)
        )
        controller = ConstantCurrentController(current)
    # Deterministic sensors: noise-free, unquantized, fixed stream —
    # the CLI's runs must be reproducible for scripting.
    sensor_tiles = {int(stamp.tile) for stamp in model.stamps}
    sensor_tiles.add(int(model.solve(0.0).peak_tile))
    sensors = SensorArray(sensor_tiles, noise_std_c=0.0, quantization_c=0.0, seed=0)
    try:
        simulator = ClosedLoopSimulator(
            model, controller, sensors,
            dt=args.dt, control_period=args.control_period,
            current_quantum=args.quantum,
            rom=args.rom, rom_dim=args.rom_dim, rom_tol=args.rom_tol,
        )
    except ValueError as error:
        raise SystemExit("repro control: error: {}".format(error))
    result = simulator.run(args.steps)
    final_peak = float(result.true_peak_c[-1])
    print("problem: {} (limit {:.1f} C)".format(problem.name, problem.max_temperature_c))
    print("loop:        {} controller, threshold {:.1f} C, {} TECs".format(
        args.controller, threshold, len(model.stamps)))
    print("integrated:  {} steps of {:.4g} s ({:.4g} s total)".format(
        args.steps, args.dt, args.steps * args.dt))
    print("max peak:    {:.2f} C (true)".format(result.max_true_peak_c))
    print("final peak:  {:.2f} C at i = {:.2f} A".format(
        final_peak, float(result.current_a[-1])))
    print("time above limit: {:.1%}".format(result.time_above(problem.max_temperature_c)))
    print("TEC energy:  {:.3f} J".format(result.tec_energy_j))
    print("factorizations: {} current levels ({} evicted)".format(
        result.factorizations, result.evictions))
    print("wall clock:  {:.3f} s for {} steps".format(result.wall_s, result.steps))
    if result.rom is not None:
        print("rom:         dim {} certified error {:.2e} K".format(
            result.rom["dim"], result.rom["certified_error_k"]))
    if args.solver_stats:
        from repro.thermal.session import SolverStats

        _print_solver_stats(problem, SolverStats(**result.solver_stats))
    if args.json:
        payload = {
            "benchmark": args.benchmark,
            "tec_tiles": [int(stamp.tile) for stamp in model.stamps],
            "controller": args.controller,
            "threshold_c": threshold,
            "dt_s": float(args.dt),
            "control_period_s": float(args.control_period),
            "current_quantum_a": float(args.quantum),
            "steps": int(args.steps),
            "max_true_peak_c": result.max_true_peak_c,
            "final_peak_c": final_peak,
            "final_current_a": float(result.current_a[-1]),
            "time_above_limit": result.time_above(problem.max_temperature_c),
            "tec_energy_j": float(result.tec_energy_j),
            "factorizations": int(result.factorizations),
            "evictions": int(result.evictions),
            "solver_stats": result.solver_stats,
            "wall_s": float(result.wall_s),
            "rom": result.rom,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print("result written to {}".format(args.json))
    return 0 if final_peak <= problem.max_temperature_c else 1


def _add_validate(subparsers):
    parser = subparsers.add_parser(
        "validate", help="compact model vs fine-grid reference (< 1.5 C claim)"
    )
    parser.add_argument("--refine", type=int, default=1)
    parser.add_argument("--trace-steps", type=int, default=20)
    parser.set_defaults(func=_cmd_validate)


def _cmd_validate(args):
    from repro.experiments.validation import run_validation

    outcome = run_validation(
        refine=args.refine, trace_steps=args.trace_steps,
        snapshots=(args.trace_steps - 1,),
    )
    for label, value in sorted(outcome.per_case.items()):
        print("  {:<24} worst |diff| = {:.3f} C".format(label, value))
    print("overall worst: {:.3f} C (tolerance {:.1f} C) -> {}".format(
        outcome.worst_abs_diff_c, outcome.tolerance_c,
        "PASS" if outcome.passed else "FAIL"))
    return 0 if outcome.passed else 1


def _add_runaway(subparsers):
    parser = subparsers.add_parser(
        "runaway", help="runaway current and blow-up curve of a deployment"
    )
    parser.add_argument("--benchmark", default="alpha")
    parser.set_defaults(func=_cmd_runaway)


def _cmd_runaway(args):
    from repro.core.deploy import greedy_deploy
    from repro.core.runaway import runaway_curve
    from repro.experiments.benchmarks import load_benchmark

    problem = load_benchmark(args.benchmark)
    result = greedy_deploy(problem)
    curve = runaway_curve(result.model, max_fraction=0.9999)
    print("deployment: {} TECs, I_opt {:.2f} A".format(result.num_tecs, result.current))
    print("lambda_m = {:.3f} A".format(curve.lambda_m))
    print("{:>12} {:>16}".format("i (A)", "peak (C)"))
    for current, peak in zip(curve.currents, curve.peak_c):
        print("{:>12.2f} {:>16.1f}".format(current, peak))
    return 0 if curve.diverged else 1


def _add_conjecture(subparsers):
    parser = subparsers.add_parser(
        "conjecture", help="randomized Conjecture 1 verification campaign"
    )
    parser.add_argument("--matrices", type=int, default=200)
    parser.add_argument("--min-size", type=int, default=3)
    parser.add_argument("--max-size", type=int, default=12)
    parser.add_argument("--seed", type=int, default=1364)
    parser.set_defaults(func=_cmd_conjecture)


def _cmd_conjecture(args):
    from repro.linalg.conjecture import run_conjecture_campaign

    result = run_conjecture_campaign(
        args.matrices, size_range=(args.min_size, args.max_size), seed=args.seed
    )
    print("matrices tested: {}".format(result.matrices_tested))
    print("(k,l) pairs:     {}".format(result.pairs_tested))
    print("violations:      {}".format(len(result.violations)))
    print("worst margin:    {:.6e}".format(result.worst_margin))
    print("conjecture {} on this campaign".format("HOLDS" if result.holds else "FAILS"))
    return 0 if result.holds else 1


def _add_report(subparsers):
    parser = subparsers.add_parser(
        "report", help="generate the full markdown experiment report"
    )
    parser.add_argument("--out", metavar="PATH", help="write the report here")
    parser.add_argument(
        "--benchmarks", nargs="+", default=None,
        help="Table I rows to include (default: all)",
    )
    parser.add_argument("--conjecture-matrices", type=int, default=100)
    parser.set_defaults(func=_cmd_report)


def _cmd_report(args):
    from repro.experiments.report import generate_report

    report = generate_report(
        benchmarks=args.benchmarks,
        conjecture_matrices=args.conjecture_matrices,
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print("report written to {}".format(args.out))
    else:
        print(report)
    return 0


def _add_info(subparsers):
    parser = subparsers.add_parser(
        "info", help="print the calibrated package/device defaults"
    )
    parser.set_defaults(func=_cmd_info)


def _cmd_info(_args):
    from repro.tec.materials import chowdhury_thin_film_tec
    from repro.thermal.stack import PackageStack

    stack = PackageStack()
    device = chowdhury_thin_film_tec()
    print("repro {} — DATE 2010 TEC cooling reproduction".format(__version__))
    print("\npackage stack (calibrated; see DESIGN.md):")
    for layer in stack.conduction_layers():
        side = "{:.1f} mm".format(layer.side * 1e3) if layer.side else "die-sized"
        print("  {:<9} {:>7.0f} um  k={:>5.1f} W/mK  {}".format(
            layer.name, layer.thickness * 1e6,
            layer.material.thermal_conductivity, side))
    print("  convection R = {:.3f} K/W, ambient {:.1f} C".format(
        stack.convection_resistance, stack.ambient_c))
    print("\nTEC device (calibrated thin-film super-lattice):")
    print("  alpha = {:.1e} V/K, r = {:.2f} mohm, kappa = {:.1f} mW/K".format(
        device.seebeck, device.electrical_resistance * 1e3,
        device.thermal_conductance * 1e3))
    print("  contacts g_c = g_h = {:.2f} W/K, footprint {:.1f} x {:.1f} mm".format(
        device.cold_contact_conductance, device.width * 1e3, device.height * 1e3))
    print("  lumped Z = {:.2e} 1/K (ZT = {:.2f} at 358 K)".format(
        device.figure_of_merit, device.zt(358.15)))
    return 0


def _chiplet_spec(text):
    """argparse type for ``--chiplet``: ``rows,cols,row0,col0,power_w``."""
    parts = text.split(",")
    if len(parts) != 5:
        raise argparse.ArgumentTypeError(
            "expected rows,cols,row_offset,col_offset,power_w; got {!r}".format(
                text
            )
        )
    try:
        rows, cols, row0, col0 = (int(p) for p in parts[:4])
        power = float(parts[4])
    except ValueError:
        raise argparse.ArgumentTypeError(
            "chiplet fields must be 4 ints and a float, got {!r}".format(text)
        )
    return (rows, cols, row0, col0, power)


def _add_chiplet(subparsers):
    parser = subparsers.add_parser(
        "chiplet",
        help="solve or deploy a 2.5D multi-chiplet package "
             "(shared interposer + spreader/sink)",
    )
    parser.add_argument(
        "--chiplet", dest="chiplets", action="append", type=_chiplet_spec,
        default=None, metavar="R,C,R0,C0,W",
        help="one chiplet as rows,cols,row_offset,col_offset,power_w "
             "(repeatable; default: the two-chiplet demo layout)",
    )
    parser.add_argument(
        "--rows", type=int, default=8,
        help="preset chiplet rows when --chiplet is not given (default 8)",
    )
    parser.add_argument(
        "--cols", type=int, default=8,
        help="preset chiplet cols when --chiplet is not given (default 8)",
    )
    parser.add_argument(
        "--gap", type=int, default=2,
        help="preset lattice columns between the two chiplets (default 2)",
    )
    parser.add_argument(
        "--power", type=float, default=30.0, metavar="W",
        help="preset per-chiplet power when --chiplet is not given "
             "(default 30 W)",
    )
    parser.add_argument(
        "--no-interposer", action="store_true",
        help="drop the interposer (chiplets couple only through the "
             "shared spreader)",
    )
    parser.add_argument(
        "--board-resistance", type=float, default=None, metavar="K/W",
        help="lumped interposer-to-board resistance (default: adiabatic "
             "board)",
    )
    parser.add_argument(
        "--limit", type=float, default=85.0, metavar="C",
        help="temperature limit theta_max in Celsius (default 85)",
    )
    parser.add_argument(
        "--deploy", action="store_true",
        help="run GreedyDeploy (default: report the bare steady state)",
    )
    parser.add_argument(
        "--per-chiplet-current", action="store_true",
        help="after --deploy, optimize one supply current per chiplet "
             "(pin groups) and report the gain over the shared pin",
    )
    parser.add_argument(
        "--engine", choices=list(_ENGINES), default=None,
        help="GreedyDeploy engine (default cold)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the result as JSON")
    _add_solver_options(parser, "chiplet")
    parser.set_defaults(func=_cmd_chiplet)


def _cmd_chiplet(args):
    import numpy as np

    from repro.core.problem import CoolingSystemProblem
    from repro.thermal.chiplet import (
        InterposerSpec,
        demo_two_chiplet_layout,
        layout_from_plain,
    )

    if args.no_interposer:
        interposer = False
    elif args.board_resistance is not None:
        interposer = InterposerSpec(board_resistance=args.board_resistance)
    else:
        interposer = True
    try:
        if args.chiplets:
            layout = layout_from_plain(args.chiplets, interposer=interposer)
        else:
            layout = demo_two_chiplet_layout(
                rows=args.rows, cols=args.cols, gap=args.gap,
                power_w=args.power,
                interposer=(
                    None if interposer is True
                    else (interposer if interposer is not False else
                          InterposerSpec())
                ),
            )
            if args.no_interposer:
                from dataclasses import replace as _replace

                layout = _replace(layout, interposer=None)
        problem = CoolingSystemProblem.from_chiplet_layout(
            layout, max_temperature_c=args.limit, name="chiplet",
        )
        if args.solver_mode is not None or args.solver_cache_size is not None:
            problem.configure_solver(
                mode=args.solver_mode, cache_size=args.solver_cache_size
            )
    except ValueError as error:
        raise SystemExit("repro chiplet: error: {}".format(error))

    grid = layout.composite_grid()
    print("package: {} chiplet(s), {} tiles on a {}x{} lattice, {:.1f} W".format(
        layout.num_chiplets, grid.num_tiles, grid.rows, grid.cols,
        layout.total_power_w))
    print("interposer: {}".format(
        "none" if layout.interposer is None else
        "{:.0f} um, microbump {:.2f} W/K per tile{}".format(
            layout.interposer.thickness * 1e6,
            layout.interposer.microbump_conductance,
            "" if layout.interposer.board_resistance is None else
            ", board {:.2f} K/W".format(layout.interposer.board_resistance))))

    stats_before = problem.solver_stats.copy()
    payload = {
        "chiplets": [
            [spec.grid.rows, spec.grid.cols, spec.row_offset,
             spec.col_offset, spec.total_power_w]
            for spec in layout.chiplets
        ],
        "limit_c": float(problem.max_temperature_c),
        "interposer": layout.interposer is not None,
    }

    def _per_chiplet_peaks(state):
        return {
            spec.name: float(np.max(
                state.silicon_c[list(layout.chiplet_tiles(index))]
            ))
            for index, spec in enumerate(layout.chiplets)
        }

    if not args.deploy:
        state = problem.model(()).solve(0.0)
        peaks = _per_chiplet_peaks(state)
        print("bare peak:   {:.2f} C (limit {:.1f} C)".format(
            state.peak_silicon_c, problem.max_temperature_c))
        for name, peak in peaks.items():
            print("  {:<12} {:.2f} C".format(name, peak))
        payload.update({
            "task": "solve",
            "peak_c": float(state.peak_silicon_c),
            "per_chiplet_peak_c": peaks,
        })
        exit_code = 0 if state.peak_silicon_c <= problem.max_temperature_c else 1
    else:
        result = problem.deploy(
            engine=args.engine if args.engine is not None else "cold"
        )
        by_chiplet = result.tiles_by_chiplet()
        state = result.model.solve(result.current)
        peaks = _per_chiplet_peaks(state)
        print("feasible:     {}".format(result.feasible))
        print("no-TEC peak:  {:.2f} C".format(result.no_tec_peak_c))
        print("devices:      {}".format(result.num_tecs))
        print("I_opt:        {:.2f} A".format(result.current))
        print("P_TEC:        {:.2f} W".format(result.tec_power_w))
        print("cooled peak:  {:.2f} C".format(result.peak_c))
        for name, tiles in by_chiplet.items():
            print("  {:<12} {} TECs, peak {:.2f} C".format(
                name, len(tiles), peaks[name]))
        payload.update({
            "task": "deploy",
            "feasible": bool(result.feasible),
            "num_tecs": int(result.num_tecs),
            "current_a": float(result.current),
            "peak_c": float(result.peak_c),
            "no_tec_peak_c": float(result.no_tec_peak_c),
            "tec_power_w": float(result.tec_power_w),
            "tec_tiles": [int(t) for t in result.tec_tiles],
            "tiles_by_chiplet": {
                name: [int(t) for t in tiles]
                for name, tiles in by_chiplet.items()
            },
            "per_chiplet_peak_c": peaks,
        })
        if args.per_chiplet_current and result.model.stamps:
            from repro.core.multipin import chiplet_groups, optimize_pin_groups

            pins = optimize_pin_groups(
                result.model, groups=chiplet_groups(result.model),
                shared_start=result.current,
            )
            print("per-chiplet currents: {} (peak {:.2f} C, "
                  "gain {:.3f} C over shared pin)".format(
                      ["{:.2f}".format(c) for c in pins.group_currents],
                      pins.peak_c, pins.improvement_c))
            payload["per_chiplet_currents_a"] = [
                float(c) for c in pins.group_currents
            ]
            payload["per_chiplet_peak_after_c"] = float(pins.peak_c)
            payload["per_chiplet_gain_c"] = float(pins.improvement_c)
        exit_code = 0 if result.feasible else 1

    delta = problem.solver_stats.diff(stats_before)
    if args.solver_stats:
        _print_solver_stats(problem, delta)
    payload["solver_stats"] = delta.as_dict()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print("result written to {}".format(args.json))
    return exit_code


def _add_serve(subparsers):
    parser = subparsers.add_parser(
        "serve",
        help="run the thermal-as-a-service HTTP API "
             "(/solve /sweep /deploy /transient)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8080, help="TCP port (default 8080; 0 = ephemeral)"
    )
    parser.add_argument(
        "--pool-size", type=int, default=None, metavar="N",
        help="warm-session LRU capacity, distinct chips kept hot "
             "(default 8; 0 disables the warm pool)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=None, metavar="SECONDS",
        help="same-chip request coalescing window (default 0.005; "
             "0 coalesces only within one event-loop tick)",
    )
    parser.add_argument(
        "--batch-max", type=int, default=None, metavar="N",
        help="max solve scenarios per coalesced batch (default 64)",
    )
    parser.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="solve-thread tier size for /solve and /transient (default 4)",
    )
    parser.add_argument(
        "--workers", type=_workers_count, default=None, metavar="N",
        help="process-pool tier size for /deploy and /sweep "
             "(default: machine cores)",
    )
    add_backend_argument(
        parser,
        help="default solver backend applied to requests that leave "
             "'backend' unset (default: the problem default, 'reuse')",
    )
    parser.set_defaults(func=_cmd_serve)


def _cmd_serve(args):
    from repro.serve import ServeConfig, create_app
    from repro.serve.server import run

    overrides = {
        "pool_size": args.pool_size,
        "batch_window_s": args.batch_window,
        "batch_max": args.batch_max,
        "threads": args.threads,
        "workers": args.workers,
        "default_backend": args.backend,
    }
    try:
        config = ServeConfig(**{
            key: value for key, value in overrides.items() if value is not None
        })
        app = create_app(config)
    except ValueError as error:
        raise SystemExit("repro serve: error: {}".format(error))
    print("repro serve: listening on http://{}:{} "
          "(pool {}, batch window {} s)".format(
              args.host, args.port, config.pool_size, config.batch_window_s))
    print("endpoints: POST /solve /sweep /deploy /transient; "
          "GET /healthz /stats — Ctrl-C to stop")
    run(app, host=args.host, port=args.port)
    return 0


def build_parser():
    """Construct the argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On-chip active cooling with thin-film TECs (DATE 2010 reproduction)",
    )
    parser.add_argument("--version", action="version", version="repro " + __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_table1(subparsers)
    _add_sweep(subparsers)
    _add_solve(subparsers)
    _add_transient(subparsers)
    _add_control(subparsers)
    _add_chiplet(subparsers)
    _add_validate(subparsers)
    _add_runaway(subparsers)
    _add_conjecture(subparsers)
    _add_report(subparsers)
    _add_serve(subparsers)
    _add_info(subparsers)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
