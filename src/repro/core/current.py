"""Problem 2: peak tile temperature minimization (Section V.C).

Given a deployment, find the shared supply current minimizing the
maximum silicon tile temperature:

    minimize  max_{k in SIL} theta_k(i)
    s.t.      (G - i D) theta = p(i),   0 <= i < lambda_m

The search range is capped by the runaway current ``lambda_m``
(Theorem 1): beyond it the steady state ceases to exist and
temperatures diverge (Theorem 2).  Under Conjecture 1 every
``theta_k(i)`` is convex on ``[0, lambda_m)`` (Theorem 3 + the Lemma 4
certificate), so the max is convex and any local minimum is global.

Two solvers are provided:

* ``method="golden"`` (default): bracket the minimum by doubling from
  zero, then golden-section — derivative-free, robust, and optimal for
  a 1-D convex objective;
* ``method="gradient"``: the paper's projected gradient descent with
  backtracking line search, using the exact derivative
  ``theta'(i) = H (D theta + 2 i j)`` obtained from
  ``H' = H D H`` and ``p'(i) = 2 i j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validate import check_in_range, check_positive

#: Golden ratio constant for the section search.
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass
class CurrentOptimizationResult:
    """Outcome of one Problem 2 solve.

    Attributes
    ----------
    current:
        The optimal shared supply current ``I_opt`` (A).
    peak_c:
        Peak silicon temperature at ``current`` (Celsius).
    lambda_m:
        Runaway current bounding the search (A; ``inf`` if no TEC).
    evaluations:
        Number of steady-state solves performed.
    method:
        ``"golden"`` or ``"gradient"``.
    converged:
        True when the bracket/step tolerance was met within the
        iteration budget.  For the gradient method this also requires
        that an Armijo line-search failure happened at a (projected)
        stationary point — exhausting the backtracking loop far from
        one reports False.
    history:
        Optional list of ``(current, peak_c)`` pairs visited.
    stats:
        :class:`~repro.thermal.solve.SolverStats` delta accumulated by
        the model's solve engine during this optimization.
    """

    current: float
    peak_c: float
    lambda_m: float
    evaluations: int
    method: str
    converged: bool
    history: list = field(default_factory=list)
    stats: object = None


class _PeakObjective:
    """Callable computing ``max_k theta_k(i)`` with solve counting."""

    def __init__(self, model, record_history=False):
        self.model = model
        self.evaluations = 0
        self.history = [] if record_history else None

    def __call__(self, current):
        self.evaluations += 1
        peak = self.model.solve(current).peak_silicon_c
        if self.history is not None:
            self.history.append((float(current), float(peak)))
        return peak

    def gradient(self, current):
        """Exact derivative of the peak tile temperature at ``current``.

        Differentiating ``(G - i D) theta = p_base + i^2 j`` gives
        ``theta'(i) = (G - i D)^{-1} (D theta + 2 i j)``; the active
        (hottest) tile's component is a (sub)gradient of the max.
        """
        state = self.model.solve(current)
        system = self.model.system
        rhs = system.d_diagonal * state.theta_k + 2.0 * current * system.joule
        derivative = self.model.solver.solve_rhs(current, rhs)
        return float(derivative[self.model.silicon_nodes[state.peak_tile]]), state


def minimize_peak_temperature(
    model,
    *,
    method="golden",
    tolerance=1.0e-4,
    safety_fraction=0.98,
    max_iterations=200,
    record_history=False,
):
    """Solve Problem 2 for one deployment.

    Parameters
    ----------
    model:
        A :class:`~repro.thermal.model.PackageThermalModel` with at
        least one TEC deployed.  (With none, the result is trivially
        ``i = 0``.)
    method:
        ``"golden"`` (default) or ``"gradient"`` (the paper's descent).
    tolerance:
        Absolute current tolerance on the final bracket / step (A).
    safety_fraction:
        The search is restricted to ``[0, safety_fraction * lambda_m]``
        to keep the linear solves well-conditioned; temperatures
        diverge at ``lambda_m``, so the minimizer is interior and
        unaffected for any sensible instance.
    max_iterations:
        Iteration budget for the section search / descent.
    record_history:
        Keep the ``(i, peak)`` evaluation trace in the result.

    Returns
    -------
    CurrentOptimizationResult
    """
    check_positive(tolerance, "tolerance")
    check_in_range(safety_fraction, "safety_fraction", 0.0, 1.0, inclusive=(False, False))
    objective = _PeakObjective(model, record_history=record_history)
    stats_before = model.solver.stats.copy()

    lambda_m = model.runaway_current().value
    if not model.stamps:
        peak = objective(0.0)
        return CurrentOptimizationResult(
            current=0.0,
            peak_c=peak,
            lambda_m=lambda_m,
            evaluations=objective.evaluations,
            method=method,
            converged=True,
            history=objective.history or [],
            stats=model.solver.stats.diff(stats_before),
        )

    if math.isinf(lambda_m):
        # D has no positive entry; physically impossible for a stamped
        # TEC (the hot node always carries +alpha), so treat as a
        # configuration error.
        raise ValueError("deployment has TECs but no runaway current; D is degenerate")
    upper = safety_fraction * lambda_m

    if method == "golden":
        result = _golden_section(objective, upper, tolerance, max_iterations)
    elif method == "gradient":
        result = _gradient_descent(objective, upper, tolerance, max_iterations)
    else:
        raise ValueError(
            "unknown method {!r}; use 'golden' or 'gradient'".format(method)
        )
    current, peak, converged = result
    return CurrentOptimizationResult(
        current=current,
        peak_c=peak,
        lambda_m=lambda_m,
        evaluations=objective.evaluations,
        method=method,
        converged=converged,
        history=objective.history or [],
        stats=model.solver.stats.diff(stats_before),
    )


def _golden_section(objective, upper, tolerance, max_iterations):
    """Bracket by doubling, then golden-section on the bracket."""
    f0 = objective(0.0)
    # Doubling phase: find b with f(b) above the running minimum, so the
    # convex objective's minimizer lies in [0, b].
    step = min(upper / 64.0, 1.0) or upper / 64.0
    best_i, best_f = 0.0, f0
    b = step
    fb = objective(b)
    doublings = 0
    while fb <= best_f and doublings < 60:
        best_i, best_f = b, fb
        b = min(2.0 * b, upper)
        fb = objective(b)
        doublings += 1
        if b >= upper:
            break
    lo, hi = 0.0, b

    # Golden-section search on [lo, hi].
    x1 = hi - _INV_PHI * (hi - lo)
    x2 = lo + _INV_PHI * (hi - lo)
    f1, f2 = objective(x1), objective(x2)
    iterations = 0
    while hi - lo > tolerance and iterations < max_iterations:
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - _INV_PHI * (hi - lo)
            f1 = objective(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + _INV_PHI * (hi - lo)
            f2 = objective(x2)
        iterations += 1
    candidates = [(f0, 0.0), (f1, x1), (f2, x2), (fb, b), (best_f, best_i)]
    peak, current = min(candidates)
    return float(current), float(peak), iterations < max_iterations


def _gradient_descent(objective, upper, tolerance, max_iterations):
    """The paper's method: projected gradient descent on ``[0, upper]``.

    Backtracking (Armijo) line search; the iterate is clipped to the
    feasible interval.  On the convex objective this converges to the
    global minimizer (Section V.C.3).
    """
    current = min(1.0, 0.25 * upper)
    value = objective(current)
    step = max(0.25, 0.05 * upper)
    converged = False
    for _ in range(max_iterations):
        grad, _ = objective.gradient(current)
        if abs(grad) < 1.0e-12:
            converged = True
            break
        direction = -math.copysign(1.0, grad)
        trial_step = step
        improved = False
        while trial_step > tolerance * 0.25:
            candidate = min(max(current + direction * trial_step, 0.0), upper)
            candidate_value = objective(candidate)
            if candidate_value < value - 1.0e-4 * trial_step * abs(grad):
                current, value = candidate, candidate_value
                step = trial_step * 1.5
                improved = True
                break
            trial_step *= 0.5
        if not improved:
            # Armijo exhaustion only certifies a (projected) stationary
            # point when a tolerance-sized move the *other* way does not
            # improve either — a misleading gradient (e.g. from a
            # near-singular solve) would otherwise be reported as
            # converged far from the minimizer.
            probe = min(max(current - direction * tolerance, 0.0), upper)
            probe_value = objective(probe) if probe != current else value
            converged = not (
                probe_value < value - 1.0e-9 * max(1.0, abs(value))
            )
            break
    return float(current), float(value), converged
