"""Problem 2: peak tile temperature minimization (Section V.C).

Given a deployment, find the shared supply current minimizing the
maximum silicon tile temperature:

    minimize  max_{k in SIL} theta_k(i)
    s.t.      (G - i D) theta = p(i),   0 <= i < lambda_m

The search range is capped by the runaway current ``lambda_m``
(Theorem 1): beyond it the steady state ceases to exist and
temperatures diverge (Theorem 2).  Under Conjecture 1 every
``theta_k(i)`` is convex on ``[0, lambda_m)`` (Theorem 3 + the Lemma 4
certificate), so the max is convex and any local minimum is global.

Three solvers are provided:

* ``method="golden"`` (default): bracket the minimum by doubling from
  zero, then golden-section — derivative-free, robust, and optimal for
  a 1-D convex objective;
* ``method="gradient"``: the paper's projected gradient descent with
  backtracking line search, using the exact derivative
  ``theta'(i) = H (D theta + 2 i j)`` obtained from
  ``H' = H D H`` and ``p'(i) = 2 i j``;
* ``method="brent"``: bounded Brent (scipy) — superlinear on the
  convex objective;
* ``method="newton"``: safeguarded secant (Illinois) root-find on the
  exact slope ``theta'(i)`` — each evaluation reuses the current's
  factorized system for the derivative solve, so a warm-started round
  converges in ~6-8 factorizations; the workhorse of the incremental
  deployment engine's warm rounds.

Warm starts: callers that already know ``lambda_m`` (the incremental
engine's shift-inverted estimate) pass it via ``lambda_m=`` to skip
the per-round dense eigensolve, and seed the search with ``bounds=``
— a sub-interval of ``[0, upper]`` around the previous round's
optimum, validated by interior-vs-edge probes and expanded when the
minimum moved outside it.

:func:`polish_current` refines any approximate minimizer by one
deterministic parabolic fit through three fixed-spacing samples —
independent of the evaluation path that produced the input, so two
differently warm-started searches polished the same way agree to
~1e-6 A even though solver round-off localizes the raw argmin only to
the plateau width ``sqrt(2 eps / f'')``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validate import check_in_range, check_positive

#: Golden ratio constant for the section search.
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass
class CurrentOptimizationResult:
    """Outcome of one Problem 2 solve.

    Attributes
    ----------
    current:
        The optimal shared supply current ``I_opt`` (A).
    peak_c:
        Peak silicon temperature at ``current`` (Celsius).
    lambda_m:
        Runaway current bounding the search (A; ``inf`` if no TEC).
    evaluations:
        Number of steady-state solves performed.
    method:
        ``"golden"`` or ``"gradient"``.
    converged:
        True when the bracket/step tolerance was met within the
        iteration budget.  For the gradient method this also requires
        that an Armijo line-search failure happened at a (projected)
        stationary point — exhausting the backtracking loop far from
        one reports False.
    history:
        Optional list of ``(current, peak_c)`` pairs visited.
    stats:
        :class:`~repro.thermal.solve.SolverStats` delta accumulated by
        the model's solve engine during this optimization.
    runaway_s / search_s:
        Wall-clock split: computing ``lambda_m`` (zero when injected
        by the caller) vs the 1-D search itself.
    warm_started:
        True when the search ran inside caller-provided ``bounds``.
    """

    current: float
    peak_c: float
    lambda_m: float
    evaluations: int
    method: str
    converged: bool
    history: list = field(default_factory=list)
    stats: object = None
    runaway_s: float = 0.0
    search_s: float = 0.0
    warm_started: bool = False


class _PeakObjective:
    """Callable computing ``max_k theta_k(i)`` with solve counting."""

    def __init__(self, model, record_history=False):
        self.model = model
        self.evaluations = 0
        self.history = [] if record_history else None

    def __call__(self, current):
        self.evaluations += 1
        peak = self.model.solve(current).peak_silicon_c
        if self.history is not None:
            self.history.append((float(current), float(peak)))
        return peak

    def gradient(self, current):
        """Exact derivative of the peak tile temperature at ``current``.

        Differentiating ``(G - i D) theta = p_base + i^2 j`` gives
        ``theta'(i) = (G - i D)^{-1} (D theta + 2 i j)``; the active
        (hottest) tile's component is a (sub)gradient of the max.
        """
        state = self.model.solve(current)
        system = self.model.system
        rhs = system.d_diagonal * state.theta_k + 2.0 * current * system.joule
        derivative = self.model.solver.solve_rhs(current, rhs)
        return float(derivative[self.model.silicon_nodes[state.peak_tile]]), state


def minimize_peak_temperature(
    model,
    *,
    method="golden",
    tolerance=1.0e-4,
    safety_fraction=0.98,
    max_iterations=200,
    record_history=False,
    lambda_m=None,
    bounds=None,
):
    """Solve Problem 2 for one deployment.

    Parameters
    ----------
    model:
        A :class:`~repro.thermal.model.PackageThermalModel` with at
        least one TEC deployed.  (With none, the result is trivially
        ``i = 0``.)
    method:
        ``"golden"`` (default), ``"gradient"`` (the paper's descent),
        ``"brent"`` (bounded Brent via scipy) or ``"newton"``
        (safeguarded secant on the exact slope).
    tolerance:
        Absolute current tolerance on the final bracket / step (A).
    safety_fraction:
        The search is restricted to ``[0, safety_fraction * lambda_m]``
        to keep the linear solves well-conditioned; temperatures
        diverge at ``lambda_m``, so the minimizer is interior and
        unaffected for any sensible instance.
    max_iterations:
        Iteration budget for the section search / descent.
    record_history:
        Keep the ``(i, peak)`` evaluation trace in the result.
    lambda_m:
        Externally computed runaway current (a float or anything with
        ``.value``/``__float__``).  Skips the internal
        ``model.runaway_current()`` eigensolve — the incremental
        deployment engine passes its warm shift-inverted estimate
        here.  Must be an *upper* bound on the true value only up to
        the safety margin: a ``1/safety_fraction`` overestimate still
        keeps the capped search interval valid.
    bounds:
        Optional ``(lo, hi)`` warm-start interval (A) believed to
        contain the minimizer — typically the previous greedy round's
        optimum scaled by the ``lambda_m`` ratio.  Clipped to
        ``[0, upper]``, validated by an interior-vs-edge probe and
        expanded (up to the full interval) when the minimum moved
        outside; used by ``"golden"`` and ``"brent"``.  ``"newton"``
        instead seeds its slope-sign bracket discovery from the
        interval — no validation probes, a drifted minimum just costs
        extra doubling steps.

    Returns
    -------
    CurrentOptimizationResult
    """
    check_positive(tolerance, "tolerance")
    check_in_range(safety_fraction, "safety_fraction", 0.0, 1.0, inclusive=(False, False))
    objective = _PeakObjective(model, record_history=record_history)
    stats_before = model.solver.stats.copy()

    runaway_start = time.perf_counter()
    if lambda_m is None:
        lambda_m = model.runaway_current().value
    else:
        lambda_m = float(lambda_m)
        if lambda_m <= 0.0:
            raise ValueError(
                "injected lambda_m must be positive, got {}".format(lambda_m)
            )
    runaway_s = time.perf_counter() - runaway_start

    search_start = time.perf_counter()
    if not model.stamps:
        peak = objective(0.0)
        return CurrentOptimizationResult(
            current=0.0,
            peak_c=peak,
            lambda_m=lambda_m,
            evaluations=objective.evaluations,
            method=method,
            converged=True,
            history=objective.history or [],
            stats=model.solver.stats.diff(stats_before),
            runaway_s=runaway_s,
            search_s=time.perf_counter() - search_start,
        )

    if math.isinf(lambda_m):
        # D has no positive entry; physically impossible for a stamped
        # TEC (the hot node always carries +alpha), so treat as a
        # configuration error.
        raise ValueError("deployment has TECs but no runaway current; D is degenerate")
    upper = safety_fraction * lambda_m

    warm_interval = None
    if bounds is not None and method in ("golden", "brent"):
        warm_interval = _validated_bounds(objective, bounds, upper)

    if method == "golden":
        if warm_interval is not None:
            result = _section_on_interval(
                objective, warm_interval, tolerance, max_iterations
            )
        else:
            result = _golden_section(objective, upper, tolerance, max_iterations)
    elif method == "gradient":
        result = _gradient_descent(objective, upper, tolerance, max_iterations)
    elif method == "brent":
        interval = warm_interval if warm_interval is not None else (0.0, upper)
        result = _brent_bounded(objective, interval, tolerance, max_iterations)
    elif method == "newton":
        result = _newton_on_slope(objective, bounds, upper, tolerance, max_iterations)
        warm_interval = bounds if bounds is not None else None
    else:
        raise ValueError(
            "unknown method {!r}; use 'golden', 'gradient', 'brent' or "
            "'newton'".format(method)
        )
    current, peak, converged = result
    return CurrentOptimizationResult(
        current=current,
        peak_c=peak,
        lambda_m=lambda_m,
        evaluations=objective.evaluations,
        method=method,
        converged=converged,
        history=objective.history or [],
        stats=model.solver.stats.diff(stats_before),
        runaway_s=runaway_s,
        search_s=time.perf_counter() - search_start,
        warm_started=warm_interval is not None,
    )


def _validated_bounds(objective, bounds, upper):
    """Clip, probe and (if needed) expand a warm-start interval.

    Returns ``(lo, hi)`` certified (for a convex objective) to contain
    the minimizer — ``f(mid) <= min(f(lo), f(hi))`` — or ``None`` when
    expansion hit the full ``[0, upper]`` interval, telling the caller
    to fall back to the cold search.  Costs 3 evaluations when the
    warm guess is good, up to ~6 more when the minimum drifted.
    """
    lo, hi = float(bounds[0]), float(bounds[1])
    lo = min(max(lo, 0.0), upper)
    hi = min(max(hi, lo), upper)
    if hi - lo <= 0.0:
        return None
    f_lo = objective(lo)
    f_hi = objective(hi)
    f_mid = objective(0.5 * (lo + hi))
    for _ in range(6):
        if f_mid <= min(f_lo, f_hi):
            return lo, hi
        width = hi - lo
        if f_lo <= f_hi:
            lo = max(0.0, lo - 2.0 * width)
            f_lo = objective(lo)
        else:
            hi = min(upper, hi + 2.0 * width)
            f_hi = objective(hi)
        f_mid = objective(0.5 * (lo + hi))
    return None


def _section_on_interval(objective, interval, tolerance, max_iterations):
    """Golden-section restricted to a validated bracket."""
    lo, hi = interval
    x1 = hi - _INV_PHI * (hi - lo)
    x2 = lo + _INV_PHI * (hi - lo)
    f1, f2 = objective(x1), objective(x2)
    edge_lo, edge_hi = lo, hi
    f_edge_lo, f_edge_hi = objective(lo), objective(hi)
    iterations = 0
    while hi - lo > tolerance and iterations < max_iterations:
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - _INV_PHI * (hi - lo)
            f1 = objective(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + _INV_PHI * (hi - lo)
            f2 = objective(x2)
        iterations += 1
    candidates = [
        (f1, x1), (f2, x2), (f_edge_lo, edge_lo), (f_edge_hi, edge_hi)
    ]
    peak, current = min(candidates)
    return float(current), float(peak), iterations < max_iterations


def _brent_bounded(objective, interval, tolerance, max_iterations):
    """Bounded Brent via scipy — superlinear on the convex objective."""
    from scipy.optimize import minimize_scalar

    lo, hi = interval
    outcome = minimize_scalar(
        lambda i: objective(float(i)),
        bounds=(lo, hi),
        method="bounded",
        options={"xatol": tolerance, "maxiter": max_iterations},
    )
    current = float(outcome.x)
    peak = float(outcome.fun)
    # fminbound never samples the exact endpoints; a minimum pinned at
    # zero (cooling never helps) must still be reported as i = 0.
    if lo == 0.0:
        f_zero = objective(0.0)
        if f_zero <= peak:
            current, peak = 0.0, f_zero
    return current, peak, bool(outcome.success)


def _newton_on_slope(objective, bounds, upper, tolerance, max_iterations):
    """Safeguarded secant (Illinois) root-find on the exact slope.

    The objective is convex on ``[0, upper]``, so its derivative is
    nondecreasing and the minimizer is the slope's sign change.  Each
    evaluation costs one solver factorization for the temperature plus
    one back-substitution for the derivative (same current, hence a
    cached factorization) — the cheapest information per factorization
    of all the methods.  Discovery doubles outward from the warm guess
    until the slope changes sign; Illinois refinement then converges
    superlinearly with a bisection-grade worst case.
    """
    evaluated = {}

    def eval_at(current):
        if current in evaluated:
            return evaluated[current]
        slope, state = objective.gradient(current)
        objective.evaluations += 1
        peak = float(state.peak_silicon_c)
        if objective.history is not None:
            objective.history.append((float(current), peak))
        evaluated[current] = (slope, peak)
        return slope, peak

    if bounds is not None:
        lo = min(max(float(bounds[0]), 0.0), upper)
        hi = min(max(float(bounds[1]), lo), upper)
        x = 0.5 * (lo + hi)
        step = max(0.5 * (hi - lo), tolerance)
    else:
        x = 0.5 * upper
        step = 0.25 * upper

    neg = pos = None
    slope_neg = slope_pos = 0.0
    for _ in range(60):
        slope, peak = eval_at(x)
        if slope == 0.0:
            return x, peak, True
        if slope < 0.0:
            neg, slope_neg = x, slope
            if pos is not None:
                break
            if x >= upper:
                # Still descending at the capped interval's end: the
                # safety margin is the binding constraint.
                return upper, peak, True
            x = min(x + step, upper)
        else:
            pos, slope_pos = x, slope
            if neg is not None:
                break
            if x <= 0.0:
                # Heating from the first ampere on: cooling never helps.
                return 0.0, peak, True
            x = max(x - step, 0.0)
        step *= 2.0
    if neg is None or pos is None:
        best = min(evaluated, key=lambda key: evaluated[key][1])
        return best, evaluated[best][1], False

    side = 0
    iterations = 0
    while pos - neg > tolerance and iterations < max_iterations:
        iterations += 1
        denominator = slope_pos - slope_neg
        if denominator > 0.0:
            x = pos - slope_pos * (pos - neg) / denominator
        else:
            x = 0.5 * (neg + pos)
        if not neg < x < pos:
            x = 0.5 * (neg + pos)
        slope, peak = eval_at(x)
        if slope == 0.0:
            return x, peak, True
        if slope < 0.0:
            neg, slope_neg = x, slope
            if side == -1:
                slope_pos *= 0.5
            side = -1
        else:
            pos, slope_pos = x, slope
            if side == 1:
                slope_neg *= 0.5
            side = 1
    best = min(evaluated, key=lambda key: evaluated[key][1])
    return best, evaluated[best][1], pos - neg <= tolerance


def polish_current(model, current, *, spacing=1.0e-3, upper=None,
                   max_refinements=6):
    """Deterministic parabolic refinement of a Problem 2 minimizer.

    Solver round-off flattens the objective into a noise plateau of
    width ``sqrt(2 eps / f'')`` around the true minimizer, so two
    searches taking different evaluation paths (cold vs warm-started)
    return raw optima scattered across that plateau — far wider than
    1e-6 A.  Fitting a parabola through ``f`` at three *fixed-spacing*
    samples ``{i - h, i, i + h}`` with ``h`` much larger than the
    noise averages the plateau away.  A single fit still carries an
    ``O((i - i*)^2 f''' / f'')`` bias from the start point, so the fit
    is iterated — recentered on each vertex — until the vertex moves
    by less than ``1e-4 h`` (a fixed point independent of which
    plateau point seeded it, reproducible to ~1e-7 A).  Used by the
    incremental engine on its final optimum and by the
    cold/incremental agreement checks.

    Returns ``(polished_current, evaluations)`` — the best center so
    far (the input current on the first step) when the local samples
    are not convex, when the vertex falls outside ``[i - 2h, i + 2h]``,
    or when the window cannot be placed inside ``[0, upper]``.
    """
    check_positive(spacing, "spacing")
    h = float(spacing)
    center = float(current)
    evaluations = 0
    for _ in range(int(max_refinements)):
        window = center
        lo = window - h
        if lo < 0.0:
            window = h
            lo = 0.0
        hi = window + h
        if upper is not None and hi > float(upper):
            window = float(upper) - h
            lo, hi = window - h, window + h
            if lo < 0.0:
                return center, evaluations
        f_lo = float(model.solve(lo).peak_silicon_c)
        f_mid = float(model.solve(window).peak_silicon_c)
        f_hi = float(model.solve(hi).peak_silicon_c)
        evaluations += 3
        curvature = f_lo - 2.0 * f_mid + f_hi
        if curvature <= 0.0 or not math.isfinite(curvature):
            return center, evaluations
        vertex = window + 0.5 * h * (f_lo - f_hi) / curvature
        if abs(vertex - window) > 2.0 * h or not math.isfinite(vertex):
            return center, evaluations
        vertex = max(vertex, 0.0)
        if upper is not None:
            vertex = min(vertex, float(upper))
        moved = abs(vertex - center)
        center = float(vertex)
        if moved <= 1.0e-4 * h:
            break
    return center, evaluations


def _golden_section(objective, upper, tolerance, max_iterations):
    """Bracket by doubling, then golden-section on the bracket."""
    f0 = objective(0.0)
    # Doubling phase: find b with f(b) above the running minimum, so the
    # convex objective's minimizer lies in [0, b].
    step = min(upper / 64.0, 1.0) or upper / 64.0
    best_i, best_f = 0.0, f0
    b = step
    fb = objective(b)
    doublings = 0
    while fb <= best_f and doublings < 60:
        best_i, best_f = b, fb
        b = min(2.0 * b, upper)
        fb = objective(b)
        doublings += 1
        if b >= upper:
            break
    lo, hi = 0.0, b

    # Golden-section search on [lo, hi].
    x1 = hi - _INV_PHI * (hi - lo)
    x2 = lo + _INV_PHI * (hi - lo)
    f1, f2 = objective(x1), objective(x2)
    iterations = 0
    while hi - lo > tolerance and iterations < max_iterations:
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - _INV_PHI * (hi - lo)
            f1 = objective(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + _INV_PHI * (hi - lo)
            f2 = objective(x2)
        iterations += 1
    candidates = [(f0, 0.0), (f1, x1), (f2, x2), (fb, b), (best_f, best_i)]
    peak, current = min(candidates)
    return float(current), float(peak), iterations < max_iterations


def _gradient_descent(objective, upper, tolerance, max_iterations):
    """The paper's method: projected gradient descent on ``[0, upper]``.

    Backtracking (Armijo) line search; the iterate is clipped to the
    feasible interval.  On the convex objective this converges to the
    global minimizer (Section V.C.3).
    """
    current = min(1.0, 0.25 * upper)
    value = objective(current)
    step = max(0.25, 0.05 * upper)
    converged = False
    for _ in range(max_iterations):
        grad, _ = objective.gradient(current)
        if abs(grad) < 1.0e-12:
            converged = True
            break
        direction = -math.copysign(1.0, grad)
        trial_step = step
        improved = False
        while trial_step > tolerance * 0.25:
            candidate = min(max(current + direction * trial_step, 0.0), upper)
            candidate_value = objective(candidate)
            if candidate_value < value - 1.0e-4 * trial_step * abs(grad):
                current, value = candidate, candidate_value
                step = trial_step * 1.5
                improved = True
                break
            trial_step *= 0.5
        if not improved:
            # Armijo exhaustion only certifies a (projected) stationary
            # point when a tolerance-sized move the *other* way does not
            # improve either — a misleading gradient (e.g. from a
            # near-singular solve) would otherwise be reported as
            # converged far from the minimizer.
            probe = min(max(current - direction * tolerance, 0.0), upper)
            probe_value = objective(probe) if probe != current else value
            converged = not (
                probe_value < value - 1.0e-9 * max(1.0, abs(value))
            )
            break
    return float(current), float(value), converged
