"""System-level thermal runaway analysis (Section V.C.1, Figure 6).

Theorem 2: as the shared supply current approaches the runaway limit
``lambda_m``, every entry of ``H = (G - i D)^{-1}`` — and with it every
node temperature — diverges to ``+inf``.  Physically, ``lambda_m`` is
the current at which Peltier pumping is exactly cancelled by Joule
heating and back-conduction (the zero-COP condition), so pushing more
current only heats the package.

This module produces the curves behind Figure 6 and the runaway
experiment: peak temperature and selected ``h_kl(i)`` entries swept up
to a fraction of ``lambda_m``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validate import check_in_range


@dataclass
class RunawayCurve:
    """A sweep of the peak temperature toward the runaway current.

    Attributes
    ----------
    lambda_m:
        The runaway current of the deployment (A).
    currents:
        Sampled currents (A), strictly below ``lambda_m``.
    peak_c:
        Peak silicon temperature at each sample (Celsius).
    h_peak:
        The influence coefficient ``h_kk(i)`` of the hottest tile at
        each sample (K/W) — one of the Figure 6 curves; diverges with
        the temperature.
    """

    lambda_m: float
    currents: np.ndarray
    peak_c: np.ndarray
    h_peak: np.ndarray
    diverged: bool = field(default=False)

    def blow_up_ratio(self):
        """Peak temperature rise at the last sample over the first.

        A crude divergence indicator: ratios far above 1 demonstrate
        the runaway (the exact values depend on how close the last
        sample sits to ``lambda_m``).  Rises are measured from the
        curve's minimum (the optimal-cooling dip).  On a monotone
        curve the first sample *is* the minimum and that rise is zero,
        so the ratio falls back to the influence coefficient
        ``h_kk`` — positive (Lemma 3) and diverging identically
        (Theorem 2) — instead of dividing by a clamp and reporting a
        meaningless ~1e12.
        """
        first = self.peak_c[0]
        last = self.peak_c[-1]
        if first == last:
            return 1.0
        reference = float(first - self.peak_c.min())
        if reference > 0.0:
            return float(last - self.peak_c.min()) / reference
        return float(self.h_peak[-1] / self.h_peak[0])


def runaway_curve(model, *, fractions=None, max_fraction=0.999):
    """Sweep the peak temperature toward ``lambda_m`` (Figure 6's shape).

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    fractions:
        Sample currents as fractions of ``lambda_m``; defaults to a
        grid that clusters near 1 to expose the divergence.
    max_fraction:
        Safety cap below 1 to keep the solves finite.

    Returns
    -------
    RunawayCurve
    """
    if not model.stamps:
        raise ValueError("model has no TECs; there is no runaway current")
    check_in_range(max_fraction, "max_fraction", 0.0, 1.0, inclusive=(False, False))
    lambda_m = model.runaway_current().value
    if fractions is None:
        fractions = np.concatenate(
            [np.linspace(0.0, 0.9, 10), 1.0 - np.geomspace(0.1, 1.0 - max_fraction, 8)]
        )
    fractions = np.asarray(sorted(set(float(f) for f in fractions)))
    if np.any(fractions < 0.0) or np.any(fractions > max_fraction):
        raise ValueError(
            "fractions must lie in [0, max_fraction={}]".format(max_fraction)
        )

    peak_tile = model.solve(0.0).peak_tile
    peak_node = model.silicon_nodes[peak_tile]
    unit = np.zeros(model.num_nodes)
    unit[peak_node] = 1.0

    # One batched kernel call answers every operating point, and a
    # second one answers the influence rows (the unit load repeated
    # per current) — stacked BLAS-3 instead of a per-fraction loop.
    currents = [float(fraction * lambda_m) for fraction in fractions]
    states = model.solve_batch(currents)
    loads = np.tile(unit[:, None], (1, len(currents)))
    h_batch = model.solver.solve_batch(currents, loads=loads)
    peaks = [state.peak_silicon_c for state in states]
    h_values = [
        float(h_batch.temperatures[peak_node, j])
        for j in range(len(currents))
    ]
    return RunawayCurve(
        lambda_m=lambda_m,
        currents=np.asarray(currents),
        peak_c=np.asarray(peaks),
        h_peak=np.asarray(h_values),
        diverged=peaks[-1] > peaks[0],
    )


def influence_sweep(model, node_pairs, currents):
    """``h_kl(i)`` for explicit node pairs over explicit currents.

    The raw data behind Figure 6: each returned row is one ``(k, l)``
    pair's influence coefficient as a function of current.  Entries are
    non-negative (Lemma 3) and, under Conjecture 1, convex (Theorem 3).

    All pairs sharing a current are answered by one batched multi-RHS
    solve (one unit column per distinct ``l``), so a sweep over ``p``
    pairs costs one factorization and one BLAS-3 backsubstitution per
    current instead of ``p`` single-vector solves.
    """
    node_pairs = [(int(k), int(l)) for k, l in node_pairs]
    currents = np.asarray(currents, dtype=float)
    result = np.zeros((len(node_pairs), currents.shape[0]))
    if not node_pairs or currents.size == 0:
        return result
    column_nodes = sorted({l for _, l in node_pairs})
    column_of = {l: j for j, l in enumerate(column_nodes)}
    num_cols = len(column_nodes)
    rhs = np.zeros((model.num_nodes, num_cols))
    rhs[column_nodes, np.arange(num_cols)] = 1.0
    # Stack (current, unit-column) pairs into one batched solve: the
    # kernel groups equal currents into shared factorizations, and in
    # reuse mode the whole block rides a single stacked base solve.
    expanded = [float(current) for current in currents for _ in range(num_cols)]
    batch = model.solver.solve_batch(expanded, loads=np.tile(rhs, (1, currents.shape[0])))
    for j in range(currents.shape[0]):
        block = batch.temperatures[:, j * num_cols:(j + 1) * num_cols]
        for row_index, (k, l) in enumerate(node_pairs):
            result[row_index, j] = block[k, column_of[l]]
    return result
