"""Convexity certification of the current-setting problem (Section V.C.2).

Equation (10) of the paper splits each silicon tile temperature into

    theta_k(i) = (r i^2 / 2) * eta_k(i) + zeta_k(i)

with ``eta_k(i) = sum_{l in HOT u CLD} h_kl(i)`` (influence of the TEC
Joule sources) and ``zeta_k(i) = sum_{l in SIL} h_kl(i) p_l`` (influence
of the tile powers).  Under Conjecture 1 both are convex and
non-negative, but the product term ``r i^2 eta(i) / 2`` need not be
convex, so the paper derives a checkable sufficient condition:

    theta_k''(i) = r eta_k(i) + 2 r i eta_k'(i)
                   + (r i^2 / 2) eta_k''(i) + zeta_k''(i)
                >= r eta_k(i) + 2 r i eta_k'(i)
                >= r eta_k(i) + 2 r i eta_k'(i_t)      for i >= i_t,

using that ``eta_k'`` is non-decreasing (``eta_k`` convex).  If

    eta_k(i) + 2 i eta_k'(i_t) >= 0   on [i_t, i_{t+1}]            (12)

for every interval of a subdivision ``0 = i_0 < ... < i_m``, then every
``theta_k`` is convex on the swept range (Theorem 4).  (The paper's
printed inequality (12) omits the factor 2 on the ``i eta'`` term that
the product rule produces; we keep the factor — it only makes the
sufficient condition *stricter*, so every certificate issued here is
also a certificate for the paper's condition.)

The left side of (12) is convex in ``i`` (a convex function plus a
linear one), so its sign on an interval is decided by sampling plus the
interval endpoints — each sample is one sparse solve that yields the
value for *all* tiles at once:

    eta(i)  = H(i) m            (m = indicator of HOT u CLD)
    zeta(i) = H(i) p_restricted
    eta'(i) = H(i) D H(i) m     (Equation 13, via H' = H D H)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validate import check_in_range, check_positive

#: Product-rule coefficient on the ``i * eta'`` term of the
#: certificate; the paper prints 1, the derivation gives 2 (stricter).
DERIVATIVE_FACTOR = 2.0


def _tec_indicator(model):
    indicator = np.zeros(model.num_nodes)
    indicator[model.hot_nodes] = 1.0
    indicator[model.cold_nodes] = 1.0
    return indicator


def eta_zeta(model, current):
    """``eta_k(i)`` and ``zeta_k(i)`` for every silicon tile.

    Returns a pair of flat arrays over tiles (row-major).  Both columns
    are solved in a single batched call against the already-factorized
    ``G - i D``.
    """
    if not model.stamps:
        raise ValueError("model has no TECs; eta/zeta are undefined")
    silicon = model.silicon_nodes
    p_sil = np.zeros(model.num_nodes)
    p_sil[silicon] = model.power_map
    rhs = np.column_stack([_tec_indicator(model), p_sil])
    solution = model.solver.solve_rhs(current, rhs)
    return solution[silicon, 0], solution[silicon, 1]


def eta_derivative(model, current):
    """``eta_k'(i)`` for every silicon tile via ``H' = H D H``.

    Two sparse solves: ``u = H m``, then ``w = H (D u)``; the silicon
    components of ``w`` are the derivatives (Equation 13).
    """
    if not model.stamps:
        raise ValueError("model has no TECs; eta' is undefined")
    u = model.solver.solve_rhs(current, _tec_indicator(model))
    w = model.solver.solve_rhs(current, model.system.d_diagonal * u)
    return w[model.silicon_nodes]


@dataclass
class IntervalCheck:
    """Result of the Lemma 4 check on one subdivision interval.

    ``margin`` is the smallest value of the certificate function
    ``eta_k(i) + 2 i eta_k'(i_t)`` over all sampled ``i`` and all
    tiles ``k``; the interval is certified when it is positive.
    """

    lower: float
    upper: float
    margin: float
    worst_tile: int
    worst_current: float

    @property
    def certified(self):
        return self.margin > 0.0


@dataclass
class ConvexityCertificate:
    """Theorem 4 certificate over ``[0, i_max]``.

    Attributes
    ----------
    certified:
        True when every subdivision interval passed the Lemma 4 check;
        together with Conjecture 1 this certifies that every
        ``theta_k(i)`` is convex on the swept range, hence that the 1-D
        current optimization found the global optimum.
    i_max:
        Upper end of the certified range (A).
    intervals:
        Per-interval :class:`IntervalCheck` records.
    margin:
        Overall worst margin.
    solves:
        Number of sparse solves spent.
    """

    certified: bool
    i_max: float
    intervals: list = field(default_factory=list)
    margin: float = np.inf
    solves: int = 0


def certify_convexity(
    model,
    i_max,
    *,
    subdivisions=8,
    samples_per_interval=9,
):
    """Run the Theorem 4 certificate on ``[0, i_max]``.

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    i_max:
        Upper end of the range to certify; must be below the runaway
        current.
    subdivisions:
        Number of equal subdivision intervals (the paper's arbitrary
        increasing sequence).  More intervals tighten the
        ``eta'(i) >= eta'(i_t)`` bound at the cost of runtime — the
        trade-off quantified by ``benchmarks/bench_ablation_certificate``.
    samples_per_interval:
        Sample count for deciding the sign of the (convex) certificate
        function on each interval, endpoints included.

    Returns
    -------
    ConvexityCertificate
    """
    i_max = check_positive(i_max, "i_max")
    if subdivisions < 1:
        raise ValueError("subdivisions must be >= 1")
    if samples_per_interval < 2:
        raise ValueError("samples_per_interval must be >= 2")
    lambda_m = model.runaway_current().value
    check_in_range(i_max, "i_max", 0.0, lambda_m, inclusive=(False, False))

    edges = np.linspace(0.0, i_max, subdivisions + 1)
    intervals = []
    solves = 0
    overall_margin = np.inf
    for t in range(subdivisions):
        lo, hi = float(edges[t]), float(edges[t + 1])
        eta_slope = eta_derivative(model, lo)
        solves += 2
        margin = np.inf
        worst_tile = -1
        worst_current = lo
        indicator = _tec_indicator(model)
        # All sample currents of the interval share one batched kernel
        # call (the indicator load repeated per sample).
        sample_currents = [
            float(current) for current in np.linspace(lo, hi, samples_per_interval)
        ]
        loads = np.tile(indicator[:, None], (1, len(sample_currents)))
        sample_batch = model.solver.solve_batch(sample_currents, loads=loads)
        for sample, current in enumerate(sample_currents):
            eta_values = sample_batch.temperatures[
                model.silicon_nodes, sample
            ]
            solves += 1
            certificate = eta_values + DERIVATIVE_FACTOR * current * eta_slope
            k = int(np.argmin(certificate))
            if certificate[k] < margin:
                margin = float(certificate[k])
                worst_tile = k
                worst_current = float(current)
        check = IntervalCheck(
            lower=lo, upper=hi, margin=margin,
            worst_tile=worst_tile, worst_current=worst_current,
        )
        intervals.append(check)
        overall_margin = min(overall_margin, margin)
    return ConvexityCertificate(
        certified=all(chk.certified for chk in intervals),
        i_max=i_max,
        intervals=intervals,
        margin=overall_margin,
        solves=solves,
    )


def numerical_convexity_check(model, i_max, *, samples=33, tolerance=1.0e-6):
    """Direct second-difference convexity check of every ``theta_k(i)``.

    A diagnostic cross-check of the analytic certificate: samples each
    tile temperature on a uniform current grid and verifies that all
    interior second differences are ``>= -tolerance * scale``.  Returns
    the worst normalized second difference (positive = convex).
    """
    if samples < 3:
        raise ValueError("samples must be >= 3")
    currents = np.linspace(0.0, i_max, samples)
    temperatures = np.stack([
        state.silicon_c for state in model.solve_batch(currents)
    ])
    second = temperatures[:-2] - 2.0 * temperatures[1:-1] + temperatures[2:]
    scale = max(1.0, float(np.max(np.abs(temperatures))))
    worst = float(np.min(second)) / scale
    return worst >= -tolerance, worst
