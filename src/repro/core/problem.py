"""Problem 1: the cooling system configuration problem (Section V.A).

A :class:`CoolingSystemProblem` binds together everything the
optimization needs — the tile grid, the worst-case per-tile power
profile, the package stack, the TEC device type, and the maximum
allowable temperature — and acts as a factory for
:class:`~repro.thermal.model.PackageThermalModel` instances at
candidate deployments.
"""

from __future__ import annotations

import numpy as np

from repro.power.floorplan import Floorplan
from repro.tec.materials import chowdhury_thin_film_tec
from repro.thermal.model import CompositeThermalModel, PackageThermalModel
from repro.thermal.solve import SOLVER_MODES, SolverStats
from repro.thermal.stack import PackageStack
from repro.utils import check_finite


class CoolingSystemProblem:
    """An instance of the paper's Problem 1.

    Parameters
    ----------
    grid:
        The silicon :class:`~repro.thermal.geometry.TileGrid` (tiles
        are TEC-device sized).
    power_map:
        Worst-case power per tile (W), flat row-major.
    max_temperature_c:
        The limit ``theta_max`` the peak tile temperature must not
        exceed (85 C in most Table I rows).
    stack:
        :class:`~repro.thermal.stack.PackageStack` (defaults to the
        calibrated package).
    device:
        :class:`~repro.tec.materials.TecDeviceParameters` (defaults to
        the calibrated thin-film device).
    name:
        Label used in reports.
    solver_mode:
        Steady-state solver backend for every model built by this
        problem — one of :data:`~repro.thermal.solve.SOLVER_MODES`:
        ``"reuse"`` (default — one sparse LU per deployment, blocked
        Woodbury updates across currents), ``"direct"`` (one sparse LU
        per distinct current), ``"krylov"`` (G-preconditioned
        GMRES/BiCGSTAB with direct fallback), or ``"auto"`` (pick
        reuse vs krylov per deployment from the support size).
    solver_cache_size:
        Per-current cache size forwarded to the solver.
    incremental_assembly:
        When True (default), the first model records a
        :class:`~repro.thermal.assembly.NetworkBlueprint` and every
        later deployment is replayed from it instead of rebuilt.

    All solver/build instrumentation aggregates in
    :attr:`solver_stats`, a shared
    :class:`~repro.thermal.solve.SolverStats`.
    """

    def __init__(
        self,
        grid,
        power_map,
        *,
        max_temperature_c=85.0,
        stack=None,
        device=None,
        name="unnamed",
        solver_mode="reuse",
        solver_cache_size=8,
        incremental_assembly=True,
    ):
        self.grid = grid
        self.power_map = check_finite(power_map, "power_map")
        if self.power_map.shape != (grid.num_tiles,):
            raise ValueError(
                "power_map must have length {}, got shape {}".format(
                    grid.num_tiles, self.power_map.shape
                )
            )
        if np.any(self.power_map < 0.0):
            raise ValueError("power_map entries must be non-negative")
        self.max_temperature_c = float(max_temperature_c)
        self.stack = stack if stack is not None else PackageStack()
        self.device = device if device is not None else chowdhury_thin_film_tec()
        self.name = str(name)
        if self.max_temperature_c <= self.stack.ambient_c:
            raise ValueError(
                "limit {} C not above ambient {} C — unachievable".format(
                    self.max_temperature_c, self.stack.ambient_c
                )
            )
        if solver_mode not in SOLVER_MODES:
            raise ValueError(
                "solver_mode must be one of {}, got {!r}".format(
                    SOLVER_MODES, solver_mode
                )
            )
        self.solver_mode = solver_mode
        self.solver_cache_size = solver_cache_size
        self.incremental_assembly = bool(incremental_assembly)
        self.solver_stats = SolverStats()
        self._model_cache = {}
        self._blueprint = None
        #: Set by :meth:`from_chiplet_layout` for true multi-chiplet
        #: instances; ``model()`` then builds composite models.  Stays
        #: ``None`` for single-die problems (including single-die
        #: layouts, which take the exact single-die code path).
        self._layout = None

    def configure_solver(self, *, mode=None, cache_size=None, incremental=None):
        """Reconfigure the solve engine; drops cached models/blueprints.

        Keyword-only knobs mirror the constructor's ``solver_mode``,
        ``solver_cache_size`` and ``incremental_assembly``.  Counters in
        :attr:`solver_stats` are reset so runs under different
        configurations can be compared.  Returns ``self``.
        """
        if mode is not None:
            if mode not in SOLVER_MODES:
                raise ValueError(
                    "mode must be one of {}, got {!r}".format(SOLVER_MODES, mode)
                )
            self.solver_mode = mode
        if cache_size is not None:
            cache_size = int(cache_size)
            if cache_size < 1:
                raise ValueError(
                    "cache_size must be >= 1, got {}".format(cache_size)
                )
            self.solver_cache_size = cache_size
        if incremental is not None:
            self.incremental_assembly = bool(incremental)
        self.solver_stats = SolverStats()
        self._model_cache = {}
        self._blueprint = None
        return self

    @classmethod
    def from_floorplan(cls, floorplan, *, max_temperature_c=85.0, stack=None,
                       device=None, name=None, **solver_kwargs):
        """Build a problem from a :class:`~repro.power.floorplan.Floorplan`.

        The floorplan's rasterized worst-case power map becomes the
        power profile.  Extra keyword arguments (``solver_mode``,
        ``solver_cache_size``, ``incremental_assembly``) are forwarded
        to the constructor.
        """
        if not isinstance(floorplan, Floorplan):
            raise TypeError(
                "floorplan must be a Floorplan, got {!r}".format(type(floorplan))
            )
        return cls(
            floorplan.grid,
            floorplan.power_map(),
            max_temperature_c=max_temperature_c,
            stack=stack,
            device=device,
            name=name if name is not None else "floorplan",
            **solver_kwargs,
        )

    @classmethod
    def from_chiplet_layout(cls, layout, *, max_temperature_c=85.0,
                            device=None, name=None, **solver_kwargs):
        """Build a problem over a 2.5D chiplet package.

        ``layout`` is a :class:`~repro.thermal.chiplet.ChipletLayout`;
        the problem's grid becomes the layout's
        :class:`~repro.thermal.geometry.CompositeGrid` (tile indices,
        power map, deployments and ``tiles_above_limit`` all use the
        global flat order) and ``model()`` builds
        :class:`~repro.thermal.model.CompositeThermalModel` instances.
        The whole optimization stack — GreedyDeploy, the runaway
        certificate, sweep and serve — runs on them unchanged.

        A single-die layout (one chiplet at the origin, no interposer)
        degenerates to the plain constructor on the chiplet's own grid,
        taking exactly today's single-die code path.
        """
        from repro.thermal.chiplet import ChipletLayout

        if not isinstance(layout, ChipletLayout):
            raise TypeError(
                "layout must be a ChipletLayout, got {!r}".format(type(layout))
            )
        if layout.is_single_die():
            spec = layout.chiplets[0]
            return cls(
                spec.grid,
                np.asarray(spec.power_map),
                max_temperature_c=max_temperature_c,
                stack=layout.stack,
                device=device,
                name=name if name is not None else spec.name,
                **solver_kwargs,
            )
        problem = cls(
            layout.composite_grid(),
            layout.power_vector(),
            max_temperature_c=max_temperature_c,
            stack=layout.stack,
            device=device,
            name=name if name is not None else "chiplet",
            **solver_kwargs,
        )
        problem._layout = layout
        return problem

    @property
    def layout(self):
        """The problem's chiplet layout, or ``None`` for single-die."""
        return self._layout

    def model(self, tec_tiles=()):
        """A :class:`PackageThermalModel` for a candidate deployment.

        Models are cached per deployment: the greedy loop revisits the
        no-TEC model and monotonically growing tile sets, and model
        construction dominates the cost of small instances.  With
        ``incremental_assembly`` on, the first model records the shared
        network blueprint and every later deployment is replayed from
        it, so the per-round rebuild of the greedy loop skips the layer
        physics entirely.
        """
        key = tuple(sorted({int(t) for t in tec_tiles}))
        model = self._model_cache.get(key)
        if model is None:
            if self._layout is not None:
                model = CompositeThermalModel(
                    self._layout,
                    tec_tiles=key,
                    device=self.device,
                    blueprint=self._blueprint,
                    solver_mode=self.solver_mode,
                    solver_cache_size=self.solver_cache_size,
                    solver_stats=self.solver_stats,
                )
            else:
                model = PackageThermalModel(
                    self.grid,
                    self.power_map,
                    stack=self.stack,
                    tec_tiles=key,
                    device=self.device,
                    blueprint=self._blueprint,
                    solver_mode=self.solver_mode,
                    solver_cache_size=self.solver_cache_size,
                    solver_stats=self.solver_stats,
                )
            if self.incremental_assembly and self._blueprint is None:
                self._blueprint = model.network_blueprint()
            self._model_cache[key] = model
        return model

    def cached_models(self):
        """Snapshot list of the cached per-deployment models.

        Read-only accessor for observers (the serve layer's pool stats,
        diagnostics) that need to walk the warm models — e.g. to
        aggregate :meth:`~repro.thermal.session.SolveSession.cache_info`
        across deployments — without reaching into the cache dict.
        """
        return list(self._model_cache.values())

    def tiles_above_limit(self, state):
        """The paper's set ``T``: flat indices of tiles hotter than the limit."""
        return set(np.nonzero(state.silicon_c > self.max_temperature_c)[0].tolist())

    def deploy(self, **kwargs):
        """Run GreedyDeploy on this problem.

        Convenience front-end for
        :func:`~repro.core.deploy.greedy_deploy`; keyword arguments
        (``engine``, ``current_method``, ``max_rounds``, ...) pass
        through unchanged.
        """
        from repro.core.deploy import greedy_deploy

        return greedy_deploy(self, **kwargs)

    def with_limit(self, max_temperature_c):
        """Copy of the problem with a different temperature limit.

        Used for the HC06/HC09 rows of Table I, which are infeasible at
        85 C but feasible at a slightly relaxed limit.  The copy keeps
        the solver configuration and shares the recorded network
        blueprint (temperature limits do not enter the matrices), but
        gets fresh stats and model caches.
        """
        sibling = CoolingSystemProblem(
            self.grid,
            self.power_map,
            max_temperature_c=max_temperature_c,
            stack=self.stack,
            device=self.device,
            name=self.name,
            solver_mode=self.solver_mode,
            solver_cache_size=self.solver_cache_size,
            incremental_assembly=self.incremental_assembly,
        )
        sibling._blueprint = self._blueprint
        sibling._layout = self._layout
        return sibling

    def with_solver_mode(self, solver_mode):
        """Copy of the problem running a different solver backend.

        Shares the recorded network blueprint (the backend does not
        enter the matrices) but gets fresh stats and model caches, so
        backend comparisons on the same floorplan skip the layer
        physics rebuild.
        """
        sibling = CoolingSystemProblem(
            self.grid,
            self.power_map,
            max_temperature_c=self.max_temperature_c,
            stack=self.stack,
            device=self.device,
            name=self.name,
            solver_mode=solver_mode,
            solver_cache_size=self.solver_cache_size,
            incremental_assembly=self.incremental_assembly,
        )
        sibling._blueprint = self._blueprint
        sibling._layout = self._layout
        return sibling

    def __repr__(self):
        return (
            "CoolingSystemProblem({!r}, {} tiles, {:.1f} W, limit {:.1f} C)".format(
                self.name,
                self.grid.num_tiles,
                float(np.sum(self.power_map)),
                self.max_temperature_c,
            )
        )
