"""Peak-temperature vs TEC-power trade-off (beyond the paper).

The paper minimizes the peak temperature outright and reports the
resulting ``P_TEC``.  A system designer usually faces the dual
question: *given a TEC power budget, how cool can the hot spot get?*
Because, over ``[0, I_opt]``,

* the peak temperature is non-increasing in the current (convex with
  its minimum at ``I_opt``), and
* the TEC input power is strictly increasing in the current,

the Pareto front of (peak, P_TEC) is swept exactly by currents in
``[0, I_opt]``: for a budget ``B`` the best feasible current is
``min(I_opt, i_B)`` with ``P_TEC(i_B) = B``, found by bisection.

One physical subtlety: at small currents the device operates in
Seebeck *generation* mode — the passive temperature differential
drives current against the supply, making ``P_TEC`` briefly negative
(Equation 3 with ``theta_h < theta_c``).  The feasible set
``{ i : P_TEC(i) <= B }`` is still an interval for ``B >= 0``, so the
bisection remains valid, and a **zero** budget yields a positive
current with real cooling — energy-neutral TEC operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.current import minimize_peak_temperature
from repro.utils import check_nonnegative


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the peak-vs-power trade-off."""

    budget_w: float
    current_a: float
    peak_c: float
    p_tec_w: float
    budget_binding: bool


@dataclass(frozen=True)
class ParetoFront:
    """The swept trade-off curve.

    Attributes
    ----------
    points:
        One :class:`ParetoPoint` per requested budget, ascending.
    i_opt_a / min_peak_c / p_tec_at_opt_w:
        The unconstrained optimum anchoring the front's right end.
    """

    points: tuple
    i_opt_a: float
    min_peak_c: float
    p_tec_at_opt_w: float

    def peaks(self):
        """Peak temperatures along the front (array)."""
        return np.array([point.peak_c for point in self.points])

    def budgets(self):
        """Budgets along the front (array)."""
        return np.array([point.budget_w for point in self.points])


def _power_at(model, current):
    return model.solve(current).tec_input_power_w()


def _current_for_budget(model, budget_w, i_opt, *, tolerance=1.0e-4):
    """Largest current in [0, i_opt] with P_TEC <= budget (bisection).

    Bracket audit (the Seebeck-generation edge): ``P_TEC(0) = 0`` so the
    lower end is feasible for every budget ``B >= 0``, and over
    ``(0, i_opt]`` the power dips *negative* (generation mode:
    ``theta_h < theta_c`` drives the Peltier term below the Joule term)
    before rising monotonically through ``B`` exactly once — so the
    feasible set ``{ i : P_TEC(i) <= B }`` is the prefix interval
    ``[0, i_B]`` and the predicate ``P_TEC(mid) <= B`` is monotone in
    ``mid``.  The invariant maintained is ``P_TEC(lo) <= B < P_TEC(hi)``;
    the returned ``lo`` end is therefore always budget-feasible, and a
    **zero** budget still lands at a strictly positive current
    (energy-neutral cooling).  ``tests/core/test_pareto.py`` pins this
    behaviour.
    """
    if _power_at(model, i_opt) <= budget_w:
        return i_opt
    lo, hi = 0.0, i_opt
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if _power_at(model, mid) <= budget_w:
            lo = mid
        else:
            hi = mid
    return lo


def evaluate_budget(model, budget_w, optimum, p_at_opt, *, tolerance=1.0e-4):
    """One point of the trade-off: best current under a single budget.

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    budget_w:
        TEC power budget (W, >= 0).
    optimum / p_at_opt:
        The unconstrained Problem 2 optimum
        (:class:`~repro.core.current.CurrentOptimizationResult`) and
        the TEC power at it — shared across budgets so sweeps anchor
        every point on one optimization.

    This is the per-budget unit of work of :func:`pareto_front`, split
    out so the scenario-sweep engine (``repro.sweep``) can evaluate
    budgets as independent scenarios.
    """
    budget = check_nonnegative(budget_w, "budget")
    if budget >= p_at_opt:
        current = optimum.current
        binding = False
    else:
        current = _current_for_budget(
            model, budget, optimum.current, tolerance=tolerance
        )
        binding = True
    state = model.solve(current)
    return ParetoPoint(
        budget_w=budget,
        current_a=current,
        peak_c=state.peak_silicon_c,
        p_tec_w=state.tec_input_power_w(),
        budget_binding=binding,
    )


def pareto_front(model, budgets_w, *, current_tolerance=1.0e-4):
    """Sweep the peak-vs-power trade-off of a deployed model.

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    budgets_w:
        Iterable of TEC power budgets (W, >= 0).

    Returns
    -------
    ParetoFront
    """
    if not model.stamps:
        raise ValueError("pareto analysis needs a deployed model")
    budgets = sorted(check_nonnegative(b, "budget") for b in budgets_w)
    if not budgets:
        raise ValueError("need at least one budget")
    optimum = minimize_peak_temperature(model, tolerance=current_tolerance)
    p_at_opt = _power_at(model, optimum.current)

    points = [
        evaluate_budget(model, budget, optimum, p_at_opt,
                        tolerance=current_tolerance)
        for budget in budgets
    ]
    return ParetoFront(
        points=tuple(points),
        i_opt_a=optimum.current,
        min_peak_c=optimum.peak_c,
        p_tec_at_opt_w=p_at_opt,
    )


def front_from_sweep(report):
    """Assemble a :class:`ParetoFront` from a budget-sweep report.

    ``report`` is a :class:`~repro.sweep.report.SweepReport` whose
    scenarios were built by
    :meth:`repro.sweep.spec.SweepSpec.budget_sweep` (task ``pareto``,
    one budget per scenario).  Raises ``ValueError`` when any budget
    scenario failed — a front with holes is not a front.
    """
    if report.errors:
        failed = ", ".join(
            "{} ({}: {})".format(e.name, e.error_type, e.message)
            for e in report.errors
        )
        raise ValueError("budget sweep had failures: {}".format(failed))
    if not report.results:
        raise ValueError("budget sweep produced no points")
    for result in report.results:
        if result.task != "pareto":
            raise ValueError(
                "scenario {!r} has task {!r}, expected 'pareto'".format(
                    result.name, result.task
                )
            )
    ordered = sorted(report.results, key=lambda r: r.values["budget_w"])
    points = tuple(
        ParetoPoint(
            budget_w=r.values["budget_w"],
            current_a=r.values["current_a"],
            peak_c=r.values["peak_c"],
            p_tec_w=r.values["p_tec_w"],
            budget_binding=r.values["budget_binding"],
        )
        for r in ordered
    )
    anchor = ordered[0].values
    return ParetoFront(
        points=points,
        i_opt_a=anchor["i_opt_a"],
        min_peak_c=anchor["min_peak_c"],
        p_tec_at_opt_w=anchor["p_tec_at_opt_w"],
    )
