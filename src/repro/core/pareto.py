"""Peak-temperature vs TEC-power trade-off (beyond the paper).

The paper minimizes the peak temperature outright and reports the
resulting ``P_TEC``.  A system designer usually faces the dual
question: *given a TEC power budget, how cool can the hot spot get?*
Because, over ``[0, I_opt]``,

* the peak temperature is non-increasing in the current (convex with
  its minimum at ``I_opt``), and
* the TEC input power is strictly increasing in the current,

the Pareto front of (peak, P_TEC) is swept exactly by currents in
``[0, I_opt]``: for a budget ``B`` the best feasible current is
``min(I_opt, i_B)`` with ``P_TEC(i_B) = B``, found by bisection.

One physical subtlety: at small currents the device operates in
Seebeck *generation* mode — the passive temperature differential
drives current against the supply, making ``P_TEC`` briefly negative
(Equation 3 with ``theta_h < theta_c``).  The feasible set
``{ i : P_TEC(i) <= B }`` is still an interval for ``B >= 0``, so the
bisection remains valid, and a **zero** budget yields a positive
current with real cooling — energy-neutral TEC operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.current import minimize_peak_temperature
from repro.utils import check_nonnegative


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the peak-vs-power trade-off."""

    budget_w: float
    current_a: float
    peak_c: float
    p_tec_w: float
    budget_binding: bool


@dataclass(frozen=True)
class ParetoFront:
    """The swept trade-off curve.

    Attributes
    ----------
    points:
        One :class:`ParetoPoint` per requested budget, ascending.
    i_opt_a / min_peak_c / p_tec_at_opt_w:
        The unconstrained optimum anchoring the front's right end.
    """

    points: tuple
    i_opt_a: float
    min_peak_c: float
    p_tec_at_opt_w: float

    def peaks(self):
        """Peak temperatures along the front (array)."""
        return np.array([point.peak_c for point in self.points])

    def budgets(self):
        """Budgets along the front (array)."""
        return np.array([point.budget_w for point in self.points])


def _power_at(model, current):
    return model.solve(current).tec_input_power_w()


def _current_for_budget(model, budget_w, i_opt, *, tolerance=1.0e-4):
    """Largest current in [0, i_opt] with P_TEC <= budget (bisection)."""
    if _power_at(model, i_opt) <= budget_w:
        return i_opt
    lo, hi = 0.0, i_opt
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if _power_at(model, mid) <= budget_w:
            lo = mid
        else:
            hi = mid
    return lo


def pareto_front(model, budgets_w, *, current_tolerance=1.0e-4):
    """Sweep the peak-vs-power trade-off of a deployed model.

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    budgets_w:
        Iterable of TEC power budgets (W, >= 0).

    Returns
    -------
    ParetoFront
    """
    if not model.stamps:
        raise ValueError("pareto analysis needs a deployed model")
    budgets = sorted(check_nonnegative(b, "budget") for b in budgets_w)
    if not budgets:
        raise ValueError("need at least one budget")
    optimum = minimize_peak_temperature(model, tolerance=current_tolerance)
    p_at_opt = _power_at(model, optimum.current)

    points = []
    for budget in budgets:
        if budget >= p_at_opt:
            current = optimum.current
            binding = False
        else:
            current = _current_for_budget(
                model, budget, optimum.current, tolerance=current_tolerance
            )
            binding = True
        state = model.solve(current)
        points.append(
            ParetoPoint(
                budget_w=budget,
                current_a=current,
                peak_c=state.peak_silicon_c,
                p_tec_w=state.tec_input_power_w(),
                budget_binding=binding,
            )
        )
    return ParetoFront(
        points=tuple(points),
        i_opt_a=optimum.current,
        min_peak_c=optimum.peak_c,
        p_tec_at_opt_w=p_at_opt,
    )
