"""The GreedyDeploy algorithm (Section V.B, Figure 5).

Iteratively cover every tile whose temperature exceeds the limit, then
re-optimize the shared supply current for the enlarged deployment:

    S_TEC = {}
    solve G theta = p
    T = { tiles above theta_max }
    loop:
        S_TEC = S_TEC u T
        i_opt = argmin peak temperature            (Problem 2)
        solve (G - i_opt D) theta = p(i_opt)
        T = { tiles above theta_max }
        if T == {}:      return success
        if T subset S_TEC: return failure

Adding TECs cools the covered tiles but heats everything else (the
devices' input power dissipates inside the package), so new tiles can
cross the limit between iterations; the loop terminates because S_TEC
grows monotonically over a finite tile set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.current import minimize_peak_temperature

#: GreedyDeploy engine implementations accepted by :func:`greedy_deploy`.
DEPLOY_ENGINES = ("cold", "incremental")


@dataclass
class GreedyIteration:
    """Snapshot of one GreedyDeploy iteration.

    ``added_tiles`` is the set ``T`` merged into the deployment at the
    start of the iteration; the remaining fields describe the state
    after the current re-optimization.
    """

    index: int
    added_tiles: tuple
    deployment_size: int
    current: float
    peak_c: float
    offending_tiles: tuple


@dataclass
class DeploymentResult:
    """Outcome of GreedyDeploy on one problem instance.

    Attributes
    ----------
    feasible:
        True when the final peak temperature meets the limit (the
        algorithm of Figure 5 returned True).
    tec_tiles:
        The deployment ``S_TEC`` (flat indices, sorted).
    current:
        The optimized shared supply current for the final deployment.
    peak_c:
        Final peak silicon temperature (Celsius).
    no_tec_peak_c:
        Peak temperature of the bare chip (the ``theta_peak`` column).
    tec_power_w:
        Electrical input power of the deployed devices at ``current``
        (the ``P_TEC`` column).
    iterations:
        Per-iteration :class:`GreedyIteration` records.
    runtime_s:
        Wall-clock time of the whole deployment run.
    problem / model:
        The problem instance and the final deployed model.
    solver_stats:
        :class:`~repro.thermal.solve.SolverStats` delta accumulated by
        the problem's solve engine over the whole run (None when the
        problem does not expose shared stats).
    deploy_stats:
        :class:`~repro.core.engine.DeployStats` with per-round timing
        and reuse counters (populated by both engines).
    """

    feasible: bool
    tec_tiles: tuple
    current: float
    peak_c: float
    no_tec_peak_c: float
    tec_power_w: float
    iterations: list = field(default_factory=list)
    runtime_s: float = 0.0
    problem: object = None
    model: object = None
    current_result: object = None
    solver_stats: object = None
    deploy_stats: object = None

    @property
    def num_tecs(self):
        """Number of deployed devices (the ``#TECs`` column)."""
        return len(self.tec_tiles)

    @property
    def cooling_swing_c(self):
        """Drop of the peak temperature vs the bare chip (Section VI.B)."""
        return self.no_tec_peak_c - self.peak_c

    def tiles_by_chiplet(self):
        """The deployment grouped per chiplet.

        For a problem built from a
        :class:`~repro.thermal.chiplet.ChipletLayout` (see
        :meth:`~repro.core.problem.CoolingSystemProblem.from_chiplet_layout`),
        returns ``{chiplet_name: (global flat tiles...)}`` over every
        chiplet, empty tuples included — the per-chiplet ``#TECs``
        breakdown of a 2.5D report.  Single-die problems report the
        whole deployment under ``"die"``.
        """
        layout = getattr(self.problem, "layout", None)
        if layout is None:
            return {"die": tuple(self.tec_tiles)}
        grid = layout.composite_grid()
        grouped = {spec.name: [] for spec in layout.chiplets}
        for tile in self.tec_tiles:
            index, _, _ = grid.locate(int(tile))
            grouped[layout.chiplets[index].name].append(int(tile))
        return {name: tuple(tiles) for name, tiles in grouped.items()}


def greedy_deploy(problem, *, current_method=None, current_tolerance=1.0e-4,
                  max_rounds=None, engine="cold"):
    """Run GreedyDeploy (Figure 5) on a :class:`CoolingSystemProblem`.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.CoolingSystemProblem`.
    current_method / current_tolerance:
        Passed to :func:`~repro.core.current.minimize_peak_temperature`
        for the per-iteration Problem 2 solves.  ``current_method=None``
        selects the engine's default (``"golden"`` cold, ``"brent"``
        incremental).
    max_rounds:
        Safety cap on iterations; defaults to the tile count (the loop
        provably terminates within that many rounds since the
        deployment grows each round).
    engine:
        ``"cold"`` runs every round from scratch; ``"incremental"``
        dispatches to
        :func:`~repro.core.engine.incremental_greedy_deploy`, which
        reuses factorizations, runaway eigenvectors and Problem 2
        brackets across rounds.

    Returns
    -------
    DeploymentResult
    """
    if engine not in DEPLOY_ENGINES:
        raise ValueError(
            "unknown deploy engine {!r}; expected one of {}".format(
                engine, ", ".join(DEPLOY_ENGINES)
            )
        )
    if engine == "incremental":
        from repro.core.engine import incremental_greedy_deploy

        return incremental_greedy_deploy(
            problem,
            current_method=current_method or "brent",
            current_tolerance=current_tolerance,
            max_rounds=max_rounds,
        )
    if current_method is None:
        current_method = "golden"

    from repro.core.engine import DeployStats, RoundStats

    start = time.perf_counter()
    if max_rounds is None:
        max_rounds = problem.grid.num_tiles
    max_rounds = int(max_rounds)
    if max_rounds < 0:
        raise ValueError("max_rounds must be non-negative, got {}".format(max_rounds))

    shared_stats = getattr(problem, "solver_stats", None)
    stats_before = shared_stats.copy() if shared_stats is not None else None

    def _stats_delta():
        if shared_stats is None:
            return None
        return shared_stats.diff(stats_before)

    deploy_stats = DeployStats(engine="cold")

    bare_model = problem.model(())
    bare_state = bare_model.solve(0.0)
    no_tec_peak = bare_state.peak_silicon_c
    offenders = problem.tiles_above_limit(bare_state)

    deployment = set()
    iterations = []

    if not offenders:
        return DeploymentResult(
            feasible=True,
            tec_tiles=(),
            current=0.0,
            peak_c=no_tec_peak,
            no_tec_peak_c=no_tec_peak,
            tec_power_w=0.0,
            iterations=[],
            runtime_s=time.perf_counter() - start,
            problem=problem,
            model=bare_model,
            current_result=None,
            solver_stats=_stats_delta(),
            deploy_stats=deploy_stats,
        )

    if max_rounds == 0:
        # No optimization budget: the bare chip violates the limit and
        # we are not allowed to deploy anything, so report infeasible
        # instead of crashing on an absent optimum.
        return DeploymentResult(
            feasible=False,
            tec_tiles=(),
            current=0.0,
            peak_c=no_tec_peak,
            no_tec_peak_c=no_tec_peak,
            tec_power_w=0.0,
            iterations=[],
            runtime_s=time.perf_counter() - start,
            problem=problem,
            model=bare_model,
            current_result=None,
            solver_stats=_stats_delta(),
            deploy_stats=deploy_stats,
        )

    model = bare_model
    optimum = None
    state = bare_state
    feasible = False
    for round_index in range(max_rounds):
        round_stats = RoundStats(index=round_index, runaway_method="eigen")
        round_start = time.perf_counter()
        added = tuple(sorted(offenders - deployment))
        deployment |= offenders
        phase_start = time.perf_counter()
        model = problem.model(deployment)
        round_stats.assembly_s = time.perf_counter() - phase_start
        optimum = minimize_peak_temperature(
            model, method=current_method, tolerance=current_tolerance
        )
        phase_start = time.perf_counter()
        state = model.solve(optimum.current)
        offenders = problem.tiles_above_limit(state)
        round_stats.steady_s = time.perf_counter() - phase_start
        round_stats.runaway_s = optimum.runaway_s
        round_stats.current_opt_s = optimum.search_s
        round_stats.evaluations = optimum.evaluations
        round_stats.lambda_m = optimum.lambda_m
        deploy_stats.runaway_dense += 1
        iterations.append(
            GreedyIteration(
                index=round_index,
                added_tiles=added,
                deployment_size=len(deployment),
                current=optimum.current,
                peak_c=state.peak_silicon_c,
                offending_tiles=tuple(sorted(offenders)),
            )
        )
        round_stats.wall_s = time.perf_counter() - round_start
        deploy_stats.rounds.append(round_stats)
        if not offenders:
            feasible = True
            break
        if offenders <= deployment:
            feasible = False
            break
    return DeploymentResult(
        feasible=feasible,
        tec_tiles=tuple(sorted(deployment)),
        current=optimum.current,
        peak_c=state.peak_silicon_c,
        no_tec_peak_c=no_tec_peak,
        tec_power_w=state.tec_input_power_w(),
        iterations=iterations,
        runtime_s=time.perf_counter() - start,
        problem=problem,
        model=model,
        current_result=optimum,
        solver_stats=_stats_delta(),
        deploy_stats=deploy_stats,
    )
