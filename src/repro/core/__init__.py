"""The paper's contribution: active cooling system configuration.

Problem 1 (Section V.A): given the tile grid and the worst-case power
of each tile, choose (1) the minimal set of tiles to cover with TEC
devices and (2) the shared supply current, such that the peak
steady-state silicon temperature stays below the limit.

The solution pipeline mirrors the paper:

``deploy``
    The GreedyDeploy algorithm (Figure 5): cover every tile above the
    limit, re-optimize the current, repeat until either no tile
    exceeds the limit (success) or every offending tile is already
    covered (failure).
``current``
    Problem 2 (Section V.C): the convex current-setting subroutine —
    runaway limit ``lambda_m`` (Theorem 1), then 1-D minimization of
    the peak tile temperature over ``[0, lambda_m)`` by golden section
    or the paper's gradient descent.
``convexity``
    The optimality certificate: the eta/zeta decomposition of
    Equation (10), ``eta'`` via ``H' = H D H`` (Equation 13), the
    Lemma 4 interval check and the Theorem 4 subdivision certificate.
``baselines``
    The paper's comparison points: no-TEC and Full-Cover (every tile
    covered, current still optimized) — the source of the SwingLoss
    column of Table I.
``runaway``
    System-level thermal-runaway analysis: blow-up curves of the peak
    temperature as ``i -> lambda_m``.
``report``
    Table-I-style result records and formatting.
"""

from repro.core.baselines import full_cover, no_tec_peak_c, swing_loss_c
from repro.core.convexity import (
    ConvexityCertificate,
    certify_convexity,
    eta_derivative,
    eta_zeta,
    numerical_convexity_check,
)
from repro.core.current import CurrentOptimizationResult, minimize_peak_temperature
from repro.core.deploy import DeploymentResult, GreedyIteration, greedy_deploy
from repro.core.multipin import (
    MultiPinModel,
    MultiPinResult,
    cluster_devices,
    optimize_pin_groups,
)
from repro.core.pareto import ParetoFront, ParetoPoint, pareto_front
from repro.core.problem import CoolingSystemProblem
from repro.core.report import BenchmarkRow, format_table1
from repro.core.runaway import RunawayCurve, runaway_curve
from repro.core.sensitivity import (
    MonteCarloResult,
    ParameterSensitivity,
    monte_carlo_feasibility,
    parameter_sensitivities,
)
from repro.core.strategies import (
    StrategyOutcome,
    compare_strategies,
    density_threshold_deploy,
    incremental_deploy,
)

__all__ = [
    "BenchmarkRow",
    "ConvexityCertificate",
    "CoolingSystemProblem",
    "CurrentOptimizationResult",
    "DeploymentResult",
    "GreedyIteration",
    "MonteCarloResult",
    "MultiPinModel",
    "MultiPinResult",
    "ParameterSensitivity",
    "ParetoFront",
    "ParetoPoint",
    "RunawayCurve",
    "StrategyOutcome",
    "certify_convexity",
    "cluster_devices",
    "compare_strategies",
    "density_threshold_deploy",
    "eta_derivative",
    "eta_zeta",
    "format_table1",
    "full_cover",
    "greedy_deploy",
    "incremental_deploy",
    "minimize_peak_temperature",
    "monte_carlo_feasibility",
    "no_tec_peak_c",
    "numerical_convexity_check",
    "optimize_pin_groups",
    "parameter_sensitivities",
    "pareto_front",
    "runaway_curve",
    "swing_loss_c",
]
