"""Multi-pin supply-current optimization (extension of Section III.B).

The paper restricts the cooling system to **one** extra package pin —
one shared current through every deployed TEC — noting that
"one or multiple pins" are possible but pin budgets are tight.  This
module implements the general case: the deployed devices are
partitioned into ``k`` pin groups, each with its own supply current,
and the group currents are optimized by cyclic coordinate descent
(each 1-D sub-problem is solved by golden section; under the same
convexity structure as Problem 2 each sweep cannot increase the peak).

With ``k = 1`` this reduces exactly to Problem 2; with
``k = num_devices`` it is the idealized fully-independent supply.  The
gap between ``k = 1`` and larger ``k`` quantifies what the paper's
single-pin design decision costs (measured on the benchmarks: well
under a degree — see ``benchmarks/bench_ablation_pins.py``).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.utils import kelvin_to_celsius

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0

#: Solved temperature fields kept per MultiPinModel (keyed on the
#: exact bytes of the current vector) — the coordinate-descent loop
#: evaluates each candidate's peak and often re-asks for its power.
_SOLUTION_CACHE_SIZE = 8


class MultiPinModel:
    """Per-device current solves over a deployed package model.

    Generalizes ``(G - i D) theta = p(i)`` to a per-device current
    vector ``i``: the Peltier diagonal becomes ``alpha_j i_j`` on each
    device's node pair and the Joule sources ``r i_j^2 / 2``.

    Solves go through the model's
    :class:`~repro.thermal.session.SolveSession` (the arbitrary-
    diagonal path, ``SessionView.solve_diagonal``) instead of a private
    ``splu`` per probe: factorizations are LRU-cached on the diagonal,
    the reuse backend answers supported diagonals with a dense Woodbury
    update of the shared base factorization, and the work lands in the
    model's ``SolverStats``.
    """

    def __init__(self, model):
        if not model.stamps:
            raise ValueError("multi-pin optimization needs a deployed model")
        self.model = model
        self._system = model.system
        self._view = model.session.base_view()
        self._solutions = OrderedDict()
        self._silicon = np.asarray(model.silicon_nodes)
        self._alpha = model.device.seebeck
        self._half_r = 0.5 * model.device.electrical_resistance

    @property
    def num_devices(self):
        """Deployed device count."""
        return len(self.model.stamps)

    def solve(self, currents):
        """Steady state (Kelvin vector) for a per-device current vector."""
        currents = np.asarray(currents, dtype=float)
        if currents.shape != (self.num_devices,):
            raise ValueError(
                "currents must have length {}, got shape {}".format(
                    self.num_devices, currents.shape
                )
            )
        if np.any(currents < 0.0):
            raise ValueError("currents must be non-negative")
        key = currents.tobytes()
        cached = self._solutions.get(key)
        if cached is not None:
            self._solutions.move_to_end(key)
            return cached.copy()
        d_diag = np.zeros(self._system.num_nodes)
        p = self._system.p_base.copy()
        for stamp, current in zip(self.model.stamps, currents):
            d_diag[stamp.hot_node] = self._alpha * current
            d_diag[stamp.cold_node] = -self._alpha * current
            joule = self._half_r * current * current
            p[stamp.hot_node] += joule
            p[stamp.cold_node] += joule
        theta = self._view.solve_diagonal(d_diag, p)
        if len(self._solutions) >= _SOLUTION_CACHE_SIZE:
            self._solutions.popitem(last=False)
        self._solutions[key] = theta.copy()
        return theta

    def peak_silicon_c(self, currents):
        """Hottest silicon tile (Celsius) at a per-device current vector."""
        theta = self.solve(currents)
        return float(kelvin_to_celsius(np.max(theta[self._silicon])))

    def tec_input_power_w(self, currents):
        """Total electrical power (Equation 3 per device, summed)."""
        currents = np.asarray(currents, dtype=float)
        theta = self.solve(currents)
        total = 0.0
        for stamp, current in zip(self.model.stamps, currents):
            delta = theta[stamp.hot_node] - theta[stamp.cold_node]
            total += (
                2.0 * self._half_r * current * current
                + self._alpha * current * delta
            )
        return float(total)


def cluster_devices(model, num_groups, *, iterations=32):
    """Partition deployed devices into spatial pin groups.

    Deterministic k-means on the device tile centres (farthest-point
    initialization from the lowest tile index), so the same deployment
    always produces the same grouping.  Returns a list of device-index
    lists, every device in exactly one group.
    """
    if not model.stamps:
        raise ValueError("model has no deployed devices")
    num_groups = int(num_groups)
    n = len(model.stamps)
    if not 1 <= num_groups <= n:
        raise ValueError(
            "num_groups must be in [1, {}], got {}".format(n, num_groups)
        )
    grid = model.grid
    points = np.array(
        [grid.tile_center(*grid.row_col(stamp.tile)) for stamp in model.stamps]
    )
    # Farthest-point initialization.
    centers = [points[0]]
    while len(centers) < num_groups:
        distances = np.min(
            [np.linalg.norm(points - c, axis=1) for c in centers], axis=0
        )
        centers.append(points[int(np.argmax(distances))])
    centers = np.array(centers)
    assignment = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.stack(
            [np.linalg.norm(points - c, axis=1) for c in centers]
        )
        new_assignment = np.argmin(distances, axis=0)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for g in range(num_groups):
            members = points[assignment == g]
            if members.shape[0]:
                centers[g] = members.mean(axis=0)
    groups = [
        [j for j in range(n) if assignment[j] == g] for g in range(num_groups)
    ]
    return [group for group in groups if group]


def chiplet_groups(model):
    """One pin group per chiplet — the natural 2.5D supply domains.

    A chiplet package routes each chiplet's power through its own
    regulator, so a per-chiplet TEC supply costs no extra pins beyond
    one per chiplet.  Groups the deployed devices of a
    :class:`~repro.thermal.model.CompositeThermalModel` by the chiplet
    their tile belongs to and returns device-index lists ordered like
    the layout's chiplets (chiplets without devices are skipped), ready
    for :func:`optimize_pin_groups`.
    """
    layout = getattr(model, "layout", None)
    if layout is None:
        raise ValueError(
            "chiplet_groups needs a composite chiplet model; use "
            "cluster_devices or explicit groups for single-die models"
        )
    if not model.stamps:
        raise ValueError("model has no deployed devices")
    grid = model.grid
    groups = [[] for _ in range(layout.num_chiplets)]
    for j, stamp in enumerate(model.stamps):
        groups[grid.chiplet_of(int(stamp.tile))].append(j)
    return [group for group in groups if group]


@dataclass
class MultiPinResult:
    """Outcome of a multi-pin optimization.

    Attributes
    ----------
    groups:
        Device-index groups (one pin each).
    group_currents:
        Optimized current per group (A).
    device_currents:
        Per-device expansion of ``group_currents``.
    peak_c:
        Peak silicon temperature at the optimum.
    shared_peak_c:
        Peak at the best *shared* current (the paper's k=1 case) —
        the comparison baseline.
    improvement_c:
        ``shared_peak_c - peak_c`` (>= 0 up to solver tolerance).
    sweeps:
        Coordinate-descent sweeps performed.
    evaluations:
        Steady-state solves spent.
    """

    groups: list
    group_currents: np.ndarray
    device_currents: np.ndarray
    peak_c: float
    shared_peak_c: float
    improvement_c: float
    sweeps: int
    evaluations: int = 0


def optimize_pin_groups(
    model,
    groups=None,
    *,
    num_groups=None,
    shared_start=None,
    max_sweeps=8,
    tolerance_c=1.0e-3,
    current_tolerance=0.02,
    upper_factor=4.0,
):
    """Optimize per-group supply currents by cyclic coordinate descent.

    Parameters
    ----------
    model:
        A deployed :class:`~repro.thermal.model.PackageThermalModel`.
    groups:
        Explicit device-index groups; mutually exclusive with
        ``num_groups``.
    num_groups:
        Build groups with :func:`cluster_devices`; defaults to one
        group per device when neither argument is given.
    shared_start:
        Starting shared current; defaults to the Problem 2 optimum.
    max_sweeps / tolerance_c / current_tolerance:
        Convergence controls: stop when a full sweep improves the peak
        by less than ``tolerance_c``.
    upper_factor:
        Per-group search ceiling as a multiple of the starting shared
        current (clamped inside the shared runaway limit).

    Returns
    -------
    MultiPinResult
    """
    from repro.core.current import minimize_peak_temperature

    pin_model = MultiPinModel(model)
    n = pin_model.num_devices
    if groups is not None and num_groups is not None:
        raise ValueError("pass either groups or num_groups, not both")
    if groups is None:
        groups = cluster_devices(model, num_groups if num_groups else n)
    else:
        groups = [list(group) for group in groups]
        seen = set()
        for group in groups:
            for device in group:
                if not 0 <= device < n or device in seen:
                    raise ValueError("groups must partition the device set")
                seen.add(device)
        if len(seen) != n:
            raise ValueError("groups must cover every deployed device")

    if shared_start is None:
        shared = minimize_peak_temperature(model)
        shared_start = shared.current
        shared_peak = shared.peak_c
    else:
        shared_start = float(shared_start)
        shared_peak = pin_model.peak_silicon_c(np.full(n, shared_start))

    lambda_m = model.runaway_current().value
    upper = min(upper_factor * max(shared_start, 1.0), 0.9 * lambda_m)

    evaluations = 0

    def peak_with(group_currents):
        nonlocal evaluations
        device_currents = np.empty(n)
        for group, current in zip(groups, group_currents):
            device_currents[group] = current
        evaluations += 1
        return pin_model.peak_silicon_c(device_currents)

    group_currents = np.full(len(groups), shared_start)
    best_peak = peak_with(group_currents)

    sweeps = 0
    for sweep in range(max_sweeps):
        sweep_start_peak = best_peak
        for g in range(len(groups)):
            lo, hi = 0.0, upper

            def objective(value):
                trial = group_currents.copy()
                trial[g] = value
                return peak_with(trial)

            x1 = hi - _INV_PHI * (hi - lo)
            x2 = lo + _INV_PHI * (hi - lo)
            f1, f2 = objective(x1), objective(x2)
            while hi - lo > current_tolerance:
                if f1 <= f2:
                    hi, x2, f2 = x2, x1, f1
                    x1 = hi - _INV_PHI * (hi - lo)
                    f1 = objective(x1)
                else:
                    lo, x1, f1 = x1, x2, f2
                    x2 = lo + _INV_PHI * (hi - lo)
                    f2 = objective(x2)
            candidate = x1 if f1 <= f2 else x2
            candidate_peak = min(f1, f2)
            if candidate_peak < best_peak:
                group_currents[g] = candidate
                best_peak = candidate_peak
        sweeps = sweep + 1
        if sweep_start_peak - best_peak < tolerance_c:
            break

    device_currents = np.empty(n)
    for group, current in zip(groups, group_currents):
        device_currents[group] = current
    return MultiPinResult(
        groups=groups,
        group_currents=group_currents,
        device_currents=device_currents,
        peak_c=best_peak,
        shared_peak_c=shared_peak,
        improvement_c=shared_peak - best_peak,
        sweeps=sweeps,
        evaluations=evaluations,
    )
