"""Table-I-style benchmark records and formatting (Section VI).

One :class:`BenchmarkRow` holds everything a Table I row reports:

=============  =====================================================
Column         Meaning
=============  =====================================================
``theta_peak``   peak tile temperature without TECs (C)
``theta_limit``  the maximum allowable temperature used (C)
``#TECs``        devices deployed by GreedyDeploy
``I_opt``        optimized shared supply current (A)
``P_TEC``        input power of the deployed devices (W)
``min theta``    best peak achievable by the Full-Cover baseline (C)
``SwingLoss``    ``min theta`` minus the greedy deployment's peak (C)
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.tables import Column, Table


@dataclass
class BenchmarkRow:
    """One row of the reproduced Table I."""

    name: str
    theta_peak_c: float
    theta_limit_c: float
    num_tecs: int
    i_opt_a: float
    p_tec_w: float
    fullcover_min_peak_c: float
    swing_loss_c: float
    feasible: bool = True
    greedy_peak_c: float = float("nan")
    runtime_s: float = float("nan")

    @property
    def cooling_swing_c(self):
        """Peak-temperature drop achieved by the greedy deployment."""
        return self.theta_peak_c - self.greedy_peak_c

    @classmethod
    def from_results(cls, name, limit_c, greedy, fullcover):
        """Assemble a row from greedy and full-cover results."""
        return cls(
            name=name,
            theta_peak_c=greedy.no_tec_peak_c,
            theta_limit_c=limit_c,
            num_tecs=greedy.num_tecs,
            i_opt_a=greedy.current,
            p_tec_w=greedy.tec_power_w,
            fullcover_min_peak_c=fullcover.min_peak_c,
            swing_loss_c=fullcover.min_peak_c - greedy.peak_c,
            feasible=greedy.feasible,
            greedy_peak_c=greedy.peak_c,
            runtime_s=greedy.runtime_s + fullcover.runtime_s,
        )


def format_table1(rows, *, markdown=False, include_average=True):
    """Render rows in the paper's Table I layout.

    Parameters
    ----------
    rows:
        Iterable of :class:`BenchmarkRow`.
    markdown:
        Emit GitHub-flavoured markdown instead of aligned text.
    include_average:
        Append the paper's ``Avg.`` row (over ``P_TEC`` and
        ``SwingLoss``, as in the paper).
    """
    rows = list(rows)
    table = Table(
        [
            Column("bench", align="left"),
            Column("theta_peak C", ".1f"),
            Column("theta_limit C", ".0f"),
            Column("#TECs", "d"),
            Column("I_opt A", ".2f"),
            Column("P_TEC W", ".2f"),
            Column("min theta_peak C", ".1f"),
            Column("SwingLoss C", ".1f"),
            Column("feasible", align="left"),
        ]
    )
    for row in rows:
        table.add_row(
            [
                row.name,
                row.theta_peak_c,
                row.theta_limit_c,
                row.num_tecs,
                row.i_opt_a,
                row.p_tec_w,
                row.fullcover_min_peak_c,
                row.swing_loss_c,
                "yes" if row.feasible else "NO",
            ]
        )
    if include_average and rows:
        table.add_row(
            [
                "Avg.",
                None,
                None,
                None,
                None,
                float(np.mean([row.p_tec_w for row in rows])),
                None,
                float(np.mean([row.swing_loss_c for row in rows])),
                "",
            ]
        )
    return table.render_markdown() if markdown else table.render()
