"""Robustness of the cooling-system design (beyond the paper).

The paper's configuration is computed for nominal device parameters,
but manufactured thin-film TECs vary.  Two studies quantify how much
that matters:

``parameter_sensitivities``
    Local sensitivities of the achieved peak temperature to each
    device/package parameter — reported per +10% parameter change,
    with the supply current re-optimized after each perturbation (the
    current is a design knob, so the honest sensitivity lets it
    adapt).
``monte_carlo_feasibility``
    Manufacturing-variation yield: sample device parameter sets around
    the nominal (independent truncated-Gaussian multipliers), keep the
    *nominal deployment* (tiles are lithographically fixed), re-run
    only the current optimization per sample, and report how often the
    design still meets its temperature limit.

Both studies warm-start each perturbed model's current search from the
nominal optimum (``warm_start=True``): perturbations are small, so the
optimum moves little, and the iterated parabolic refinement of
:func:`~repro.core.current.polish_current` lands on it in a handful of
solves instead of a cold bracket-and-golden-section search per sample.
A local-optimality probe guards the shortcut — whenever the polished
point is not a local minimum (the perturbed optimum escaped the polish
window) or the window hits the runaway limit, the sample silently
falls back to the cold search, so warm-starting never changes which
samples are feasible beyond solver tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.current import minimize_peak_temperature, polish_current
from repro.thermal.session import SingularSystemError
from repro.utils import check_positive, ensure_rng
from repro.utils.validate import check_in_range

#: Warm-start polish window half-width (A) and refinement budget; each
#: refinement may recenter by up to twice the spacing, so the default
#: reach is ~0.5 A around the nominal optimum — far beyond any
#: perturbation a truncated +-3 sigma multiplier produces.
_WARM_SPACING_A = 0.02
_WARM_MAX_REFINEMENTS = 12

#: Device parameters subject to perturbation/variation.
DEVICE_PARAMETERS = (
    "seebeck",
    "electrical_resistance",
    "thermal_conductance",
    "cold_contact_conductance",
    "hot_contact_conductance",
)


@dataclass(frozen=True)
class ParameterSensitivity:
    """Effect of one parameter's +step perturbation on the design."""

    parameter: str
    relative_step: float
    peak_shift_c: float
    i_opt_shift_a: float


def _warm_optimum(model, seed_current):
    """``(i_opt, peak_c)`` via polish from ``seed_current``, or None.

    Polishes the seed with the iterated parabolic fit, then probes one
    spacing to either side of the result: if either edge is lower the
    polish stalled short of the perturbed optimum (or the objective is
    not locally convex there) and the caller must run the cold search.
    A window or probe at/beyond the runaway limit also disqualifies
    the warm path.
    """
    try:
        polished, _ = polish_current(
            model,
            seed_current,
            spacing=_WARM_SPACING_A,
            max_refinements=_WARM_MAX_REFINEMENTS,
        )
        peak = float(model.solve(polished).peak_silicon_c)
        for probe in (max(polished - _WARM_SPACING_A, 0.0), polished + _WARM_SPACING_A):
            if float(model.solve(probe).peak_silicon_c) < peak - 1.0e-9:
                return None
    except SingularSystemError:
        return None
    return polished, peak


def _reoptimized(model, seed_current, warm_start):
    """``(i_opt, peak_c)`` of a perturbed model.

    Warm-starts from the nominal optimum when allowed, falling back to
    the cold :func:`minimize_peak_temperature` search whenever the warm
    result fails its local-optimality guard.
    """
    if warm_start:
        outcome = _warm_optimum(model, seed_current)
        if outcome is not None:
            return outcome
    optimum = minimize_peak_temperature(model)
    return float(optimum.current), float(optimum.peak_c)


def parameter_sensitivities(
    problem,
    tec_tiles,
    *,
    relative_step=0.10,
    include_convection=True,
    warm_start=True,
):
    """Peak/I_opt sensitivity to each parameter at a fixed deployment.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.CoolingSystemProblem`.
    tec_tiles:
        The deployment to hold fixed (e.g. the greedy solution's).
    relative_step:
        Relative perturbation applied to each parameter in turn.
    include_convection:
        Also perturb the package convection resistance.
    warm_start:
        Seed each perturbed model's current search from the nominal
        optimum (see the module docstring); ``False`` forces the cold
        search per perturbation.

    Returns
    -------
    list of ParameterSensitivity, ordered by |peak_shift| descending.
    """
    check_positive(relative_step, "relative_step")
    base_model = problem.model(tec_tiles)
    base = minimize_peak_temperature(base_model)

    results = []
    for name in DEVICE_PARAMETERS:
        device = problem.device.scaled(
            **{name: getattr(problem.device, name) * (1.0 + relative_step)}
        )
        model = type(base_model)(
            problem.grid,
            problem.power_map,
            stack=problem.stack,
            tec_tiles=tec_tiles,
            device=device,
        )
        current, peak_c = _reoptimized(model, base.current, warm_start)
        results.append(
            ParameterSensitivity(
                parameter=name,
                relative_step=relative_step,
                peak_shift_c=peak_c - base.peak_c,
                i_opt_shift_a=current - base.current,
            )
        )
    if include_convection:
        stack = problem.stack.with_convection_resistance(
            problem.stack.convection_resistance * (1.0 + relative_step)
        )
        model = type(base_model)(
            problem.grid,
            problem.power_map,
            stack=stack,
            tec_tiles=tec_tiles,
            device=problem.device,
        )
        current, peak_c = _reoptimized(model, base.current, warm_start)
        results.append(
            ParameterSensitivity(
                parameter="convection_resistance",
                relative_step=relative_step,
                peak_shift_c=peak_c - base.peak_c,
                i_opt_shift_a=current - base.current,
            )
        )
    results.sort(key=lambda s: abs(s.peak_shift_c), reverse=True)
    return results


@dataclass
class MonteCarloResult:
    """Manufacturing-variation yield study outcome.

    Attributes
    ----------
    samples:
        Number of device-parameter samples drawn.
    yield_fraction:
        Fraction of samples whose re-optimized design met the limit.
    peak_c:
        Re-optimized peak temperature per sample.
    i_opt_a:
        Re-optimized current per sample.
    worst_peak_c / best_peak_c:
        Extremes over the samples.
    nominal_peak_c:
        The unperturbed design's peak.
    """

    samples: int
    yield_fraction: float
    peak_c: np.ndarray
    i_opt_a: np.ndarray
    worst_peak_c: float
    best_peak_c: float
    nominal_peak_c: float
    multipliers: dict = field(default_factory=dict)


def monte_carlo_feasibility(
    problem,
    tec_tiles,
    *,
    samples=50,
    coefficient_of_variation=0.10,
    truncation_sigmas=3.0,
    seed=None,
    warm_start=True,
):
    """Yield of the nominal deployment under device-parameter variation.

    Each sample draws an independent multiplier per device parameter
    from a Gaussian ``N(1, cv)`` truncated to
    ``[1 - t*cv, 1 + t*cv]`` (and floored at 5%), applies it to the
    whole array (wafer-level correlated variation, the dominant mode
    for thin-film processes), re-optimizes the shared current
    (warm-started from the nominal optimum unless ``warm_start`` is
    False — see the module docstring), and tests the limit.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    cv = check_in_range(
        coefficient_of_variation, "coefficient_of_variation", 0.0, 1.0,
        inclusive=(False, False),
    )
    rng = ensure_rng(seed)

    nominal_model = problem.model(tec_tiles)
    nominal = minimize_peak_temperature(nominal_model)

    lo = max(1.0 - truncation_sigmas * cv, 0.05)
    hi = 1.0 + truncation_sigmas * cv
    peaks = np.empty(samples)
    currents = np.empty(samples)
    multipliers = {name: np.empty(samples) for name in DEVICE_PARAMETERS}
    feasible = 0
    for index in range(samples):
        overrides = {}
        for name in DEVICE_PARAMETERS:
            multiplier = float(np.clip(rng.normal(1.0, cv), lo, hi))
            multipliers[name][index] = multiplier
            overrides[name] = getattr(problem.device, name) * multiplier
        device = problem.device.scaled(**overrides)
        model = type(nominal_model)(
            problem.grid,
            problem.power_map,
            stack=problem.stack,
            tec_tiles=tec_tiles,
            device=device,
        )
        current, peak_c = _reoptimized(model, nominal.current, warm_start)
        peaks[index] = peak_c
        currents[index] = current
        if peak_c <= problem.max_temperature_c:
            feasible += 1
    return MonteCarloResult(
        samples=samples,
        yield_fraction=feasible / samples,
        peak_c=peaks,
        i_opt_a=currents,
        worst_peak_c=float(np.max(peaks)),
        best_peak_c=float(np.min(peaks)),
        nominal_peak_c=nominal.peak_c,
        multipliers=multipliers,
    )
