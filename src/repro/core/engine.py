"""Incremental GreedyDeploy engine: round-to-round reuse (perf layer).

The cold :func:`~repro.core.deploy.greedy_deploy` loop treats every
round as a fresh problem: rebuild the model, recompute ``lambda_m``
with a dense eigensolve, restart the Problem 2 bracket from zero.
Consecutive rounds differ by a handful of TEC stamps, so almost all
of that work is redundant.  :func:`incremental_greedy_deploy` runs
the *same algorithm* (Figure 5 — identical round structure, identical
termination rules) through three reuse layers:

1. **Cross-round factorization bordering**
   (:class:`~repro.thermal.border.BorderedDeployContext`): reuse-mode
   rounds solve through the anchor round's sparse LU plus a bordered
   dense correction, so a whole run pays one sparse factorization.
2. **Warm-started runaway current**
   (:func:`~repro.linalg.runaway.runaway_current_shift_invert`): the
   previous round's runaway eigenvector — mapped across the rounds'
   node renumbering by stable node *names* — seeds a few shift-
   inverted inverse iterations through the solve engine, replacing
   the dense eigensolve.  The Rayleigh-quotient estimate certifies an
   upper bound on ``lambda_m``; if it ever overshoots past the safety
   margin, the resulting :class:`SingularSystemError` is caught, the
   exact eigenvalue recomputed, and the round's optimization retried
   (counted in ``DeployStats.runaway_rescues``).
3. **Warm-started Problem 2**: the previous optimum, scaled by the
   ``lambda_m`` ratio, brackets the next one; the bounded search
   (default ``"brent"``) converges in a fraction of the cold
   evaluation count.

Because a warmed round touches only a handful of distinct currents,
rounds with a large Peltier support (``_DIRECT_MIN_SUPPORT``) skip
the Woodbury machinery entirely and run on the ``"direct"`` backend —
one small sparse LU per current instead of the dense influence-block
build the cold path cannot avoid (its runaway eigensolve needs the
block).  Such rounds report ``border_mode == "direct"``.

The final optimum is refined by
:func:`~repro.core.current.polish_current`, making the reported
``I_opt`` agree with an identically polished cold run to ~1e-6 A —
solver round-off otherwise scatters raw argmins across the
objective's noise plateau.

Per-round instrumentation is threaded through :class:`DeployStats` /
:class:`RoundStats` (also populated by the cold path) and surfaces in
``DeploymentResult.deploy_stats``, the sweep worker's values, the CLI
and the JSON reports.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, fields

import numpy as np

from repro.core.current import minimize_peak_temperature, polish_current
from repro.linalg.runaway import (
    reduced_eigen_value,
    runaway_current_eigen,
    runaway_current_shift_invert,
)
from repro.thermal.border import BorderedDeployContext
from repro.thermal.solve import SingularSystemError


@dataclass
class RoundStats:
    """Timing / reuse breakdown of one GreedyDeploy round.

    Attributes
    ----------
    index:
        Round number (0-based, matches ``GreedyIteration.index``).
    wall_s:
        Wall-clock time of the whole round.
    assembly_s / runaway_s / current_opt_s / steady_s:
        Phase split: model build, ``lambda_m`` computation, the 1-D
        Problem 2 search, and the post-optimization steady-state solve
        plus offender scan.
    evaluations:
        Steady-state solves spent by the Problem 2 search.
    runaway_method:
        ``"eigen"`` (dense), ``"eigen-z"`` (dense, riding the solve
        engine's cached influence block), ``"shift-invert"`` (warm) —
        with ``"+rescue"`` appended when a singular solve forced an
        exact recomputation mid-round.
    runaway_iterations:
        Shift-invert solve count (0 for the dense paths).
    current_warm:
        True when the Problem 2 search ran inside a warm-start bracket.
    border_mode:
        :meth:`BorderedDeployContext.attach` outcome for the round
        (``"anchor"``, ``"bordered"``, ``"refactorized"``,
        ``"reanchored"``, ``"skipped"``), ``"direct"`` for a warm
        round served by per-current sparse factorizations (large
        support, see ``_DIRECT_MIN_SUPPORT``), or ``"off"`` for the
        cold path.
    lambda_m:
        The runaway estimate the round searched under (A).
    """

    index: int
    wall_s: float = 0.0
    assembly_s: float = 0.0
    runaway_s: float = 0.0
    current_opt_s: float = 0.0
    steady_s: float = 0.0
    evaluations: int = 0
    runaway_method: str = ""
    runaway_iterations: int = 0
    current_warm: bool = False
    border_mode: str = "off"
    lambda_m: float = 0.0

    def as_dict(self):
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class DeployStats:
    """Whole-run reuse instrumentation for GreedyDeploy.

    ``rounds`` holds one :class:`RoundStats` per greedy round; the
    counters aggregate reuse hits across the run.
    """

    engine: str = "cold"
    rounds: list = field(default_factory=list)
    runaway_dense: int = 0
    runaway_warm: int = 0
    runaway_fallbacks: int = 0
    runaway_rescues: int = 0
    current_warm_rounds: int = 0
    border_anchor: int = 0
    border_bordered: int = 0
    border_refactorized: int = 0
    border_reanchored: int = 0
    border_direct: int = 0
    polish_evaluations: int = 0

    @property
    def total_wall_s(self):
        return sum(r.wall_s for r in self.rounds)

    @property
    def total_evaluations(self):
        return sum(r.evaluations for r in self.rounds)

    def as_dict(self):
        """Plain-data view (JSON-representable)."""
        data = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "rounds"
        }
        data["rounds"] = [r.as_dict() for r in self.rounds]
        data["total_wall_s"] = self.total_wall_s
        data["total_evaluations"] = self.total_evaluations
        return data

    def summary(self):
        """Compact one-line report for CLIs and benchmarks."""
        return (
            "{} engine: {} rounds, {} evals, runaway {} warm / {} dense "
            "({} fallbacks, {} rescues), current warm {} rounds, border "
            "{} anchor / {} bordered / {} refactorized / {} reanchored / "
            "{} direct".format(
                self.engine,
                len(self.rounds),
                self.total_evaluations,
                self.runaway_warm,
                self.runaway_dense,
                self.runaway_fallbacks,
                self.runaway_rescues,
                self.current_warm_rounds,
                self.border_anchor,
                self.border_bordered,
                self.border_refactorized,
                self.border_reanchored,
                self.border_direct,
            )
        )

    def record_border_mode(self, mode):
        if mode == "anchor":
            self.border_anchor += 1
        elif mode == "bordered":
            self.border_bordered += 1
        elif mode == "refactorized":
            self.border_refactorized += 1
        elif mode == "reanchored":
            self.border_reanchored += 1
        elif mode == "direct":
            self.border_direct += 1


#: Half-width of the warm-start bracket, as a fraction of the scaled
#: previous optimum (the lambda-ratio scaling is accurate to far
#: better than this in practice).
_WARM_HALF_FRACTION = 0.5

#: Initial shift-invert shift, as a fraction of the previous round's
#: lambda_m.  Growing the deployment grows the Peltier support, so
#: lambda_m (near-)monotonically shrinks round over round; starting
#: well below the previous value keeps the first shifted system
#: positive definite in the common case, and the geometric backoff
#: recovers when a round shrinks lambda_m by more than this.
_SHIFT_HINT_FRACTION = 0.6

#: Problem 2 safety fraction (mirrors minimize_peak_temperature).
_SAFETY_FRACTION = 0.98

#: Peltier support size (~2 nodes per deployed tile) above which a
#: *warm* round runs on the ``"direct"`` backend instead of the
#: Woodbury machinery.  A warm round evaluates only a handful of
#: distinct currents (one shift-invert shift plus ~5-8 slope
#: root-find points), so a per-current sparse LU each beats building
#: the dense influence block: measured at support 1774 / 4888 nodes,
#: one sparse LU costs 25 ms against a 1.1 s influence build plus
#: 160 ms per capacitance factorization.  Cold-start rounds always
#: stay on the reuse backend — the dense runaway eigensolve needs the
#: influence block anyway, and a cold bracket search evaluates enough
#: currents to amortize it.
_DIRECT_MIN_SUPPORT = 256


def _map_vector(vector, names, model):
    """Carry an eigenvector across rounds by stable node names.

    Rounds renumber nodes (covering a tile removes its TIM node), but
    names persist, so the previous round's runaway eigenvector maps
    onto the new ordering entry-by-entry; nodes new to this round
    (fresh TEC pairs) start at zero.
    """
    mapped = np.zeros(model.num_nodes)
    hits = 0
    for index, node in enumerate(model.network.nodes):
        j = names.get(node.name)
        if j is not None:
            mapped[index] = vector[j]
            hits += 1
    if hits == 0 or not np.any(mapped):
        return None
    return mapped


def _exact_runaway(model, stats=None):
    """Dense ``lambda_m`` + eigenvector, riding cached solver state.

    In (effective) reuse mode the solve engine's influence block
    already contains ``Z = (G^{-1})[S, S]``, and the reduced runaway
    eigenproblem is ``eig(Z diag(d_S))`` — zero additional
    factorizations.  Other backends pay one standalone sparse LU
    inside :func:`runaway_current_eigen`.
    """
    if stats is not None:
        stats.runaway_dense += 1
    system = model.system
    if model.solver.effective_mode == "reuse":
        support, d_support, w_block, z_block = model.solver.influence_block()
        if support.size == 0:
            return math.inf, None, "eigen-z", 0
        small = z_block * d_support[np.newaxis, :]
        result, vector = reduced_eigen_value(
            small, w_block, d_support, return_vector=True
        )
        return result.value, vector, "eigen-z", 0
    result, vector = runaway_current_eigen(
        system.g_matrix, system.d_diagonal, return_vector=True
    )
    return result.value, vector, "eigen", 0


def _runaway_estimate(model, previous, stats):
    """Warm shift-invert when a seed is available, exact otherwise."""
    if previous is not None and previous.get("vector") is not None:
        guess = _map_vector(previous["vector"], previous["names"], model)
        if guess is not None:
            shift = None
            if math.isfinite(previous["lambda_m"]) and previous["lambda_m"] > 0.0:
                shift = _SHIFT_HINT_FRACTION * previous["lambda_m"]
            result, vector = runaway_current_shift_invert(
                model.solver.solve_rhs,
                model.system.g_matrix,
                model.system.d_diagonal,
                guess=guess,
                shift=shift,
            )
            if result is not None and math.isfinite(result.value):
                stats.runaway_warm += 1
                return result.value, vector, "shift-invert", result.iterations
        stats.runaway_fallbacks += 1
    return _exact_runaway(model, stats)


def incremental_greedy_deploy(
    problem,
    *,
    current_method="brent",
    current_tolerance=1.0e-4,
    max_rounds=None,
    polish=True,
    border=True,
):
    """GreedyDeploy with cross-round reuse (see the module docstring).

    Same algorithm, arguments and result contract as
    :func:`~repro.core.deploy.greedy_deploy` (which dispatches here
    for ``engine="incremental"``), plus:

    polish:
        Refine the final optimum with
        :func:`~repro.core.current.polish_current` (kept only when it
        does not change the feasibility verdict).
    border:
        Enable the cross-round bordered factorization context;
        automatically inert for rounds resolved to a non-reuse
        backend.
    """
    from repro.core.deploy import DeploymentResult, GreedyIteration

    start = time.perf_counter()
    if max_rounds is None:
        max_rounds = problem.grid.num_tiles
    max_rounds = int(max_rounds)
    if max_rounds < 0:
        raise ValueError("max_rounds must be non-negative, got {}".format(max_rounds))

    shared_stats = getattr(problem, "solver_stats", None)
    stats_before = shared_stats.copy() if shared_stats is not None else None

    def _stats_delta():
        if shared_stats is None:
            return None
        return shared_stats.diff(stats_before)

    deploy_stats = DeployStats(engine="incremental")

    bare_model = problem.model(())
    bare_state = bare_model.solve(0.0)
    no_tec_peak = bare_state.peak_silicon_c
    offenders = problem.tiles_above_limit(bare_state)

    if not offenders or max_rounds == 0:
        return DeploymentResult(
            feasible=not offenders,
            tec_tiles=(),
            current=0.0,
            peak_c=no_tec_peak,
            no_tec_peak_c=no_tec_peak,
            tec_power_w=0.0,
            iterations=[],
            runtime_s=time.perf_counter() - start,
            problem=problem,
            model=bare_model,
            current_result=None,
            solver_stats=_stats_delta(),
            deploy_stats=deploy_stats,
        )

    context = BorderedDeployContext() if border else None
    direct_problem = None
    previous = None
    deployment = set()
    iterations = []
    model = bare_model
    optimum = None
    state = bare_state
    lam = math.inf
    feasible = False

    for round_index in range(max_rounds):
        round_stats = RoundStats(index=round_index)
        round_start = time.perf_counter()

        added = tuple(sorted(offenders - deployment))
        deployment |= offenders

        warm = previous is not None and previous.get("vector") is not None
        direct_round = warm and 2 * len(deployment) >= _DIRECT_MIN_SUPPORT

        phase_start = time.perf_counter()
        if direct_round:
            if direct_problem is None:
                direct_problem = problem.with_solver_mode("direct")
                if shared_stats is not None:
                    # One shared counter object so the result's
                    # solver-stats delta covers direct rounds too.
                    direct_problem.solver_stats = shared_stats
            model = direct_problem.model(deployment)
        else:
            model = problem.model(deployment)
        round_stats.assembly_s = time.perf_counter() - phase_start

        if direct_round:
            round_stats.border_mode = "direct"
            deploy_stats.record_border_mode("direct")
        elif context is not None:
            round_stats.border_mode = context.attach(model)
            deploy_stats.record_border_mode(round_stats.border_mode)

        phase_start = time.perf_counter()
        lam, vector, runaway_method, runaway_iters = _runaway_estimate(
            model, previous, deploy_stats
        )
        round_stats.runaway_s = time.perf_counter() - phase_start
        round_stats.runaway_method = runaway_method
        round_stats.runaway_iterations = runaway_iters
        round_stats.lambda_m = lam

        bounds = None
        if (
            previous is not None
            and math.isfinite(lam)
            and math.isfinite(previous["lambda_m"])
            and previous["lambda_m"] > 0.0
            and previous["current"] > 0.0
        ):
            guess = previous["current"] * (lam / previous["lambda_m"])
            half = max(_WARM_HALF_FRACTION * guess, 50.0 * current_tolerance)
            bounds = (guess - half, guess + half)

        # Warm rounds switch to the slope root-find: with a trusted
        # bracket it needs the fewest factorizations per round of all
        # the methods.  Cold-start rounds use the requested method on
        # the full capped interval.
        round_method = "newton" if bounds is not None else current_method
        try:
            optimum = minimize_peak_temperature(
                model,
                method=round_method,
                tolerance=current_tolerance,
                lambda_m=lam,
                bounds=bounds,
            )
            phase_start = time.perf_counter()
            state = model.solve(optimum.current)
        except SingularSystemError:
            # The warm Rayleigh bound overshot lambda_m past the safety
            # margin and a capped-interval solve went singular: recover
            # with the exact eigenvalue and a cold-bracket retry.
            deploy_stats.runaway_rescues += 1
            lam, vector, _, _ = _exact_runaway(model)
            round_stats.runaway_method = runaway_method + "+rescue"
            round_stats.lambda_m = lam
            optimum = minimize_peak_temperature(
                model,
                method=current_method,
                tolerance=current_tolerance,
                lambda_m=lam,
            )
            phase_start = time.perf_counter()
            state = model.solve(optimum.current)
        offenders = problem.tiles_above_limit(state)
        round_stats.steady_s = time.perf_counter() - phase_start
        round_stats.current_opt_s = optimum.search_s
        round_stats.runaway_s += optimum.runaway_s
        round_stats.evaluations = optimum.evaluations
        round_stats.current_warm = optimum.warm_started
        if optimum.warm_started:
            deploy_stats.current_warm_rounds += 1

        iterations.append(
            GreedyIteration(
                index=round_index,
                added_tiles=added,
                deployment_size=len(deployment),
                current=optimum.current,
                peak_c=state.peak_silicon_c,
                offending_tiles=tuple(sorted(offenders)),
            )
        )
        previous = {
            "lambda_m": lam,
            "vector": vector,
            "names": {
                node.name: index
                for index, node in enumerate(model.network.nodes)
            },
            "current": optimum.current,
        }
        round_stats.wall_s = time.perf_counter() - round_start
        deploy_stats.rounds.append(round_stats)

        if not offenders:
            feasible = True
            break
        if offenders <= deployment:
            feasible = False
            break

    final_current = optimum.current
    if polish and model.stamps:
        upper = _SAFETY_FRACTION * lam if math.isfinite(lam) else None
        polished, evals = polish_current(
            model, optimum.current, upper=upper
        )
        deploy_stats.polish_evaluations += evals
        if polished != final_current:
            polished_state = model.solve(polished)
            polished_offenders = problem.tiles_above_limit(polished_state)
            verdict_stable = bool(polished_offenders) == bool(offenders) and (
                not polished_offenders or polished_offenders <= deployment
            )
            if verdict_stable:
                final_current = polished
                state = polished_state

    return DeploymentResult(
        feasible=feasible,
        tec_tiles=tuple(sorted(deployment)),
        current=final_current,
        peak_c=state.peak_silicon_c,
        no_tec_peak_c=no_tec_peak,
        tec_power_w=state.tec_input_power_w(),
        iterations=iterations,
        runtime_s=time.perf_counter() - start,
        problem=problem,
        model=model,
        current_result=optimum,
        solver_stats=_stats_delta(),
        deploy_stats=deploy_stats,
    )
