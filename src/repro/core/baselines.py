"""Baselines: no-TEC and Full-Cover (Section VI.A).

The paper compares GreedyDeploy against "a baseline strategy where
every tile is covered by a TEC device with the supply current
determined by our convex-programming based peak tile temperature
minimization algorithm".  Full cover maximizes pumping coverage but
pays the input power of every device inside the package, so its best
achievable peak (``min theta_peak``) is *worse* — the gap is the
``SwingLoss`` column, averaging 4.2 C over the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.current import minimize_peak_temperature


def no_tec_peak_c(problem):
    """Peak silicon temperature of the bare chip (``theta_peak``)."""
    return problem.model(()).solve(0.0).peak_silicon_c


@dataclass
class FullCoverResult:
    """Outcome of the Full-Cover baseline.

    Attributes
    ----------
    min_peak_c:
        The best peak temperature full cover can reach at its own
        optimal current (the ``min theta_peak`` column of Table I).
    current:
        That optimal current (A).
    tec_power_w:
        Input power of the 144-device array at the optimum.
    meets_limit:
        Whether full cover satisfies the problem's temperature limit.
    runtime_s:
        Wall-clock time of the optimization.
    """

    min_peak_c: float
    current: float
    tec_power_w: float
    meets_limit: bool
    runtime_s: float
    model: object = None
    current_result: object = None


def full_cover(problem, *, current_method="golden", current_tolerance=1.0e-4):
    """Run the Full-Cover baseline on a problem instance."""
    start = time.perf_counter()
    model = problem.model(range(problem.grid.num_tiles))
    optimum = minimize_peak_temperature(
        model, method=current_method, tolerance=current_tolerance
    )
    state = model.solve(optimum.current)
    return FullCoverResult(
        min_peak_c=state.peak_silicon_c,
        current=optimum.current,
        tec_power_w=state.tec_input_power_w(),
        meets_limit=state.peak_silicon_c <= problem.max_temperature_c,
        runtime_s=time.perf_counter() - start,
        model=model,
        current_result=optimum,
    )


def swing_loss_c(greedy_result, full_cover_result):
    """The SwingLoss column: full cover's best peak minus greedy's peak.

    Positive values mean over-deployment *hurt* — the phenomenon the
    paper's greedy strategy exists to avoid.
    """
    return full_cover_result.min_peak_c - greedy_result.peak_c
