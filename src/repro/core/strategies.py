"""Alternative deployment strategies (baselines beyond Full-Cover).

The paper compares GreedyDeploy only against Full-Cover.  This module
adds two more baselines a practitioner would reach for, so the greedy
algorithm's value can be isolated:

``incremental_deploy``
    Finest-grained greedy: add **one** device per iteration (on the
    hottest uncovered tile), re-optimizing the current each time.
    Finds deployments at least as small as Figure 5's batch greedy, at
    the cost of one Problem 2 solve per device.
``density_threshold_deploy``
    The static heuristic: cover every tile whose worst-case power
    density exceeds a threshold, then optimize the current once.  No
    thermal feedback — the gap to the greedy strategies measures what
    the thermal model buys.
``compare_strategies``
    Run all strategies (plus Figure 5's greedy and Full-Cover) on one
    problem and tabulate devices / peak / power / runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.baselines import full_cover
from repro.core.current import minimize_peak_temperature
from repro.core.deploy import greedy_deploy
from repro.utils.units import watts_per_m2_to_w_per_cm2


@dataclass
class StrategyOutcome:
    """Uniform record for one deployment strategy's result."""

    strategy: str
    feasible: bool
    num_tecs: int
    current_a: float
    peak_c: float
    tec_power_w: float
    runtime_s: float
    tec_tiles: tuple = ()


def incremental_deploy(
    problem, *, max_devices=None, current_tolerance=1.0e-3, stall_limit=8
):
    """One-device-at-a-time greedy deployment.

    Each iteration covers the hottest currently-uncovered tile and
    re-optimizes the shared current.  Unlike Figure 5's failure rule,
    the loop keeps going when the hottest tile is already covered —
    covering a hot tile's neighbours keeps cooling it — and gives up
    only after ``stall_limit`` consecutive additions fail to improve
    the peak (or the device budget / tile supply runs out).
    """
    start = time.perf_counter()
    if max_devices is None:
        max_devices = problem.grid.num_tiles
    deployment = []
    model = problem.model(())
    state = model.solve(0.0)
    current = 0.0
    feasible = not problem.tiles_above_limit(state)
    best_peak = state.peak_silicon_c
    stalled = 0

    while not feasible and len(deployment) < max_devices and stalled < stall_limit:
        covered = set(deployment)
        order = np.argsort(state.silicon_c)[::-1]
        candidate = next((int(t) for t in order if int(t) not in covered), None)
        if candidate is None:
            break  # every tile covered — nothing left to add
        deployment.append(candidate)
        model = problem.model(deployment)
        optimum = minimize_peak_temperature(model, tolerance=current_tolerance)
        current = optimum.current
        state = model.solve(current)
        feasible = not problem.tiles_above_limit(state)
        if state.peak_silicon_c < best_peak - 1.0e-3:
            best_peak = state.peak_silicon_c
            stalled = 0
        else:
            stalled += 1

    return StrategyOutcome(
        strategy="incremental",
        feasible=feasible,
        num_tecs=len(deployment),
        current_a=current,
        peak_c=state.peak_silicon_c,
        tec_power_w=state.tec_input_power_w(),
        runtime_s=time.perf_counter() - start,
        tec_tiles=tuple(sorted(deployment)),
    )


def density_threshold_deploy(problem, threshold_w_cm2, *, current_tolerance=1.0e-3):
    """Cover every tile above a power-density threshold (no feedback).

    Covers nothing when the threshold exceeds the chip's peak density;
    covers everything at threshold 0 (degenerating to Full-Cover).
    """
    start = time.perf_counter()
    density = watts_per_m2_to_w_per_cm2(problem.power_map / problem.grid.tile_area)
    tiles = np.nonzero(density >= threshold_w_cm2)[0]
    model = problem.model(tiles)
    if len(tiles):
        optimum = minimize_peak_temperature(model, tolerance=current_tolerance)
        current = optimum.current
    else:
        current = 0.0
    state = model.solve(current)
    return StrategyOutcome(
        strategy="density>={:.0f}W/cm2".format(threshold_w_cm2),
        feasible=state.peak_silicon_c <= problem.max_temperature_c,
        num_tecs=len(tiles),
        current_a=current,
        peak_c=state.peak_silicon_c,
        tec_power_w=state.tec_input_power_w(),
        runtime_s=time.perf_counter() - start,
        tec_tiles=tuple(int(t) for t in tiles),
    )


def compare_strategies(problem, *, density_thresholds=(100.0,)):
    """Run every strategy on one problem.

    Returns a dict of strategy label to :class:`StrategyOutcome`
    (Figure 5's greedy and Full-Cover included for reference).
    """
    outcomes = {}

    greedy = greedy_deploy(problem)
    outcomes["greedy (Fig. 5)"] = StrategyOutcome(
        strategy="greedy (Fig. 5)",
        feasible=greedy.feasible,
        num_tecs=greedy.num_tecs,
        current_a=greedy.current,
        peak_c=greedy.peak_c,
        tec_power_w=greedy.tec_power_w,
        runtime_s=greedy.runtime_s,
        tec_tiles=greedy.tec_tiles,
    )

    incremental = incremental_deploy(problem)
    outcomes["incremental"] = incremental

    for threshold in density_thresholds:
        outcome = density_threshold_deploy(problem, threshold)
        outcomes[outcome.strategy] = outcome

    baseline = full_cover(problem)
    outcomes["full-cover"] = StrategyOutcome(
        strategy="full-cover",
        feasible=baseline.meets_limit,
        num_tecs=problem.grid.num_tiles,
        current_a=baseline.current,
        peak_c=baseline.min_peak_c,
        tec_power_w=baseline.tec_power_w,
        runtime_s=baseline.runtime_s,
        tec_tiles=tuple(range(problem.grid.num_tiles)),
    )
    return outcomes
