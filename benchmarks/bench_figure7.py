"""Figure 7: the Alpha floorplan and the greedy TEC deployment map.

Prints both panels (unit initials and the shaded deployment) and
asserts the paper's qualitative observation: only tiles over/adjacent
to the high-power-density units are covered; the L2 is never covered.

Run:  pytest benchmarks/bench_figure7.py --benchmark-only -s
"""

import pytest

from repro.experiments.figures import figure7_data


def test_figure7_shape():
    data = figure7_data()
    print()
    print(data.render())
    print("covered units: {}".format(data.covered_units))
    assert data.num_tecs == len(data.tec_tiles)
    # IntReg (the 282.4 W/cm^2 unit) is fully covered...
    assert data.covered_units.get("IntReg", 0) == 4
    # ...IntExec partially or fully...
    assert data.covered_units.get("IntExec", 0) >= 1
    # ...and the low-density L2 is untouched.
    assert "L2" not in data.covered_units
    assert "Icache" not in data.covered_units


@pytest.mark.benchmark(group="figure7")
def test_figure7_generation(benchmark):
    data = benchmark.pedantic(figure7_data, rounds=3, iterations=1)
    assert data.num_tecs > 0
