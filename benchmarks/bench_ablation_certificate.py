"""Ablation: Theorem 4 certificate tightness vs subdivision count.

The paper notes the subdivision sequence {i_t} is arbitrary: one
coarse interval is cheapest but pessimistic (eta'(0) is a loose lower
bound for eta'(i)); more subranges tighten the bound at more runtime.
Prints margin and solve count per subdivision count and asserts the
monotone trade-off; the timed benchmarks measure both ends.

Run:  pytest benchmarks/bench_ablation_certificate.py --benchmark-only -s
"""

import pytest

from repro.core.convexity import certify_convexity
from repro.experiments.ablations import certificate_subdivision_ablation


def test_certificate_ablation_shape():
    points = certificate_subdivision_ablation(
        subdivision_counts=(1, 2, 4, 8, 16)
    )
    print()
    print("{:>14} {:>10} {:>12} {:>8}".format(
        "subdivisions", "certified", "margin", "solves"))
    for p in points:
        print("{:>14} {:>10} {:>12.4f} {:>8}".format(
            p.subdivisions, str(p.certified), p.margin, p.solves))
    # cost grows with subdivisions; margin never loosens.
    solves = [p.solves for p in points]
    assert solves == sorted(solves)
    margins = [p.margin for p in points]
    assert all(b >= a - 1e-9 for a, b in zip(margins, margins[1:]))
    assert all(p.certified for p in points)


@pytest.mark.benchmark(group="ablation-certificate")
def test_certificate_coarse(benchmark, alpha_greedy):
    model = alpha_greedy.model
    i_max = 2.0 * alpha_greedy.current
    cert = benchmark.pedantic(
        lambda: certify_convexity(model, i_max, subdivisions=1),
        rounds=3, iterations=1,
    )
    assert cert.certified


@pytest.mark.benchmark(group="ablation-certificate")
def test_certificate_fine(benchmark, alpha_greedy):
    model = alpha_greedy.model
    i_max = 2.0 * alpha_greedy.current
    cert = benchmark.pedantic(
        lambda: certify_convexity(model, i_max, subdivisions=16),
        rounds=3, iterations=1,
    )
    assert cert.certified
