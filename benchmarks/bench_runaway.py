"""Thermal runaway (Section V.C.1): divergence at lambda_m.

Prints the peak-temperature blow-up series of the Alpha deployment and
asserts Theorem 2's divergence plus the Theorem 1 dichotomy.  The
timed benchmarks compare the two lambda_m algorithms (the paper's
Cholesky binary search vs the exact reduced eigenproblem).

Run:  pytest benchmarks/bench_runaway.py --benchmark-only -s
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.runaway import runaway_curve
from repro.linalg.spd import cholesky_is_spd


def test_runaway_shape(alpha_greedy):
    curve = runaway_curve(alpha_greedy.model, max_fraction=0.9999)
    print()
    print("lambda_m = {:.2f} A".format(curve.lambda_m))
    print("{:>10} {:>16}".format("i (A)", "peak (C)"))
    for current, peak in zip(curve.currents, curve.peak_c):
        print("{:>10.2f} {:>16.1f}".format(current, peak))
    assert curve.diverged
    assert curve.peak_c[-1] > 100.0 * curve.peak_c[0]

    g, d_diag, _, _ = alpha_greedy.model.matrices()
    lam = curve.lambda_m
    assert cholesky_is_spd((g - 0.99 * lam * sp.diags(d_diag)).tocsc())
    assert not cholesky_is_spd((g - 1.01 * lam * sp.diags(d_diag)).tocsc())


@pytest.mark.benchmark(group="runaway")
def test_lambda_m_eigen(benchmark, alpha_greedy):
    model = alpha_greedy.model
    result = benchmark(lambda: model.runaway_current(method="eigen"))
    assert np.isfinite(result.value)


@pytest.mark.benchmark(group="runaway")
def test_lambda_m_binary_search(benchmark, alpha_greedy):
    model = alpha_greedy.model
    result = benchmark.pedantic(
        lambda: model.runaway_current(method="binary-search"),
        rounds=3,
        iterations=1,
    )
    eigen = model.runaway_current(method="eigen").value
    assert result.value == pytest.approx(eigen, rel=1e-6)
