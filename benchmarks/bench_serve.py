"""Serving-tier acceptance: warm-pool throughput and CLI agreement.

Boots the real HTTP server (``ServerThread`` on an ephemeral port)
twice against the same request stream — a cycle of solve requests on
the Alpha greedy deployment — and measures:

* **warm**: the default serving configuration (blueprint-keyed warm
  session pool + same-chip request batching).  The first request
  builds and factorizes; every later request reuses the warm session.
* **cold**: ``pool_size=0`` — the pool is disabled and every request
  rebuilds the problem, reassembles the nodal system and refactorizes,
  which is what serving without the pool would cost.

Acceptance criteria of the serving PR:

* warm throughput >= 3x cold throughput;
* every response agrees with ``repro solve --json`` to within 1e-9 K
  (in fact bit-identical — both paths run the same task impl on the
  same assembled system);
* p50/p95/p99 latencies recorded to ``BENCH_serve.json`` at the repo
  root (schema: :func:`repro.io.results.bench_report_to_json`).

Environment knobs for CI-sized runs:

* ``BENCH_SERVE_REQUESTS`` — requests per configuration (default 64);
* ``BENCH_SERVE_CLIENTS``  — concurrent load-generator clients
  (default 4).

Run:  pytest benchmarks/bench_serve.py -s
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.io.results import bench_report_to_json
from repro.serve import RequestPool, ServeConfig, ServerThread, create_app

_REPO_ROOT = Path(__file__).resolve().parent.parent
_REQUESTS = int(os.environ.get("BENCH_SERVE_REQUESTS", "64"))
_CLIENTS = int(os.environ.get("BENCH_SERVE_CLIENTS", "4"))
_CURRENT_CYCLE = 8


@pytest.fixture(scope="module")
def cli_reference(tmp_path_factory):
    """The deployment ``repro solve`` finds for alpha, via the real CLI."""
    out = tmp_path_factory.mktemp("serve") / "alpha.json"
    assert cli_main(["solve", "--benchmark", "alpha", "--json", str(out)]) == 0
    return json.loads(out.read_text())


@pytest.fixture(scope="module")
def request_stream(cli_reference):
    """A cycle of solve requests on the alpha deployment: the same chip
    at a handful of repeating drive currents, which is the traffic the
    warm pool and the batcher are built for."""
    base = cli_reference["current_a"]
    currents = [
        round(base * (0.6 + 0.1 * step), 6) for step in range(_CURRENT_CYCLE)
    ]
    currents[_CURRENT_CYCLE // 2] = base  # the CLI's exact operating point
    return [
        ("POST", "/solve", {
            "benchmark": "alpha",
            "tec_tiles": cli_reference["tec_tiles"],
            "current_a": currents[index % _CURRENT_CYCLE],
        })
        for index in range(_REQUESTS)
    ]


def _drive(config, requests):
    app = create_app(config)
    with ServerThread(app) as server:
        pool = RequestPool(server.host, server.port, clients=_CLIENTS)
        start = time.perf_counter()
        report = pool.run(requests)
        wall = time.perf_counter() - start
    assert report.errors == 0
    assert all(status == 200 for status, _ in report.responses)
    return report, wall


@pytest.fixture(scope="module")
def runs(request_stream):
    # A 1 ms coalescing window: with a closed-loop generator the
    # window is pure added latency per batch, so the default 5 ms
    # (tuned for open-loop traffic) would throttle the warm run.
    warm, warm_wall = _drive(
        ServeConfig(batch_window_s=0.001), request_stream
    )
    cold, cold_wall = _drive(
        ServeConfig(pool_size=0, batch_window_s=0.001), request_stream
    )
    return {"warm": (warm, warm_wall), "cold": (cold, cold_wall)}


def _entry(configuration, report, wall):
    summary = report.as_dict()
    summary.update({"configuration": configuration, "wall_s": wall})
    return summary


def test_responses_agree_with_cli(runs, cli_reference):
    base_current = cli_reference["current_a"]
    for configuration, (report, _) in runs.items():
        checked = 0
        for _, body in report.responses:
            result = body["results"][0]
            if abs(result["current_a"] - base_current) > 1e-12:
                continue  # stream point away from the CLI's optimum
            assert abs(
                result["values"]["peak_c"] - cli_reference["peak_c"]
            ) <= 1e-9, configuration
            checked += 1
        # The cycle pins the CLI's exact operating point, so it is
        # exercised in every configuration.
        assert checked > 0


def test_writes_bench_json(runs):
    entries = [
        _entry("warm-pool", *runs["warm"]),
        _entry("cold-rebuild", *runs["cold"]),
    ]
    entries[0]["speedup_vs_cold"] = (
        entries[0]["throughput_rps"] / entries[1]["throughput_rps"]
    )
    path = _REPO_ROOT / "BENCH_serve.json"
    bench_report_to_json(
        "serve", entries, path,
        metadata={
            "workload": "{} solve requests, {} clients, {}-current cycle "
                        "on the alpha greedy deployment".format(
                            _REQUESTS, _CLIENTS, _CURRENT_CYCLE),
            "cpu_count": os.cpu_count(),
        },
    )
    assert path.exists()


def test_warm_pool_beats_cold_by_3x(runs):
    speedup = runs["warm"][0].throughput_rps / runs["cold"][0].throughput_rps
    print()
    for label, (report, wall) in (("warm", runs["warm"]),
                                  ("cold", runs["cold"])):
        stats = report.as_dict()["latency_ms"]
        print("{}: {:7.1f} req/s  p50 {:6.2f} ms  p95 {:6.2f} ms  "
              "p99 {:6.2f} ms  ({:.2f} s wall)".format(
                  label, report.throughput_rps, stats["p50"],
                  stats["p95"], stats["p99"], wall))
    print("warm-vs-cold throughput: {:.1f}x".format(speedup))
    assert speedup >= 3.0
