"""Sweep-engine acceptance: parallel speedup and bit-identity at scale.

Runs a 16-scenario device-parameter grid (one ``optimize`` scenario
per Seebeck x resistance point on the Alpha greedy deployment) through
the serial backend and through a 4-worker process pool, and checks the
acceptance criteria of the sweep-engine PR:

* the process backend reproduces the serial ``values`` payloads
  bit-for-bit;
* with at least 4 physical cores, the 4-worker pool is at least 2x
  faster wall-clock than the serial run (the speedup assertion is
  skipped — but the timings still printed — on smaller machines,
  where a process pool cannot beat its own spawning overhead).

The pool measurement forces ``backend="process"`` — an *inferred* pool
now degrades to serial exactly in the regimes this benchmark exists to
measure — and is skipped entirely on single-CPU runners, where timing
a fork-serialized pool tells us nothing (the JSON records the skip).
A measured pool that comes out *slower* than serial is not an error:
the entry is flagged ``"degraded": true`` so the perf trajectory shows
where the runner's auto-degradation heuristic should have kicked in.

The serial/parallel timings are written to ``BENCH_sweep.json`` at the
repo root (schema: :func:`repro.io.results.bench_report_to_json`) so
the perf trajectory is machine-readable across commits.

Run:  pytest benchmarks/bench_sweep.py -s
"""

import os
import time
from pathlib import Path

import pytest

from repro.io.results import bench_report_to_json
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep import worker as sweep_worker

_REPO_ROOT = Path(__file__).resolve().parent.parent
_FACTORS = (0.7, 0.9, 1.1, 1.3)
_WORKERS = 4
_MULTI_CPU = (os.cpu_count() or 1) >= 2


@pytest.fixture(scope="module")
def spec(alpha_greedy):
    built = SweepSpec.device_grid(
        "alpha",
        alpha_greedy.tec_tiles,
        seebeck_factors=_FACTORS,
        resistance_factors=_FACTORS,
    )
    assert len(built) == 16
    return built


@pytest.fixture(scope="module")
def reports(spec):
    # Parallel first: on Linux the pool forks, so running the serial
    # backend beforehand would hand every child a pre-warmed optimum
    # cache and time an empty workload.  On a single-CPU runner the
    # pool column is skipped (parallel stays None) rather than timing
    # fork overhead against itself.
    parallel = parallel_wall = None
    if _MULTI_CPU:
        sweep_worker.clear_caches()
        start = time.perf_counter()
        parallel = SweepRunner(_WORKERS, backend="process").run(spec)
        parallel_wall = time.perf_counter() - start
    sweep_worker.clear_caches()
    start = time.perf_counter()
    serial = SweepRunner().run(spec)
    serial_wall = time.perf_counter() - start
    return serial, serial_wall, parallel, parallel_wall


def test_bit_identical_results(reports):
    serial, _, parallel, _ = reports
    assert serial.ok
    if parallel is None:
        pytest.skip("single-CPU host: process-pool column skipped")
    assert parallel.ok
    assert [(r.index, r.name, r.values) for r in serial.results] == [
        (r.index, r.name, r.values) for r in parallel.results
    ]


def test_writes_bench_json(reports):
    serial, serial_wall, parallel, parallel_wall = reports
    entries = [
        {
            "configuration": "serial",
            "workers": 1,
            "scenarios": len(serial.results) + len(serial.errors),
            "wall_s": serial_wall,
            "ok": bool(serial.ok),
        },
    ]
    if parallel is None:
        entries.append(
            {
                "configuration": "process-pool",
                "workers": _WORKERS,
                "skipped": True,
                "reason": "single-CPU host: pool cannot beat serial",
            }
        )
    else:
        speedup = serial_wall / parallel_wall
        entries.append(
            {
                "configuration": "process-pool",
                "workers": _WORKERS,
                "scenarios": len(parallel.results) + len(parallel.errors),
                "wall_s": parallel_wall,
                "ok": bool(parallel.ok),
                "speedup_vs_serial": speedup,
                "degraded": bool(speedup < 1.0),
                "runner": parallel.metadata.get("runner"),
            }
        )
    path = _REPO_ROOT / "BENCH_sweep.json"
    bench_report_to_json(
        "sweep", entries, path,
        metadata={
            "workload": "16-scenario device grid on the alpha greedy deployment",
            "cpu_count": os.cpu_count(),
        },
    )
    assert path.exists()


def test_parallel_speedup(reports):
    serial, serial_wall, parallel, parallel_wall = reports
    print()
    print("serial   : {:6.2f} s  ({})".format(
        serial_wall, serial.summary().splitlines()[1]))
    if parallel is None:
        pytest.skip("single-CPU host: process-pool column skipped")
    speedup = serial_wall / parallel_wall
    print("x{} pool  : {:6.2f} s  ({})".format(
        _WORKERS, parallel_wall, parallel.summary().splitlines()[1]))
    print("wall-clock speedup: {:.2f}x on {} cores".format(
        speedup, os.cpu_count()))
    cores = os.cpu_count() or 1
    if cores < _WORKERS:
        pytest.skip(
            "only {} core(s): the >= 2x speedup criterion needs {}".format(
                cores, _WORKERS
            )
        )
    assert speedup >= 2.0
