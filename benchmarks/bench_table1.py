"""Table I: the paper's main result table (Section VI).

``test_table1_full`` regenerates every row (alpha, hc01..hc10) with the
same columns the paper prints, checks the acceptance shape
(feasibility pattern, theta_peak match, positive SwingLoss), and
prints the table.  The timed benchmark measures one full Table I row
(GreedyDeploy + Full-Cover on the Alpha chip) — the unit of work whose
runtime the paper bounds at three minutes.

Run:  pytest benchmarks/bench_table1.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.experiments.benchmarks import BENCHMARKS
from repro.experiments.table1 import run_benchmark_row, run_table1


def test_table1_full_shape():
    comparison = run_table1()
    print()
    print(comparison.render())
    print("averages: P_TEC {:.2f} W (paper 1.70), SwingLoss {:.1f} C (paper 4.2)".format(
        comparison.avg_p_tec_w, comparison.avg_swing_loss_c))

    for row in comparison.rows:
        spec = BENCHMARKS[row.name]
        # theta_peak column reproduced to a tenth of a degree.
        assert row.theta_peak_c == pytest.approx(spec.paper_theta_peak_c, abs=0.1)
        # every row feasible at its table limit.
        assert row.feasible, row.name
        # greedy meets the limit; full cover is strictly worse.
        assert row.greedy_peak_c <= row.theta_limit_c + 1e-6
        assert row.swing_loss_c > 0.0
        # currents and powers in the paper's regime.
        assert 2.0 <= row.i_opt_a <= 12.0
        assert 0.1 <= row.p_tec_w <= 4.0
    assert 1.5 <= comparison.avg_swing_loss_c <= 6.0


@pytest.mark.benchmark(group="table1")
def test_table1_alpha_row(benchmark):
    row, _, _ = benchmark.pedantic(
        lambda: run_benchmark_row("alpha"), rounds=3, iterations=1
    )
    assert row.feasible


@pytest.mark.benchmark(group="table1")
def test_table1_hypothetical_row(benchmark):
    row, _, _ = benchmark.pedantic(
        lambda: run_benchmark_row("hc04"), rounds=3, iterations=1
    )
    assert row.feasible
