"""The Section VI validation experiment: compact model vs reference.

Prints the per-case worst differences (worst-case map + workload trace
snapshots) and asserts the paper's headline: worst-case per-tile
difference below 1.5 C.  The timed benchmarks measure one compact
solve and one reference solve — the cost ratio that motivates using
the compact model inside the optimization loop.

Run:  pytest benchmarks/bench_validation.py --benchmark-only -s
"""

import pytest

from repro.experiments.validation import run_validation
from repro.thermal.reference import ReferenceGridModel


def test_validation_shape():
    outcome = run_validation(refine=1, trace_steps=20, snapshots=(10, 19))
    print()
    for label, value in sorted(outcome.per_case.items()):
        print("  {:<24} worst |diff| = {:.3f} C".format(label, value))
    print("overall worst: {:.3f} C (paper claim: < 1.5 C)".format(
        outcome.worst_abs_diff_c))
    assert outcome.passed


def test_active_validation_shape(alpha_greedy):
    """Beyond the paper: validate the *deployed* compact model against
    the TEC-embedded fine-grid reference, passive and at I_opt."""
    import numpy as np

    from repro.thermal.reference_active import ActiveReferenceGridModel

    model = alpha_greedy.model
    reference = ActiveReferenceGridModel(
        model.grid, model.power_map, stack=model.stack,
        tec_tiles=model.tec_tiles, device=model.device, refine=1,
    )
    print()
    for current in (0.0, alpha_greedy.current):
        fine = reference.tile_temperatures_c_active(current)
        coarse = model.solve(current).silicon_c
        worst = float(np.max(np.abs(coarse - fine)))
        print("  i = {:5.2f} A: worst |diff| = {:.3f} C "
              "(peaks {:.2f} vs {:.2f})".format(
                  current, worst, float(np.max(coarse)), float(np.max(fine))))
        assert worst < 1.5


@pytest.mark.benchmark(group="validation")
def test_compact_solve_speed(benchmark, alpha_problem):
    model = alpha_problem.model(())
    state = benchmark(lambda: model.solve(0.0))
    assert state.peak_silicon_c == pytest.approx(91.8, abs=0.1)


@pytest.mark.benchmark(group="validation")
def test_reference_solve_speed(benchmark, alpha_problem):
    def run():
        reference = ReferenceGridModel(
            alpha_problem.grid, alpha_problem.power_map, refine=1
        )
        return reference.peak_tile_temperature_c()

    peak = benchmark.pedantic(run, rounds=3, iterations=1)
    assert peak == pytest.approx(91.8, abs=1.5)
