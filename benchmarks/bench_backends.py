"""Grid-resolution scaling workload for the solver backends.

Sweeps tile grids (8x8 up to 128x128 by default) with dense TEC
deployments, times every applicable solver backend on the same
assembled system and probe currents through the batched
:meth:`~repro.thermal.session.SessionView.solve_batch` kernel, and
checks the acceptance criteria of the backend-layer PRs:

* every backend agrees with the ``direct`` reference (``cholesky``
  once the grid outgrows the direct limit) on the peak temperature of
  every probe current to 1e-6 K;
* on a >= 48x48 grid with a dense deployment, the ``krylov`` backend
  beats the blocked-Woodbury ``reuse`` mode wall-clock;
* on the 128x128 grid (stride-lattice deployment), the batched
  ``cholesky`` backend beats ``reuse`` wall-clock;
* on the 256x256 grid (>= 260k nodes) the geometric-multigrid ``mg``
  backend beats every assembled-factorization backend by >= 2x
  wall-clock while holding less solver state (``solver_bytes``, the
  deterministic factor-fill/operator accounting of
  ``SessionView.solver_state_bytes``).  All ratios are reported in
  ``BENCH_backends.json``.

The measurements are written to ``BENCH_backends.json`` at the repo
root (schema: :func:`repro.io.results.bench_report_to_json`) so the
perf trajectory is machine-readable across commits.

The grid list honours the ``BENCH_BACKENDS_GRIDS`` environment
variable (comma-separated side lengths, e.g. ``8,16``) so CI can run a
fast subset; the >= 48x48 speedup assertion skips itself when no large
grid is in the list.  The ``reuse`` backend is skipped (and the skip
logged in the JSON) once the Peltier support exceeds
``_REUSE_SUPPORT_LIMIT`` — its dense influence block would not fit a
small machine, which is exactly the scaling wall this PR removes.

Run:  pytest benchmarks/bench_backends.py -s
      python benchmarks/bench_backends.py
"""

import dataclasses
import gc
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.problem import CoolingSystemProblem
from repro.io.results import bench_report_to_json
from repro.linalg.spd import cholesky_is_spd
from repro.thermal.geometry import TileGrid
from repro.thermal.solve import SteadyStateSolver
from repro.thermal.stack import PackageStack

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_GRIDS = "8,16,32,48,64,128,256"
_BACKENDS = ("direct", "reuse", "krylov", "cholesky", "mg")

#: Total die power (W), split uniformly over the tiles so refining the
#: grid changes the resolution, not the thermal problem.
_TOTAL_POWER_W = 60.0

#: Probe currents (A).  Halved together until ``G - i D`` is positive
#: definite at the largest probe, so every instance stays below its
#: runaway current.
_PROBE_CURRENTS = (0.25, 0.5, 1.0)

#: Skip the ``reuse`` backend beyond this Peltier-support size: its
#: dense ``n x support`` influence block and ``support^3`` capacitance
#: factorization are the scaling wall under study.
_REUSE_SUPPORT_LIMIT = 2500

#: Skip the ``direct`` backend beyond this node count: one general LU
#: *per probe current* on a >= 260k-node system is the per-current
#: scaling wall the mg tier removes — the agreement reference falls
#: back to ``cholesky`` on those grids.
_DIRECT_NODE_LIMIT = 100_000

#: Grids up to this side get full TEC coverage; larger ones a
#: checkerboard (still dense: 50% of the tiles).
_FULL_COVER_SIDE = 16

#: From this side on, a checkerboard's support would dwarf the reuse
#: limit, so the deployment thins to a stride lattice — enough TECs to
#: exercise every backend on the same >= 128x128 system.
_LATTICE_SIDE = 96


def _grid_sides():
    text = os.environ.get("BENCH_BACKENDS_GRIDS", _DEFAULT_GRIDS)
    sides = sorted({int(part) for part in text.split(",") if part.strip()})
    if not sides:
        raise ValueError("BENCH_BACKENDS_GRIDS selected no grids")
    return sides


def _scaled_stack(die_side):
    """The calibrated stack with spreader/sink grown to fit large dies."""
    stack = PackageStack()
    spreader_side = max(stack.spreader.side, die_side * 1.5)
    sink_side = max(stack.sink.side, spreader_side * 2.0)
    return dataclasses.replace(
        stack,
        spreader=dataclasses.replace(stack.spreader, side=spreader_side),
        sink=dataclasses.replace(stack.sink, side=sink_side),
    )


def _dense_deployment(side):
    if side <= _FULL_COVER_SIDE:
        return tuple(range(side * side))
    if side >= _LATTICE_SIDE:
        stride = max(2, side // 16)
        return tuple(
            idx for idx in range(side * side)
            if (idx // side) % stride == 0 and (idx % side) % stride == 0
        )
    return tuple(
        idx for idx in range(side * side) if ((idx // side) + (idx % side)) % 2 == 0
    )


def _build_problem_model(side):
    """The deployed thermal model of one benchmark instance.

    Shared with ``bench_rom.py``, which drives the same instances
    through closed-loop transients instead of steady batch solves.
    """
    grid = TileGrid(side, side)
    power = np.full(grid.num_tiles, _TOTAL_POWER_W / grid.num_tiles)
    die_side = max(grid.width, grid.height)
    problem = CoolingSystemProblem(
        grid,
        power,
        max_temperature_c=1000.0,
        stack=_scaled_stack(die_side),
        name="bench-{0}x{0}".format(side),
    )
    return problem.model(_dense_deployment(side))


def _build_instance(side):
    return _build_problem_model(side).solver.system


def _safe_currents(system):
    """The probe currents, halved until the largest is below runaway."""
    currents = list(_PROBE_CURRENTS)
    for _ in range(8):
        if cholesky_is_spd(system.system_matrix(max(currents))):
            return tuple(currents)
        currents = [0.5 * c for c in currents]
    raise RuntimeError("could not find probe currents below runaway")


def _time_backend(system, backend, currents):
    solver = SteadyStateSolver(system, mode=backend)
    # The previous backend's session (large LU factors, the dense reuse
    # influence block) dies through cycle collection; sweep it now so
    # the decay doesn't land inside this backend's measurement.
    gc.collect()
    start = time.perf_counter()
    batch = solver.solve_batch(currents)
    wall = time.perf_counter() - start
    peaks = [float(column.peak_k) for column in batch.columns]
    return {
        "backend": backend,
        "wall_s": wall,
        "peak_k": peaks,
        # Deterministic solver-state accounting (factor fill at 12
        # bytes/nonzero, hierarchy/stencil arrays, cached blocks) —
        # the memory axis of the mg acceptance criterion.
        "solver_bytes": int(solver.solver_state_bytes()),
        "stats": {
            key: value
            for key, value in solver.stats.as_dict().items()
            if isinstance(value, int) and value
        },
    }


def run_workload(sides=None):
    """Measure every applicable backend on every grid.

    Returns ``(entries, metadata)`` in the ``BENCH_backends.json``
    shape: one entry per (grid, backend) plus per-grid skip records.
    """
    entries = []
    for side in sides if sides is not None else _grid_sides():
        build_start = time.perf_counter()
        system = _build_instance(side)
        build_s = time.perf_counter() - build_start
        support = int(np.count_nonzero(system.d_diagonal))
        currents = _safe_currents(system)
        base = {
            "grid": "{0}x{0}".format(side),
            "side": side,
            "num_nodes": int(system.num_nodes),
            "support": support,
            "tecs": support // 2,
            "currents_a": list(currents),
            "build_s": build_s,
        }
        timings = {}
        measured_entries = {}
        for backend in _BACKENDS:
            if backend == "reuse" and support > _REUSE_SUPPORT_LIMIT:
                entries.append(dict(
                    base,
                    backend="reuse",
                    skipped="support {} exceeds the reuse limit {}".format(
                        support, _REUSE_SUPPORT_LIMIT
                    ),
                ))
                continue
            if backend == "direct" and system.num_nodes > _DIRECT_NODE_LIMIT:
                entries.append(dict(
                    base,
                    backend="direct",
                    skipped="{} nodes exceed the direct limit {}".format(
                        system.num_nodes, _DIRECT_NODE_LIMIT
                    ),
                ))
                continue
            measured = _time_backend(system, backend, currents)
            timings[backend] = measured
            entry = dict(base, **measured)
            measured_entries[backend] = entry
            entries.append(entry)
        if "reuse" in timings:
            # The acceptance ratios: how much faster each challenger
            # backend answers the same probe currents than the dense
            # Woodbury update.
            for backend in ("krylov", "cholesky", "mg"):
                if backend in timings:
                    measured_entries[backend]["speedup_vs_reuse"] = (
                        timings["reuse"]["wall_s"] / timings[backend]["wall_s"]
                    )
        if "mg" in timings:
            # The mg acceptance ratios: wall-clock vs each
            # assembled-factorization backend on the same system.
            for backend in ("direct", "cholesky"):
                if backend in timings:
                    measured_entries["mg"]["speedup_vs_" + backend] = (
                        timings[backend]["wall_s"] / timings["mg"]["wall_s"]
                    )
    metadata = {
        "workload": "grid-resolution scaling, dense TEC deployments",
        "total_power_w": _TOTAL_POWER_W,
        "reuse_support_limit": _REUSE_SUPPORT_LIMIT,
        "cpu_count": os.cpu_count(),
    }
    return entries, metadata


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def workload():
    return run_workload()


def test_backends_agree(workload):
    entries, _ = workload
    by_grid = {}
    for entry in entries:
        if "skipped" not in entry:
            by_grid.setdefault(entry["grid"], []).append(entry)
    assert by_grid
    for grid, measured in by_grid.items():
        # direct is the reference where it ran; past _DIRECT_NODE_LIMIT
        # the factored-SPD backend takes over as the exact baseline.
        by_backend = {e["backend"]: e for e in measured}
        reference = by_backend.get("direct") or by_backend.get("cholesky")
        assert reference is not None, grid
        for entry in measured:
            for peak, ref_peak in zip(entry["peak_k"], reference["peak_k"]):
                assert peak == pytest.approx(ref_peak, abs=1.0e-6), (
                    grid, entry["backend"]
                )


def test_krylov_beats_reuse_on_large_grid(workload):
    entries, _ = workload
    ratios = {
        entry["grid"]: entry["speedup_vs_reuse"]
        for entry in entries
        if entry.get("backend") == "krylov"
        and entry.get("speedup_vs_reuse") is not None and entry["side"] >= 48
    }
    print()
    for entry in entries:
        if "skipped" in entry:
            print("{:>7} {:<7} skipped: {}".format(
                entry["grid"], entry["backend"], entry["skipped"]))
        else:
            print("{:>7} {:<7} {:8.3f} s  ({} nodes, support {})".format(
                entry["grid"], entry["backend"], entry["wall_s"],
                entry["num_nodes"], entry["support"]))
    if not ratios:
        pytest.skip(
            "no >= 48x48 grid ran both reuse and krylov "
            "(BENCH_BACKENDS_GRIDS subset)"
        )
    best = max(ratios.values())
    print("krylov speedup vs reuse on large grids: " + ", ".join(
        "{} {:.1f}x".format(grid, ratio) for grid, ratio in sorted(ratios.items())
    ))
    assert best > 1.0


@pytest.mark.slow
def test_cholesky_beats_reuse_on_128(workload):
    """The batched sparse-SPD backend wins the 128x128 column."""
    entries, _ = workload
    ratios = {
        entry["grid"]: entry["speedup_vs_reuse"]
        for entry in entries
        if entry.get("backend") == "cholesky"
        and entry.get("speedup_vs_reuse") is not None and entry["side"] >= 128
    }
    if not ratios:
        pytest.skip(
            "no >= 128x128 grid ran both reuse and cholesky "
            "(BENCH_BACKENDS_GRIDS subset)"
        )
    print("cholesky speedup vs reuse: " + ", ".join(
        "{} {:.1f}x".format(grid, ratio) for grid, ratio in sorted(ratios.items())
    ))
    assert max(ratios.values()) > 1.0


@pytest.mark.slow
def test_mg_wins_256(workload):
    """The multigrid tier's acceptance on the chiplet-scale column:
    >= 2x wall-clock over every assembled-factorization backend that
    ran the >= 256x256 grid, with less solver state."""
    entries, _ = workload
    mg_entries = [
        entry for entry in entries
        if entry.get("backend") == "mg" and "skipped" not in entry
        and entry["side"] >= 256
    ]
    if not mg_entries:
        pytest.skip(
            "no >= 256x256 grid in the run (BENCH_BACKENDS_GRIDS subset)"
        )
    for mg_entry in mg_entries:
        rivals = [
            entry for entry in entries
            if entry["side"] == mg_entry["side"] and "skipped" not in entry
            and entry["backend"] in ("direct", "cholesky")
        ]
        assert rivals, "mg ran unopposed on {}".format(mg_entry["grid"])
        for rival in rivals:
            ratio = rival["wall_s"] / mg_entry["wall_s"]
            print("{}: mg {:.2f}x faster than {} ({:.1f} MB vs {:.1f} MB)".format(
                mg_entry["grid"], ratio, rival["backend"],
                mg_entry["solver_bytes"] / 1e6, rival["solver_bytes"] / 1e6,
            ))
            assert ratio >= 2.0, (mg_entry["grid"], rival["backend"])
            assert mg_entry["solver_bytes"] < rival["solver_bytes"], (
                mg_entry["grid"], rival["backend"]
            )


def test_writes_bench_json(workload):
    entries, metadata = workload
    path = _REPO_ROOT / "BENCH_backends.json"
    bench_report_to_json("backends", entries, path, metadata=metadata)
    assert path.exists()


if __name__ == "__main__":
    measured_entries, run_metadata = run_workload()
    for item in measured_entries:
        if "skipped" in item:
            print("{:>7} {:<7} skipped: {}".format(
                item["grid"], item["backend"], item["skipped"]))
        else:
            print("{:>7} {:<7} {:8.3f} s".format(
                item["grid"], item["backend"], item["wall_s"]))
    out = _REPO_ROOT / "BENCH_backends.json"
    bench_report_to_json("backends", measured_entries, out, metadata=run_metadata)
    print("written to {}".format(out))
