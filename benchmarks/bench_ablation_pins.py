"""Ablation: what does the single-extra-pin restriction cost?

The paper fixes one shared supply current ("allowing only one extra
pin is desirable... these chips are already restricted in pin usage").
This study relaxes that to idealized per-device currents via
coordinate descent and prints the (small) additional cooling the
multi-pin system would buy — evidence that the single-pin design
point the paper chose is a sound engineering trade.

Run:  pytest benchmarks/bench_ablation_pins.py --benchmark-only -s
"""

import pytest

from repro.experiments.ablations import per_device_current_study


def test_per_device_current_shape():
    result = per_device_current_study(max_sweeps=3)
    print()
    print("shared current:     {:.2f} A -> peak {:.3f} C".format(
        result.shared_current, result.shared_peak_c))
    print("per-device currents: {} devices, {} sweeps".format(
        result.per_device_currents.shape[0], result.sweeps))
    print("  min/max current:  {:.2f} / {:.2f} A".format(
        result.per_device_currents.min(), result.per_device_currents.max()))
    print("per-device peak:    {:.3f} C (improvement {:.3f} C)".format(
        result.per_device_peak_c, result.improvement_c))
    assert result.per_device_peak_c <= result.shared_peak_c + 1e-6
    # the single-pin restriction costs well under a degree on Alpha.
    assert result.improvement_c < 1.0


@pytest.mark.benchmark(group="ablation-pins")
def test_per_device_optimization_cost(benchmark):
    result = benchmark.pedantic(
        lambda: per_device_current_study(max_sweeps=1),
        rounds=1,
        iterations=1,
    )
    assert result.improvement_c >= -1e-6
