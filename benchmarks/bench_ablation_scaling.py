"""Ablation: the cooling-capability envelope under power scaling.

Scales the Alpha worst-case power map and re-runs the full design
flow at each point, printing the envelope: total power vs no-TEC peak
vs greedy outcome.  Past a point, no deployment can hold 85 C — the
systematic version of the HC06/HC09 infeasibility the paper reports.
Also prints the peak-vs-P_TEC Pareto front of the nominal design.

Run:  pytest benchmarks/bench_ablation_scaling.py --benchmark-only -s
"""

import pytest

from repro.core.pareto import pareto_front
from repro.experiments.ablations import technology_scaling_study


def test_scaling_envelope_shape():
    points = technology_scaling_study(
        power_factors=(0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4)
    )
    print()
    print("{:>9} {:>12} {:>9} {:>7} {:>9} {:>11}".format(
        "chip W", "bare peak C", "feasible", "#TECs", "I_opt A", "greedy C"))
    for p in points:
        print("{:>9.1f} {:>12.2f} {:>9} {:>7} {:>9.2f} {:>11.2f}".format(
            p.total_power_w, p.no_tec_peak_c,
            "yes" if p.feasible else "NO", p.num_tecs,
            p.i_opt_a, p.greedy_peak_c))
    # feasibility is monotone: once the envelope breaks it stays broken.
    flags = [p.feasible for p in points]
    assert flags[0] and flags[2]  # nominal Alpha feasible
    first_fail = flags.index(False) if False in flags else len(flags)
    assert all(not f for f in flags[first_fail:])
    # the envelope breaks somewhere in the sweep.
    assert False in flags


def test_pareto_front_shape(alpha_greedy):
    budgets = [0.0, 0.1, 0.25, 0.5, 1.0, 5.0]
    front = pareto_front(alpha_greedy.model, budgets)
    print()
    print("unconstrained: I_opt {:.2f} A, peak {:.2f} C, P_TEC {:.2f} W".format(
        front.i_opt_a, front.min_peak_c, front.p_tec_at_opt_w))
    print("{:>10} {:>10} {:>10} {:>10}".format(
        "budget W", "i (A)", "peak C", "P_TEC W"))
    for point in front.points:
        print("{:>10.2f} {:>10.2f} {:>10.2f} {:>10.3f}".format(
            point.budget_w, point.current_a, point.peak_c, point.p_tec_w))
    peaks = front.peaks()
    # peaks are non-increasing along growing budgets.
    assert all(b <= a + 1e-9 for a, b in zip(peaks, peaks[1:]))
    # half a watt already buys most of the swing (diminishing returns).
    passive = alpha_greedy.model.solve(0.0).peak_silicon_c
    full_swing = passive - front.min_peak_c
    half_watt = passive - front.points[3].peak_c
    assert half_watt > 0.5 * full_swing


@pytest.mark.benchmark(group="ablation-scaling")
def test_scaling_point_cost(benchmark):
    points = benchmark.pedantic(
        lambda: technology_scaling_study(power_factors=(1.2,)),
        rounds=3,
        iterations=1,
    )
    assert len(points) == 1
