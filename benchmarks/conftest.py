"""Shared benchmark fixtures.

Heavy, deterministic objects (benchmark problems, greedy solutions)
are computed once per session so the pytest-benchmark timing loops
measure only the operation under study.
"""

import pytest

from repro.core.deploy import greedy_deploy
from repro.experiments.benchmarks import load_benchmark


@pytest.fixture(scope="session")
def alpha_problem():
    return load_benchmark("alpha")


@pytest.fixture(scope="session")
def alpha_greedy(alpha_problem):
    return greedy_deploy(alpha_problem)
