"""The Section VI runtime claim: every benchmark under three minutes.

The paper's C++ implementation finished each benchmark's deployment +
current configuration within 3 minutes on a 2.8 GHz Xeon.  The shape
test runs every Table I benchmark and asserts the same bound (the
Python reproduction is orders of magnitude inside it); the timed
benchmark measures the end-to-end pipeline on the largest-power row.

Run:  pytest benchmarks/bench_runtime.py --benchmark-only -s
"""

import time

import pytest

from repro.core.baselines import full_cover
from repro.core.deploy import greedy_deploy
from repro.experiments.benchmarks import BENCHMARKS


def test_runtime_claim_all_benchmarks():
    print()
    print("{:<8} {:>12} {:>10}".format("bench", "runtime (s)", "< 180 s"))
    for name, spec in BENCHMARKS.items():
        start = time.perf_counter()
        problem = spec.problem()
        greedy = greedy_deploy(problem)
        full_cover(problem)
        elapsed = time.perf_counter() - start
        print("{:<8} {:>12.2f} {:>10}".format(name, elapsed, "yes"))
        assert elapsed < 180.0, name
        assert greedy.feasible


@pytest.mark.benchmark(group="runtime")
def test_end_to_end_pipeline(benchmark):
    spec = BENCHMARKS["hc06"]  # the largest-power, relaxed-limit row

    def pipeline():
        problem = spec.problem()
        greedy = greedy_deploy(problem)
        baseline = full_cover(problem)
        return greedy, baseline

    greedy, baseline = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert greedy.feasible
    assert baseline.min_peak_c > greedy.peak_c
